"""Interface-contract tests: every posterior type must honour the
JointPosterior API identically.

Parametrised over all five approximation methods fitted to DT-Info, so
a regression in any one implementation (moment sign conventions,
quantile monotonicity, reliability CDF limits...) is caught uniformly.
"""

import numpy as np
import pytest

from repro.bayes.laplace import fit_laplace
from repro.bayes.mcmc.chains import ChainSettings
from repro.bayes.mcmc.gibbs_failure_time import gibbs_failure_time
from repro.bayes.nint import fit_nint
from repro.core.reliability import reliability_increment
from repro.core.vb1 import fit_vb1
from repro.core.vb2 import fit_vb2

METHODS = ("NINT", "LAPL", "MCMC", "VB1", "VB2")


@pytest.fixture(scope="module")
def posteriors(times_data, info_prior_times):
    vb2 = fit_vb2(times_data, info_prior_times)
    return {
        "VB2": vb2,
        "VB1": fit_vb1(times_data, info_prior_times),
        "NINT": fit_nint(
            times_data, info_prior_times, reference_posterior=vb2,
            n_omega=161, n_beta=161,
        ),
        "LAPL": fit_laplace(times_data, info_prior_times),
        "MCMC": gibbs_failure_time(
            times_data,
            info_prior_times,
            settings=ChainSettings(n_samples=3000, burn_in=1000, thin=2, seed=11),
        ).posterior(),
    }


@pytest.mark.parametrize("method", METHODS)
class TestContract:
    def test_method_name_label(self, posteriors, method):
        assert posteriors[method].method_name == method

    def test_moments_summary_keys(self, posteriors, method):
        summary = posteriors[method].moments_summary()
        assert set(summary) == {
            "E[omega]", "E[beta]", "Var(omega)", "Var(beta)", "Cov(omega,beta)",
        }

    def test_positive_means_and_variances(self, posteriors, method):
        posterior = posteriors[method]
        for param in ("omega", "beta"):
            assert posterior.mean(param) > 0.0
            assert posterior.variance(param) > 0.0
            assert posterior.std(param) == pytest.approx(
                posterior.variance(param) ** 0.5
            )

    def test_covariance_consistency(self, posteriors, method):
        posterior = posteriors[method]
        implied = posterior.cross_moment() - posterior.mean("omega") * posterior.mean(
            "beta"
        )
        # Sample posteriors use ddof=1 in covariance() but 1/n moments in
        # cross_moment(): an O(1/n) discrepancy by design.
        tolerance = 1e-3 if method == "MCMC" else 1e-6
        assert posterior.covariance() == pytest.approx(
            implied, rel=tolerance, abs=1e-12
        )
        matrix = posterior.covariance_matrix()
        assert matrix[0, 1] == matrix[1, 0]
        assert abs(posterior.correlation()) <= 1.0 + 1e-9

    def test_quantiles_monotone_and_bracket_median(self, posteriors, method):
        posterior = posteriors[method]
        for param in ("omega", "beta"):
            q_levels = (0.01, 0.25, 0.5, 0.75, 0.99)
            values = [posterior.quantile(param, q) for q in q_levels]
            assert all(a <= b for a, b in zip(values, values[1:]))

    def test_credible_interval_ordering(self, posteriors, method):
        posterior = posteriors[method]
        narrow = posterior.credible_interval("omega", 0.5)
        wide = posterior.credible_interval("omega", 0.99)
        assert wide[0] <= narrow[0] < narrow[1] <= wide[1]

    def test_invalid_param_rejected(self, posteriors, method):
        with pytest.raises(ValueError):
            posteriors[method].mean("sigma")

    def test_reliability_cdf_limits_and_monotonicity(
        self, posteriors, method, times_data
    ):
        posterior = posteriors[method]
        c = reliability_increment(1.0, times_data.horizon, 5000.0)
        if method == "LAPL":
            # The delta-method CDF is a normal law whose support spills
            # outside [0, 1] — the paper's documented LAPL pathology.
            assert posterior.reliability_cdf(0.0, c) < 0.01
            assert posterior.reliability_cdf(1.0, c) > 0.99
        else:
            assert posterior.reliability_cdf(0.0, c) == 0.0
            assert posterior.reliability_cdf(1.0, c) == 1.0
        values = [posterior.reliability_cdf(r, c) for r in (0.3, 0.6, 0.9)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_reliability_point_is_central(self, posteriors, method, times_data):
        posterior = posteriors[method]
        c = reliability_increment(1.0, times_data.horizon, 5000.0)
        point = posterior.reliability_point(c)
        lower = posterior.reliability_quantile(0.005, c)
        upper = posterior.reliability_quantile(0.995, c)
        assert lower <= point <= upper

    def test_reliability_interval_matches_quantiles(
        self, posteriors, method, times_data
    ):
        posterior = posteriors[method]
        c = reliability_increment(1.0, times_data.horizon, 5000.0)
        lo, hi = posterior.reliability_interval(0.95, c)
        assert lo == pytest.approx(posterior.reliability_quantile(0.025, c))
        assert hi == pytest.approx(posterior.reliability_quantile(0.975, c))


class TestCrossMethodAgreement:
    """All five posteriors describe the same target; pairwise means
    agree to within method-specific tolerances."""

    def test_omega_means_cluster(self, posteriors):
        means = {m: p.mean("omega") for m, p in posteriors.items()}
        reference = means["NINT"]
        for method, value in means.items():
            # LAPL and VB1 carry documented location biases; give them
            # the looser band.
            tolerance = 0.05 if method in ("LAPL", "VB1") else 0.02
            assert value == pytest.approx(reference, rel=tolerance), method

    def test_beta_means_cluster(self, posteriors):
        means = {m: p.mean("beta") for m, p in posteriors.items()}
        reference = means["NINT"]
        for method, value in means.items():
            tolerance = 0.06
            assert value == pytest.approx(reference, rel=tolerance), method

    def test_all_negative_covariance_except_vb1(self, posteriors):
        for method, posterior in posteriors.items():
            if method == "VB1":
                assert posterior.covariance() == 0.0
            else:
                assert posterior.covariance() < 0.0, method
