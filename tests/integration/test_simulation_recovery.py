"""End-to-end recovery study: simulate from a known model, infer with
every method, and check the truth is covered.

This exercises the full stack (simulator -> data containers -> every
posterior method -> interval estimation) independently of the bundled
datasets.
"""

import numpy as np
import pytest

from repro.bayes.laplace import fit_laplace
from repro.bayes.mcmc.chains import ChainSettings
from repro.bayes.mcmc.gibbs_failure_time import gibbs_failure_time
from repro.bayes.nint import fit_nint
from repro.bayes.priors import ModelPrior
from repro.core.reliability import estimate_reliability
from repro.core.vb2 import fit_vb2
from repro.data.simulation import simulate_failure_times, simulate_grouped
from repro.models.goel_okumoto import GoelOkumoto

TRUE_OMEGA = 60.0
TRUE_BETA = 0.08


@pytest.fixture(scope="module")
def sim_data():
    model = GoelOkumoto(omega=TRUE_OMEGA, beta=TRUE_BETA)
    return simulate_failure_times(model, 25.0, np.random.default_rng(2024))


@pytest.fixture(scope="module")
def sim_prior():
    # Weakly informative prior centred near (but not at) the truth.
    return ModelPrior.informative(55.0, 25.0, 0.1, 0.06)


class TestRecovery:
    def test_vb2_interval_covers_truth(self, sim_data, sim_prior):
        posterior = fit_vb2(sim_data, sim_prior)
        lo, hi = posterior.credible_interval("omega", 0.99)
        assert lo < TRUE_OMEGA < hi
        lo, hi = posterior.credible_interval("beta", 0.99)
        assert lo < TRUE_BETA < hi

    def test_all_methods_agree_on_simulated_data(self, sim_data, sim_prior):
        vb2 = fit_vb2(sim_data, sim_prior)
        nint = fit_nint(
            sim_data, sim_prior, reference_posterior=vb2, n_omega=161, n_beta=161
        )
        lapl = fit_laplace(sim_data, sim_prior)
        mcmc = gibbs_failure_time(
            sim_data,
            sim_prior,
            settings=ChainSettings(n_samples=4000, burn_in=1500, thin=2, seed=55),
        ).posterior()
        reference = nint.mean("omega")
        assert vb2.mean("omega") == pytest.approx(reference, rel=0.02)
        assert mcmc.mean("omega") == pytest.approx(reference, rel=0.03)
        assert lapl.mean("omega") == pytest.approx(reference, rel=0.10)

    def test_reliability_prediction_matches_truth_scale(self, sim_data, sim_prior):
        posterior = fit_vb2(sim_data, sim_prior)
        true_model = GoelOkumoto(omega=TRUE_OMEGA, beta=TRUE_BETA)
        u = 2.0
        est = estimate_reliability(posterior, sim_data.horizon, u)
        truth = true_model.reliability(sim_data.horizon, u)
        assert est.lower <= truth <= est.upper

    def test_grouped_view_consistency(self, sim_prior):
        model = GoelOkumoto(omega=TRUE_OMEGA, beta=TRUE_BETA)
        rng = np.random.default_rng(77)
        grouped = simulate_grouped(model, np.arange(1.0, 26.0), rng)
        posterior = fit_vb2(grouped, sim_prior)
        lo, hi = posterior.credible_interval("omega", 0.99)
        assert lo < TRUE_OMEGA < hi

    def test_more_data_narrows_intervals(self, sim_prior):
        model = GoelOkumoto(omega=200.0, beta=0.08)
        rng = np.random.default_rng(88)
        long_data = simulate_failure_times(model, 40.0, rng)
        short_data = long_data.truncate(8.0)
        prior = ModelPrior.informative(150.0, 80.0, 0.1, 0.08)
        wide = fit_vb2(short_data, prior).credible_interval("omega", 0.99)
        narrow = fit_vb2(long_data, prior).credible_interval("omega", 0.99)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]
