"""Integration tests pinning the paper's headline qualitative claims.

These are the "shape" results EXPERIMENTS.md reports: they must hold on
the bundled System 17 analogue for the reproduction to be meaningful.
"""

import numpy as np
import pytest

from repro.bayes.mcmc.chains import ChainSettings
from repro.bayes.mcmc.gibbs_failure_time import gibbs_failure_time
from repro.core.reliability import estimate_reliability
from repro.core.vb1 import fit_vb1
from repro.core.vb2 import fit_vb2
from repro.bayes.laplace import fit_laplace


@pytest.fixture(scope="module")
def mcmc_times(times_data, info_prior_times):
    settings = ChainSettings(n_samples=8000, burn_in=3000, thin=3, seed=77)
    return gibbs_failure_time(
        times_data, info_prior_times, settings=settings
    ).posterior()


class TestMomentAgreement:
    """Paper Table 1: NINT ~ MCMC ~ VB2 on the first two moments."""

    def test_vb2_mean_within_one_percent_of_nint(self, vb2_times, nint_times):
        assert vb2_times.mean("omega") == pytest.approx(
            nint_times.mean("omega"), rel=0.01
        )
        assert vb2_times.mean("beta") == pytest.approx(
            nint_times.mean("beta"), rel=0.01
        )

    def test_vb2_variance_within_five_percent_of_nint(self, vb2_times, nint_times):
        assert vb2_times.variance("omega") == pytest.approx(
            nint_times.variance("omega"), rel=0.05
        )
        assert vb2_times.variance("beta") == pytest.approx(
            nint_times.variance("beta"), rel=0.08
        )

    def test_vb2_covariance_close_to_nint(self, vb2_times, nint_times):
        assert vb2_times.covariance() == pytest.approx(
            nint_times.covariance(), rel=0.1
        )

    def test_mcmc_close_to_nint(self, mcmc_times, nint_times):
        assert mcmc_times.mean("omega") == pytest.approx(
            nint_times.mean("omega"), rel=0.02
        )
        assert mcmc_times.variance("omega") == pytest.approx(
            nint_times.variance("omega"), rel=0.15
        )

    def test_third_moments_agree(self, vb2_times, nint_times):
        # The paper highlights that even higher moments of VB2 track NINT.
        assert vb2_times.central_moment("omega", 3) == pytest.approx(
            nint_times.central_moment("omega", 3), rel=0.15
        )

    def test_grouped_view_agreement(self, vb2_grouped, nint_grouped):
        assert vb2_grouped.mean("omega") == pytest.approx(
            nint_grouped.mean("omega"), rel=0.01
        )
        assert vb2_grouped.variance("omega") == pytest.approx(
            nint_grouped.variance("omega"), rel=0.05
        )


class TestVB1Failures:
    """Paper Table 1 and Section 6: VB1's structural deficiencies."""

    def test_vb1_zero_covariance(self, vb1_times):
        assert vb1_times.covariance() == pytest.approx(0.0, abs=1e-15)

    def test_vb1_underestimates_variances(self, vb1_times, nint_times):
        assert vb1_times.variance("omega") < 0.9 * nint_times.variance("omega")
        assert vb1_times.variance("beta") < 0.7 * nint_times.variance("beta")

    def test_vb1_intervals_too_narrow(self, vb1_times, nint_times):
        for param in ("omega", "beta"):
            lo1, hi1 = vb1_times.credible_interval(param, 0.99)
            lo2, hi2 = nint_times.credible_interval(param, 0.99)
            assert hi1 - lo1 < hi2 - lo2

    def test_vb1_reliability_interval_too_narrow(
        self, vb1_times, vb2_times, times_data
    ):
        vb1_est = estimate_reliability(vb1_times, times_data.horizon, 10_000.0)
        vb2_est = estimate_reliability(vb2_times, times_data.horizon, 10_000.0)
        assert vb1_est.upper - vb1_est.lower < vb2_est.upper - vb2_est.lower


class TestLaplaceFailures:
    """Paper Tables 1-2: LAPL shifted left; symmetric by construction."""

    def test_lapl_mean_below_nint(self, times_data, info_prior_times, nint_times):
        lapl = fit_laplace(times_data, info_prior_times)
        assert lapl.mean("omega") < nint_times.mean("omega")

    def test_lapl_intervals_shifted_left(
        self, times_data, info_prior_times, nint_times
    ):
        lapl = fit_laplace(times_data, info_prior_times)
        for param in ("omega", "beta"):
            lo_l, hi_l = lapl.credible_interval(param, 0.99)
            lo_n, hi_n = nint_times.credible_interval(param, 0.99)
            assert lo_l < lo_n
            assert hi_l < hi_n

    def test_lapl_cannot_represent_skew(self, times_data, info_prior_times):
        lapl = fit_laplace(times_data, info_prior_times)
        assert lapl.central_moment("omega", 3) == 0.0


class TestReliabilityAgreement:
    """Paper Tables 4-5: NINT ~ MCMC ~ VB2 reliability estimates."""

    def test_vb2_reliability_tracks_nint(self, vb2_times, nint_times, times_data):
        for u in (1000.0, 10_000.0):
            vb2_est = estimate_reliability(vb2_times, times_data.horizon, u)
            nint_est = estimate_reliability(nint_times, times_data.horizon, u)
            assert vb2_est.point == pytest.approx(nint_est.point, abs=0.005)
            assert vb2_est.lower == pytest.approx(nint_est.lower, abs=0.01)
            assert vb2_est.upper == pytest.approx(nint_est.upper, abs=0.01)

    def test_mcmc_reliability_tracks_nint(self, mcmc_times, nint_times, times_data):
        est_m = estimate_reliability(mcmc_times, times_data.horizon, 10_000.0)
        est_n = estimate_reliability(nint_times, times_data.horizon, 10_000.0)
        assert est_m.point == pytest.approx(est_n.point, abs=0.01)


class TestComputationalCost:
    """Paper Tables 6-7: VB2 is orders of magnitude cheaper than MCMC."""

    def test_vb2_faster_than_mcmc_at_matched_quality(
        self, times_data, info_prior_times
    ):
        import time

        start = time.perf_counter()
        fit_vb2(times_data, info_prior_times)
        vb2_seconds = time.perf_counter() - start

        settings = ChainSettings(n_samples=2000, burn_in=1000, thin=2, seed=1)
        start = time.perf_counter()
        gibbs_failure_time(times_data, info_prior_times, settings=settings)
        mcmc_seconds = time.perf_counter() - start
        assert vb2_seconds < mcmc_seconds

    def test_vb2_cost_grows_with_nmax(self, times_data, info_prior_times):
        from repro.metrics.timing import time_callable

        t100 = time_callable(
            lambda: fit_vb2(times_data, info_prior_times, nmax=100), repeat=3
        ).seconds
        t1000 = time_callable(
            lambda: fit_vb2(times_data, info_prior_times, nmax=1000), repeat=3
        ).seconds
        assert t1000 > t100

    def test_tail_mass_decays_with_nmax(self, times_data, info_prior_times):
        masses = [
            fit_vb2(times_data, info_prior_times, nmax=n).tail_mass()
            for n in (100, 200, 500)
        ]
        assert masses[0] > masses[1] > masses[2]
        assert masses[1] < 1e-15  # paper: Pv(200) ~ 4e-21 under Info prior


class TestVB1VsVB2Consistency:
    def test_vb1_is_special_case_when_mixture_collapses(self, vb2_times):
        # If VB2's latent pmf were a point mass, its covariance would be
        # zero too: verify the mixture is what carries the correlation.
        ns, weights = vb2_times.fault_count_pmf()
        peak = int(np.argmax(weights))
        from repro.core.posterior import VBPosterior

        collapsed = VBPosterior(
            n_values=[ns[peak]],
            weights=[1.0],
            omega_components=[vb2_times._omega_components[peak]],
            beta_components=[vb2_times._beta_components[peak]],
        )
        assert collapsed.covariance() == pytest.approx(0.0, abs=1e-15)
