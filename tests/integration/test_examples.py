"""Smoke tests: every example script must run end to end.

Each example is executed in a subprocess (as a user would run it) with
reduced workloads where the script accepts them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "VB2 posterior" in output
        assert "99% CI" in output

    def test_method_comparison(self):
        output = run_example("method_comparison.py")
        assert "Posterior moments" in output
        for method in ("NINT", "LAPL", "MCMC", "VB1", "VB2"):
            assert method in output

    def test_release_readiness(self):
        output = run_example("release_readiness.py")
        assert "Release readiness" in output
        assert "keep testing" in output or "SHIP" in output

    def test_model_selection(self):
        output = run_example("model_selection.py")
        assert "Evidence-preferred lifetime shape" in output
        assert "ELBO" in output

    def test_simulation_study(self):
        output = run_example("simulation_study.py", "--replications", "25")
        assert "coverage" in output

    def test_test_planning(self):
        output = run_example("test_planning.py")
        assert "Predictive failure counts" in output
        assert "P(K<=1" in output

    def test_weibull_analysis(self):
        output = run_example("weibull_analysis.py")
        assert "Family comparison" in output
        assert "Weibull VB2" in output
