"""Lane-dispatch identity tests for the validation campaigns.

The SBC runner and the coverage study both recognise lane-capable MCMC
procedures and run every replication as one lock-step batched fit.
The contract is identity, not similarity: the lane campaign must
reproduce the per-replication loop outcome for outcome, bit by bit.
"""

import numpy as np
import pytest

from repro.bayes.mcmc.chains import ChainSettings
from repro.bayes.priors import ModelPrior
from repro.core.vb2 import fit_vb2
from repro.experiments.config import ExperimentScale
from repro.metrics.coverage import interval_coverage_study
from repro.models.goel_okumoto import GoelOkumoto
from repro.validation.fitters import MCMCLaneFitter
from repro.validation.sbc import SBCSpec, run_replication, run_sbc

_LANE_SCALE = ExperimentScale(
    mcmc=ChainSettings(
        n_samples=300, burn_in=150, thin=1, variate_layer="inverse"
    ),
    nint_resolution=161,
    label="lane-test",
)
_CAMPAIGN = dict(replications=10, ranks=15, seed=33, scale=_LANE_SCALE)


class TestSbcLaneDispatch:
    @pytest.fixture(scope="class")
    def lane_result(self):
        return run_sbc(SBCSpec(method="MCMC", **_CAMPAIGN))

    def test_outcomes_identical_to_loop(self, lane_result):
        spec = lane_result.spec
        for outcome in lane_result.outcomes:
            assert outcome == run_replication(spec, outcome.index)

    def test_rerun_identical(self, lane_result):
        assert run_sbc(lane_result.spec).to_dict() == lane_result.to_dict()

    def test_indices_subset_matches(self, lane_result):
        subset = run_sbc(lane_result.spec, indices=[4, 1])
        by_index = {o.index: o for o in lane_result.outcomes}
        assert subset.outcomes == (by_index[4], by_index[1])

    def test_direct_layer_uses_loop_path(self):
        # Same campaign on the legacy direct layer must still run (the
        # loop path) and keep the simulated truths identical — the fit
        # stream is independent of the sim stream by construction.
        direct_scale = ExperimentScale(
            mcmc=ChainSettings(n_samples=300, burn_in=150, thin=1),
            nint_resolution=161,
            label="lane-test-direct",
        )
        direct = run_sbc(
            SBCSpec(
                method="MCMC",
                replications=4,
                ranks=15,
                seed=33,
                scale=direct_scale,
            )
        )
        lanes = run_sbc(
            SBCSpec(method="MCMC", replications=4, ranks=15, seed=33,
                    scale=_LANE_SCALE)
        )
        for a, b in zip(direct.outcomes, lanes.outcomes):
            assert a.truth == b.truth
            assert a.failures == b.failures


class TestCoverageLaneDispatch:
    @pytest.fixture(scope="class")
    def study(self):
        true_model = GoelOkumoto(omega=50.0, beta=0.1)
        prior = ModelPrior.informative(45.0, 20.0, 0.12, 0.06)
        fitters = {
            "MCMC": MCMCLaneFitter(settings=_LANE_SCALE.mcmc),
            "VB2": fit_vb2,
        }
        return interval_coverage_study(
            true_model,
            prior,
            fitters,
            horizon=25.0,
            level=0.9,
            replications=24,
            seed=13,
        )

    def test_lane_fitter_scores_same_campaigns(self, study):
        assert study["MCMC"].replications == study["VB2"].replications
        assert study["MCMC"].replications > 0

    def test_coverage_and_widths_sane(self, study):
        for param in ("omega", "beta"):
            assert 0.0 <= study["MCMC"].coverage(param) <= 1.0
            assert study["MCMC"].widths[param] > 0.0

    def test_mcmc_tracks_vb2(self, study):
        # Both procedures target the same posterior; on common
        # campaigns their interval widths agree to MC error.
        assert study["MCMC"].widths["omega"] == pytest.approx(
            study["VB2"].widths["omega"], rel=0.3
        )

    def test_deterministic(self, study):
        true_model = GoelOkumoto(omega=50.0, beta=0.1)
        prior = ModelPrior.informative(45.0, 20.0, 0.12, 0.06)
        again = interval_coverage_study(
            true_model,
            prior,
            {"MCMC": MCMCLaneFitter(settings=_LANE_SCALE.mcmc)},
            horizon=25.0,
            level=0.9,
            replications=24,
            seed=13,
        )
        assert again["MCMC"].to_dict() == study["MCMC"].to_dict()


class TestMCMCLaneFitter:
    def test_direct_layer_rejected(self):
        with pytest.raises(ValueError, match="inverse"):
            MCMCLaneFitter(settings=ChainSettings(n_samples=10, burn_in=5,
                                                  thin=1))

    def test_not_a_per_replication_callable(self, times_data):
        fitter = MCMCLaneFitter(settings=_LANE_SCALE.mcmc)
        prior = ModelPrior.informative(45.0, 20.0, 0.12, 0.06)
        with pytest.raises(TypeError, match="lane"):
            fitter(times_data, prior)

    def test_fit_lanes_matches_scalar_posteriors(self, info_prior_times):
        rng = np.random.default_rng(3)
        datasets = []
        from repro.data.failure_data import FailureTimeData

        for i in range(3):
            times = np.sort(rng.uniform(1.0, 50.0, size=8 + i))
            datasets.append(FailureTimeData(times, horizon=60.0))
        fitter = MCMCLaneFitter(settings=_LANE_SCALE.mcmc)
        posteriors = fitter.fit_lanes(
            datasets,
            info_prior_times,
            [np.random.default_rng(40 + i) for i in range(3)],
        )
        from repro.bayes.mcmc.gibbs_failure_time import gibbs_failure_time

        for i, (data, posterior) in enumerate(zip(datasets, posteriors)):
            scalar = gibbs_failure_time(
                data,
                info_prior_times,
                settings=_LANE_SCALE.mcmc.with_seed(40 + i),
            )
            assert np.array_equal(posterior.samples, scalar.samples)
