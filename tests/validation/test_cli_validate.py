"""Regression tests for `repro validate` argument plumbing.

PR history: `validate coverage --scale` used to be parsed but silently
ignored — the fitters were always built at campaign defaults. These
tests pin every flag of the three campaign subcommands to the object
that actually consumes it.
"""

import json
import pickle

import pytest

from repro.cli import (
    _campaign_workers,
    _parse_severity_overrides,
    build_parser,
    main,
)
from repro.experiments import PAPER_SCALE, QUICK_SCALE
from repro.validation.fitters import (
    MCMCLaneFitter,
    coverage_fitters,
    fit_nint_via_vb2,
)


class TestParser:
    def test_robustness_defaults(self):
        args = build_parser().parse_args(["validate", "robustness"])
        assert args.validate_command == "robustness"
        assert args.families == "all"
        assert args.severities is None
        assert args.methods == "NINT,LAPL,MCMC,VB1,VB2"
        assert args.no_sandwich is False
        assert args.level == 0.9
        assert args.workers == 1
        assert args.scale == "quick"

    def test_robustness_full_flags(self):
        args = build_parser().parse_args([
            "validate", "robustness",
            "--trace", "/tmp/trace.jsonl",
            "--trace-level", "timing",
            "--families", "contaminated,weibull-hazard",
            "--severities", "contaminated=0,0.4",
            "--severities", "weibull-hazard=0,0.25",
            "--methods", "VB2,LAPL",
            "--no-sandwich",
            "--level", "0.95",
            "--replications", "12",
            "--workers", "0",
            "--seed", "7",
            "--scale", "paper",
            "--out", "/tmp/x.json",
        ])
        assert args.trace == "/tmp/trace.jsonl"
        assert args.trace_level == "timing"
        assert args.families == "contaminated,weibull-hazard"
        assert args.severities == [
            "contaminated=0,0.4", "weibull-hazard=0,0.25",
        ]
        assert args.no_sandwich is True
        assert args.level == 0.95
        assert args.replications == 12
        assert args.workers == 0
        assert args.seed == 7
        assert args.scale == "paper"
        assert args.out == "/tmp/x.json"

    def test_coverage_scale_flag_parses(self):
        args = build_parser().parse_args(
            ["validate", "coverage", "--scale", "paper"]
        )
        assert args.scale == "paper"

    def test_sbc_still_parses(self):
        args = build_parser().parse_args(
            ["validate", "sbc", "--method", "VB1", "--workers", "3"]
        )
        assert args.validate_command == "sbc"
        assert args.method == "VB1"
        assert args.workers == 3

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["validate", "coverage", "--scale", "huge"]
            )


class TestSeverityOverrides:
    def test_none_on_empty(self):
        assert _parse_severity_overrides(None) is None
        assert _parse_severity_overrides([]) is None

    def test_parses_multiple_families(self):
        overrides = _parse_severity_overrides(
            ["contaminated=0,0.4,0.7", "change-point= 0 , 1.0 "]
        )
        assert overrides == {
            "contaminated": (0.0, 0.4, 0.7),
            "change-point": (0.0, 1.0),
        }

    def test_malformed_entry_exits(self):
        with pytest.raises(SystemExit, match="FAMILY=S1,S2"):
            _parse_severity_overrides(["contaminated"])

    def test_bad_float_exits(self):
        with pytest.raises(SystemExit, match="bad severity grid"):
            _parse_severity_overrides(["contaminated=0,high"])


class TestCampaignWorkers:
    @pytest.mark.parametrize("value,expected", [(0, None), (1, 1), (4, 4)])
    def test_zero_means_auto(self, value, expected):
        class Args:
            workers = value

        assert _campaign_workers(Args()) == expected


class TestScalePlumbing:
    """The regression: the scale must reach the fitters themselves."""

    def test_quick_scale_fitters(self):
        fitters = coverage_fitters(["NINT", "MCMC"], scale=QUICK_SCALE)
        nint = fitters["NINT"]
        assert nint.func is fit_nint_via_vb2
        assert nint.keywords == {"resolution": QUICK_SCALE.nint_resolution}
        mcmc = fitters["MCMC"]
        assert isinstance(mcmc, MCMCLaneFitter)
        assert mcmc.settings.n_samples == QUICK_SCALE.mcmc.n_samples
        assert mcmc.settings.variate_layer == "inverse"

    def test_paper_scale_differs_from_quick(self):
        quick = coverage_fitters(["NINT", "MCMC"], scale=QUICK_SCALE)
        paper = coverage_fitters(["NINT", "MCMC"], scale=PAPER_SCALE)
        assert (
            paper["NINT"].keywords["resolution"]
            > quick["NINT"].keywords["resolution"]
        )
        assert paper["MCMC"].settings.n_samples > quick["MCMC"].settings.n_samples

    def test_no_scale_keeps_campaign_defaults(self):
        fitters = coverage_fitters(["NINT", "MCMC"])
        assert fitters["NINT"] is fit_nint_via_vb2
        assert fitters["MCMC"].settings.n_samples == 4_000

    def test_scaled_fitters_are_picklable(self):
        fitters = coverage_fitters(
            ["NINT", "LAPL", "MCMC", "VB1", "VB2"], scale=PAPER_SCALE
        )
        for fitter in fitters.values():
            pickle.loads(pickle.dumps(fitter))

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError, match="no coverage fitter"):
            coverage_fitters(["VB3"])


@pytest.mark.slow
class TestEndToEnd:
    def test_robustness_command_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "robustness.json"
        code = main([
            "validate", "robustness",
            "--families", "contaminated",
            "--severities", "contaminated=0,0.7",
            "--methods", "VB2,LAPL",
            "--replications", "4",
            "--seed", "3",
            "--out", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "robustness at nominal 90%" in printed
        assert "VB2+SW recovers" in printed
        payload = json.loads(out.read_text())
        assert payload["kind"] == "robustness"
        assert payload["config"]["families"] == ["contaminated"]
        assert payload["config"]["severities"] == {"contaminated": [0.0, 0.7]}
        assert len(payload["results"]["cells"]) == 2
        labels = set(payload["results"]["cells"][0]["methods"])
        assert labels == {"LAPL", "VB2", "VB2+SW"}

    def test_robustness_trace_flag_runs(self, tmp_path, capsys):
        out = tmp_path / "robustness.json"
        trace = tmp_path / "trace.jsonl"
        code = main([
            "validate", "robustness",
            "--trace", str(trace),
            "--families", "truncated-reporting",
            "--severities", "truncated-reporting=0,0.6",
            "--methods", "VB1",
            "--no-sandwich",
            "--replications", "3",
            "--workers", "2",
            "--out", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "robustness" in printed
        # --no-sandwich: the verdict line must not appear.
        assert "recovers" not in printed
        payload = json.loads(out.read_text())
        assert payload["config"]["sandwich"] is False
        assert trace.exists()
        lines = trace.read_text().strip().splitlines()
        assert lines and all(json.loads(line) for line in lines)

    def test_coverage_records_scale_in_artifact(self, tmp_path, capsys):
        out = tmp_path / "coverage.json"
        code = main([
            "validate", "coverage",
            "--methods", "VB2",
            "--replications", "4",
            "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["scale"] == "quick"
