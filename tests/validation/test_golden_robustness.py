"""Tier-2 golden regression for the misspecification campaign.

``tests/fixtures/golden_robustness.json`` pins an 8-replication
mini-campaign (regenerate with
``benchmarks/build_golden_robustness.py``). The campaign is fully
deterministic — seeded simulation streams, deterministic fitters,
canonical artifact serialisation — so the comparison is byte-for-byte,
serial and parallel alike.
"""

import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.slow, pytest.mark.robustness]

FIXTURE = Path(__file__).resolve().parent.parent / "fixtures" / \
    "golden_robustness.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent
                       / "benchmarks"))
from build_golden_robustness import build_artifact, golden_spec  # noqa: E402

from repro.robustness import run_robustness  # noqa: E402


@pytest.fixture(scope="module")
def golden_bytes():
    return FIXTURE.read_text(encoding="utf-8")


def test_fixture_reproduces_byte_for_byte(golden_bytes):
    assert build_artifact().to_json() == golden_bytes


def test_parallel_run_matches_fixture(golden_bytes):
    serial = run_robustness(golden_spec(), workers=1).to_dict()
    parallel = run_robustness(golden_spec(), workers=4).to_dict()
    assert parallel == serial


def test_fixture_records_acceptance_flag(golden_bytes):
    import json

    payload = json.loads(golden_bytes)
    assert payload["kind"] == "robustness"
    results = payload["results"]
    assert "sandwich_recovery" in results
    assert "sandwich_recovers_half_on_contamination" in results
    assert len(results["cells"]) == 8
