"""Unit tests for the deterministic parallel campaign runner."""

import warnings

import pytest

from repro.validation.parallel import default_workers, parallel_map


def _square(x: int) -> int:
    # Module-level so the process pool can pickle it.
    return x * x


def _seeded_draw(seed: int) -> float:
    import numpy as np

    from repro.validation.seeding import replication_seed

    return float(np.random.default_rng(replication_seed(0, seed)).random())


class TestSerialPath:
    def test_maps_in_order(self):
        assert parallel_map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_items(self):
        assert parallel_map(_square, []) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [7], workers=8) == [49]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], workers=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestParallelPath:
    def test_matches_serial(self):
        items = list(range(40))
        serial = parallel_map(_square, items, workers=1)
        parallel = parallel_map(_square, items, workers=2)
        assert parallel == serial

    def test_explicit_chunk_size(self):
        items = list(range(17))
        assert parallel_map(_square, items, workers=2, chunk_size=3) == [
            x * x for x in items
        ]

    def test_seeded_work_is_order_preserving(self):
        items = list(range(12))
        serial = parallel_map(_seeded_draw, items, workers=1)
        parallel = parallel_map(_seeded_draw, items, workers=3)
        assert parallel == serial

    def test_workers_capped_at_item_count(self):
        # More workers than items must not fail or reorder.
        assert parallel_map(_square, [2, 3], workers=16) == [4, 9]


class TestFallback:
    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        import repro.validation.parallel as mod

        class _BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no subprocesses in this sandbox")

        monkeypatch.setattr(mod, "ProcessPoolExecutor", _BrokenPool)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = parallel_map(_square, [1, 2, 3], workers=2)
        assert result == [1, 4, 9]
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
