"""Unit tests for the SBC engine (small, fast campaigns)."""

import numpy as np
import pytest

from repro.bayes.priors import ModelPrior
from repro.validation.fitters import coverage_fitters, fit_nint_via_vb2
from repro.validation.sbc import (
    SBC_METHODS,
    SBC_QUANTITIES,
    SBCSpec,
    run_replication,
    run_sbc,
)

_SMALL = dict(replications=12, ranks=15, seed=21)


@pytest.fixture(scope="module")
def vb2_result():
    return run_sbc(SBCSpec(method="VB2", **_SMALL))


class TestSpecValidation:
    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            SBCSpec(method="EM")

    def test_known_methods_accepted(self):
        for method in SBC_METHODS:
            assert SBCSpec(method=method).method == method

    def test_improper_prior_rejected(self):
        with pytest.raises(ValueError, match="proper"):
            SBCSpec(prior=ModelPrior.noninformative())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replications": 0},
            {"ranks": 0},
            {"horizon": 0.0},
            {"min_failures": 0},
        ],
    )
    def test_positive_fields_enforced(self, kwargs):
        with pytest.raises(ValueError):
            SBCSpec(**kwargs)

    def test_window_defaults_to_fifth_of_horizon(self):
        assert SBCSpec(horizon=25.0).window == pytest.approx(5.0)
        assert SBCSpec(horizon=25.0, reliability_window=2.0).window == 2.0

    def test_config_dict_is_json_ready(self):
        import json

        json.dumps(SBCSpec().config_dict())


class TestRunReplication:
    def test_deterministic(self):
        spec = SBCSpec(method="VB1", **_SMALL)
        assert run_replication(spec, 4) == run_replication(spec, 4)

    def test_indices_give_distinct_campaigns(self):
        spec = SBCSpec(method="VB1", **_SMALL)
        a, b = run_replication(spec, 0), run_replication(spec, 1)
        assert a.truth != b.truth

    def test_high_min_failures_skips(self):
        spec = SBCSpec(method="VB2", min_failures=10_000, **_SMALL)
        outcome = run_replication(spec, 0)
        assert outcome.status == "skipped"
        assert outcome.ranks is None


class TestRunSbc:
    def test_all_ranks_in_range(self, vb2_result):
        spec = vb2_result.spec
        for quantity in SBC_QUANTITIES:
            ranks = vb2_result.ranks(quantity)
            assert ranks.size == vb2_result.used
            assert ranks.min() >= 0 and ranks.max() <= spec.ranks

    def test_outcome_accounting(self, vb2_result):
        total = vb2_result.used + vb2_result.skipped + vb2_result.failed
        assert total == vb2_result.spec.replications

    def test_serial_rerun_identical(self, vb2_result):
        again = run_sbc(vb2_result.spec)
        assert again.to_dict() == vb2_result.to_dict()

    def test_indices_subset_matches_full_run(self, vb2_result):
        subset = run_sbc(vb2_result.spec, indices=[5, 2])
        by_index = {o.index: o for o in vb2_result.outcomes}
        assert subset.outcomes == (by_index[5], by_index[2])

    def test_unknown_quantity_rejected(self, vb2_result):
        with pytest.raises(ValueError, match="quantity"):
            vb2_result.ranks("lambda")

    def test_to_dict_shape(self, vb2_result):
        payload = vb2_result.to_dict()
        assert set(payload) == {"config", "replications", "uniformity",
                                "ranks"}
        assert set(payload["uniformity"]) == set(SBC_QUANTITIES)
        for quantity in SBC_QUANTITIES:
            assert "p_value" in payload["uniformity"][quantity]["chi_square"]


class TestCoverageFitters:
    def test_requested_labels_returned(self):
        fitters = coverage_fitters(["VB1", "VB2", "LAPL", "NINT"])
        assert set(fitters) == {"VB1", "VB2", "LAPL", "NINT"}
        assert fitters["NINT"] is fit_nint_via_vb2

    def test_mcmc_label_is_lane_fitter(self):
        fitters = coverage_fitters(["MCMC"])
        assert hasattr(fitters["MCMC"], "fit_lanes")
        assert fitters["MCMC"].settings.variate_layer == "inverse"

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError, match="BOGUS"):
            coverage_fitters(["BOGUS"])
