"""Tier-2 SBC smoke campaigns: the paper's thesis as a calibration test.

A calibrated posterior must produce uniform SBC ranks (Talts et al.
2018). VB2 — the paper's contribution — passes on every checked
quantity; VB1's factorised posterior is provably under-dispersed and
must fail the derived-quantity checks. 150 replications keep the run
in tier-2 smoke territory while leaving the VB1 rejection decisive
(its chi-square p-values land at ~1e-4 or below).
"""

import pytest

from repro.validation.sbc import SBCSpec, run_sbc

pytestmark = [pytest.mark.slow, pytest.mark.sbc]

_CAMPAIGN = dict(replications=150, ranks=63, seed=7)


def test_vb2_is_calibrated_on_all_quantities():
    result = run_sbc(SBCSpec(method="VB2", **_CAMPAIGN))
    assert result.failed == 0
    reports = result.reports()
    for quantity, report in reports.items():
        assert report.calibrated, (
            f"VB2 flagged miscalibrated on {quantity}: "
            f"chi2 p={report.chi_square.p_value:.4g}, "
            f"ecdf dev {report.ecdf.max_deviation:.3f} "
            f"vs envelope {report.ecdf.envelope:.3f}"
        )


def test_vb1_undercoverage_is_detected():
    result = run_sbc(SBCSpec(method="VB1", **_CAMPAIGN))
    reports = result.reports()
    # The factorisation error concentrates in beta and everything
    # downstream of it; the rejection must be decisive, not marginal.
    for quantity in ("beta", "residual", "reliability"):
        assert reports[quantity].chi_square.rejects(alpha=0.001), (
            f"VB1 slipped through on {quantity}: "
            f"chi2 p={reports[quantity].chi_square.p_value:.4g}"
        )
