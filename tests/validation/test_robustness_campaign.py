"""Unit tests for the misspecification campaign driver."""

import numpy as np
import pytest

from repro.robustness.campaign import (
    CONTAMINATION_FAMILIES,
    ROBUSTNESS_METHODS,
    ROBUSTNESS_TARGETS,
    SANDWICH_LABEL,
    CellResult,
    RobustnessResult,
    RobustnessSpec,
    _aggregate,
    _interval_levels,
    _robustness_replication,
    run_robustness,
)
from repro.robustness.generators import SCENARIO_FAMILIES, default_severities


def _mini_spec(**overrides):
    base = dict(
        families=("contaminated",),
        severities={"contaminated": (0.0, 0.7)},
        methods=("LAPL", "VB2"),
        sandwich=True,
        replications=6,
        seed=42,
    )
    base.update(overrides)
    return RobustnessSpec(**base)


class TestSpecValidation:
    def test_default_spec_sweeps_all_families(self):
        spec = RobustnessSpec()
        assert set(spec.families) == set(SCENARIO_FAMILIES)
        assert spec.methods == ROBUSTNESS_METHODS

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario families"):
            RobustnessSpec(families=("weibull-hazard", "nosuch"))

    def test_empty_families_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            RobustnessSpec(families=())

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown methods"):
            RobustnessSpec(methods=("VB2", "BOOTSTRAP"))

    def test_nothing_to_score_rejected(self):
        with pytest.raises(ValueError, match="nothing to score"):
            RobustnessSpec(methods=(), sandwich=False)

    def test_sandwich_only_is_allowed(self):
        spec = RobustnessSpec(methods=(), sandwich=True)
        assert spec.labels() == (SANDWICH_LABEL,)

    @pytest.mark.parametrize("kwargs", [
        {"level": 0.0},
        {"level": 1.0},
        {"replications": 0},
        {"horizon": 0.0},
        {"min_failures": 0},
    ])
    def test_bad_numeric_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RobustnessSpec(**kwargs)


class TestSpecGeometry:
    def test_severity_override_and_default(self):
        spec = RobustnessSpec(
            families=("contaminated", "weibull-hazard"),
            severities={"contaminated": (0.0, 0.5)},
        )
        assert spec.family_severities("contaminated") == (0.0, 0.5)
        assert spec.family_severities("weibull-hazard") == default_severities(
            "weibull-hazard"
        )

    def test_cells_enumerate_in_family_major_order(self):
        spec = RobustnessSpec(
            families=("change-point", "contaminated"),
            severities={
                "change-point": (0.0, 1.0),
                "contaminated": (0.0,),
            },
        )
        assert spec.cells() == [
            ("change-point", 0.0),
            ("change-point", 1.0),
            ("contaminated", 0.0),
        ]

    def test_labels_append_sandwich_last(self):
        assert _mini_spec().labels() == ("LAPL", "VB2", SANDWICH_LABEL)
        assert _mini_spec(sandwich=False).labels() == ("LAPL", "VB2")

    def test_config_dict_is_json_ready(self):
        import json

        config = _mini_spec().config_dict()
        assert config["families"] == ["contaminated"]
        assert config["severities"] == {"contaminated": [0.0, 0.7]}
        assert config["scale"] == "quick"
        assert config["seed"] == 42
        json.dumps(config)  # must not raise

    def test_interval_levels(self):
        np.testing.assert_allclose(_interval_levels(0.9), [0.05, 0.95])
        np.testing.assert_allclose(_interval_levels(0.5), [0.25, 0.75])


class TestReplication:
    def test_replication_is_deterministic(self):
        spec = _mini_spec()
        first = _robustness_replication(spec, (1, 3))
        second = _robustness_replication(spec, (1, 3))
        assert first is not None
        assert first["failures"] == second["failures"]
        for label in ("LAPL", "VB2", SANDWICH_LABEL):
            hits1, widths1 = first["scores"][label]
            hits2, widths2 = second["scores"][label]
            assert hits1 == hits2
            for target in ROBUSTNESS_TARGETS:
                assert widths1[target] == widths2[target]

    def test_different_jobs_differ(self):
        spec = _mini_spec()
        a = _robustness_replication(spec, (0, 0))
        b = _robustness_replication(spec, (0, 1))
        assert a["failures"] != b["failures"] or (
            a["scores"]["VB2"][1] != b["scores"]["VB2"][1]
        )

    def test_min_failures_skip_returns_none(self):
        spec = _mini_spec(min_failures=10_000)
        assert _robustness_replication(spec, (0, 0)) is None

    def test_sandwich_scored_even_without_vb2_method(self):
        spec = _mini_spec(methods=("LAPL",), sandwich=True)
        outcome = _robustness_replication(spec, (0, 0))
        assert set(outcome["scores"]) == {"LAPL", SANDWICH_LABEL}


class TestAggregation:
    def test_all_skipped_cell_raises(self):
        spec = _mini_spec(replications=2)
        jobs = [(0, 0), (0, 1), (1, 0), (1, 1)]
        outcomes = [None, None, {"failures": 5, "scores": {}}, None]
        with pytest.raises(ValueError, match="every replication"):
            _aggregate(spec, outcomes, jobs)

    def test_synthetic_counts(self):
        spec = _mini_spec(
            methods=("VB2",), sandwich=False, replications=3
        )
        jobs = [(c, r) for c in range(2) for r in range(3)]

        def outcome(hit_omega, hit_residual, failures):
            return {
                "failures": failures,
                "scores": {
                    "VB2": (
                        {"omega": hit_omega, "residual": hit_residual},
                        {"omega": 2.0, "residual": 1.0},
                    )
                },
            }

        outcomes = [
            outcome(1, 1, 10),
            outcome(1, 0, 14),
            None,
            outcome(0, 0, 6),
            outcome(1, 1, 8),
            outcome(1, 1, 7),
        ]
        result = _aggregate(spec, outcomes, jobs)
        first = result.cell("contaminated", 0.0)
        assert first.used == 2 and first.skipped == 1
        assert first.mean_failures == pytest.approx(12.0)
        assert first.coverage("VB2", "omega") == pytest.approx(1.0)
        assert first.coverage("VB2", "residual") == pytest.approx(0.5)
        assert first.mean_width("VB2", "omega") == pytest.approx(2.0)
        second = result.cell("contaminated", 0.7)
        assert second.used == 3 and second.skipped == 0
        assert second.coverage("VB2", "omega") == pytest.approx(2.0 / 3.0)

    def test_unknown_cell_lookup_raises(self):
        spec = _mini_spec(methods=("VB2",), sandwich=False, replications=1)
        result = _aggregate(
            spec,
            [
                {
                    "failures": 4,
                    "scores": {"VB2": (
                        {"omega": 1, "residual": 1},
                        {"omega": 1.0, "residual": 1.0},
                    )},
                }
            ] * 2,
            [(0, 0), (1, 0)],
        )
        with pytest.raises(KeyError):
            result.cell("contaminated", 0.123)


def _synthetic_result(coverages):
    """Build a RobustnessResult from {(severity, label, target): coverage}
    over a two-cell contaminated sweep with 10 replications."""
    spec = _mini_spec(methods=("VB2",), replications=10)
    cells = []
    for severity in (0.0, 0.7):
        labels = ("VB2", SANDWICH_LABEL)
        hits = {
            label: {
                target: int(round(10 * coverages[(severity, label, target)]))
                for target in ROBUSTNESS_TARGETS
            }
            for label in labels
        }
        width_sums = {
            label: dict.fromkeys(ROBUSTNESS_TARGETS, 10.0) for label in labels
        }
        cells.append(
            CellResult(
                family="contaminated",
                severity=severity,
                used=10,
                skipped=0,
                mean_failures=12.0,
                hits=hits,
                width_sums=width_sums,
            )
        )
    return RobustnessResult(spec=spec, cells=tuple(cells))


class TestRecoveryMath:
    def _coverages(self, raw, corrected):
        cov = {}
        for target in ROBUSTNESS_TARGETS:
            cov[(0.0, "VB2", target)] = 0.9
            cov[(0.0, SANDWICH_LABEL, target)] = 0.9
            cov[(0.7, "VB2", target)] = raw
            cov[(0.7, SANDWICH_LABEL, target)] = corrected
        return cov

    def test_recovery_fraction(self):
        result = _synthetic_result(self._coverages(raw=0.5, corrected=0.8))
        rows = result.sandwich_recovery()["contaminated"]
        for row in rows:
            assert row["lost"] == pytest.approx(0.4)
            assert row["recovered"] == pytest.approx(0.3)
            assert row["recovery_fraction"] == pytest.approx(0.75)
        assert result.sandwich_recovers_half_on_contamination()

    def test_no_loss_gives_none_fraction(self):
        result = _synthetic_result(self._coverages(raw=0.9, corrected=0.9))
        rows = result.sandwich_recovery()["contaminated"]
        assert all(row["recovery_fraction"] is None for row in rows)
        assert not result.sandwich_recovers_half_on_contamination()

    def test_negative_recovery_clipped_to_zero(self):
        result = _synthetic_result(self._coverages(raw=0.5, corrected=0.4))
        rows = result.sandwich_recovery()["contaminated"]
        for row in rows:
            assert row["recovered"] == pytest.approx(-0.1)
            assert row["recovery_fraction"] == pytest.approx(0.0)

    def test_recovery_empty_without_vb2(self):
        spec = _mini_spec(methods=("LAPL",))
        result = RobustnessResult(spec=spec, cells=())
        assert result.sandwich_recovery() == {}
        assert not result.sandwich_recovers_half_on_contamination()

    def test_degradation_anchored_at_first_severity(self):
        result = _synthetic_result(self._coverages(raw=0.6, corrected=0.8))
        curves = result.degradation_curves()["contaminated"]
        for label, expected in (("VB2", 0.3), (SANDWICH_LABEL, 0.1)):
            points = curves[label]["omega"]
            assert points[0]["degradation"] == pytest.approx(0.0)
            assert points[1]["degradation"] == pytest.approx(expected)

    def test_to_dict_includes_recovery_sections(self):
        result = _synthetic_result(self._coverages(raw=0.5, corrected=0.8))
        payload = result.to_dict()
        assert "sandwich_recovery" in payload
        assert payload["sandwich_recovers_half_on_contamination"] is True
        assert len(payload["cells"]) == 2
        assert "degradation_curves" in payload


class TestDriver:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return run_robustness(_mini_spec(), workers=1)

    def test_structure(self, serial_result):
        assert len(serial_result.cells) == 2
        for cell in serial_result.cells:
            assert cell.used + cell.skipped == 6
            assert cell.used >= 1
            for label in ("LAPL", "VB2", SANDWICH_LABEL):
                for target in ROBUSTNESS_TARGETS:
                    assert 0.0 <= cell.coverage(label, target) <= 1.0
                    assert cell.mean_width(label, target) > 0.0

    def test_parallel_matches_serial(self, serial_result):
        parallel = run_robustness(_mini_spec(), workers=2)
        assert parallel.to_dict() == serial_result.to_dict()

    def test_sandwich_never_below_vb2_coverage(self, serial_result):
        """The conservative floor makes VB2+SW intervals supersets of
        VB2's, so per-cell coverage can only be equal or higher."""
        for cell in serial_result.cells:
            for target in ROBUSTNESS_TARGETS:
                assert (
                    cell.coverage(SANDWICH_LABEL, target)
                    >= cell.coverage("VB2", target)
                )

    def test_contamination_families_constant(self):
        assert set(CONTAMINATION_FAMILIES) <= set(SCENARIO_FAMILIES)
