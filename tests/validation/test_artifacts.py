"""Unit tests for the deterministic JSON artifact layer."""

import json

import pytest

from repro.validation.artifacts import (
    ValidationArtifact,
    compare_artifacts,
    default_artifact_path,
    load_artifact,
    save_artifact,
)


def _artifact(**overrides):
    base = dict(
        kind="sbc",
        config={"seed": 0, "replications": 10},
        results={"uniformity": {"omega": {"p_value": 0.42}},
                 "ranks": {"omega": [1, 2, 3]}},
    )
    base.update(overrides)
    return ValidationArtifact(**base)


class TestSerialisation:
    def test_round_trip(self, tmp_path):
        artifact = _artifact()
        path = save_artifact(artifact, tmp_path / "a.json")
        assert load_artifact(path) == artifact

    def test_byte_stable_across_key_insertion_order(self):
        a = ValidationArtifact(kind="sbc", config={"x": 1, "y": 2},
                               results={})
        b = ValidationArtifact(kind="sbc", config={"y": 2, "x": 1},
                               results={})
        assert a.to_json() == b.to_json()

    def test_trailing_newline(self):
        assert _artifact().to_json().endswith("}\n")

    def test_nan_refused(self):
        artifact = _artifact(results={"bad": float("nan")})
        with pytest.raises(ValueError):
            artifact.to_json()

    def test_parent_directories_created(self, tmp_path):
        path = save_artifact(_artifact(), tmp_path / "deep" / "dir" / "a.json")
        assert path.exists()

    def test_payload_shape(self, tmp_path):
        path = save_artifact(_artifact(), tmp_path / "a.json")
        payload = json.loads(path.read_text())
        assert set(payload) == {"schema_version", "kind", "config", "results"}


class TestDefaultPath:
    def test_slug_normalisation(self):
        path = default_artifact_path("sbc", "goel-okumoto", "VB2")
        assert path.as_posix() == \
            "benchmarks/results/sbc_goel_okumoto_vb2.json"

    def test_empty_tags_skipped(self):
        assert default_artifact_path("coverage").name == "coverage.json"


class TestCompare:
    def test_identical_artifacts_clean(self):
        assert compare_artifacts(_artifact(), _artifact()) == []

    def test_numeric_drift_reported(self):
        drifted = _artifact(
            results={"uniformity": {"omega": {"p_value": 0.43}},
                     "ranks": {"omega": [1, 2, 3]}}
        )
        problems = compare_artifacts(drifted, _artifact())
        assert any("p_value" in p for p in problems)

    def test_drift_within_tolerance_accepted(self):
        drifted = _artifact(
            results={"uniformity": {"omega": {"p_value": 0.42 + 1e-13}},
                     "ranks": {"omega": [1, 2, 3]}}
        )
        assert compare_artifacts(drifted, _artifact()) == []

    def test_missing_leaf_reported(self):
        pruned = _artifact(results={"ranks": {"omega": [1, 2, 3]}})
        problems = compare_artifacts(pruned, _artifact())
        assert any("missing from current" in p for p in problems)

    def test_config_mismatch_reported_first(self):
        other = _artifact(config={"seed": 1, "replications": 10})
        problems = compare_artifacts(other, _artifact())
        assert problems and problems[0].startswith("config.seed")

    def test_kind_mismatch_short_circuits(self):
        problems = compare_artifacts(_artifact(kind="coverage"), _artifact())
        assert problems == ["kind mismatch: 'coverage' vs 'sbc'"]
