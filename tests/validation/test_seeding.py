"""Unit tests for the deterministic per-replication seeding scheme."""

import numpy as np
import pytest

from repro.validation.seeding import replication_seed, spawn_rngs, spawn_seeds


class TestReplicationSeed:
    def test_deterministic(self):
        a = np.random.default_rng(replication_seed(7, 3)).random(8)
        b = np.random.default_rng(replication_seed(7, 3)).random(8)
        assert np.array_equal(a, b)

    def test_matches_numpy_spawn_contract(self):
        # SeedSequence(e).spawn(n)[i] == SeedSequence(e, spawn_key=(i,)).
        spawned = np.random.SeedSequence(42).spawn(5)
        for index, child in enumerate(spawned):
            ours = replication_seed(42, index)
            assert ours.generate_state(4).tolist() == \
                child.generate_state(4).tolist()

    def test_distinct_across_indices_and_seeds(self):
        states = {
            tuple(replication_seed(seed, index).generate_state(4).tolist())
            for seed in (0, 1)
            for index in range(50)
        }
        assert len(states) == 100

    def test_subkeys_branch_independently(self):
        base = replication_seed(5, 2).generate_state(4)
        sub0 = replication_seed(5, 2, 0).generate_state(4)
        sub1 = replication_seed(5, 2, 1).generate_state(4)
        assert not np.array_equal(sub0, sub1)
        assert not np.array_equal(base, sub0)

    @pytest.mark.parametrize(
        "args", [(-1, 0), (0, -1), (0, 0, -2)], ids=["seed", "index", "subkey"]
    )
    def test_negative_inputs_rejected(self, args):
        with pytest.raises(ValueError):
            replication_seed(*args)


class TestSpawnHelpers:
    def test_spawn_seeds_are_the_replication_seeds(self):
        seeds = spawn_seeds(11, 4)
        assert len(seeds) == 4
        for index, seed in enumerate(seeds):
            assert seed.generate_state(2).tolist() == \
                replication_seed(11, index).generate_state(2).tolist()

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(11, 3)
        draws = [rng.random(4) for rng in rngs]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
