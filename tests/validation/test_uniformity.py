"""Unit tests for the SBC rank-uniformity checks."""

import numpy as np
import pytest

from repro.validation.uniformity import (
    chi_square_uniformity,
    default_bins,
    ecdf_envelope,
    rank_histogram,
    uniformity_report,
)

L = 63


@pytest.fixture(scope="module")
def uniform_ranks():
    return np.random.default_rng(2024).integers(0, L + 1, size=400)


@pytest.fixture(scope="module")
def degenerate_ranks():
    # An under-dispersed posterior piles ranks at the extremes.
    return np.concatenate([np.zeros(200, dtype=int),
                           np.full(200, L, dtype=int)])


class TestRankHistogram:
    def test_counts_cover_all_samples(self, uniform_ranks):
        _, counts = rank_histogram(uniform_ranks, L, n_bins=8)
        assert counts.sum() == uniform_ranks.size

    def test_boundary_ranks_are_counted(self):
        edges, counts = rank_histogram([0, L], L, n_bins=4)
        assert counts.sum() == 2
        assert counts[0] == 1 and counts[-1] == 1

    def test_out_of_range_ranks_rejected(self):
        with pytest.raises(ValueError):
            rank_histogram([0, L + 1], L)
        with pytest.raises(ValueError):
            rank_histogram([-1], L)

    def test_empty_ranks_rejected(self):
        with pytest.raises(ValueError):
            rank_histogram([], L)

    def test_bad_bin_count_rejected(self, uniform_ranks):
        with pytest.raises(ValueError):
            rank_histogram(uniform_ranks, L, n_bins=L + 2)


class TestDefaultBins:
    def test_keeps_expected_count_at_least_five(self):
        for n in (10, 50, 400, 10_000):
            bins = default_bins(n, L)
            assert 2 <= bins <= min(L + 1, 32)
            if n >= 10:
                assert n / bins >= 5

    def test_never_exceeds_rank_support(self):
        assert default_bins(10_000, 3) == 4


class TestChiSquare:
    def test_uniform_ranks_pass(self, uniform_ranks):
        result = chi_square_uniformity(uniform_ranks, L)
        assert result.p_value > 0.001
        assert not result.rejects()

    def test_degenerate_ranks_rejected(self, degenerate_ranks):
        result = chi_square_uniformity(degenerate_ranks, L)
        assert result.rejects(alpha=1e-6)

    def test_uneven_bins_keep_total_expected_mass(self):
        # L + 1 = 64 ranks over 7 bins: bins straddle rank boundaries,
        # but the test must stay exact (statistic 0 for a perfectly
        # balanced sample replicated over every rank).
        ranks = np.tile(np.arange(L + 1), 5)
        result = chi_square_uniformity(ranks, L, n_bins=7)
        assert result.statistic == pytest.approx(0.0, abs=1e-9)
        assert result.p_value == pytest.approx(1.0)


class TestEcdfEnvelope:
    def test_uniform_ranks_within_band(self, uniform_ranks):
        result = ecdf_envelope(uniform_ranks, L)
        assert result.within

    def test_degenerate_ranks_outside_band(self, degenerate_ranks):
        result = ecdf_envelope(degenerate_ranks, L)
        assert not result.within

    def test_envelope_shrinks_with_samples(self):
        small = ecdf_envelope([1, 2, 3], L).envelope
        large = ecdf_envelope(list(range(60)), L).envelope
        assert large < small

    def test_alpha_validated(self, uniform_ranks):
        with pytest.raises(ValueError):
            ecdf_envelope(uniform_ranks, L, alpha=0.0)


class TestUniformityReport:
    def test_calibrated_requires_both_checks(self, uniform_ranks,
                                             degenerate_ranks):
        assert uniformity_report("omega", uniform_ranks, L).calibrated
        assert not uniformity_report("omega", degenerate_ranks, L).calibrated

    def test_to_dict_is_json_ready(self, uniform_ranks):
        import json

        payload = uniformity_report("beta", uniform_ranks, L).to_dict()
        assert payload["quantity"] == "beta"
        assert set(payload) == {
            "quantity", "chi_square", "ecdf", "n_samples", "calibrated"
        }
        json.dumps(payload)  # must not raise
