"""Dtype-following regression tests for the hot kernels.

The backend port removed hard-coded ``dtype=float`` casts from the
uniform→variate layer, the batch root finders and the segment
reductions: dtypes now follow the inputs (float32 in ⇒ float32 out),
with ints/bools promoting to float64. These tests pin both directions
so a future edit cannot quietly reintroduce an upcast."""

import numpy as np

from repro.backend.core import as_float
from repro.stats.gamma_dist import gamma_from_uniform
from repro.stats.rootfind import bisect_increasing_batch, solve_fixed_point_batch
from repro.stats.uniforms import segment_sums


class TestAsFloat:
    def test_float64_passthrough(self):
        x = np.arange(3.0)
        assert as_float(x).dtype == np.float64
        assert as_float(x) is not None

    def test_float32_preserved(self):
        assert as_float(np.arange(3, dtype=np.float32)).dtype == np.float32

    def test_int_and_bool_promote_to_float64(self):
        assert as_float(np.arange(3)).dtype == np.float64
        assert as_float(np.array([True, False])).dtype == np.float64

    def test_float64_values_bitwise_equal_to_old_cast(self):
        x = np.array([1, 2, 3])
        np.testing.assert_array_equal(
            as_float(x), np.asarray(x, dtype=float)
        )


class TestSegmentSumsDtype:
    # reduceat convention: offsets mark segment starts only, so the
    # last segment runs to the end of `values`.
    def test_float64_in_float64_out(self):
        out = segment_sums(np.arange(6.0), np.array([0, 2, 4]))
        assert out.dtype == np.float64

    def test_float32_in_float32_out(self):
        out = segment_sums(
            np.arange(6, dtype=np.float32), np.array([0, 2, 4])
        )
        assert out.dtype == np.float32

    def test_int_in_float64_out(self):
        out = segment_sums(np.arange(6), np.array([0, 2, 4]))
        assert out.dtype == np.float64


class TestVariateLayerDtype:
    def test_gamma_from_uniform_float64(self):
        shape = np.full(8, 3.0)
        u = np.linspace(0.1, 0.9, 8)
        assert gamma_from_uniform(shape, u).dtype == np.float64


class TestRootfindDtype:
    def test_bisect_float64_in_float64_out(self):
        lo = np.zeros(4)
        hi = np.full(4, 10.0)
        target = np.array([1.0, 2.0, 3.0, 4.0])
        roots = bisect_increasing_batch(lambda x: x - target, lo, hi)
        assert roots.dtype == np.float64
        np.testing.assert_allclose(roots, target, atol=1e-9)

    def test_fixed_point_float64_in_float64_out(self):
        x0 = np.full(3, 1.0)
        res = solve_fixed_point_batch(
            lambda x: 0.5 * (x + 2.0 / x), x0, rtol=1e-12, max_iter=100
        )
        assert res.values.dtype == np.float64
        np.testing.assert_allclose(res.values, np.sqrt(2.0), rtol=1e-10)
