"""Portable-vs-NumPy agreement for every ported kernel.

The ``portable`` backend executes the generic accelerator code shape
(full-width ``where`` masking, scatter segment reductions, emulated
``gammaincinv``) on NumPy arrays, so these tests exercise the exact
code path a jax/cupy adapter runs — without needing either installed.
Tolerances here mirror the committed ``BENCH_backend.json`` bounds."""

import numpy as np
import pytest

from repro import backend as bk
from repro.backend.core import make_generic_gammaincinv
from repro.bayes.priors import GammaPrior, ModelPrior
from repro.core.config import VBConfig
from repro.core.vb2 import fit_vb2
from repro.data.failure_data import FailureTimeData, GroupedData
from repro.exceptions import BackendUnavailableError
from repro.stats.gamma_dist import GammaDistribution, gamma_from_uniform
from repro.stats.mixtures import (
    MixtureDistribution,
    mixture_cdf_grid,
    mixture_pdf_grid,
    mixture_ppf_batch,
)
from repro.stats.special import log_sum_exp_stream
from repro.stats.uniforms import segment_sums


@pytest.fixture(scope="module")
def P():
    return bk.get_backend("portable")


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(20260809)


class TestGammaincinvEmulation:
    def test_matches_scipy_across_shapes(self, P):
        from repro.backend import special as sc

        inv = make_generic_gammaincinv(
            np, sc.gammainc, sc.gammaln, sc.ndtri, gammaincc=sc.gammaincc
        )
        a = np.concatenate([
            np.geomspace(0.3, 5000.0, 200),
            np.full(7, 1.0),
        ])
        q = np.linspace(1e-12, 1.0 - 1e-12, a.size)
        got = inv(a, q)
        want = sc.gammaincinv(a, q)
        rel = np.abs(got - want) / np.where(want > 0, want, 1.0)
        assert float(np.max(rel)) < 1e-12

    def test_boundaries(self, P):
        assert float(P.gammaincinv(2.0, np.array([0.0]))[0]) == 0.0
        assert np.isinf(float(P.gammaincinv(2.0, np.array([1.0]))[0]))


class TestSegmentReductions:
    def test_log_sum_exp_stream_identical(self, P, rng):
        values = rng.normal(scale=40.0, size=500)
        starts = np.array([0, 3, 3, 100, 101, 499])
        ref = log_sum_exp_stream(values, starts)
        got = P.log_sum_exp_stream(values, starts)
        np.testing.assert_allclose(got, ref, rtol=0, atol=1e-12)
        # Empty segment semantics match: -inf, not a misread slice.
        assert got[1] == ref[1] == -np.inf

    def test_segment_sums_close(self, P, rng):
        # reduceat convention: offsets mark segment starts only (no
        # trailing end), strictly increasing.
        values = rng.normal(size=300)
        offsets = np.array([0, 10, 150, 290])
        ref = segment_sums(values, offsets)
        got = P.segment_sums(values, offsets)
        np.testing.assert_allclose(got, ref, rtol=1e-13, atol=1e-13)


class TestVariateLayer:
    def test_gamma_from_uniform_agrees(self, P, rng):
        shape = rng.uniform(0.5, 80.0, 4000)
        u = rng.random(4000)
        ref = gamma_from_uniform(shape, u)
        got = P.to_numpy(
            gamma_from_uniform(P.asarray(shape), P.asarray(u))
        )
        rel = np.abs(got - ref) / np.where(ref > 0, ref, 1.0)
        assert float(np.max(rel)) < 1e-9


class TestMixtureKernels:
    @pytest.fixture(scope="class")
    def mixture(self):
        gen = np.random.default_rng(7)
        comps = [
            GammaDistribution(shape=s, rate=r)
            for s, r in zip(gen.uniform(1, 60, 50), gen.uniform(0.5, 3, 50))
        ]
        return MixtureDistribution(comps, gen.uniform(0.1, 1.0, 50))

    def test_pdf_cdf_bit_close(self, P, mixture):
        x = np.linspace(0.01, 80.0, 400)
        a, b, w, log_w = mixture._backend_params(P)
        pdf = mixture_pdf_grid(P, a, b, log_w, x)
        cdf = mixture_cdf_grid(P, a, b, w, x)
        np.testing.assert_allclose(pdf, mixture.pdf(x), rtol=1e-12)
        np.testing.assert_allclose(cdf, mixture.cdf(x), rtol=1e-12)

    def test_ppf_agrees(self, P, mixture):
        q = np.linspace(0.005, 0.995, 199)
        a, b, w, _ = mixture._backend_params(P)
        got = mixture_ppf_batch(P, a, b, w, q)
        ref = mixture.ppf(q)
        rel = np.abs(got - ref) / ref
        assert float(np.max(rel)) < 1e-8

    def test_dispatch_via_default_override(self, mixture):
        x = np.linspace(0.5, 40.0, 50)
        ref_pdf = mixture.pdf(x)
        ref_ppf = mixture.ppf(np.array([0.1, 0.5, 0.9]))
        prev = bk.set_default_backend("portable")
        try:
            got_pdf = mixture.pdf(x)
            got_ppf = mixture.ppf(np.array([0.1, 0.5, 0.9]))
        finally:
            bk.set_default_backend(prev)
        np.testing.assert_allclose(got_pdf, ref_pdf, rtol=1e-12)
        np.testing.assert_allclose(got_ppf, ref_ppf, rtol=1e-8)


class TestEndToEndFit:
    @pytest.fixture(scope="class")
    def prior(self):
        return ModelPrior(
            omega=GammaPrior(2.0, 0.1), beta=GammaPrior(2.0, 10.0)
        )

    @pytest.fixture(scope="class")
    def times_data(self):
        gen = np.random.default_rng(42)
        return FailureTimeData(
            times=np.sort(gen.uniform(0, 100, 25)), horizon=110.0
        )

    @pytest.fixture(scope="class")
    def grouped_data(self):
        return GroupedData(
            counts=[3, 5, 7, 4, 2, 1],
            boundaries=[10, 20, 30, 40, 50, 60],
        )

    @pytest.mark.parametrize("alpha0", [2.0])
    def test_times_fit_agrees(self, prior, times_data, alpha0):
        ref = fit_vb2(times_data, prior, alpha0=alpha0)
        got = fit_vb2(
            times_data, prior, alpha0=alpha0,
            config=VBConfig(backend="portable"),
        )
        assert got.diagnostics["backend"] == "portable"
        assert ref.diagnostics["backend"] == "numpy"
        assert got.diagnostics["nmax"] == ref.diagnostics["nmax"]
        np.testing.assert_allclose(
            got.weights, ref.weights, rtol=0, atol=1e-12
        )
        assert abs(got.elbo - ref.elbo) < 1e-9

    @pytest.mark.parametrize("alpha0", [1.0, 2.0])
    def test_grouped_fit_agrees(self, prior, grouped_data, alpha0):
        ref = fit_vb2(grouped_data, prior, alpha0=alpha0)
        got = fit_vb2(
            grouped_data, prior, alpha0=alpha0,
            config=VBConfig(backend="portable"),
        )
        assert got.diagnostics["nmax"] == ref.diagnostics["nmax"]
        np.testing.assert_allclose(
            got.weights, ref.weights, rtol=0, atol=1e-12
        )
        assert abs(got.elbo - ref.elbo) < 1e-9

    def test_missing_adapter_is_backend_unavailable(self, prior, times_data):
        if bk.available_backends()["jax"]:
            pytest.skip("jax installed in this environment")
        with pytest.raises(BackendUnavailableError):
            fit_vb2(
                times_data, prior, alpha0=2.0,
                config=VBConfig(backend="jax"),
            )

    def test_warm_start_rejected_off_numpy(self, prior, times_data):
        from repro.core.warmstart import warm_start_from

        ref = fit_vb2(times_data, prior, alpha0=2.0)
        warm = warm_start_from(ref)
        with pytest.raises(ValueError, match="warm_start"):
            fit_vb2(
                times_data, prior, alpha0=2.0,
                config=VBConfig(backend="portable", warm_start=warm),
            )

    def test_scalar_solver_rejected_off_numpy(self, prior, times_data):
        with pytest.raises(ValueError, match="batched_solver"):
            fit_vb2(
                times_data, prior, alpha0=2.0,
                config=VBConfig(backend="portable", batched_solver=False),
            )

    def test_numpy_only_fitters_reject_backend(self, prior, times_data):
        from repro.core.fleet import fit_vb1_fleet, fit_vb2_fleet
        from repro.core.vb1 import fit_vb1

        cfg = VBConfig(backend="portable")
        with pytest.raises(ValueError, match="NumPy"):
            fit_vb1(times_data, prior, alpha0=2.0, config=cfg)
        with pytest.raises(ValueError, match="NumPy"):
            fit_vb2_fleet([times_data], prior, alpha0=2.0, config=cfg)
        with pytest.raises(ValueError, match="NumPy"):
            fit_vb1_fleet([times_data], prior, alpha0=2.0, config=cfg)
