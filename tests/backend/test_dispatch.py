"""Tests for the array-backend dispatch layer (registry, namespace
resolution, availability gating, and VBConfig integration)."""

import numpy as np
import pytest

from repro import backend as bk
from repro.backend import BackendUnavailableError
from repro.backend.core import KNOWN_BACKENDS, SPECIAL_NAMES, ArrayBackend
from repro.core.config import VBConfig


class TestRegistry:
    def test_numpy_and_portable_always_available(self):
        avail = bk.available_backends()
        assert avail["numpy"] is True
        assert avail["portable"] is True

    def test_known_backends_are_the_registry_keys(self):
        assert set(bk.available_backends()) == set(KNOWN_BACKENDS)

    def test_get_backend_returns_singletons(self):
        assert bk.get_backend("numpy") is bk.get_backend("numpy")
        assert bk.get_backend("portable") is bk.get_backend("portable")

    def test_unknown_name_raises_backend_unavailable(self):
        with pytest.raises(BackendUnavailableError) as exc:
            bk.get_backend("tensorflow")
        assert "tensorflow" in str(exc.value)

    def test_missing_adapter_raises_informative_error(self):
        # The container has neither jax nor cupy; the error must name
        # the backend and hint at installation, not traceback through
        # an ImportError.
        for name in ("jax", "cupy"):
            if bk.available_backends()[name]:
                pytest.skip(f"{name} installed in this environment")
            with pytest.raises(BackendUnavailableError) as exc:
                bk.get_backend(name)
            assert name in str(exc.value)
            assert exc.value.backend == name
            assert "install" in str(exc.value)

    def test_backend_exposes_all_special_names(self):
        for name in ("numpy", "portable"):
            B = bk.get_backend(name)
            for fn in SPECIAL_NAMES:
                assert callable(getattr(B, fn)), (name, fn)


class TestNamespaceResolution:
    def test_numpy_arrays_resolve_to_default(self):
        B = bk.get_namespace(np.arange(3.0))
        assert B.is_numpy
        assert B.name == "numpy"

    def test_scalars_resolve_to_default(self):
        assert bk.get_namespace(1.0, 2).name == "numpy"

    def test_default_override_roundtrip(self):
        prev = bk.set_default_backend("portable")
        try:
            assert bk.default_namespace().name == "portable"
            assert bk.get_namespace(np.arange(3.0)).name == "portable"
        finally:
            bk.set_default_backend(prev)
        assert bk.default_namespace().name == "numpy"

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "portable")
        assert bk.default_namespace().name == "portable"

    def test_env_var_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "not-a-backend")
        with pytest.raises(BackendUnavailableError):
            bk.default_namespace()

    def test_set_default_backend_validates_eagerly(self):
        with pytest.raises(BackendUnavailableError):
            bk.set_default_backend("not-a-backend")

    def test_resolve_backend_passthrough_and_none(self):
        B = bk.get_backend("portable")
        assert bk.resolve_backend(B) is B
        assert bk.resolve_backend(None).name == bk.default_namespace().name
        assert bk.resolve_backend("numpy").is_numpy

    def test_require_numpy_backend(self):
        bk.require_numpy_backend(None, feature="f")
        bk.require_numpy_backend("numpy", feature="f")
        with pytest.raises(ValueError, match="fit_vb1.*portable"):
            bk.require_numpy_backend("portable", feature="fit_vb1")
        # Naming an uninstalled adapter is a ValueError too (the path
        # could not use it regardless of availability).
        with pytest.raises(ValueError, match="jax"):
            bk.require_numpy_backend("jax", feature="fit_vb1")


class TestPortableBackend:
    def test_portable_runs_on_numpy_but_is_not_numpy(self):
        P = bk.get_backend("portable")
        assert isinstance(P, ArrayBackend)
        assert P.xp is np
        assert not P.is_numpy

    def test_as_float_promotes_ints_keeps_floats(self):
        P = bk.get_backend("portable")
        assert P.as_float(np.arange(3)).dtype == np.float64
        assert P.as_float(np.arange(3, dtype=np.float32)).dtype == np.float32


class TestVBConfigBackend:
    def test_default_is_none(self):
        assert VBConfig().backend is None

    def test_valid_names_accepted_without_importing_adapters(self):
        # Constructing the config must not require jax/cupy: the
        # adapter import is deferred to fit time.
        for name in KNOWN_BACKENDS:
            assert VBConfig(backend=name).backend == name

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            VBConfig(backend="tensorflow")

    def test_backend_in_canonical(self):
        assert VBConfig().canonical()["backend"] is None
        assert VBConfig(backend="numpy").canonical()["backend"] == "numpy"
