"""Lint-style test: exactly one module imports scipy.special.

Every other module must go through the shim
(``from repro.backend import special as sc``) so that the set of
special functions the package depends on stays auditable — it is the
contract each accelerator adapter has to satisfy."""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: The single allowed import site.
ALLOWED = SRC / "backend" / "special.py"

_IMPORT_RE = re.compile(
    r"^\s*(from\s+scipy\s+import\s+special|"
    r"from\s+scipy\.special\s+import|"
    r"import\s+scipy\.special)",
    re.MULTILINE,
)


def test_only_the_shim_imports_scipy_special():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path == ALLOWED:
            continue
        if _IMPORT_RE.search(path.read_text()):
            offenders.append(str(path.relative_to(SRC)))
    assert offenders == [], (
        "scipy.special imported outside repro/backend/special.py: "
        f"{offenders}; import the shim instead "
        "(from repro.backend import special as sc)"
    )


def test_the_shim_itself_does_import_scipy_special():
    assert _IMPORT_RE.search(ALLOWED.read_text())
