"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.command == "table1"
        assert args.scale == "quick"

    def test_scale_flag(self):
        parser = build_parser()
        args = parser.parse_args(["table7", "--scale", "paper"])
        assert args.scale == "paper"

    def test_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table99"])

    def test_fit_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fit", "--data", "x.csv", "--kind", "grouped", "--method", "vb1"]
        )
        assert args.command == "fit"
        assert args.method == "vb1"

    def test_simulate_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(
            ["simulate", "--omega", "40", "--beta", "1e-5", "--horizon", "1e5"]
        )
        assert args.command == "simulate"
        assert args.omega == 40.0


class TestMain:
    def test_table7_runs(self, capsys):
        # Table 7 is VB2-only and fast at small nmax values; patching the
        # default values keeps the test quick.
        import repro.experiments.table67 as table67

        original = table67.DEFAULT_NMAX_VALUES
        table67.DEFAULT_NMAX_VALUES = (50, 100)
        try:
            exit_code = main(["table7"])
        finally:
            table67.DEFAULT_NMAX_VALUES = original
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Table 7" in captured.out
        assert "Pv(nmax)" in captured.out

    def test_figure1_with_csv_export(self, capsys, tmp_path, monkeypatch):
        import repro.experiments.figure1 as figure1_module
        from repro.experiments.config import ExperimentScale
        from repro.bayes.mcmc.chains import ChainSettings

        tiny = ExperimentScale(
            mcmc=ChainSettings(n_samples=300, burn_in=100, thin=1, seed=3),
            nint_resolution=81,
        )
        original_run = figure1_module.run

        def tiny_run(scale=None, **kwargs):
            return original_run(scale=tiny, grid_size=20, scatter_points=200)

        monkeypatch.setattr(figure1_module, "run", tiny_run)
        exit_code = main(["figure1", "--out", str(tmp_path / "fig")])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "CSV written" in captured.out
        assert (tmp_path / "fig" / "figure1_axes.csv").exists()

    def test_simulate_then_fit_roundtrip(self, capsys, tmp_path):
        csv_path = tmp_path / "sim.csv"
        exit_code = main(
            ["simulate", "--omega", "60", "--beta", "0.1",
             "--horizon", "30", "--seed", "3", "--out", str(csv_path)]
        )
        assert exit_code == 0
        assert csv_path.exists()
        capsys.readouterr()

        exit_code = main(
            ["fit", "--data", str(csv_path), "--kind", "times",
             "--horizon", "30",
             "--omega-mean", "55", "--omega-std", "25",
             "--beta-mean", "0.1", "--beta-std", "0.06",
             "--predict", "2.0"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "VB2" in captured.out
        assert "omega" in captured.out
        assert "predictive failures" in captured.out

    def test_fit_flat_prior(self, capsys, tmp_path):
        csv_path = tmp_path / "sim.csv"
        main(["simulate", "--omega", "60", "--beta", "0.1",
              "--horizon", "30", "--seed", "4", "--out", str(csv_path)])
        capsys.readouterr()
        exit_code = main(
            ["fit", "--data", str(csv_path), "--horizon", "30",
             "--method", "laplace"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "LAPL" in captured.out

    def test_fit_grouped_csv(self, capsys, tmp_path):
        from repro.data.datasets import system17_grouped
        from repro.data.io import save_grouped_csv

        csv_path = tmp_path / "grouped.csv"
        save_grouped_csv(system17_grouped(), csv_path)
        exit_code = main(
            ["fit", "--data", str(csv_path), "--kind", "grouped",
             "--omega-mean", "50", "--omega-std", "15.8",
             "--beta-mean", "0.033", "--beta-std", "0.011"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "VB2" in captured.out
        assert "Cov(omega, beta)" in captured.out

    def test_fit_partial_prior_rejected(self, capsys, tmp_path):
        csv_path = tmp_path / "sim.csv"
        main(["simulate", "--omega", "60", "--beta", "0.1",
              "--horizon", "30", "--out", str(csv_path)])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["fit", "--data", str(csv_path), "--omega-mean", "50"])


class TestCacheCommands:
    def _simulate(self, tmp_path, capsys):
        csv_path = tmp_path / "sim.csv"
        main(["simulate", "--omega", "60", "--beta", "0.1",
              "--horizon", "30", "--seed", "3", "--out", str(csv_path)])
        capsys.readouterr()
        return csv_path

    def _fit_args(self, csv_path, cache_dir):
        return ["fit", "--data", str(csv_path), "--kind", "times",
                "--horizon", "30",
                "--omega-mean", "55", "--omega-std", "25",
                "--beta-mean", "0.1", "--beta-std", "0.06",
                "--cache-dir", str(cache_dir)]

    def test_fit_cache_miss_then_hit(self, capsys, tmp_path):
        csv_path = self._simulate(tmp_path, capsys)
        cache_dir = tmp_path / "pcache"

        assert main(self._fit_args(csv_path, cache_dir)) == 0
        first = capsys.readouterr().out
        assert "cache: miss" in first

        assert main(self._fit_args(csv_path, cache_dir)) == 0
        second = capsys.readouterr().out
        assert "cache: hit (disk)" in second
        # identical posterior output, modulo the cache line itself
        strip = lambda out: [l for l in out.splitlines() if "cache:" not in l]
        assert strip(first) == strip(second)

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        import json

        csv_path = self._simulate(tmp_path, capsys)
        cache_dir = tmp_path / "pcache"
        main(self._fit_args(csv_path, cache_dir))
        capsys.readouterr()

        assert main(["cache", "stats", str(cache_dir)]) == 0
        text = capsys.readouterr().out
        assert "1" in text

        assert main(
            ["cache", "stats", str(cache_dir), "--format", "json"]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["disk_bytes"] > 0

        assert main(["cache", "clear", str(cache_dir)]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_cache_dir_requires_vb_method(self, capsys, tmp_path):
        csv_path = self._simulate(tmp_path, capsys)
        with pytest.raises(SystemExit):
            main(["fit", "--data", str(csv_path), "--horizon", "30",
                  "--method", "laplace", "--cache-dir", str(tmp_path / "c")])
