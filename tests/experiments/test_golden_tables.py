"""Tier-2 golden-value regressions against the Table 1-5 outputs.

``tests/fixtures/golden_tables.json`` pins the reference run recorded
in ``benchmarks/results/table[1-5].txt`` (regenerate the fixture with
``benchmarks/build_golden_fixture.py``). These tests refit every
method at QUICK_SCALE and assert the statistics still match.

Tolerance rationale (measured worst-case deviations in parentheses):

* NINT / LAPL / VB1 / VB2 are deterministic and scale-independent —
  QUICK_SCALE only shortens the MCMC schedule and the NINT grid, and
  the 161-point grid reproduces the 321-point values to <0.4%. The
  binding error is the 3-5 significant digits of the rendered tables,
  so ``rel=0.01`` (measured <= 0.004).
* MCMC runs a 4x shorter chain at QUICK_SCALE, so its Monte-Carlo
  error dominates: ``rel=0.30`` for moments (measured 0.145),
  ``rel=0.20`` for interval endpoints (measured 0.119) and
  ``rel=0.08`` for the bounded reliability quantities (measured
  0.036). These still pin MCMC to the right scale and sign.
* VB1's ``Cov(omega,beta)`` is exactly 0 by construction (the
  factorised posterior); it is asserted absolutely.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import QUICK_SCALE, paper_scenarios, run_all_methods
from repro.experiments.table23 import interval_summary
from repro.experiments.table45 import run as run_reliability

FIXTURE = Path(__file__).resolve().parent.parent / "fixtures" / \
    "golden_tables.json"

_REL = {"NINT": 0.01, "LAPL": 0.01, "VB1": 0.01, "VB2": 0.01, "MCMC": 0.30}
_REL_INTERVALS = {**_REL, "MCMC": 0.20}
_REL_RELIABILITY = {**_REL, "MCMC": 0.08}

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def quick_results():
    return {
        name: run_all_methods(scenario, scale=QUICK_SCALE)
        for name, scenario in paper_scenarios().items()
    }


@pytest.mark.parametrize(
    "scenario", ["DT-Info", "DT-NoInfo", "DG-Info", "DG-NoInfo"]
)
def test_table1_moments(golden, quick_results, scenario):
    moments = quick_results[scenario].moments()
    for method, reference in golden["moments"][scenario].items():
        for key, value in reference.items():
            current = moments[method][key]
            if value == 0.0:
                assert current == pytest.approx(0.0, abs=1e-9), \
                    f"{scenario}/{method}/{key}"
            else:
                assert current == pytest.approx(value, rel=_REL[method]), \
                    f"{scenario}/{method}/{key}"


@pytest.mark.parametrize(
    "scenario", ["DT-Info", "DT-NoInfo", "DG-Info", "DG-NoInfo"]
)
def test_tables2_3_interval_endpoints(golden, quick_results, scenario):
    summary = interval_summary(quick_results[scenario])
    for method, reference in golden["intervals"][scenario].items():
        for key, value in reference.items():
            assert summary[method][key] == pytest.approx(
                value, rel=_REL_INTERVALS[method]
            ), f"{scenario}/{method}/{key}"


@pytest.mark.parametrize("view", ["DT", "DG"])
def test_tables4_5_reliability(golden, view):
    _, rows = run_reliability(view, scale=QUICK_SCALE)
    reference = golden["reliability"][f"{view}-Info"]
    seen = set()
    for row in rows:
        expected = reference[str(row.u)][row.method]
        seen.add((str(row.u), row.method))
        for key in ("point", "lower", "upper"):
            assert getattr(row, key) == pytest.approx(
                expected[key], rel=_REL_RELIABILITY[row.method]
            ), f"{view}/u={row.u}/{row.method}/{key}"
    # Every pinned (window, method) cell must have been produced.
    assert seen == {
        (u, method) for u, methods in reference.items() for method in methods
    }


def test_fixture_matches_rendered_tables():
    # The checked-in fixture must stay in sync with the txt outputs it
    # was parsed from; regenerating must be a no-op.
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "build_golden_fixture",
        FIXTURE.parent.parent.parent / "benchmarks" /
        "build_golden_fixture.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.build() == json.loads(FIXTURE.read_text())
