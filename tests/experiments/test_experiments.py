"""Tests for the experiment harness (scenarios, runner, tables, figure)."""

import numpy as np
import pytest

from repro.bayes.mcmc.chains import ChainSettings
from repro.experiments import figure1, table1, table23, table45, table67
from repro.experiments.config import (
    ExperimentScale,
    PAPER_SCALE,
    QUICK_SCALE,
    paper_scenarios,
)
from repro.experiments.runner import METHOD_ORDER, run_all_methods


TINY_SCALE = ExperimentScale(
    mcmc=ChainSettings(n_samples=800, burn_in=300, thin=1, seed=4),
    nint_resolution=81,
    label="tiny",
)


@pytest.fixture(scope="module")
def dt_info_results():
    return run_all_methods(paper_scenarios()["DT-Info"], scale=TINY_SCALE)


class TestScenarios:
    def test_four_scenarios(self):
        scenarios = paper_scenarios()
        assert set(scenarios) == {"DT-Info", "DT-NoInfo", "DG-Info", "DG-NoInfo"}

    def test_info_priors_match_paper(self):
        scenario = paper_scenarios()["DT-Info"]
        prior = scenario.prior()
        assert prior.omega.mean == pytest.approx(50.0)
        assert prior.omega.std == pytest.approx(15.8)
        assert prior.beta.mean == pytest.approx(1.0e-5)
        grouped = paper_scenarios()["DG-Info"].prior()
        assert grouped.beta.mean == pytest.approx(3.3e-2)

    def test_noinfo_priors_flat(self):
        prior = paper_scenarios()["DT-NoInfo"].prior()
        assert not prior.is_proper

    def test_reliability_windows(self):
        scenarios = paper_scenarios()
        assert scenarios["DT-Info"].reliability_windows == (1000.0, 10000.0)
        assert scenarios["DG-Info"].reliability_windows == (1.0, 5.0)

    def test_is_grouped_flag(self):
        scenarios = paper_scenarios()
        assert scenarios["DG-Info"].is_grouped
        assert not scenarios["DT-Info"].is_grouped

    def test_paper_scale_matches_paper_schedule(self):
        assert PAPER_SCALE.mcmc.n_samples == 20_000
        assert PAPER_SCALE.mcmc.burn_in == 10_000
        assert PAPER_SCALE.mcmc.thin == 10


class TestRunner:
    def test_all_methods_present_in_order(self, dt_info_results):
        assert tuple(dt_info_results.posteriors) == METHOD_ORDER

    def test_timings_recorded(self, dt_info_results):
        assert set(dt_info_results.seconds) == set(METHOD_ORDER)
        assert all(t >= 0.0 for t in dt_info_results.seconds.values())

    def test_vb2_cost_recorded(self, dt_info_results):
        # The VB2-vs-MCMC cost claim is asserted at realistic scale in
        # benchmarks/bench_table6.py / bench_table7.py; at this test's
        # tiny MCMC schedule the comparison would be noise.
        assert dt_info_results.seconds["VB2"] > 0.0

    def test_moments_table_structure(self, dt_info_results):
        moments = dt_info_results.moments()
        assert set(moments) == set(METHOD_ORDER)
        for row in moments.values():
            assert set(row) == set(table1.QUANTITIES)

    def test_method_subset(self):
        results = run_all_methods(
            paper_scenarios()["DT-Info"], scale=TINY_SCALE, methods=("VB2", "VB1")
        )
        assert tuple(results.posteriors) == ("VB1", "VB2")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            run_all_methods(
                paper_scenarios()["DT-Info"], scale=TINY_SCALE, methods=("XYZ",)
            )


class TestTableRendering:
    def test_table1_render(self, dt_info_results):
        text = table1.render({"DT-Info": dt_info_results})
        assert "Table 1" in text
        assert "NINT" in text and "VB2" in text
        assert "%" in text  # relative deviations present

    def test_table23_interval_summary(self, dt_info_results):
        summary = table23.interval_summary(dt_info_results)
        for method, values in summary.items():
            assert values["omega_lower"] < values["omega_upper"]
            if method != "LAPL":
                assert values["beta_lower"] > 0.0

    def test_table23_render(self, dt_info_results):
        text = table23.render({"DT-Info": dt_info_results}, table_number=2)
        assert "Table 2" in text

    def test_table23_view_validation(self):
        with pytest.raises(ValueError):
            table23.run("DX")

    def test_table45_rows(self):
        _, rows = table45.run("DT", scale=TINY_SCALE)
        assert len(rows) == 2 * len(METHOD_ORDER)
        for row in rows:
            assert row.lower < row.point
        text = table45.render(rows, table_number=4, unit="s")
        assert "reliability" in text

    def test_table67_runs(self):
        tiny_mcmc = ExperimentScale(
            mcmc=ChainSettings(n_samples=200, burn_in=100, thin=1, seed=5),
            nint_resolution=81,
        )
        rows6 = table67.run_table6(scale=tiny_mcmc)
        assert len(rows6) == 2
        assert rows6[0].variate_count == 3 * tiny_mcmc.mcmc.total_iterations
        rows7 = table67.run_table7(nmax_values=(100, 200))
        assert len(rows7) == 4
        # Tail mass decreases with nmax for each scenario.
        assert rows7[1].tail_mass < rows7[0].tail_mass
        text6 = table67.render_table6(rows6)
        text7 = table67.render_table7(rows7)
        assert "MCMC" in text6
        assert "VB2" in text7


class TestFigure1:
    def test_figure_data(self, tmp_path):
        figure = figure1.run(scale=TINY_SCALE, grid_size=24, scatter_points=500)
        assert set(figure.densities) == {"NINT", "LAPL", "VB1", "VB2"}
        for density in figure.densities.values():
            assert density.shape == (24, 24)
            assert np.all(density >= 0.0)
        assert figure.mcmc_scatter.shape == (500, 2)
        text = figure1.render_ascii(figure, width=30, height=10)
        assert "NINT" in text and "VB2" in text
        paths = figure1.save_csv(figure, tmp_path)
        assert all(p.exists() for p in paths)
