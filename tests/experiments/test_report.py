"""Tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.bayes.mcmc.chains import ChainSettings
from repro.experiments.config import ExperimentScale
from repro.experiments.report import (
    PAPER_TABLE1_DEVIATIONS,
    PAPER_TABLE6,
    build_report,
)


@pytest.fixture(scope="module")
def report_text():
    tiny = ExperimentScale(
        mcmc=ChainSettings(n_samples=600, burn_in=200, thin=1, seed=8),
        nint_resolution=81,
        label="tiny",
    )
    return build_report(scale=tiny, table7_nmax=(50, 100))


class TestPaperReferenceData:
    def test_scenarios_covered(self):
        assert set(PAPER_TABLE1_DEVIATIONS) == {"DT-Info", "DG-Info", "DT-NoInfo"}
        for rows in PAPER_TABLE1_DEVIATIONS.values():
            assert set(rows) == {"LAPL", "MCMC", "VB1", "VB2"}
            for deviations in rows.values():
                assert len(deviations) == 5

    def test_paper_variate_counts(self):
        assert PAPER_TABLE6["DT-Info"][0] == 630_000
        assert PAPER_TABLE6["DG-Info"][0] == 8_610_000


class TestBuildReport:
    def test_all_sections_present(self, report_text):
        for heading in (
            "# EXPERIMENTS",
            "## Table 1",
            "## Tables 2–3",
            "## Tables 4–5",
            "## Tables 6–7",
            "## Figure 1",
            "## DG-NoInfo",
        ):
            assert heading in report_text

    def test_paper_vs_ours_cells(self, report_text):
        # Every Table 1 cell pairs a paper value with a measured one.
        assert "% / " in report_text
        # Known paper values appear verbatim.
        assert "+100.0%" in report_text  # VB1's covariance deviation
        assert "630,000" in report_text

    def test_markdown_tables_well_formed(self, report_text):
        lines = report_text.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("|") and set(line) <= {"|", "-", " "}:
                header = lines[i - 1]
                assert header.count("|") == line.count("|"), (
                    f"separator mismatch near line {i}"
                )

    def test_substitution_caveat_stated(self, report_text):
        assert "synthetic analogue" in report_text
