"""Shared fixtures for the test suite.

Expensive posterior fits are session-scoped: the suite reuses one fit
per (data view, prior) combination instead of re-fitting per test.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests without an installed package (e.g. a fresh
# checkout): put src/ on the path ahead of site-packages.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bayes.mcmc.chains import ChainSettings
from repro.bayes.nint import fit_nint
from repro.bayes.priors import ModelPrior
from repro.core.vb1 import fit_vb1
from repro.core.vb2 import fit_vb2
from repro.data.datasets import (
    ntds_failure_times,
    system17_failure_times,
    system17_grouped,
)


@pytest.fixture(scope="session")
def rng():
    """Deterministic generator for sampling tests."""
    return np.random.default_rng(123456)


@pytest.fixture(scope="session")
def times_data():
    """System 17 analogue, failure-time view."""
    return system17_failure_times()


@pytest.fixture(scope="session")
def grouped_data():
    """System 17 analogue, grouped view."""
    return system17_grouped()


@pytest.fixture(scope="session")
def ntds_data():
    """NTDS classic dataset."""
    return ntds_failure_times()


@pytest.fixture(scope="session")
def info_prior_times():
    """Paper's Info prior for the failure-time view."""
    return ModelPrior.informative(50.0, 15.8, 1.0e-5, 3.2e-6)


@pytest.fixture(scope="session")
def info_prior_grouped():
    """Paper's Info prior for the grouped view."""
    return ModelPrior.informative(50.0, 15.8, 3.3e-2, 1.1e-2)


@pytest.fixture(scope="session")
def flat_prior():
    """Paper's NoInfo prior."""
    return ModelPrior.noninformative()


@pytest.fixture(scope="session")
def vb2_times(times_data, info_prior_times):
    """VB2 posterior on DT-Info (shared)."""
    return fit_vb2(times_data, info_prior_times, alpha0=1.0)


@pytest.fixture(scope="session")
def vb2_grouped(grouped_data, info_prior_grouped):
    """VB2 posterior on DG-Info (shared)."""
    return fit_vb2(grouped_data, info_prior_grouped, alpha0=1.0)


@pytest.fixture(scope="session")
def vb1_times(times_data, info_prior_times):
    """VB1 posterior on DT-Info (shared)."""
    return fit_vb1(times_data, info_prior_times, alpha0=1.0)


@pytest.fixture(scope="session")
def nint_times(times_data, info_prior_times, vb2_times):
    """NINT posterior on DT-Info (shared)."""
    return fit_nint(
        times_data, info_prior_times, 1.0, reference_posterior=vb2_times,
        n_omega=201, n_beta=201,
    )


@pytest.fixture(scope="session")
def nint_grouped(grouped_data, info_prior_grouped, vb2_grouped):
    """NINT posterior on DG-Info (shared)."""
    return fit_nint(
        grouped_data, info_prior_grouped, 1.0, reference_posterior=vb2_grouped,
        n_omega=201, n_beta=201,
    )


@pytest.fixture(scope="session")
def quick_chain_settings():
    """Small but adequate MCMC schedule for tests."""
    return ChainSettings(n_samples=4000, burn_in=1500, thin=2, seed=99)
