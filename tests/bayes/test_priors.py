"""Tests for prior specification."""

import math

import numpy as np
import pytest

from repro.bayes.priors import (
    FlatPrior,
    GammaPrior,
    ModelPrior,
    ScaleInvariantPrior,
)
from repro.exceptions import PriorSpecificationError


class TestGammaPrior:
    def test_proper_prior_moments(self):
        prior = GammaPrior.from_mean_std(50.0, 15.8)
        assert prior.mean == pytest.approx(50.0)
        assert prior.std == pytest.approx(15.8)
        assert prior.is_proper

    def test_paper_info_priors_hyperparameters(self):
        # omega prior (50, 15.8): shape = (50/15.8)^2 ~ 10.01.
        prior = GammaPrior.from_mean_std(50.0, 15.8)
        assert prior.shape == pytest.approx(10.0157, rel=1e-3)
        assert prior.rate == pytest.approx(0.20031, rel=1e-3)

    def test_flat_prior(self):
        prior = FlatPrior()
        assert not prior.is_proper
        # p(x) propto 1: log density 0 everywhere on the support.
        assert prior.log_pdf(0.37) == 0.0
        assert prior.log_pdf(1234.5) == 0.0
        assert prior.log_pdf(-1.0) == -math.inf

    def test_scale_invariant_prior(self):
        prior = ScaleInvariantPrior()
        assert not prior.is_proper
        assert prior.log_pdf(2.0) == pytest.approx(-math.log(2.0))

    def test_improper_moments_raise(self):
        with pytest.raises(PriorSpecificationError):
            FlatPrior().mean
        with pytest.raises(PriorSpecificationError):
            FlatPrior().std
        with pytest.raises(PriorSpecificationError):
            FlatPrior().log_normaliser()

    def test_log_pdf_normalised_when_proper(self):
        prior = GammaPrior.from_mean_std(2.0, 1.0)
        x = np.linspace(1e-9, 30.0, 200_001)
        integral = np.trapezoid(np.exp(prior.log_pdf(x)), x)
        assert integral == pytest.approx(1.0, abs=1e-4)

    def test_invalid_hyperparameters(self):
        with pytest.raises(PriorSpecificationError):
            GammaPrior(shape=-1.0, rate=1.0)
        with pytest.raises(PriorSpecificationError):
            GammaPrior(shape=1.0, rate=-1.0)
        with pytest.raises(PriorSpecificationError):
            GammaPrior.from_mean_std(-1.0, 1.0)


class TestModelPrior:
    def test_informative_factory(self):
        prior = ModelPrior.informative(50.0, 15.8, 1e-5, 3.2e-6)
        assert prior.is_proper
        assert prior.omega.mean == pytest.approx(50.0)
        assert prior.beta.mean == pytest.approx(1e-5)

    def test_noninformative_factory(self):
        prior = ModelPrior.noninformative()
        assert not prior.is_proper
        assert prior.log_pdf(3.0, 4.0) == 0.0

    def test_joint_log_pdf_is_sum(self):
        prior = ModelPrior.informative(50.0, 15.8, 1e-5, 3.2e-6)
        assert prior.log_pdf(40.0, 1e-5) == pytest.approx(
            prior.omega.log_pdf(40.0) + prior.beta.log_pdf(1e-5)
        )
