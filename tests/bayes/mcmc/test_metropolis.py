"""Tests for the random-walk Metropolis fallback sampler."""

import numpy as np
import pytest

from repro.bayes.mcmc.chains import ChainSettings
from repro.bayes.mcmc.metropolis import random_walk_metropolis


class TestMetropolis:
    def test_agrees_with_gibbs_reference(
        self, times_data, info_prior_times, nint_times
    ):
        settings = ChainSettings(n_samples=6000, burn_in=3000, thin=3, seed=21)
        result = random_walk_metropolis(
            times_data, info_prior_times, settings=settings
        )
        posterior = result.posterior()
        assert posterior.mean("omega") == pytest.approx(
            nint_times.mean("omega"), rel=0.05
        )
        assert posterior.mean("beta") == pytest.approx(
            nint_times.mean("beta"), rel=0.05
        )

    def test_grouped_data_supported(self, grouped_data, info_prior_grouped):
        settings = ChainSettings(n_samples=2000, burn_in=1000, thin=2, seed=22)
        result = random_walk_metropolis(
            grouped_data, info_prior_grouped, settings=settings
        )
        posterior = result.posterior()
        assert 35.0 < posterior.mean("omega") < 55.0
        assert posterior.method_name == "MH"

    def test_acceptance_rate_reasonable_after_adaptation(
        self, times_data, info_prior_times
    ):
        settings = ChainSettings(n_samples=3000, burn_in=2000, thin=1, seed=23)
        result = random_walk_metropolis(
            times_data, info_prior_times, settings=settings
        )
        rate = result.extra["acceptance_rate"]
        assert 0.1 < rate < 0.6

    def test_all_samples_positive(self, times_data, info_prior_times):
        settings = ChainSettings(n_samples=500, burn_in=200, thin=1, seed=24)
        result = random_walk_metropolis(
            times_data, info_prior_times, settings=settings
        )
        assert np.all(result.samples > 0.0)

    def test_reproducible(self, times_data, info_prior_times):
        settings = ChainSettings(n_samples=300, burn_in=100, thin=1, seed=25)
        a = random_walk_metropolis(times_data, info_prior_times, settings=settings)
        b = random_walk_metropolis(times_data, info_prior_times, settings=settings)
        assert np.array_equal(a.samples, b.samples)
