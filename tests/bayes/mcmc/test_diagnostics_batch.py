"""Batched (stacked-array) entry points of the convergence diagnostics.

The batched paths process all chains of a multichain fit in one FFT /
one vectorized reduction. Multi-row FFTs are not bitwise equal to the
1-D transform, so the contract is: scalar 1-D results are unchanged
(legacy-exact), batched rows agree with the scalar path to ~1 ulp of
the FFT, and the *integer* decisions — Geyer truncation lags, window
sizes — are identical.
"""

import numpy as np
import pytest

from repro.bayes.mcmc.diagnostics import (
    autocorrelation,
    effective_sample_size,
    gelman_rubin,
    geweke_z,
)


@pytest.fixture(scope="module")
def stacked():
    rng = np.random.default_rng(2024)
    rows = []
    for rho, loc in [(0.0, 0.0), (0.5, 1.0), (0.9, -2.0), (0.99, 0.3)]:
        noise = rng.standard_normal(4_000)
        row = np.empty(4_000)
        row[0] = noise[0]
        for i in range(1, 4_000):
            row[i] = rho * row[i - 1] + np.sqrt(1.0 - rho**2) * noise[i]
        rows.append(row + loc)
    return np.stack(rows)


class TestBatchedAutocorrelation:
    def test_rows_match_scalar(self, stacked):
        batched = autocorrelation(stacked, max_lag=50)
        assert batched.shape == (4, 51)
        for row in range(4):
            scalar = autocorrelation(stacked[row], max_lag=50)
            np.testing.assert_allclose(batched[row], scalar, atol=1e-12)

    def test_lag_zero_rows_are_one(self, stacked):
        assert np.all(autocorrelation(stacked, max_lag=5)[:, 0] == 1.0)

    def test_constant_row_handled(self):
        chains = np.vstack([np.ones(64), np.random.default_rng(0).random(64)])
        rho = autocorrelation(chains, max_lag=8)
        assert rho[0, 0] == 1.0
        assert np.all(rho[0, 1:] == 0.0)


class TestBatchedESS:
    def test_rows_match_scalar(self, stacked):
        batched = effective_sample_size(stacked)
        assert batched.shape == (4,)
        for row in range(4):
            scalar = effective_sample_size(stacked[row])
            assert batched[row] == pytest.approx(scalar, rel=1e-9)

    def test_ordering_tracks_autocorrelation(self, stacked):
        # Rows are ordered by increasing rho, so ESS must decrease.
        batched = effective_sample_size(stacked)
        assert np.all(np.diff(batched) < 0.0)

    def test_short_rows(self):
        chains = np.arange(6.0).reshape(2, 3)
        assert np.array_equal(effective_sample_size(chains), [3.0, 3.0])


class TestBatchedGeweke:
    def test_rows_match_scalar(self, stacked):
        batched = geweke_z(stacked)
        assert batched.shape == (4,)
        for row in range(4):
            assert batched[row] == pytest.approx(
                geweke_z(stacked[row]), rel=1e-9, abs=1e-9
            )

    def test_constant_rows_give_zero(self):
        chains = np.vstack([np.full(200, 3.5), np.full(200, -1.0)])
        assert np.array_equal(geweke_z(chains), [0.0, 0.0])

    def test_fraction_validation_on_stacked_input(self, stacked):
        with pytest.raises(ValueError):
            geweke_z(stacked, first=0.7, last=0.5)


class TestGelmanRubinStacked:
    def test_array_equals_list(self, stacked):
        rows = [stacked[i] for i in range(stacked.shape[0])]
        assert gelman_rubin(stacked) == gelman_rubin(rows)

    def test_needs_two_rows(self, stacked):
        with pytest.raises(ValueError):
            gelman_rubin(stacked[:1])
