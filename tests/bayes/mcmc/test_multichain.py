"""Tests for the multi-chain MCMC workflow."""

import numpy as np
import pytest

from repro.bayes.mcmc.chains import ChainSettings
from repro.bayes.mcmc.gibbs_failure_time import gibbs_failure_time
from repro.bayes.mcmc.multichain import run_chains


@pytest.fixture(scope="module")
def multichain(times_data, info_prior_times):
    settings = ChainSettings(n_samples=1500, burn_in=500, thin=1)
    return run_chains(
        gibbs_failure_time,
        times_data,
        info_prior_times,
        n_chains=3,
        settings=settings,
        base_seed=100,
    )


class TestRunChains:
    def test_chain_count_and_independence(self, multichain):
        assert len(multichain.chains) == 3
        # Different seeds: chains differ.
        assert not np.array_equal(
            multichain.chains[0].samples, multichain.chains[1].samples
        )

    def test_converged_on_well_behaved_posterior(self, multichain):
        assert multichain.converged
        assert multichain.rhat["omega"] < 1.05
        assert multichain.rhat["beta"] < 1.05

    def test_ess_reported(self, multichain):
        assert multichain.ess["omega"] > 100.0
        assert multichain.ess["beta"] > 100.0

    def test_geweke_scores_per_chain(self, multichain):
        assert len(multichain.geweke["omega"]) == 3
        assert all(abs(z) < 5.0 for z in multichain.geweke["omega"])

    def test_pooled_posterior(self, multichain, nint_times):
        posterior = multichain.posterior()
        assert posterior.n_samples == 3 * 1500
        assert posterior.mean("omega") == pytest.approx(
            nint_times.mean("omega"), rel=0.03
        )
        assert posterior.diagnostics["n_chains"] == 3

    def test_requires_two_chains(self, times_data, info_prior_times):
        with pytest.raises(ValueError):
            run_chains(
                gibbs_failure_time, times_data, info_prior_times, n_chains=1
            )
