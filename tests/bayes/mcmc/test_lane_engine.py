"""Bit-identity tests for the lane-parallel Gibbs engine.

The engine's contract is not "statistically similar" — it is that lane
``i`` of a batched run reproduces, to the last bit, the scalar
inverse-layer sampler run on dataset ``i`` with the same generator
seed. These tests enforce that for both samplers, collapsed and
censored tails, heterogeneous lane sizes, and randomized schedules,
and additionally check the inverse layer against the legacy direct
layer statistically (same posterior, different stream).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bayes.mcmc.chains import ChainSettings, kept_draws
from repro.bayes.mcmc.gibbs_failure_time import gibbs_failure_time
from repro.bayes.mcmc.gibbs_grouped import gibbs_grouped
from repro.bayes.mcmc.lane_engine import (
    gibbs_failure_time_lanes,
    gibbs_grouped_lanes,
)
from repro.bayes.mcmc.multichain import run_chains
from repro.data.failure_data import FailureTimeData, GroupedData

_SETTINGS = dict(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
_FAST = ChainSettings(n_samples=30, burn_in=16, thin=2, variate_layer="inverse")


def _times_dataset(seed, count):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0.5, 60.0, size=count))
    return FailureTimeData(times, horizon=70.0)


def _grouped_dataset(seed, k):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 7, size=k)
    bounds = np.linspace(10.0, 70.0 + 3.0 * k, k)
    return GroupedData(counts=counts, boundaries=bounds)


def _assert_lane_identical(lane, scalar):
    assert np.array_equal(lane.samples, scalar.samples)
    assert lane.variate_count == scalar.variate_count
    assert np.array_equal(
        lane.extra["residual_trace"], scalar.extra["residual_trace"]
    )


class TestFailureTimeIdentity:
    @pytest.mark.parametrize("alpha0", [1.0, 2.0])
    def test_heterogeneous_lanes_match_scalar(self, info_prior_times, alpha0):
        datasets = [_times_dataset(100 + i, 5 + 4 * i) for i in range(6)]
        lanes = gibbs_failure_time_lanes(
            datasets,
            info_prior_times,
            alpha0,
            settings=_FAST,
            rngs=[np.random.default_rng(7 + i) for i in range(6)],
        )
        for i, (dataset, lane) in enumerate(zip(datasets, lanes)):
            scalar = gibbs_failure_time(
                dataset,
                info_prior_times,
                alpha0,
                settings=_FAST.with_seed(7 + i),
            )
            _assert_lane_identical(lane, scalar)

    def test_shared_dataset_broadcasts(self, times_data, info_prior_times):
        lanes = gibbs_failure_time_lanes(
            times_data,
            info_prior_times,
            settings=_FAST,
            rngs=[np.random.default_rng(s) for s in (3, 4)],
        )
        for seed, lane in zip((3, 4), lanes):
            scalar = gibbs_failure_time(
                times_data, info_prior_times, settings=_FAST.with_seed(seed)
            )
            _assert_lane_identical(lane, scalar)

    def test_single_lane_is_exactly_the_scalar_sampler(
        self, times_data, info_prior_times
    ):
        (lane,) = gibbs_failure_time_lanes(
            times_data,
            info_prior_times,
            settings=_FAST,
            rngs=[np.random.default_rng(11)],
        )
        scalar = gibbs_failure_time(
            times_data, info_prior_times, settings=_FAST.with_seed(11)
        )
        _assert_lane_identical(lane, scalar)


class TestGroupedIdentity:
    @pytest.mark.parametrize("alpha0", [1.0, 2.0])
    def test_heterogeneous_lanes_match_scalar(self, info_prior_times, alpha0):
        datasets = [_grouped_dataset(200 + i, 4 + i) for i in range(5)]
        lanes = gibbs_grouped_lanes(
            datasets,
            info_prior_times,
            alpha0,
            settings=_FAST,
            rngs=[np.random.default_rng(31 + i) for i in range(5)],
        )
        for i, (dataset, lane) in enumerate(zip(datasets, lanes)):
            scalar = gibbs_grouped(
                dataset,
                info_prior_times,
                alpha0,
                settings=_FAST.with_seed(31 + i),
            )
            _assert_lane_identical(lane, scalar)

    def test_empty_intervals_allowed(self, info_prior_times):
        # A lane whose dataset has zero-count intervals exercises the
        # occupied-segment bookkeeping in the ragged reductions.
        sparse = GroupedData(
            counts=[0, 3, 0, 2, 0], boundaries=[10.0, 20.0, 30.0, 40.0, 50.0]
        )
        lanes = gibbs_grouped_lanes(
            [sparse, _grouped_dataset(9, 6)],
            info_prior_times,
            settings=_FAST,
            rngs=[np.random.default_rng(s) for s in (1, 2)],
        )
        scalar = gibbs_grouped(
            sparse, info_prior_times, settings=_FAST.with_seed(1)
        )
        _assert_lane_identical(lanes[0], scalar)


class TestPropertyIdentity:
    @given(
        seed=st.integers(0, 2**20),
        counts=st.lists(st.integers(3, 25), min_size=1, max_size=5),
        alpha0=st.sampled_from([1.0, 2.0]),
        thin=st.integers(1, 3),
    )
    @settings(**_SETTINGS)
    def test_failure_time(self, info_prior_times, seed, counts, alpha0, thin):
        schedule = ChainSettings(
            n_samples=12, burn_in=9, thin=thin, variate_layer="inverse"
        )
        datasets = [_times_dataset(seed + i, c) for i, c in enumerate(counts)]
        rngs = [np.random.default_rng(seed ^ (i + 1)) for i in range(len(counts))]
        lanes = gibbs_failure_time_lanes(
            datasets, info_prior_times, alpha0, settings=schedule, rngs=rngs
        )
        for i, (dataset, lane) in enumerate(zip(datasets, lanes)):
            scalar = gibbs_failure_time(
                dataset,
                info_prior_times,
                alpha0,
                settings=schedule.with_seed(seed ^ (i + 1)),
            )
            _assert_lane_identical(lane, scalar)

    @given(
        seed=st.integers(0, 2**20),
        sizes=st.lists(st.integers(3, 8), min_size=1, max_size=4),
        alpha0=st.sampled_from([1.0, 2.0]),
    )
    @settings(**_SETTINGS)
    def test_grouped(self, info_prior_times, seed, sizes, alpha0):
        schedule = ChainSettings(
            n_samples=10, burn_in=8, thin=2, variate_layer="inverse"
        )
        datasets = [_grouped_dataset(seed + i, k) for i, k in enumerate(sizes)]
        rngs = [np.random.default_rng(seed ^ (i + 1)) for i in range(len(sizes))]
        lanes = gibbs_grouped_lanes(
            datasets, info_prior_times, alpha0, settings=schedule, rngs=rngs
        )
        for i, (dataset, lane) in enumerate(zip(datasets, lanes)):
            scalar = gibbs_grouped(
                dataset,
                info_prior_times,
                alpha0,
                settings=schedule.with_seed(seed ^ (i + 1)),
            )
            _assert_lane_identical(lane, scalar)


class TestEngineValidation:
    def test_direct_layer_rejected(self, times_data, info_prior_times):
        direct = _FAST.with_variate_layer("direct")
        with pytest.raises(ValueError, match="inverse"):
            gibbs_failure_time_lanes(
                times_data,
                info_prior_times,
                settings=direct,
                rngs=[np.random.default_rng(0)],
            )

    def test_needs_at_least_one_rng(self, times_data, info_prior_times):
        with pytest.raises(ValueError):
            gibbs_failure_time_lanes(
                times_data, info_prior_times, settings=_FAST, rngs=[]
            )

    def test_dataset_list_must_match_lane_count(
        self, times_data, info_prior_times
    ):
        with pytest.raises(ValueError):
            gibbs_failure_time_lanes(
                [times_data, times_data],
                info_prior_times,
                settings=_FAST,
                rngs=[np.random.default_rng(s) for s in range(3)],
            )


class TestRunChainsLaneDispatch:
    def test_inverse_layer_matches_per_chain_loop(
        self, times_data, info_prior_times
    ):
        pooled = run_chains(
            gibbs_failure_time,
            times_data,
            info_prior_times,
            n_chains=3,
            settings=_FAST,
            base_seed=5,
        )
        for index, chain in enumerate(pooled.chains):
            scalar = gibbs_failure_time(
                times_data, info_prior_times, settings=_FAST.with_seed(5 + index)
            )
            assert np.array_equal(chain.samples, scalar.samples)
            assert chain.settings.seed == 5 + index
            assert chain.settings.variate_layer == "inverse"

    def test_grouped_dispatch(self, grouped_data, info_prior_times):
        pooled = run_chains(
            gibbs_grouped,
            grouped_data,
            info_prior_times,
            n_chains=2,
            settings=_FAST,
            base_seed=9,
        )
        for index, chain in enumerate(pooled.chains):
            scalar = gibbs_grouped(
                grouped_data, info_prior_times, settings=_FAST.with_seed(9 + index)
            )
            assert np.array_equal(chain.samples, scalar.samples)


class TestScheduleArithmetic:
    def test_kept_draws_matches_keep_rule(self):
        for burn_in, thin, total in [(0, 1, 5), (10, 3, 40), (7, 2, 7)]:
            kept = sum(
                1
                for sweep in range(total)
                if sweep >= burn_in and (sweep - burn_in + 1) % thin == 0
            )
            assert kept_draws(burn_in, thin, total) == kept

    def test_schedule_always_keeps_n_samples(self):
        schedule = ChainSettings(n_samples=30, burn_in=16, thin=2)
        assert (
            kept_draws(schedule.burn_in, schedule.thin, schedule.total_iterations)
            == schedule.n_samples
        )

    def test_unknown_variate_layer_rejected(self):
        with pytest.raises(ValueError, match="variate_layer"):
            ChainSettings(variate_layer="antithetic")

    def test_with_variate_layer_round_trip(self):
        schedule = ChainSettings(n_samples=30, burn_in=16, thin=2, seed=4)
        inverse = schedule.with_variate_layer("inverse")
        assert inverse.variate_layer == "inverse"
        assert inverse.seed == 4
        assert inverse.with_variate_layer("direct") == schedule


class TestStatisticalEquivalence:
    @pytest.mark.parametrize(
        "sampler", [gibbs_failure_time, gibbs_grouped], ids=["times", "grouped"]
    )
    def test_inverse_layer_same_posterior_as_direct(
        self, times_data, grouped_data, info_prior_times, sampler
    ):
        # Different streams, same invariant distribution: means and
        # spreads must agree to Monte Carlo error.
        data = times_data if sampler is gibbs_failure_time else grouped_data
        schedule = ChainSettings(n_samples=2_000, burn_in=500, thin=1, seed=42)
        direct = sampler(data, info_prior_times, settings=schedule)
        inverse = sampler(
            data,
            info_prior_times,
            settings=schedule.with_variate_layer("inverse"),
        )
        for column in (0, 1):
            a = direct.samples[:, column]
            b = inverse.samples[:, column]
            pooled_se = np.hypot(
                a.std() / np.sqrt(a.size), b.std() / np.sqrt(b.size)
            )
            # Autocorrelation inflates the naive standard error; 12x
            # headroom keeps the test sharp enough to catch a wrong
            # conditional while staying deterministic-stable.
            assert abs(a.mean() - b.mean()) < 12.0 * pooled_se
            assert b.std() == pytest.approx(a.std(), rel=0.25)
