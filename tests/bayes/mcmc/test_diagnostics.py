"""Tests for the MCMC convergence diagnostics."""

import numpy as np
import pytest

from repro.bayes.mcmc.diagnostics import (
    autocorrelation,
    effective_sample_size,
    gelman_rubin,
    geweke_z,
)
from repro.bayes.mcmc.quantile_ci import (
    quantile_coverage_interval,
    sample_size_for_quantile,
)


def ar1(n, rho, rng, loc=0.0):
    noise = rng.standard_normal(n)
    chain = np.empty(n)
    chain[0] = noise[0]
    for i in range(1, n):
        chain[i] = rho * chain[i - 1] + math_sqrt_1m(rho) * noise[i]
    return chain + loc


def math_sqrt_1m(rho):
    return float(np.sqrt(1.0 - rho**2))


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        chain = rng.standard_normal(1000)
        assert autocorrelation(chain)[0] == pytest.approx(1.0)

    def test_iid_has_small_lags(self, rng):
        chain = rng.standard_normal(50_000)
        rho = autocorrelation(chain, max_lag=10)
        assert np.all(np.abs(rho[1:]) < 0.03)

    def test_ar1_matches_theory(self, rng):
        chain = ar1(200_000, 0.7, rng)
        rho = autocorrelation(chain, max_lag=5)
        assert rho[1] == pytest.approx(0.7, abs=0.02)
        assert rho[2] == pytest.approx(0.49, abs=0.03)

    def test_constant_chain(self):
        rho = autocorrelation(np.ones(100))
        assert rho[0] == 1.0
        assert np.all(rho[1:] == 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            autocorrelation(np.array([1.0]))


class TestESS:
    def test_iid_ess_near_n(self, rng):
        chain = rng.standard_normal(20_000)
        assert effective_sample_size(chain) == pytest.approx(20_000, rel=0.1)

    def test_correlated_chain_reduced(self, rng):
        chain = ar1(50_000, 0.9, rng)
        ess = effective_sample_size(chain)
        # Theory: ESS = n (1-rho)/(1+rho) ~ n/19.
        assert ess == pytest.approx(50_000 / 19.0, rel=0.3)

    def test_tiny_chain(self):
        assert effective_sample_size(np.array([1.0, 2.0])) == 2.0


class TestGeweke:
    def test_stationary_chain_small_z(self, rng):
        chain = rng.standard_normal(20_000)
        assert abs(geweke_z(chain)) < 3.0

    def test_trending_chain_flagged(self, rng):
        chain = rng.standard_normal(5000) + np.linspace(0.0, 5.0, 5000)
        assert abs(geweke_z(chain)) > 5.0

    def test_fraction_validation(self, rng):
        chain = rng.standard_normal(100)
        with pytest.raises(ValueError):
            geweke_z(chain, first=0.6, last=0.6)


class TestGelmanRubin:
    def test_same_distribution_near_one(self, rng):
        chains = [rng.standard_normal(5000) for _ in range(4)]
        assert gelman_rubin(chains) == pytest.approx(1.0, abs=0.02)

    def test_shifted_chains_flagged(self, rng):
        chains = [
            rng.standard_normal(2000),
            rng.standard_normal(2000) + 5.0,
        ]
        assert gelman_rubin(chains) > 1.5

    def test_needs_two_chains(self, rng):
        with pytest.raises(ValueError):
            gelman_rubin([rng.standard_normal(100)])


class TestQuantileCI:
    def test_paper_schedule_coverage(self):
        # 20000 samples at p = 0.025: band roughly 0.025 +/- 0.002.
        lo, hi = quantile_coverage_interval(20_000, 0.025, 0.95)
        assert lo == pytest.approx(0.025 - 1.96 * np.sqrt(0.025 * 0.975 / 20_000),
                                   rel=1e-4)
        assert 0.022 < lo < 0.025 < hi < 0.028

    def test_sample_size_inverse(self):
        n = sample_size_for_quantile(0.025, 0.001, 0.95)
        lo, hi = quantile_coverage_interval(n, 0.025, 0.95)
        assert hi - 0.025 <= 0.001 * 1.001

    def test_cost_grows_quadratically_with_precision(self):
        n_coarse = sample_size_for_quantile(0.025, 0.002, 0.95)
        n_fine = sample_size_for_quantile(0.025, 0.001, 0.95)
        assert n_fine == pytest.approx(4 * n_coarse, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            quantile_coverage_interval(0, 0.5, 0.95)
        with pytest.raises(ValueError):
            quantile_coverage_interval(10, 1.5, 0.95)
        with pytest.raises(ValueError):
            sample_size_for_quantile(0.5, 0.0, 0.95)
