"""Tests for the slice-within-Gibbs sampler."""

import numpy as np
import pytest

from repro.bayes.mcmc.chains import ChainSettings
from repro.bayes.mcmc.slice_sampler import slice_sample


class TestSliceSampler:
    def test_agrees_with_nint(self, times_data, info_prior_times, nint_times):
        settings = ChainSettings(n_samples=4000, burn_in=1000, thin=2, seed=71)
        result = slice_sample(times_data, info_prior_times, settings=settings)
        posterior = result.posterior()
        assert posterior.mean("omega") == pytest.approx(
            nint_times.mean("omega"), rel=0.03
        )
        assert posterior.mean("beta") == pytest.approx(
            nint_times.mean("beta"), rel=0.03
        )
        assert posterior.covariance() < 0.0

    def test_grouped_data(self, grouped_data, info_prior_grouped, nint_grouped):
        settings = ChainSettings(n_samples=2000, burn_in=800, thin=1, seed=72)
        result = slice_sample(grouped_data, info_prior_grouped, settings=settings)
        posterior = result.posterior()
        assert posterior.mean("omega") == pytest.approx(
            nint_grouped.mean("omega"), rel=0.05
        )

    def test_method_label_and_samples_positive(self, times_data, info_prior_times):
        settings = ChainSettings(n_samples=300, burn_in=100, thin=1, seed=73)
        result = slice_sample(times_data, info_prior_times, settings=settings)
        assert result.posterior().method_name == "SLICE"
        assert np.all(result.samples > 0.0)

    def test_reproducible(self, times_data, info_prior_times):
        settings = ChainSettings(n_samples=200, burn_in=50, thin=1, seed=74)
        a = slice_sample(times_data, info_prior_times, settings=settings)
        b = slice_sample(times_data, info_prior_times, settings=settings)
        assert np.array_equal(a.samples, b.samples)

    def test_no_tuning_needed_across_widths(self, times_data, info_prior_times):
        # Slice sampling is robust to the width choice; both runs agree.
        settings = ChainSettings(n_samples=2500, burn_in=800, thin=1, seed=75)
        narrow = slice_sample(
            times_data, info_prior_times, settings=settings, width=0.1
        ).posterior()
        wide = slice_sample(
            times_data, info_prior_times, settings=settings, width=5.0
        ).posterior()
        assert narrow.mean("omega") == pytest.approx(wide.mean("omega"), rel=0.03)
