"""Tests for the Gibbs samplers (Kuo-Yang and data augmentation)."""

import numpy as np
import pytest

from repro.bayes.mcmc.chains import ChainSettings
from repro.bayes.mcmc.gibbs_failure_time import gibbs_failure_time
from repro.bayes.mcmc.gibbs_grouped import gibbs_grouped


class TestChainSettings:
    def test_paper_defaults(self):
        settings = ChainSettings()
        assert settings.n_samples == 20_000
        assert settings.burn_in == 10_000
        assert settings.thin == 10
        assert settings.total_iterations == 210_000

    def test_validation(self):
        with pytest.raises(ValueError):
            ChainSettings(n_samples=0)
        with pytest.raises(ValueError):
            ChainSettings(burn_in=-1)
        with pytest.raises(ValueError):
            ChainSettings(thin=0)


class TestGibbsFailureTime:
    def test_variate_count_matches_paper_accounting(
        self, times_data, info_prior_times
    ):
        # alpha0 = 1: 3 variates per sweep (paper Table 6: 3 x 210000).
        settings = ChainSettings(n_samples=100, burn_in=50, thin=2, seed=1)
        result = gibbs_failure_time(times_data, info_prior_times, settings=settings)
        assert result.variate_count == 3 * settings.total_iterations

    def test_paper_schedule_variate_count(self, times_data, info_prior_times):
        # Don't run the full schedule; check the arithmetic identity.
        settings = ChainSettings()
        assert 3 * settings.total_iterations == 630_000

    def test_posterior_matches_nint(
        self, times_data, info_prior_times, nint_times, quick_chain_settings
    ):
        result = gibbs_failure_time(
            times_data, info_prior_times, settings=quick_chain_settings
        )
        posterior = result.posterior()
        assert posterior.mean("omega") == pytest.approx(
            nint_times.mean("omega"), rel=0.03
        )
        assert posterior.mean("beta") == pytest.approx(
            nint_times.mean("beta"), rel=0.03
        )
        assert posterior.variance("omega") == pytest.approx(
            nint_times.variance("omega"), rel=0.2
        )
        assert posterior.covariance() < 0.0

    def test_reproducible_with_seed(self, times_data, info_prior_times):
        settings = ChainSettings(n_samples=200, burn_in=100, thin=1, seed=5)
        a = gibbs_failure_time(times_data, info_prior_times, settings=settings)
        b = gibbs_failure_time(times_data, info_prior_times, settings=settings)
        assert np.array_equal(a.samples, b.samples)

    def test_general_alpha_augments_tail(self, times_data, info_prior_times):
        settings = ChainSettings(n_samples=200, burn_in=100, thin=1, seed=6)
        result = gibbs_failure_time(
            times_data, info_prior_times, alpha0=2.0, settings=settings
        )
        assert not result.extra["collapsed_tail"]
        # Augmentation adds one variate per residual fault.
        assert result.variate_count > 3 * settings.total_iterations

    def test_residual_trace_recorded(self, times_data, info_prior_times):
        settings = ChainSettings(n_samples=100, burn_in=10, thin=1, seed=7)
        result = gibbs_failure_time(times_data, info_prior_times, settings=settings)
        assert result.extra["residual_trace"].shape == (100,)
        assert np.all(result.extra["residual_trace"] >= 0)


class TestGibbsGrouped:
    def test_variate_count_matches_paper_accounting(
        self, grouped_data, info_prior_grouped
    ):
        # alpha0 = 1 grouped: (3 + m) variates per sweep, m = 38
        # (paper Table 6: 41 x 210000 = 8.61M at full schedule).
        settings = ChainSettings(n_samples=50, burn_in=20, thin=2, seed=8)
        result = gibbs_grouped(grouped_data, info_prior_grouped, settings=settings)
        expected = (3 + grouped_data.total_count) * settings.total_iterations
        assert result.variate_count == expected

    def test_posterior_matches_nint(
        self, grouped_data, info_prior_grouped, nint_grouped, quick_chain_settings
    ):
        result = gibbs_grouped(
            grouped_data, info_prior_grouped, settings=quick_chain_settings
        )
        posterior = result.posterior()
        assert posterior.mean("omega") == pytest.approx(
            nint_grouped.mean("omega"), rel=0.03
        )
        assert posterior.mean("beta") == pytest.approx(
            nint_grouped.mean("beta"), rel=0.03
        )

    def test_general_alpha_runs(self, grouped_data, info_prior_grouped):
        settings = ChainSettings(n_samples=100, burn_in=50, thin=1, seed=9)
        result = gibbs_grouped(
            grouped_data, info_prior_grouped, alpha0=2.0, settings=settings
        )
        assert result.samples.shape == (100, 2)
        assert np.all(result.samples > 0.0)

    @pytest.mark.parametrize("alpha0", [1.0, 2.0])
    def test_latent_draw_block_preserves_variate_stream(
        self, grouped_data, alpha0
    ):
        # The one-uniform-call latent block must consume the generator
        # exactly like the per-interval sample_truncated_gamma loop it
        # replaced: same draws, same latent sum, same final rng state —
        # this is what keeps golden Table 7 and campaign traces frozen.
        from scipy import special as sc

        from repro.stats.truncated import sample_truncated_gamma

        intervals = [item for item in grouped_data.intervals() if item[2] > 0]
        beta = 2.0 * alpha0 / grouped_data.horizon

        legacy_rng = np.random.default_rng(2024)
        legacy_sum = 0.0
        for lo, hi, count in intervals:
            legacy_sum += float(
                sample_truncated_gamma(
                    lo, hi, alpha0, beta, count, legacy_rng
                ).sum()
            )

        int_lo = np.array([lo for lo, _, _ in intervals])
        int_hi = np.array([hi for _, hi, _ in intervals])
        int_count = np.array(
            [count for _, _, count in intervals], dtype=np.int64
        )
        draw_slots = np.repeat(np.arange(int_count.size), int_count)
        segment_offsets = np.cumsum(int_count)[:-1]

        vec_rng = np.random.default_rng(2024)
        p_lo = sc.gammainc(alpha0, beta * int_lo)
        p_hi = sc.gammainc(alpha0, beta * int_hi)
        degenerate = p_hi <= p_lo
        low = np.where(degenerate, int_lo, p_lo)
        high = np.where(degenerate, int_hi, p_hi)
        u = vec_rng.uniform(low[draw_slots], high[draw_slots])
        draws = u.copy()
        invert = ~degenerate[draw_slots]
        draws[invert] = sc.gammaincinv(alpha0, u[invert]) / beta
        vec_sum = 0.0
        for segment in np.split(draws, segment_offsets):
            vec_sum += float(segment.sum())

        assert vec_sum == legacy_sum
        # Stream position identical: next draws coincide.
        assert vec_rng.uniform() == legacy_rng.uniform()

    def test_sampler_golden_head(self, grouped_data, info_prior_grouped):
        # Freeze the head of the (omega, beta) chain: any change to the
        # sweep's variate consumption order shows up here immediately.
        settings = ChainSettings(n_samples=4, burn_in=0, thin=1, seed=777)
        result = gibbs_grouped(
            grouped_data, info_prior_grouped, settings=settings
        )
        again = gibbs_grouped(
            grouped_data, info_prior_grouped, settings=settings
        )
        assert np.array_equal(result.samples, again.samples)
        assert result.samples.shape == (4, 2)
        assert np.all(result.samples > 0.0)

    def test_flat_prior_heavy_tail_behaviour(self, grouped_data, flat_prior):
        # DG-NoInfo: the paper reports wild MCMC excursions (E[omega] in
        # the thousands). Our sampler must at least run and produce a
        # long right tail relative to the Info case.
        settings = ChainSettings(n_samples=2000, burn_in=500, thin=2, seed=10)
        result = gibbs_grouped(grouped_data, flat_prior, settings=settings)
        posterior = result.posterior()
        skew = posterior.central_moment("omega", 3)
        assert skew > 0.0
