"""Tests for the VB-proposal importance-sampling corrector."""

import numpy as np
import pytest

from repro.bayes.importance import importance_correct
from repro.core.vb1 import fit_vb1


@pytest.fixture(scope="module")
def corrected(vb2_times, times_data, info_prior_times):
    return importance_correct(
        vb2_times,
        times_data,
        info_prior_times,
        n_samples=20_000,
        rng=np.random.default_rng(404),
    )


class TestImportanceCorrection:
    def test_high_effective_sample_size(self, corrected):
        # VB2 is an excellent proposal: ESS should be most of the draws.
        assert corrected.effective_sample_size > 0.5 * 20_000

    def test_moments_match_nint(self, corrected, nint_times):
        assert corrected.mean("omega") == pytest.approx(
            nint_times.mean("omega"), rel=0.01
        )
        assert corrected.mean("beta") == pytest.approx(
            nint_times.mean("beta"), rel=0.01
        )
        assert corrected.variance("omega") == pytest.approx(
            nint_times.variance("omega"), rel=0.05
        )
        assert corrected.covariance() == pytest.approx(
            nint_times.covariance(), rel=0.1
        )

    def test_corrects_vb2_variance_bias(self, corrected, vb2_times, nint_times):
        # VB2 slightly underestimates Var(beta) (paper Table 1: -2.5%);
        # the IS correction must land closer to NINT than raw VB2 does.
        vb2_error = abs(vb2_times.variance("beta") / nint_times.variance("beta") - 1)
        is_error = abs(corrected.variance("beta") / nint_times.variance("beta") - 1)
        assert is_error < vb2_error

    def test_evidence_sandwich(self, corrected, vb2_times, nint_times):
        # ELBO <= log P(D), and the IS estimate approximates log P(D)
        # (= NINT's log normaliser up to grid truncation).
        assert vb2_times.elbo <= corrected.log_evidence + 0.01
        assert corrected.log_evidence == pytest.approx(
            nint_times.log_normaliser, abs=0.02
        )

    def test_weights_normalised(self, corrected):
        assert corrected.weights.sum() == pytest.approx(1.0)
        assert np.all(corrected.weights >= 0.0)

    def test_resample_posterior(self, corrected, nint_times, rng):
        posterior = corrected.resample(8000, rng)
        assert posterior.method_name == "VB2+IS"
        assert posterior.mean("omega") == pytest.approx(
            nint_times.mean("omega"), rel=0.02
        )

    def test_vb1_proposal_has_lower_ess(
        self, times_data, info_prior_times, corrected
    ):
        # VB1's too-narrow proposal misses posterior mass: its ESS
        # fraction must be visibly worse than VB2's.
        vb1 = fit_vb1(times_data, info_prior_times)
        vb1_result = importance_correct(
            vb1,
            times_data,
            info_prior_times,
            n_samples=20_000,
            rng=np.random.default_rng(405),
        )
        assert (
            vb1_result.effective_sample_size < corrected.effective_sample_size
        )
        # But self-normalised IS still fixes VB1's moments.
        assert vb1_result.mean("omega") == pytest.approx(
            corrected.mean("omega"), rel=0.05
        )
