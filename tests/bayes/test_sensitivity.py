"""Tests for the prior-sensitivity analysis."""

import pytest

from repro.bayes.priors import ModelPrior
from repro.bayes.sensitivity import prior_sensitivity


class TestPriorSensitivity:
    def test_sweep_structure(self, times_data, info_prior_times):
        report = prior_sensitivity(times_data, info_prior_times)
        assert len(report.records) == 4 + 2  # locations + strengths
        assert report.base.label == "base"

    def test_informative_data_is_robust(self, times_data, info_prior_times):
        # 38 failures carry real information: moderate prior changes
        # should move the posterior mean by far less than they move the
        # prior mean.
        report = prior_sensitivity(times_data, info_prior_times)
        assert report.max_relative_shift() < 0.25
        lo, hi = report.omega_mean_range()
        assert lo < report.base.posterior_mean_omega < hi

    def test_posterior_follows_prior_direction(self, times_data, info_prior_times):
        report = prior_sensitivity(
            times_data, info_prior_times, location_factors=(0.5, 2.0)
        )
        lowered, raised = report.records[0], report.records[1]
        assert lowered.posterior_mean_omega < raised.posterior_mean_omega

    def test_stronger_prior_pulls_harder(self, times_data):
        # Off-centre prior: quadrupling its precision must pull the
        # posterior mean further toward the prior mean.
        off_centre = ModelPrior.informative(80.0, 20.0, 1.0e-5, 3.2e-6)
        report = prior_sensitivity(
            times_data,
            off_centre,
            location_factors=(),
            strength_factors=(0.25, 4.0),
        )
        weak, strong = report.records
        assert strong.posterior_mean_omega > weak.posterior_mean_omega

    def test_small_data_is_less_robust(self, times_data, info_prior_times):
        small = times_data.truncate(times_data.times[4] + 1.0)
        small_report = prior_sensitivity(small, info_prior_times)
        full_report = prior_sensitivity(times_data, info_prior_times)
        assert small_report.max_relative_shift() > full_report.max_relative_shift()

    def test_requires_proper_prior(self, times_data):
        with pytest.raises(ValueError):
            prior_sensitivity(times_data, ModelPrior.noninformative())
