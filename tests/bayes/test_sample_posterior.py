"""Tests for the empirical (sample-based) posterior."""

import numpy as np
import pytest

from repro.bayes.sample_posterior import EmpiricalPosterior
from repro.core.reliability import reliability_increment


@pytest.fixture(scope="module")
def gaussian_samples():
    rng = np.random.default_rng(31)
    cov = np.array([[4.0, -0.8], [-0.8, 0.25]])
    return rng.multivariate_normal([40.0, 2.0], cov, size=50_000)


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            EmpiricalPosterior(np.zeros((10, 3)))
        with pytest.raises(ValueError):
            EmpiricalPosterior(np.zeros((1, 2)))

    def test_nonfinite_rejected(self):
        samples = np.ones((10, 2))
        samples[3, 1] = np.nan
        with pytest.raises(ValueError):
            EmpiricalPosterior(samples)


class TestMoments:
    def test_mean_variance(self, gaussian_samples):
        posterior = EmpiricalPosterior(gaussian_samples)
        assert posterior.mean("omega") == pytest.approx(40.0, abs=0.1)
        assert posterior.variance("omega") == pytest.approx(4.0, rel=0.05)
        assert posterior.covariance() == pytest.approx(-0.8, rel=0.1)

    def test_cross_moment_consistent_with_covariance(self, gaussian_samples):
        posterior = EmpiricalPosterior(gaussian_samples)
        implied = posterior.cross_moment() - posterior.mean("omega") * posterior.mean(
            "beta"
        )
        # cross_moment uses 1/n, covariance uses 1/(n-1): near-equal at n=50k.
        assert implied == pytest.approx(posterior.covariance(), rel=1e-3)

    def test_central_moment(self, gaussian_samples):
        posterior = EmpiricalPosterior(gaussian_samples)
        assert posterior.central_moment("omega", 3) == pytest.approx(0.0, abs=0.3)


class TestQuantiles:
    def test_order_statistic_convention(self):
        # 2.5% of 20000 samples -> the 500th smallest, per the paper.
        values = np.arange(1.0, 20_001.0)
        samples = np.column_stack([values, values])
        posterior = EmpiricalPosterior(samples)
        assert posterior.quantile("omega", 0.025) == 500.0

    def test_extreme_levels_clamped_to_range(self):
        samples = np.column_stack([np.arange(1.0, 11.0), np.arange(1.0, 11.0)])
        posterior = EmpiricalPosterior(samples)
        assert posterior.quantile("omega", 0.001) == 1.0
        assert posterior.quantile("omega", 0.9999) == 10.0

    def test_invalid_level(self, gaussian_samples):
        posterior = EmpiricalPosterior(gaussian_samples)
        with pytest.raises(ValueError):
            posterior.quantile("omega", 0.0)


class TestReliability:
    def test_point_is_sample_mean_of_transform(self, times_data):
        rng = np.random.default_rng(32)
        samples = np.column_stack(
            [rng.gamma(40.0, 1.0, 10_000), rng.gamma(38.0, 1.0 / 4e6, 10_000)]
        )
        posterior = EmpiricalPosterior(samples)
        c = reliability_increment(1.0, times_data.horizon, 1000.0)
        expected = np.exp(-samples[:, 0] * np.asarray(c(samples[:, 1]))).mean()
        assert posterior.reliability_point(c) == pytest.approx(expected, rel=1e-12)

    def test_reliability_quantiles_ordered(self, times_data):
        rng = np.random.default_rng(33)
        samples = np.column_stack(
            [rng.gamma(40.0, 1.0, 10_000), rng.gamma(38.0, 1.0 / 4e6, 10_000)]
        )
        posterior = EmpiricalPosterior(samples)
        c = reliability_increment(1.0, times_data.horizon, 5000.0)
        lo = posterior.reliability_quantile(0.005, c)
        hi = posterior.reliability_quantile(0.995, c)
        assert lo < posterior.reliability_point(c) < hi

    def test_cdf_limits(self, gaussian_samples, times_data):
        posterior = EmpiricalPosterior(np.abs(gaussian_samples))
        c = reliability_increment(1.0, times_data.horizon, 1000.0)
        assert posterior.reliability_cdf(0.0, c) == 0.0
        assert posterior.reliability_cdf(1.0, c) == 1.0


class TestScatter:
    def test_subsample_size(self, gaussian_samples):
        posterior = EmpiricalPosterior(gaussian_samples)
        assert posterior.scatter(1000).shape == (1000, 2)

    def test_full_sample_when_small(self, gaussian_samples):
        posterior = EmpiricalPosterior(gaussian_samples[:100])
        assert posterior.scatter(1000).shape == (100, 2)

    def test_bootstrap_sample(self, gaussian_samples, rng):
        posterior = EmpiricalPosterior(gaussian_samples)
        draws = posterior.sample(500, rng)
        assert draws.shape == (500, 2)
