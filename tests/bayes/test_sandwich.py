"""Unit and oracle tests for the sandwich variance correction.

The oracle pair at the bottom is the scientific contract: on
well-specified Goel–Okumoto data the correction is (nearly) a no-op;
on contaminated data it strictly widens the intervals.
"""

import math

import numpy as np
import pytest

from repro.bayes.priors import ModelPrior
from repro.bayes.sandwich import (
    KAPPA_CEILING,
    ScaledPosterior,
    apply_sandwich,
    observed_information,
    sandwich_covariance,
    score_covariance,
    variance_inflation,
    _g_dbeta,
    _g_dbeta2,
    _g_value,
)
from repro.bayes.laplace import fit_laplace
from repro.bayes.normal_posterior import NormalPosterior
from repro.core.config import VBConfig
from repro.core.reliability import ResidualSurvival
from repro.core.vb1 import fit_vb1
from repro.core.vb2 import fit_vb2
from repro.data.failure_data import FailureTimeData, GroupedData
from repro.data.simulation import simulate_failure_times
from repro.models.goel_okumoto import GoelOkumoto
from repro.robustness.generators import ContaminatedScenario

PRIOR = ModelPrior.informative(40.0, 12.0, 0.1, 0.04)
LEVELS = np.array([0.05, 0.95])


def _well_specified_data(seed=3, horizon=25.0):
    rng = np.random.default_rng(seed)
    return simulate_failure_times(GoelOkumoto(omega=40.0, beta=0.1), horizon, rng)


class TestDerivatives:
    @pytest.mark.parametrize("alpha0", [1.0, 2.0])
    @pytest.mark.parametrize("t", [0.5, 5.0, 30.0])
    def test_g_dbeta_matches_finite_difference(self, alpha0, t):
        beta = 0.1
        h = 1e-6
        numeric = (
            _g_value(np.array([t]), alpha0, beta + h)
            - _g_value(np.array([t]), alpha0, beta - h)
        ) / (2 * h)
        analytic = _g_dbeta(np.array([t]), alpha0, beta)
        assert analytic[0] == pytest.approx(numeric[0], rel=1e-5)

    @pytest.mark.parametrize("alpha0", [1.0, 2.0])
    @pytest.mark.parametrize("t", [0.5, 5.0, 30.0])
    def test_g_dbeta2_matches_finite_difference(self, alpha0, t):
        beta = 0.1
        h = 1e-5
        numeric = (
            _g_dbeta(np.array([t]), alpha0, beta + h)
            - _g_dbeta(np.array([t]), alpha0, beta - h)
        ) / (2 * h)
        analytic = _g_dbeta2(np.array([t]), alpha0, beta)
        assert analytic[0] == pytest.approx(numeric[0], rel=1e-4)

    def test_derivatives_vanish_at_nonpositive_times(self):
        out = _g_dbeta(np.array([-1.0, 0.0]), 1.0, 0.1)
        np.testing.assert_array_equal(out, [0.0, 0.0])
        out2 = _g_dbeta2(np.array([-1.0, 0.0]), 1.0, 0.1)
        np.testing.assert_array_equal(out2, [0.0, 0.0])


class TestInformation:
    def test_times_information_structure(self):
        data = _well_specified_data()
        a = observed_information(data, 40.0, 0.1)
        assert a.shape == (2, 2)
        assert a[0, 1] == a[1, 0]
        assert a[0, 0] == pytest.approx(data.count / 40.0**2)
        assert np.all(np.linalg.eigvalsh(a) > 0.0)

    def test_grouped_information_close_to_times(self):
        data = _well_specified_data()
        boundaries = np.linspace(0.0, data.horizon, 2001)[1:]
        counts, _ = np.histogram(data.times, bins=np.r_[0.0, boundaries])
        grouped = GroupedData(counts, boundaries)
        a_times = observed_information(data, 40.0, 0.1)
        a_grouped = observed_information(grouped, 40.0, 0.1)
        # Fine grouping loses little information; ω-block is identical.
        assert a_grouped[0, 0] == pytest.approx(a_times[0, 0])
        assert a_grouped[0, 1] == pytest.approx(a_times[0, 1], rel=1e-6)

    @pytest.mark.parametrize("omega,beta", [(0.0, 0.1), (40.0, -1.0),
                                            (float("inf"), 0.1)])
    def test_invalid_point_rejected(self, omega, beta):
        with pytest.raises(ValueError):
            observed_information(_well_specified_data(), omega, beta)

    def test_unsupported_data_type(self):
        with pytest.raises(TypeError):
            observed_information(object(), 40.0, 0.1)


class TestScoreCovariance:
    def test_well_specified_b_tracks_a(self):
        """E[B] = A under the true model: averaged over campaigns the
        block estimate must come out near the information."""
        ratios = []
        for seed in range(40):
            data = _well_specified_data(seed=seed)
            a = observed_information(data, 40.0, 0.1)
            b = score_covariance(data, 40.0, 0.1)
            ratios.append(np.diag(b) / np.diag(a))
        mean_ratio = np.mean(ratios, axis=0)
        np.testing.assert_allclose(mean_ratio, [1.0, 1.0], atol=0.25)

    def test_block_count_override(self):
        data = _well_specified_data()
        b_default = score_covariance(data, 40.0, 0.1)
        b_eight = score_covariance(data, 40.0, 0.1, n_blocks=8)
        assert b_default.shape == b_eight.shape == (2, 2)
        assert not np.allclose(b_default, b_eight)

    def test_too_few_blocks_rejected(self):
        data = _well_specified_data()
        with pytest.raises(ValueError, match="blocks"):
            score_covariance(data, 40.0, 0.1, n_blocks=1)

    def test_grouped_uses_recorded_intervals(self):
        counts = np.array([5, 9, 7, 4, 2, 1])
        grouped = GroupedData.from_equal_intervals(counts, interval_length=4.0)
        b = score_covariance(grouped, 30.0, 0.1)
        assert b.shape == (2, 2)
        assert b[0, 0] > 0.0

    def test_symmetric_and_psd(self):
        data = _well_specified_data(seed=11)
        b = score_covariance(data, 40.0, 0.1)
        assert b[0, 1] == pytest.approx(b[1, 0])
        assert np.all(np.linalg.eigvalsh(b) >= -1e-12)


class TestVarianceInflation:
    def test_b_equals_a_gives_identity(self):
        a = np.array([[4.0, 1.0], [1.0, 9.0]])
        np.testing.assert_allclose(variance_inflation(a, a), [1.0, 1.0])

    def test_inflated_b_widens(self):
        a = np.array([[4.0, 0.5], [0.5, 9.0]])
        kappa = variance_inflation(a, 4.0 * a)
        np.testing.assert_allclose(kappa, [2.0, 2.0])

    def test_conservative_floor(self):
        a = np.array([[4.0, 0.0], [0.0, 9.0]])
        b = 0.25 * a  # raw kappa would be 0.5
        np.testing.assert_allclose(variance_inflation(a, b), [1.0, 1.0])
        np.testing.assert_allclose(
            variance_inflation(a, b, conservative=False), [0.5, 0.5]
        )

    def test_non_positive_definite_a_is_identity(self):
        a = np.array([[1.0, 2.0], [2.0, 1.0]])  # det < 0
        b = np.eye(2)
        np.testing.assert_allclose(variance_inflation(a, b), [1.0, 1.0])

    def test_ceiling_clip(self):
        a = np.array([[1.0, 0.0], [0.0, 1.0]])
        b = 1e12 * np.eye(2)
        np.testing.assert_allclose(
            variance_inflation(a, b), [KAPPA_CEILING, KAPPA_CEILING]
        )

    def test_sandwich_covariance_symmetrised(self):
        a = np.array([[4.0, 0.5], [0.5, 9.0]])
        b = np.array([[5.0, 0.1], [0.1, 10.0]])
        s = sandwich_covariance(a, b)
        assert s[0, 1] == pytest.approx(s[1, 0])


class TestApplySandwich:
    def test_vb2_wraps_in_scaled_posterior(self):
        data = _well_specified_data()
        base = fit_vb2(data, PRIOR)
        corrected = apply_sandwich(base, data)
        assert isinstance(corrected, ScaledPosterior)
        assert corrected.method_name == "VB2+SW"
        assert corrected.base is base
        diag = corrected.diagnostics
        assert diag["variance_correction"] == "sandwich"
        assert diag["kappa_omega"] >= 1.0
        assert diag["kappa_beta"] >= 1.0
        assert diag["kappa_omega"] >= diag["kappa_omega_raw"]

    def test_normal_posterior_stays_normal(self):
        data = _well_specified_data()
        base = fit_laplace(data, PRIOR)
        corrected = apply_sandwich(base, data)
        assert isinstance(corrected, NormalPosterior)
        assert corrected.mean("omega") == pytest.approx(base.mean("omega"))
        kappa = corrected.diagnostics["kappa_omega"]
        assert corrected.variance("omega") == pytest.approx(
            kappa**2 * base.variance("omega")
        )

    def test_config_wiring_vb2(self):
        data = _well_specified_data()
        config = VBConfig(variance_correction="sandwich")
        corrected = fit_vb2(data, PRIOR, config=config)
        assert corrected.method_name == "VB2+SW"
        plain = fit_vb2(data, PRIOR)
        assert plain.method_name == "VB2"
        assert corrected.mean("omega") == pytest.approx(plain.mean("omega"))

    def test_config_wiring_vb1(self):
        data = _well_specified_data()
        corrected = fit_vb1(
            data, PRIOR, config=VBConfig(variance_correction="sandwich")
        )
        assert corrected.method_name == "VB1+SW"

    def test_config_validates_correction_name(self):
        with pytest.raises(ValueError, match="variance_correction"):
            VBConfig(variance_correction="jackknife")


class TestOracle:
    """The scientific contract of the correction."""

    def test_well_specified_is_nearly_a_noop(self):
        """On data truly from the fitted Goel–Okumoto model, the
        corrected intervals stay within a few percent of the raw ones
        on average — the correction does not destroy calibration."""
        survival = ResidualSurvival(alpha0=1.0, te=25.0)
        ratios_omega, ratios_residual = [], []
        for seed in range(20):
            data = _well_specified_data(seed=seed)
            base = fit_vb2(data, PRIOR)
            corrected = apply_sandwich(base, data)
            lo, hi = base.quantile_batch("omega", LEVELS)
            clo, chi = corrected.quantile_batch("omega", LEVELS)
            ratios_omega.append((chi - clo) / (hi - lo))
            rlo, rhi = base.residual_quantile_batch(LEVELS, survival)
            crlo, crhi = corrected.residual_quantile_batch(LEVELS, survival)
            ratios_residual.append((crhi - crlo) / (rhi - rlo))
        assert np.mean(ratios_omega) == pytest.approx(1.0, abs=0.10)
        assert np.mean(ratios_residual) == pytest.approx(1.0, abs=0.12)
        # Conservative one-sided correction: never narrower.
        assert np.min(ratios_omega) >= 1.0 - 1e-9

    def test_contaminated_is_strictly_wider(self):
        """On heavy-tailed contaminated data the correction must
        strictly widen both the ω and the residual intervals (averaged
        over campaigns, and strictly on the bulk of them)."""
        scenario = ContaminatedScenario(severity=0.7)
        survival = ResidualSurvival(alpha0=1.0, te=25.0)
        widened = 0
        total = 0
        width_ratio = []
        for seed in range(20):
            data = scenario.simulate(25.0, np.random.default_rng(seed))
            if data.count < 3:
                continue
            total += 1
            base = fit_vb2(data, PRIOR)
            corrected = apply_sandwich(base, data)
            lo, hi = base.residual_quantile_batch(LEVELS, survival)
            clo, chi = corrected.residual_quantile_batch(LEVELS, survival)
            width_ratio.append((chi - clo) / (hi - lo))
            if chi - clo > hi - lo + 1e-12:
                widened += 1
        assert total >= 15
        assert np.mean(width_ratio) > 1.05
        assert widened >= total // 2

    def test_corrected_intervals_nest_the_raw_ones(self):
        """κ ≥ 1 scaling about the posterior mean makes every corrected
        interval a superset of the raw one — the structural property
        that lets the campaign's coverage only improve, never degrade,
        under the conservative correction."""
        scenario = ContaminatedScenario(severity=0.7)
        survival = ResidualSurvival(alpha0=1.0, te=25.0)
        checked = 0
        for seed in range(12):
            data = scenario.simulate(25.0, np.random.default_rng(seed))
            if data.count < 3:
                continue
            checked += 1
            base = fit_vb2(data, PRIOR)
            corrected = apply_sandwich(base, data)
            lo, hi = base.quantile_batch("omega", LEVELS)
            clo, chi = corrected.quantile_batch("omega", LEVELS)
            assert clo <= lo + 1e-9
            assert chi >= hi - 1e-9
            rlo, rhi = base.residual_quantile_batch(LEVELS, survival)
            crlo, crhi = corrected.residual_quantile_batch(LEVELS, survival)
            assert crlo <= rlo + 1e-9
            assert crhi >= rhi - 1e-9
        assert checked >= 8
