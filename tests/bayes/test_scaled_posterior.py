"""Contract tests for :class:`ScaledPosterior`.

The wrapper must implement the exact law of θ' = μ + diag(κ)(θ − μ):
unchanged means, κ²-scaled variances, affine quantiles, inverse cdf,
and reliability functionals consistent with the transformed β/ω laws.
"""

import numpy as np
import pytest

from repro.bayes.priors import ModelPrior
from repro.bayes.sandwich import ScaledPosterior
from repro.core.reliability import ResidualSurvival
from repro.core.vb2 import fit_vb2
from repro.data.simulation import simulate_failure_times
from repro.models.goel_okumoto import GoelOkumoto

PRIOR = ModelPrior.informative(40.0, 12.0, 0.1, 0.04)
KAPPA = np.array([1.4, 1.8])


@pytest.fixture(scope="module")
def base():
    rng = np.random.default_rng(5)
    data = simulate_failure_times(GoelOkumoto(omega=40.0, beta=0.1), 25.0, rng)
    return fit_vb2(data, PRIOR)


@pytest.fixture(scope="module")
def scaled(base):
    return ScaledPosterior(base, KAPPA)


class TestMoments:
    @pytest.mark.parametrize("param", ["omega", "beta"])
    def test_mean_unchanged(self, base, scaled, param):
        assert scaled.mean(param) == pytest.approx(base.mean(param))

    @pytest.mark.parametrize("param,idx", [("omega", 0), ("beta", 1)])
    def test_variance_scales_by_kappa_squared(self, base, scaled, param, idx):
        assert scaled.variance(param) == pytest.approx(
            KAPPA[idx] ** 2 * base.variance(param)
        )

    def test_covariance_scales_by_kappa_product(self, base, scaled):
        assert scaled.covariance() == pytest.approx(
            KAPPA[0] * KAPPA[1] * base.covariance()
        )

    def test_correlation_invariant(self, base, scaled):
        assert scaled.correlation() == pytest.approx(base.correlation())

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_central_moments_scale(self, base, scaled, k):
        assert scaled.central_moment("omega", k) == pytest.approx(
            KAPPA[0] ** k * base.central_moment("omega", k)
        )

    def test_covariance_matrix_consistent(self, scaled):
        cov = scaled.covariance_matrix()
        assert cov[0, 0] == pytest.approx(scaled.variance("omega"))
        assert cov[1, 1] == pytest.approx(scaled.variance("beta"))
        assert cov[0, 1] == pytest.approx(cov[1, 0])


class TestQuantiles:
    @pytest.mark.parametrize("param,idx", [("omega", 0), ("beta", 1)])
    @pytest.mark.parametrize("q", [0.05, 0.5, 0.95])
    def test_quantiles_move_affinely(self, base, scaled, param, idx, q):
        mu = base.mean(param)
        expected = mu + KAPPA[idx] * (base.quantile(param, q) - mu)
        assert scaled.quantile(param, q) == pytest.approx(expected)

    def test_quantile_batch_matches_scalar(self, scaled):
        qs = np.array([0.05, 0.25, 0.5, 0.75, 0.95])
        batch = scaled.quantile_batch("omega", qs)
        for q, value in zip(qs, batch):
            assert value == pytest.approx(scaled.quantile("omega", q))

    @pytest.mark.parametrize("param", ["omega", "beta"])
    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9])
    def test_cdf_inverts_quantile(self, scaled, param, q):
        x = scaled.quantile(param, q)
        assert scaled.cdf(param, x) == pytest.approx(q, abs=1e-6)

    def test_quantiles_monotone(self, scaled):
        qs = np.linspace(0.02, 0.98, 25)
        values = scaled.quantile_batch("beta", qs)
        assert np.all(np.diff(values) > 0.0)

    def test_credible_interval_widens(self, base, scaled):
        lo, hi = base.credible_interval("omega", 0.9)
        slo, shi = scaled.credible_interval("omega", 0.9)
        assert shi - slo == pytest.approx(KAPPA[0] * (hi - lo), rel=1e-9)


class TestIdentityKappa:
    def test_kappa_one_is_transparent(self, base):
        ident = ScaledPosterior(base, np.ones(2))
        qs = np.array([0.05, 0.5, 0.95])
        np.testing.assert_allclose(
            ident.quantile_batch("omega", qs),
            base.quantile_batch("omega", qs),
        )
        assert ident.variance("beta") == pytest.approx(base.variance("beta"))
        assert ident.reliability_point(
            ResidualSurvival(alpha0=1.0, te=25.0)
        ) == pytest.approx(
            base.reliability_point(ResidualSurvival(alpha0=1.0, te=25.0)),
            rel=1e-9,
        )


class TestReliability:
    def test_reliability_point_in_unit_interval(self, scaled):
        survival = ResidualSurvival(alpha0=1.0, te=25.0)
        r = scaled.reliability_point(survival)
        assert 0.0 <= r <= 1.0

    def test_reliability_cdf_monotone_and_bounded(self, scaled):
        survival = ResidualSurvival(alpha0=1.0, te=25.0)
        grid = np.linspace(0.01, 0.99, 21)
        values = [scaled.reliability_cdf(r, survival) for r in grid]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert np.all(np.diff(values) >= -1e-9)
        assert scaled.reliability_cdf(0.0, survival) == 0.0
        assert scaled.reliability_cdf(1.0, survival) == 1.0

    def test_reliability_quantile_inverts_cdf(self, scaled):
        survival = ResidualSurvival(alpha0=1.0, te=25.0)
        for p in (0.1, 0.5, 0.9):
            r = scaled.reliability_quantile(p, survival)
            assert scaled.reliability_cdf(r, survival) == pytest.approx(
                p, abs=1e-4
            )

    def test_residual_quantiles_decrease_in_level(self, scaled):
        """Residual D = −log R is antitone in R, so residual quantiles
        at increasing levels must decrease... no: D quantile at level p
        equals −log(R quantile at 1−p); check monotone increasing in p."""
        survival = ResidualSurvival(alpha0=1.0, te=25.0)
        levels = np.array([0.05, 0.25, 0.5, 0.75, 0.95])
        ds = scaled.residual_quantile_batch(levels, survival)
        assert np.all(np.diff(ds) >= -1e-12)
        assert np.all(ds >= 0.0)

    def test_residual_interval_widens_with_kappa(self, base, scaled):
        survival = ResidualSurvival(alpha0=1.0, te=25.0)
        lo, hi = base.residual_interval(0.9, survival)
        slo, shi = scaled.residual_interval(0.9, survival)
        assert shi - slo > hi - lo


class TestValidation:
    def test_rejects_bad_shape(self, base):
        with pytest.raises(ValueError, match="shape"):
            ScaledPosterior(base, np.ones(3))

    @pytest.mark.parametrize("kappa", [[0.0, 1.0], [-1.0, 1.0],
                                       [np.nan, 1.0], [np.inf, 1.0]])
    def test_rejects_nonpositive_or_nonfinite(self, base, kappa):
        with pytest.raises(ValueError, match="positive and finite"):
            ScaledPosterior(base, np.asarray(kappa))

    def test_method_name_and_base(self, base, scaled):
        assert scaled.method_name == "VB2+SW"
        assert scaled.base is base
        np.testing.assert_array_equal(scaled.kappa, KAPPA)
        # kappa property returns a copy — mutating it must not leak.
        k = scaled.kappa
        k[0] = 99.0
        np.testing.assert_array_equal(scaled.kappa, KAPPA)

    def test_log_pdf_grid_integrates_to_one(self, scaled):
        omega = np.linspace(5.0, 120.0, 301)
        beta = np.linspace(0.005, 0.4, 301)
        grid = scaled.log_pdf_grid(omega, beta)
        mass = np.trapezoid(
            np.trapezoid(np.exp(grid), beta, axis=1), omega
        )
        assert mass == pytest.approx(1.0, abs=0.02)
