"""Unit tests for GridPosterior against an analytically known density.

A product of two independent gammas has every moment and quantile in
closed form, so the grid machinery (normalisation, marginals, cross
moments, quantile inversion, reliability transforms) can be validated
without any inference in the loop.
"""

import math

import numpy as np
import pytest

from repro.bayes.grid_posterior import GridPosterior
from repro.core.reliability import reliability_increment
from repro.stats.gamma_dist import GammaDistribution
from repro.stats.quadrature import TensorGrid

OMEGA_DIST = GammaDistribution(shape=40.0, rate=1.0)
BETA_DIST = GammaDistribution(shape=9.0, rate=9.0e5)  # mean 1e-5


@pytest.fixture(scope="module")
def grid_posterior():
    grid = TensorGrid.simpson(
        (OMEGA_DIST.ppf(1e-7), OMEGA_DIST.ppf(1.0 - 1e-7)),
        (BETA_DIST.ppf(1e-7), BETA_DIST.ppf(1.0 - 1e-7)),
        301,
        301,
    )
    log_post = np.add.outer(
        np.asarray(OMEGA_DIST.log_pdf(grid.x)),
        np.asarray(BETA_DIST.log_pdf(grid.y)),
    )

    def log_pdf_fn(omega, beta):
        return np.add.outer(
            np.asarray(OMEGA_DIST.log_pdf(np.asarray(omega))),
            np.asarray(BETA_DIST.log_pdf(np.asarray(beta))),
        )

    return GridPosterior(grid, log_post, log_pdf_fn=log_pdf_fn)


class TestAgainstAnalyticDensity:
    def test_normaliser_is_one(self, grid_posterior):
        # The density is already normalised: log Z ~ 0.
        assert grid_posterior.log_normaliser == pytest.approx(0.0, abs=1e-5)

    def test_means(self, grid_posterior):
        assert grid_posterior.mean("omega") == pytest.approx(
            OMEGA_DIST.mean, rel=1e-6
        )
        assert grid_posterior.mean("beta") == pytest.approx(
            BETA_DIST.mean, rel=1e-6
        )

    def test_variances(self, grid_posterior):
        assert grid_posterior.variance("omega") == pytest.approx(
            OMEGA_DIST.variance, rel=1e-4
        )
        assert grid_posterior.variance("beta") == pytest.approx(
            BETA_DIST.variance, rel=1e-4
        )

    def test_independence_zero_covariance(self, grid_posterior):
        scale = OMEGA_DIST.std * BETA_DIST.std
        assert abs(grid_posterior.covariance()) < 1e-8 * scale

    def test_third_central_moment(self, grid_posterior):
        assert grid_posterior.central_moment("omega", 3) == pytest.approx(
            OMEGA_DIST.central_moment(3), rel=1e-3
        )

    def test_quantiles(self, grid_posterior):
        for q in (0.005, 0.25, 0.5, 0.75, 0.995):
            assert grid_posterior.quantile("omega", q) == pytest.approx(
                float(OMEGA_DIST.ppf(q)), rel=1e-3
            )
            # The beta axis is more skewed; the piecewise-linear CDF
            # inversion carries a slightly larger relative error there.
            assert grid_posterior.quantile("beta", q) == pytest.approx(
                float(BETA_DIST.ppf(q)), rel=3e-3
            )

    def test_log_pdf_grid_reevaluation(self, grid_posterior):
        omega = np.array([35.0, 40.0])
        beta = np.array([8e-6, 1e-5])
        values = grid_posterior.log_pdf_grid(omega, beta)
        expected = np.add.outer(
            np.asarray(OMEGA_DIST.log_pdf(omega)),
            np.asarray(BETA_DIST.log_pdf(beta)),
        )
        assert values == pytest.approx(expected, abs=1e-5)

    def test_reliability_point_analytic(self, grid_posterior):
        # R = exp(-omega c(beta)); for independent gammas
        # E[R] = E_beta[(b/(b+c(beta)))^a] — compute by 1-D quadrature.
        te, u = 240_000.0, 1000.0
        c = reliability_increment(1.0, te, u)
        beta_nodes = np.linspace(
            float(BETA_DIST.ppf(1e-9)), float(BETA_DIST.ppf(1 - 1e-9)), 20_001
        )
        weights = np.asarray(BETA_DIST.pdf(beta_nodes))
        c_vals = np.asarray(c(beta_nodes))
        mgf = (1.0 / (1.0 + c_vals / OMEGA_DIST.rate)) ** OMEGA_DIST.shape
        expected = np.trapezoid(weights * mgf, beta_nodes)
        assert grid_posterior.reliability_point(c) == pytest.approx(
            expected, rel=1e-6
        )

    def test_reliability_quantile_consistent_with_cdf(self, grid_posterior):
        c = reliability_increment(1.0, 240_000.0, 10_000.0)
        for q in (0.05, 0.5, 0.95):
            r_q = grid_posterior.reliability_quantile(q, c)
            assert grid_posterior.reliability_cdf(r_q, c) == pytest.approx(
                q, abs=2e-4
            )
