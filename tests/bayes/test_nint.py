"""Tests for the NINT grid posterior."""

import math

import numpy as np
import pytest

from repro.bayes.nint import (
    fit_nint,
    integration_limits_from_posterior,
    log_posterior_matrix,
)
from repro.models.gamma_srm import GammaSRM


class TestLogPosteriorMatrix:
    def test_matches_model_loglik_pointwise_times(
        self, times_data, info_prior_times
    ):
        omega_nodes = np.array([35.0, 45.0])
        beta_nodes = np.array([8e-6, 1.2e-5])
        matrix = log_posterior_matrix(
            times_data, info_prior_times, 1.0, omega_nodes, beta_nodes
        )
        for i, omega in enumerate(omega_nodes):
            for j, beta in enumerate(beta_nodes):
                model = GammaSRM(omega=omega, beta=beta, alpha0=1.0)
                expected = (
                    model.log_likelihood(times_data)
                    + info_prior_times.omega.log_pdf(omega)
                    + info_prior_times.beta.log_pdf(beta)
                )
                assert matrix[i, j] == pytest.approx(expected, rel=1e-10)

    def test_matches_model_loglik_pointwise_grouped(
        self, grouped_data, info_prior_grouped
    ):
        omega_nodes = np.array([40.0])
        beta_nodes = np.array([0.03, 0.05])
        matrix = log_posterior_matrix(
            grouped_data, info_prior_grouped, 1.0, omega_nodes, beta_nodes
        )
        for j, beta in enumerate(beta_nodes):
            model = GammaSRM(omega=40.0, beta=beta, alpha0=1.0)
            expected = (
                model.log_likelihood(grouped_data)
                + info_prior_grouped.omega.log_pdf(40.0)
                + info_prior_grouped.beta.log_pdf(beta)
            )
            # The grouped likelihood includes the -log x_i! terms.
            assert matrix[0, j] == pytest.approx(expected, rel=1e-10)

    def test_grouped_broadcast_matches_per_row_loop(
        self, grouped_data, info_prior_grouped
    ):
        # The grouped beta term is filled with one incomplete-gamma
        # broadcast over the whole (beta, edge) mesh; it must agree with
        # the straightforward one-row-per-beta evaluation up to the
        # BLAS reduction order of the count matmul (a few ulp).
        import scipy.special as sc

        omega_nodes = np.linspace(25.0, 65.0, 7)
        beta_nodes = np.linspace(0.015, 0.09, 9)
        matrix = log_posterior_matrix(
            grouped_data, info_prior_grouped, 1.0, omega_nodes, beta_nodes
        )
        edges = grouped_data.interval_edges()
        counts = np.asarray(grouped_data.counts, dtype=float)
        norm = float(np.sum(sc.gammaln(counts + 1.0)))
        for j, beta in enumerate(beta_nodes):
            cdf = sc.gammainc(1.0, beta * edges)
            incs = np.diff(cdf)[counts > 0]
            beta_part = float(np.log(incs) @ counts[counts > 0]) - norm
            tail = float(sc.gammainc(1.0, beta * grouped_data.horizon))
            beta_term = beta_part + float(
                info_prior_grouped.beta.log_pdf(beta)
            )
            for i, omega in enumerate(omega_nodes):
                omega_part = grouped_data.total_count * np.log(omega) + float(
                    info_prior_grouped.omega.log_pdf(omega)
                )
                expected = omega_part + beta_term - omega * tail
                assert matrix[i, j] == pytest.approx(expected, rel=1e-13)

    def test_grouped_zero_increment_rows_are_neg_inf(
        self, grouped_data, info_prior_grouped
    ):
        # A beta so large that an occupied far interval has zero CDF
        # increment must give -inf posterior mass, not a warning or NaN.
        matrix = log_posterior_matrix(
            grouped_data, info_prior_grouped, 1.0,
            np.array([40.0]), np.array([1e6]),
        )
        assert matrix[0, 0] == -np.inf

    def test_rejects_nonpositive_nodes(self, times_data, info_prior_times):
        with pytest.raises(ValueError):
            log_posterior_matrix(
                times_data, info_prior_times, 1.0, np.array([0.0]), np.array([1.0])
            )


class TestLimitsHeuristic:
    def test_paper_heuristic(self, vb2_times):
        limits = integration_limits_from_posterior(vb2_times)
        assert limits["omega"][0] == pytest.approx(
            vb2_times.quantile("omega", 0.005) * 0.5
        )
        assert limits["omega"][1] == pytest.approx(
            vb2_times.quantile("omega", 0.995) * 1.5
        )
        assert limits["beta"][0] < vb2_times.mean("beta") < limits["beta"][1]


class TestGridPosterior:
    def test_density_normalised(self, nint_times):
        density = nint_times.density
        grid = nint_times.grid
        assert grid.integrate(density) == pytest.approx(1.0, rel=1e-9)

    def test_moments_match_mcmc_free_reference(self, nint_times, vb2_times):
        # Two fully independent approximations must agree closely.
        assert nint_times.mean("omega") == pytest.approx(
            vb2_times.mean("omega"), rel=0.01
        )
        assert nint_times.mean("beta") == pytest.approx(
            vb2_times.mean("beta"), rel=0.02
        )

    def test_quantile_inverts_marginal_cdf(self, nint_times):
        for q in (0.005, 0.5, 0.995):
            value = nint_times.quantile("omega", q)
            assert nint_times.grid.x[0] <= value <= nint_times.grid.x[-1]
        assert nint_times.quantile("omega", 0.25) < nint_times.quantile("omega", 0.75)

    def test_log_pdf_grid_reevaluation(self, nint_times):
        omega = np.linspace(35.0, 55.0, 5)
        beta = np.linspace(6e-6, 1.4e-5, 5)
        values = nint_times.log_pdf_grid(omega, beta)
        assert values.shape == (5, 5)
        # Normalised: the peak of the log density should be around the
        # density scale of the stored grid.
        assert np.all(np.isfinite(values))

    def test_cross_moment_implies_negative_covariance(self, nint_times):
        assert nint_times.covariance() < 0.0

    def test_central_moment_skewness(self, nint_times):
        assert nint_times.central_moment("omega", 3) > 0.0

    def test_reliability_point_and_cdf(self, nint_times, times_data):
        from repro.core.reliability import reliability_increment

        c = reliability_increment(1.0, times_data.horizon, 1000.0)
        point = nint_times.reliability_point(c)
        assert 0.9 < point < 1.0
        assert nint_times.reliability_cdf(0.0, c) == 0.0
        assert nint_times.reliability_cdf(1.0, c) == 1.0
        mid = nint_times.reliability_cdf(point, c)
        assert 0.2 < mid < 0.8

    def test_invalid_quantile_level(self, nint_times):
        with pytest.raises(ValueError):
            nint_times.quantile("omega", 1.5)


class TestFitNint:
    def test_needs_limits_or_reference(self, times_data, info_prior_times):
        with pytest.raises(ValueError):
            fit_nint(times_data, info_prior_times)

    def test_explicit_limits(self, times_data, info_prior_times):
        posterior = fit_nint(
            times_data,
            info_prior_times,
            limits={"omega": (20.0, 80.0), "beta": (2e-6, 3e-5)},
            n_omega=101,
            n_beta=101,
        )
        assert 40.0 < posterior.mean("omega") < 50.0

    def test_invalid_limits(self, times_data, info_prior_times):
        with pytest.raises(ValueError):
            fit_nint(
                times_data,
                info_prior_times,
                limits={"omega": (-1.0, 10.0), "beta": (1e-6, 1e-5)},
            )

    def test_resolution_convergence(self, times_data, info_prior_times, vb2_times):
        # Doubling the resolution should barely move the moments
        # (Simpson is O(h^4)).
        coarse = fit_nint(
            times_data, info_prior_times, reference_posterior=vb2_times,
            n_omega=81, n_beta=81,
        )
        fine = fit_nint(
            times_data, info_prior_times, reference_posterior=vb2_times,
            n_omega=161, n_beta=161,
        )
        assert coarse.mean("omega") == pytest.approx(fine.mean("omega"), rel=1e-5)
        assert coarse.variance("beta") == pytest.approx(
            fine.variance("beta"), rel=1e-4
        )
