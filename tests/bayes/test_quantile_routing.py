"""Tests for the batched quantile contract and its scalar delegations.

Scalar ``quantile`` / ``reliability_quantile`` are now thin wrappers
over the batched entry points, so these tests pin (a) exact agreement
between the two spellings, (b) the rank convention against a naive
sorted-array oracle, and (c) the vectorized quantile-coverage helpers
against their scalar forms.
"""

import numpy as np
import pytest

from repro.bayes.mcmc.quantile_ci import (
    quantile_coverage_interval,
    sample_size_for_quantile,
)
from repro.bayes.sample_posterior import EmpiricalPosterior

_LEVELS = [0.005, 0.025, 0.1, 0.5, 0.9, 0.975, 0.995]


@pytest.fixture(scope="module")
def posterior():
    rng = np.random.default_rng(77)
    samples = np.column_stack(
        [rng.gamma(40.0, 1.4, size=5_000), rng.gamma(3.0, 0.02, size=5_000)]
    )
    return EmpiricalPosterior(samples, method_name="test")


def _window(beta):
    return np.exp(-50.0 * beta) - np.exp(-55.0 * beta)


class TestMarginalQuantiles:
    def test_scalar_delegates_to_batch(self, posterior):
        for param in ("omega", "beta"):
            batched = posterior.quantile_batch(param, np.array(_LEVELS))
            for level, expected in zip(_LEVELS, batched):
                assert posterior.quantile(param, level) == expected

    def test_rank_convention_against_sorted_oracle(self, posterior):
        values = np.sort(posterior.samples[:, 0])
        for level in _LEVELS:
            rank = min(max(int(round(level * values.size)), 1), values.size)
            assert posterior.quantile("omega", level) == values[rank - 1]

    def test_batch_preserves_level_order(self, posterior):
        out = posterior.quantile_batch("beta", np.array(_LEVELS))
        assert np.all(np.diff(out) >= 0.0)

    def test_validation(self, posterior):
        with pytest.raises(ValueError):
            posterior.quantile("omega", 1.0)
        with pytest.raises(ValueError):
            posterior.quantile_batch("omega", np.array([0.5, 0.0]))


class TestReliabilityQuantiles:
    def test_scalar_delegates_to_batch(self, posterior):
        batched = posterior.reliability_quantile_batch(np.array(_LEVELS), _window)
        for level, expected in zip(_LEVELS, batched):
            assert posterior.reliability_quantile(level, _window) == expected

    def test_batch_equals_per_level_loop(self, posterior):
        # The single-sort batch must agree exactly with repeated
        # single-level calls (each of which re-sorts).
        levels = np.array(_LEVELS)
        batched = posterior.reliability_quantile_batch(levels, _window)
        loop = [posterior.reliability_quantile(q, _window) for q in _LEVELS]
        assert np.array_equal(batched, np.array(loop))

    def test_interval_routes_through_batch(self, posterior):
        lo, hi = posterior.reliability_interval(0.95, _window)
        assert lo == posterior.reliability_quantile(0.025, _window)
        assert hi == posterior.reliability_quantile(0.975, _window)
        assert 0.0 <= lo <= hi <= 1.0

    def test_validation(self, posterior):
        with pytest.raises(ValueError):
            posterior.reliability_quantile(0.0, _window)
        with pytest.raises(ValueError):
            posterior.reliability_quantile_batch(np.array([1.5]), _window)


class TestVectorizedQuantileCI:
    def test_array_levels_match_scalar_calls(self):
        p = np.array([0.005, 0.025, 0.5, 0.975])
        lo, hi = quantile_coverage_interval(20_000, p, 0.95)
        for i, level in enumerate(p):
            slo, shi = quantile_coverage_interval(20_000, float(level), 0.95)
            assert lo[i] == slo and hi[i] == shi

    def test_scalar_in_scalar_out(self):
        lo, hi = quantile_coverage_interval(1_000, 0.1, 0.95)
        assert isinstance(lo, float) and isinstance(hi, float)

    def test_sample_size_vectorizes(self):
        p = np.array([0.025, 0.975])
        n = sample_size_for_quantile(p, 0.001, 0.95)
        assert n.shape == (2,)
        for i, level in enumerate(p):
            assert n[i] == sample_size_for_quantile(float(level), 0.001, 0.95)

    def test_sample_size_scalar_returns_int(self):
        assert isinstance(sample_size_for_quantile(0.025, 0.001, 0.95), int)
