"""Tests for the MAP finder and the Laplace approximation."""

import math

import numpy as np
import pytest

from repro.bayes.laplace import find_map, fit_laplace, log_posterior_fn
from repro.bayes.normal_posterior import NormalPosterior
from repro.core.reliability import reliability_increment
from repro.mle.newton import fit_mle_newton


class TestLogPosterior:
    def test_out_of_domain_is_minus_inf(self, times_data, info_prior_times):
        log_post = log_posterior_fn(times_data, info_prior_times, 1.0)
        assert log_post(-1.0, 1e-5) == -math.inf
        assert log_post(40.0, 0.0) == -math.inf


class TestFindMap:
    def test_map_is_local_maximum(self, times_data, info_prior_times):
        log_post = log_posterior_fn(times_data, info_prior_times, 1.0)
        omega_hat, beta_hat = find_map(times_data, info_prior_times)
        centre = log_post(omega_hat, beta_hat)
        for d_omega in (-1e-3, 1e-3):
            for d_beta in (-1e-9, 1e-9):
                assert log_post(omega_hat + d_omega, beta_hat + d_beta) <= centre + 1e-9

    def test_flat_prior_map_equals_mle(self, times_data, flat_prior):
        # With flat priors the MAP is the MLE (paper Section 4.2).
        omega_hat, beta_hat = find_map(times_data, flat_prior)
        mle = fit_mle_newton(times_data, information=False)
        assert omega_hat == pytest.approx(mle.omega, rel=1e-4)
        assert beta_hat == pytest.approx(mle.beta, rel=1e-4)

    def test_informative_prior_shrinks_towards_prior_mean(
        self, times_data, info_prior_times, flat_prior
    ):
        map_info, _ = find_map(times_data, info_prior_times)
        map_flat, _ = find_map(times_data, flat_prior)
        # Prior mean for omega is 50; the informative MAP moves toward it.
        assert abs(map_info - 50.0) < abs(map_flat - 50.0)

    def test_grouped_data(self, grouped_data, info_prior_grouped):
        omega_hat, beta_hat = find_map(grouped_data, info_prior_grouped)
        assert 35.0 < omega_hat < 55.0
        assert 0.01 < beta_hat < 0.08


class TestFitLaplace:
    def test_mean_is_map(self, times_data, info_prior_times):
        posterior = fit_laplace(times_data, info_prior_times)
        omega_hat, beta_hat = find_map(times_data, info_prior_times)
        assert posterior.mean("omega") == pytest.approx(omega_hat, rel=1e-6)
        assert posterior.mean("beta") == pytest.approx(beta_hat, rel=1e-6)

    def test_map_below_posterior_mean_for_right_skew(
        self, times_data, info_prior_times, nint_times
    ):
        # The paper's explanation of LAPL's bias (Figure 1 discussion):
        # right-skewed posterior => MAP < E[omega].
        posterior = fit_laplace(times_data, info_prior_times)
        assert posterior.mean("omega") < nint_times.mean("omega")

    def test_negative_covariance(self, times_data, info_prior_times):
        posterior = fit_laplace(times_data, info_prior_times)
        assert posterior.covariance() < 0.0

    def test_symmetric_marginals(self, times_data, info_prior_times):
        posterior = fit_laplace(times_data, info_prior_times)
        mean = posterior.mean("omega")
        lo, hi = posterior.credible_interval("omega", 0.99)
        assert hi - mean == pytest.approx(mean - lo, rel=1e-9)
        assert posterior.central_moment("omega", 3) == 0.0

    def test_variance_close_to_nint_for_peaked_posterior(
        self, times_data, info_prior_times, nint_times
    ):
        posterior = fit_laplace(times_data, info_prior_times)
        assert posterior.variance("beta") == pytest.approx(
            nint_times.variance("beta"), rel=0.1
        )

    def test_diagnostics_attached(self, times_data, info_prior_times):
        posterior = fit_laplace(times_data, info_prior_times)
        assert "map" in posterior.diagnostics
        assert posterior.diagnostics["alpha0"] == 1.0


class TestNormalPosterior:
    def test_validation(self):
        with pytest.raises(ValueError):
            NormalPosterior(np.array([1.0]), np.eye(2))
        with pytest.raises(ValueError):
            NormalPosterior(np.array([1.0, 1.0]), np.eye(3))
        with pytest.raises(ValueError):
            NormalPosterior(np.array([1.0, 1.0]), -np.eye(2))

    def test_moments(self):
        cov = np.array([[4.0, -0.5], [-0.5, 0.25]])
        posterior = NormalPosterior(np.array([40.0, 2.0]), cov)
        assert posterior.mean("omega") == 40.0
        assert posterior.variance("beta") == 0.25
        assert posterior.covariance() == pytest.approx(-0.5)
        assert posterior.cross_moment() == pytest.approx(40.0 * 2.0 - 0.5)

    def test_normal_central_moments(self):
        posterior = NormalPosterior(np.array([0.0, 0.0]), np.diag([4.0, 1.0]))
        assert posterior.central_moment("omega", 2) == pytest.approx(4.0)
        assert posterior.central_moment("omega", 4) == pytest.approx(48.0)
        assert posterior.central_moment("omega", 3) == 0.0

    def test_quantiles_can_be_negative(self):
        # The known Laplace pathology the paper prints in brackets.
        posterior = NormalPosterior(np.array([1.0, 0.001]), np.diag([1.0, 1.0]))
        assert posterior.quantile("beta", 0.005) < 0.0

    def test_log_pdf_grid(self):
        posterior = NormalPosterior(np.array([1.0, 2.0]), np.eye(2))
        grid = posterior.log_pdf_grid(np.array([0.5, 1.0]), np.array([1.5, 2.0, 2.5]))
        assert grid.shape == (2, 3)
        assert np.argmax(grid) == 1 * 3 + 1  # peak at (1.0, 2.0)

    def test_reliability_plug_in_point(self, times_data):
        posterior = NormalPosterior(
            np.array([40.0, 1e-5]), np.diag([36.0, 4e-12])
        )
        c = reliability_increment(1.0, times_data.horizon, 1000.0)
        point = posterior.reliability_point(c)
        expected = math.exp(-40.0 * float(c(1e-5)))
        assert point == pytest.approx(expected, rel=1e-12)

    def test_reliability_interval_can_exceed_one(self, times_data):
        # Small window, large variance: the delta-method upper bound
        # crosses 1 — the paper's <1.0024> phenomenon.
        posterior = NormalPosterior(
            np.array([40.0, 1e-5]), np.diag([100.0, 4e-11])
        )
        c = reliability_increment(1.0, times_data.horizon, 100.0)
        upper = posterior.reliability_quantile(0.9999, c)
        assert upper > 1.0

    def test_reliability_cdf_is_normal(self, times_data):
        posterior = NormalPosterior(np.array([40.0, 1e-5]), np.diag([36.0, 4e-12]))
        c = reliability_increment(1.0, times_data.horizon, 1000.0)
        point = posterior.reliability_point(c)
        assert posterior.reliability_cdf(point, c) == pytest.approx(0.5, abs=1e-9)

    def test_sampling(self, rng):
        cov = np.array([[4.0, -0.5], [-0.5, 0.25]])
        posterior = NormalPosterior(np.array([40.0, 2.0]), cov)
        draws = posterior.sample(200_000, rng)
        assert draws[:, 0].mean() == pytest.approx(40.0, abs=0.05)
        assert np.cov(draws.T)[0, 1] == pytest.approx(-0.5, abs=0.02)
