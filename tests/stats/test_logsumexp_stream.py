"""Edge-case and property tests for ``log_sum_exp_stream``.

The segmented reduction is the normalisation kernel of every VB2 fit
and of the lane-parallel Gibbs engine, and its raw ``reduceat``
implementation has two classic traps: a zero-width segment
(``starts[k] == starts[k+1]``) silently misread as one element, and a
trailing ``starts[k] == len(values)`` raising. These tests pin the
documented semantics — empty segment ⇒ ``-inf`` (log of an empty sum)
— plus stability properties against the scalar ``log_sum_exp``."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import backend as bk
from repro.stats.special import log_sum_exp, log_sum_exp_stream

BACKENDS = ["numpy", "portable"]


def stream(name, values, starts):
    B = bk.get_backend(name)
    return B.log_sum_exp_stream(
        np.asarray(values, dtype=float), np.asarray(starts)
    )


@pytest.mark.parametrize("name", BACKENDS)
class TestEdgeCases:
    def test_empty_segment_is_minus_inf(self, name):
        out = stream(name, [1.0, 2.0, 3.0], [0, 2, 2, 3])
        assert out[1] == -np.inf
        np.testing.assert_allclose(out[0], log_sum_exp([1.0, 2.0]))
        np.testing.assert_allclose(out[2], 3.0)

    def test_leading_and_trailing_empty_segments(self, name):
        out = stream(name, [5.0], [0, 0, 1, 1])
        assert out[0] == -np.inf
        assert out[1] == 5.0
        assert out[2] == -np.inf

    def test_all_segments_empty(self, name):
        out = stream(name, [], [0, 0, 0])
        assert np.all(np.isneginf(out))

    def test_single_element_segments(self, name):
        values = np.array([-3.0, 0.0, 700.0, -745.0])
        out = stream(name, values, [0, 1, 2, 3])
        np.testing.assert_array_equal(out, values)

    def test_all_minus_inf_lane(self, name):
        out = stream(name, [-np.inf, -np.inf, 1.0], [0, 2])
        assert out[0] == -np.inf
        np.testing.assert_allclose(out[1], log_sum_exp([-np.inf, 1.0]))

    def test_mixed_magnitude_cancellation(self, name):
        # A huge and a tiny term in one segment: the shifted form must
        # not overflow and must keep the tiny term's contribution.
        values = np.array([800.0, 800.0 + np.log(1e-16)])
        out = stream(name, values, [0])
        np.testing.assert_allclose(
            out[0], 800.0 + np.log1p(1e-16), rtol=0, atol=1e-12
        )

    def test_overflow_free_for_large_inputs(self, name):
        out = stream(name, [750.0, 750.0], [0])
        np.testing.assert_allclose(out[0], 750.0 + np.log(2.0))

    def test_invalid_starts_rejected(self, name):
        with pytest.raises(ValueError):
            stream(name, [1.0, 2.0], [1, 0])
        with pytest.raises(ValueError):
            stream(name, [1.0, 2.0], [0, 3])


class TestProperties:
    @given(
        values=st.lists(
            st.floats(
                min_value=-700.0, max_value=700.0,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1,
            max_size=40,
        ),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_segments_match_scalar_log_sum_exp(self, values, data):
        values = np.asarray(values)
        n_cuts = data.draw(st.integers(min_value=0, max_value=6))
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=values.size),
                    min_size=n_cuts,
                    max_size=n_cuts,
                )
            )
        )
        starts = np.array([0, *cuts], dtype=np.intp)
        for name in BACKENDS:
            out = stream(name, values, starts)
            bounds = np.append(starts, values.size)
            for k in range(starts.size):
                seg = values[bounds[k]: bounds[k + 1]]
                if seg.size == 0:
                    assert out[k] == -np.inf
                else:
                    np.testing.assert_allclose(
                        out[k], log_sum_exp(seg), rtol=0, atol=1e-10
                    )

    @given(
        shift=st.floats(min_value=-500.0, max_value=500.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_shift_equivariance(self, shift):
        values = np.array([0.3, -1.2, 4.0, 2.2, -0.5])
        starts = np.array([0, 2, 4])
        base = stream("numpy", values, starts)
        shifted = stream("numpy", values + shift, starts)
        np.testing.assert_allclose(shifted, base + shift, rtol=0, atol=1e-9)
