"""Tests for the Poisson helpers."""

import math

import numpy as np
import pytest
from scipy import stats as st

from repro.stats.poisson import log_poisson_pmf, poisson_interval, sample_poisson


class TestLogPmf:
    def test_matches_scipy(self):
        for mean in (0.5, 3.0, 40.0):
            for k in (0, 1, 5, 50):
                assert log_poisson_pmf(k, mean) == pytest.approx(
                    st.poisson.logpmf(k, mean), rel=1e-12
                )

    def test_zero_mean_point_mass(self):
        assert log_poisson_pmf(0, 0.0) == 0.0
        assert log_poisson_pmf(3, 0.0) == -math.inf

    def test_vectorised(self):
        out = log_poisson_pmf(np.arange(4), 2.0)
        assert out.shape == (4,)
        assert np.exp(out).sum() <= 1.0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            log_poisson_pmf(-1, 2.0)

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            log_poisson_pmf(1, -2.0)


class TestInterval:
    def test_covers_requested_mass(self):
        lo, hi = poisson_interval(40.0, 0.99)
        mass = st.poisson.cdf(hi, 40.0) - st.poisson.cdf(lo - 1, 40.0)
        assert mass >= 0.99

    def test_zero_mean(self):
        assert poisson_interval(0.0, 0.95) == (0, 0)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            poisson_interval(1.0, 1.5)


class TestSample:
    def test_returns_int(self, rng):
        value = sample_poisson(5.0, rng)
        assert isinstance(value, int)
        assert value >= 0

    def test_rejects_bad_mean(self, rng):
        with pytest.raises(ValueError):
            sample_poisson(-1.0, rng)
        with pytest.raises(ValueError):
            sample_poisson(math.inf, rng)
