"""Tests for the gamma distribution value class."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as stdist

from repro.stats.gamma_dist import GammaDistribution, gamma_kl_divergence

positive = st.floats(min_value=1e-2, max_value=1e3)


class TestConstruction:
    def test_rejects_nonpositive_shape(self):
        with pytest.raises(ValueError):
            GammaDistribution(0.0, 1.0)
        with pytest.raises(ValueError):
            GammaDistribution(-1.0, 1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            GammaDistribution(1.0, 0.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            GammaDistribution(math.inf, 1.0)
        with pytest.raises(ValueError):
            GammaDistribution(1.0, math.nan)

    def test_from_mean_std_roundtrip(self):
        dist = GammaDistribution.from_mean_std(50.0, 15.8)
        assert dist.mean == pytest.approx(50.0)
        assert dist.std == pytest.approx(15.8)

    def test_from_mean_std_paper_prior(self):
        # The paper's Info prior for omega: (50, 15.8) -> shape ~ 10.02.
        dist = GammaDistribution.from_mean_std(50.0, 15.8)
        assert dist.shape == pytest.approx((50.0 / 15.8) ** 2)


class TestMoments:
    def test_mean_variance(self):
        dist = GammaDistribution(3.0, 2.0)
        assert dist.mean == pytest.approx(1.5)
        assert dist.variance == pytest.approx(0.75)

    def test_mode(self):
        assert GammaDistribution(3.0, 2.0).mode == pytest.approx(1.0)
        assert GammaDistribution(0.5, 2.0).mode == 0.0

    def test_raw_moments_match_scipy(self):
        dist = GammaDistribution(2.5, 0.7)
        ref = stdist.gamma(a=2.5, scale=1.0 / 0.7)
        for k in range(1, 5):
            assert dist.moment(k) == pytest.approx(ref.moment(k), rel=1e-10)

    def test_central_moments(self):
        dist = GammaDistribution(4.0, 1.0)
        assert dist.central_moment(2) == pytest.approx(dist.variance, rel=1e-10)
        # Third central moment of gamma: 2 * shape / rate^3.
        assert dist.central_moment(3) == pytest.approx(8.0, rel=1e-9)

    def test_mean_log(self):
        dist = GammaDistribution(3.0, 2.0)
        samples = dist.sample(200_000, np.random.default_rng(0))
        assert dist.mean_log == pytest.approx(np.log(samples).mean(), abs=5e-3)

    def test_negative_moment_existence(self):
        dist = GammaDistribution(0.5, 1.0)
        with pytest.raises(ValueError):
            dist.moment(-1)


class TestDistributionFunctions:
    def test_pdf_cdf_sf_match_scipy(self):
        dist = GammaDistribution(2.0, 3.0)
        ref = stdist.gamma(a=2.0, scale=1.0 / 3.0)
        x = np.array([0.1, 0.5, 1.0, 2.0])
        assert dist.pdf(x) == pytest.approx(ref.pdf(x), rel=1e-10)
        assert dist.cdf(x) == pytest.approx(ref.cdf(x), rel=1e-10)
        assert dist.sf(x) == pytest.approx(ref.sf(x), rel=1e-10)

    def test_pdf_zero_outside_support(self):
        dist = GammaDistribution(2.0, 3.0)
        assert dist.pdf(0.0) == 0.0
        assert dist.pdf(-1.0) == 0.0
        assert dist.log_pdf(-1.0) == -math.inf

    def test_ppf_inverts_cdf(self):
        dist = GammaDistribution(5.0, 0.1)
        for q in (0.005, 0.025, 0.5, 0.975, 0.995):
            assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-10)

    def test_mgf_negative(self):
        dist = GammaDistribution(3.0, 2.0)
        c = 0.7
        samples = dist.sample(400_000, np.random.default_rng(1))
        assert dist.mgf_negative(c) == pytest.approx(
            np.exp(-c * samples).mean(), rel=5e-3
        )

    def test_mgf_negative_domain(self):
        dist = GammaDistribution(3.0, 2.0)
        with pytest.raises(ValueError):
            dist.mgf_negative(-2.5)

    @given(shape=positive, rate=positive, q=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=100)
    def test_ppf_cdf_roundtrip_property(self, shape, rate, q):
        dist = GammaDistribution(shape, rate)
        assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-8)


class TestSampling:
    def test_sample_moments(self, rng):
        dist = GammaDistribution(4.0, 0.5)
        samples = dist.sample(200_000, rng)
        assert samples.mean() == pytest.approx(dist.mean, rel=0.02)
        assert samples.var() == pytest.approx(dist.variance, rel=0.05)

    def test_as_scipy_equivalence(self):
        dist = GammaDistribution(2.0, 5.0)
        ref = dist.as_scipy()
        assert ref.mean() == pytest.approx(dist.mean)
        assert ref.std() == pytest.approx(dist.std)


class TestKLDivergence:
    def test_self_divergence_is_zero(self):
        dist = GammaDistribution(3.0, 2.0)
        assert gamma_kl_divergence(dist, dist) == pytest.approx(0.0, abs=1e-12)

    def test_nonnegative(self):
        p = GammaDistribution(3.0, 2.0)
        q = GammaDistribution(5.0, 1.0)
        assert gamma_kl_divergence(p, q) > 0.0

    def test_against_monte_carlo(self):
        p = GammaDistribution(4.0, 1.5)
        q = GammaDistribution(2.0, 0.5)
        samples = p.sample(400_000, np.random.default_rng(7))
        mc = np.mean(p.log_pdf(samples) - q.log_pdf(samples))
        assert gamma_kl_divergence(p, q) == pytest.approx(mc, rel=0.02)

    @given(a1=positive, b1=positive, a2=positive, b2=positive)
    @settings(max_examples=100)
    def test_nonnegativity_property(self, a1, b1, a2, b2):
        p = GammaDistribution(a1, b1)
        q = GammaDistribution(a2, b2)
        assert gamma_kl_divergence(p, q) >= -1e-8
