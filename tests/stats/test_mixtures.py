"""Tests for the finite mixture distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.gamma_dist import GammaDistribution
from repro.stats.mixtures import MixtureDistribution


def two_component():
    return MixtureDistribution(
        [GammaDistribution(2.0, 1.0), GammaDistribution(10.0, 2.0)],
        [0.3, 0.7],
    )


class TestConstruction:
    def test_weights_normalised(self):
        mix = MixtureDistribution(
            [GammaDistribution(2.0, 1.0), GammaDistribution(3.0, 1.0)], [2.0, 6.0]
        )
        assert mix.weights == pytest.approx([0.25, 0.75])

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            MixtureDistribution([], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            MixtureDistribution([GammaDistribution(1.0, 1.0)], [0.5, 0.5])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            MixtureDistribution(
                [GammaDistribution(1.0, 1.0), GammaDistribution(2.0, 1.0)],
                [0.5, -0.5],
            )

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            MixtureDistribution([GammaDistribution(1.0, 1.0)], [0.0])


class TestMoments:
    def test_mean_is_weighted_average(self):
        mix = two_component()
        assert mix.mean == pytest.approx(0.3 * 2.0 + 0.7 * 5.0)

    def test_variance_law_of_total_variance(self):
        mix = two_component()
        within = 0.3 * 2.0 + 0.7 * (10.0 / 4.0)
        between = 0.3 * (2.0 - mix.mean) ** 2 + 0.7 * (5.0 - mix.mean) ** 2
        assert mix.variance == pytest.approx(within + between)

    def test_single_component_degenerates(self):
        base = GammaDistribution(3.0, 2.0)
        mix = MixtureDistribution([base], [1.0])
        assert mix.mean == pytest.approx(base.mean)
        assert mix.variance == pytest.approx(base.variance)
        assert mix.central_moment(3) == pytest.approx(base.central_moment(3), rel=1e-9)

    def test_moment_linearity(self):
        mix = two_component()
        for k in range(4):
            expected = 0.3 * mix.components[0].moment(k) + 0.7 * mix.components[
                1
            ].moment(k)
            assert mix.moment(k) == pytest.approx(expected, rel=1e-10)


class TestDistributionFunctions:
    def test_pdf_integrates_to_one(self):
        mix = two_component()
        x = np.linspace(1e-6, 60.0, 20_001)
        integral = np.trapezoid(mix.pdf(x), x)
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_cdf_monotone(self):
        mix = two_component()
        x = np.linspace(0.0, 30.0, 500)
        cdf = mix.cdf(x)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_ppf_inverts_cdf(self):
        mix = two_component()
        for q in (0.005, 0.1, 0.5, 0.9, 0.995):
            assert mix.cdf(mix.ppf(q)) == pytest.approx(q, abs=1e-8)

    def test_ppf_bounded_by_component_quantiles(self):
        mix = two_component()
        q = 0.75
        lo = min(c.ppf(q) for c in mix.components)
        hi = max(c.ppf(q) for c in mix.components)
        assert lo <= mix.ppf(q) <= hi

    def test_interval_levels(self):
        mix = two_component()
        lo, hi = mix.interval(0.99)
        assert mix.cdf(lo) == pytest.approx(0.005, abs=1e-7)
        assert mix.cdf(hi) == pytest.approx(0.995, abs=1e-7)

    def test_invalid_quantile_levels(self):
        mix = two_component()
        with pytest.raises(ValueError):
            mix.ppf(0.0)
        with pytest.raises(ValueError):
            mix.interval(1.5)

    @given(
        w=st.floats(min_value=0.01, max_value=0.99),
        q=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=60)
    def test_quantile_roundtrip_property(self, w, q):
        mix = MixtureDistribution(
            [GammaDistribution(2.0, 1.0), GammaDistribution(40.0, 2.0)],
            [w, 1.0 - w],
        )
        assert mix.cdf(mix.ppf(q)) == pytest.approx(q, abs=1e-7)


class _OpaqueGamma:
    """Gamma component hidden behind a generic interface, to exercise the
    non-vectorized fallback path against the gamma fast path."""

    def __init__(self, shape, rate):
        self._g = GammaDistribution(shape, rate)

    @property
    def mean(self):
        return self._g.mean

    @property
    def variance(self):
        return self._g.variance

    def pdf(self, x):
        return self._g.pdf(x)

    def cdf(self, x):
        return self._g.cdf(x)

    def ppf(self, q):
        return self._g.ppf(q)

    def moment(self, k):
        return self._g.moment(k)

    def central_moment(self, k):
        return self._g.central_moment(k)

    def sample(self, size, rng):
        return self._g.sample(size, rng)


class TestBatchedQuantiles:
    def test_gamma_fast_path_detected(self):
        assert two_component().is_gamma_mixture
        generic = MixtureDistribution(
            [_OpaqueGamma(2.0, 1.0), _OpaqueGamma(10.0, 2.0)], [0.3, 0.7]
        )
        assert not generic.is_gamma_mixture

    def test_batched_ppf_matches_scalar_exactly(self):
        mix = two_component()
        levels = np.array([0.005, 0.1, 0.5, 0.9, 0.995])
        batch = mix.ppf(levels)
        scalars = np.array([mix.ppf(float(q)) for q in levels])
        assert np.array_equal(batch, scalars)

    def test_generic_path_agrees_with_fast_path(self):
        fast = two_component()
        generic = MixtureDistribution(
            [_OpaqueGamma(2.0, 1.0), _OpaqueGamma(10.0, 2.0)], [0.3, 0.7]
        )
        levels = np.array([0.01, 0.5, 0.99])
        assert generic.ppf(levels) == pytest.approx(fast.ppf(levels), abs=1e-8)
        x = np.linspace(0.1, 20.0, 7)
        assert generic.cdf(x) == pytest.approx(fast.cdf(x), abs=1e-12)
        assert generic.pdf(x) == pytest.approx(fast.pdf(x), abs=1e-12)

    def test_empty_level_array(self):
        out = two_component().ppf(np.empty(0))
        assert out.shape == (0,)

    def test_batched_rejects_out_of_range_level(self):
        mix = two_component()
        with pytest.raises(ValueError):
            mix.ppf(np.array([0.5, 1.0]))

    def test_interval_batch_matches_interval(self):
        mix = two_component()
        confs = np.array([0.9, 0.95, 0.99])
        batch = mix.interval_batch(confs)
        assert batch.shape == (3, 2)
        for row, conf in zip(batch, confs):
            lo, hi = mix.interval(float(conf))
            assert row[0] == lo
            assert row[1] == hi

    def test_interval_batch_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            two_component().interval_batch([0.9, 1.0])

    def test_extreme_levels(self):
        mix = two_component()
        levels = np.array([1e-6, 1.0 - 1e-6])
        batch = mix.ppf(levels)
        assert np.all(np.isfinite(batch))
        assert mix.cdf(batch[0]) == pytest.approx(1e-6, abs=1e-9)
        assert mix.cdf(batch[1]) == pytest.approx(1.0 - 1e-6, abs=1e-9)

    def test_single_component_degenerate_bracket(self):
        # One component: the bracket collapses (lo == hi) and the batch
        # bisection pins the root at the exact component quantile.
        base = GammaDistribution(3.0, 2.0)
        mix = MixtureDistribution([base], [1.0])
        levels = np.array([1e-6, 0.25, 0.5, 0.75, 1.0 - 1e-6])
        batch = mix.ppf(levels)
        expected = np.array([base.ppf(float(q)) for q in levels])
        assert batch == pytest.approx(expected, rel=1e-12)


class TestMomentStability:
    def test_variance_of_concentrated_mixture_stays_positive(self):
        # Large-N VB2 posteriors: components centred near 50 with
        # relative width ~1e-4. The raw-moment form E[X²]-E[X]² loses
        # ~8 digits to cancellation here; the shifted form keeps full
        # precision.
        shapes = np.linspace(0.999e8, 1.001e8, 21)
        comps = [GammaDistribution(float(s), float(s) / 50.0) for s in shapes]
        mix = MixtureDistribution(comps, np.full(21, 1.0 / 21))
        var = mix.variance
        assert var > 0.0
        within = sum(w * c.variance for w, c in zip(mix.weights, comps))
        between = sum(
            w * (c.mean - mix.mean) ** 2 for w, c in zip(mix.weights, comps)
        )
        assert var == pytest.approx(within + between, rel=1e-12)
        assert mix.central_moment(2) == pytest.approx(var, rel=1e-10)

    def test_central_moment_odd_symmetry(self):
        # Two mirrored components about the mean: odd central moments of
        # the between-component part cancel.
        mix = MixtureDistribution(
            [GammaDistribution(400.0, 10.0), GammaDistribution(400.0, 10.0)],
            [0.5, 0.5],
        )
        single = GammaDistribution(400.0, 10.0)
        assert mix.central_moment(3) == pytest.approx(
            single.central_moment(3), rel=1e-9
        )


class TestSampling:
    def test_sample_moments(self, rng):
        mix = two_component()
        draws = mix.sample(300_000, rng)
        assert draws.mean() == pytest.approx(mix.mean, rel=0.01)
        assert draws.var() == pytest.approx(mix.variance, rel=0.03)

    def test_sample_size(self, rng):
        mix = two_component()
        assert mix.sample(1234, rng).shape == (1234,)
