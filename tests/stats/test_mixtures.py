"""Tests for the finite mixture distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.gamma_dist import GammaDistribution
from repro.stats.mixtures import MixtureDistribution


def two_component():
    return MixtureDistribution(
        [GammaDistribution(2.0, 1.0), GammaDistribution(10.0, 2.0)],
        [0.3, 0.7],
    )


class TestConstruction:
    def test_weights_normalised(self):
        mix = MixtureDistribution(
            [GammaDistribution(2.0, 1.0), GammaDistribution(3.0, 1.0)], [2.0, 6.0]
        )
        assert mix.weights == pytest.approx([0.25, 0.75])

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            MixtureDistribution([], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            MixtureDistribution([GammaDistribution(1.0, 1.0)], [0.5, 0.5])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            MixtureDistribution(
                [GammaDistribution(1.0, 1.0), GammaDistribution(2.0, 1.0)],
                [0.5, -0.5],
            )

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            MixtureDistribution([GammaDistribution(1.0, 1.0)], [0.0])


class TestMoments:
    def test_mean_is_weighted_average(self):
        mix = two_component()
        assert mix.mean == pytest.approx(0.3 * 2.0 + 0.7 * 5.0)

    def test_variance_law_of_total_variance(self):
        mix = two_component()
        within = 0.3 * 2.0 + 0.7 * (10.0 / 4.0)
        between = 0.3 * (2.0 - mix.mean) ** 2 + 0.7 * (5.0 - mix.mean) ** 2
        assert mix.variance == pytest.approx(within + between)

    def test_single_component_degenerates(self):
        base = GammaDistribution(3.0, 2.0)
        mix = MixtureDistribution([base], [1.0])
        assert mix.mean == pytest.approx(base.mean)
        assert mix.variance == pytest.approx(base.variance)
        assert mix.central_moment(3) == pytest.approx(base.central_moment(3), rel=1e-9)

    def test_moment_linearity(self):
        mix = two_component()
        for k in range(4):
            expected = 0.3 * mix.components[0].moment(k) + 0.7 * mix.components[
                1
            ].moment(k)
            assert mix.moment(k) == pytest.approx(expected, rel=1e-10)


class TestDistributionFunctions:
    def test_pdf_integrates_to_one(self):
        mix = two_component()
        x = np.linspace(1e-6, 60.0, 20_001)
        integral = np.trapezoid(mix.pdf(x), x)
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_cdf_monotone(self):
        mix = two_component()
        x = np.linspace(0.0, 30.0, 500)
        cdf = mix.cdf(x)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_ppf_inverts_cdf(self):
        mix = two_component()
        for q in (0.005, 0.1, 0.5, 0.9, 0.995):
            assert mix.cdf(mix.ppf(q)) == pytest.approx(q, abs=1e-8)

    def test_ppf_bounded_by_component_quantiles(self):
        mix = two_component()
        q = 0.75
        lo = min(c.ppf(q) for c in mix.components)
        hi = max(c.ppf(q) for c in mix.components)
        assert lo <= mix.ppf(q) <= hi

    def test_interval_levels(self):
        mix = two_component()
        lo, hi = mix.interval(0.99)
        assert mix.cdf(lo) == pytest.approx(0.005, abs=1e-7)
        assert mix.cdf(hi) == pytest.approx(0.995, abs=1e-7)

    def test_invalid_quantile_levels(self):
        mix = two_component()
        with pytest.raises(ValueError):
            mix.ppf(0.0)
        with pytest.raises(ValueError):
            mix.interval(1.5)

    @given(
        w=st.floats(min_value=0.01, max_value=0.99),
        q=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=60)
    def test_quantile_roundtrip_property(self, w, q):
        mix = MixtureDistribution(
            [GammaDistribution(2.0, 1.0), GammaDistribution(40.0, 2.0)],
            [w, 1.0 - w],
        )
        assert mix.cdf(mix.ppf(q)) == pytest.approx(q, abs=1e-7)


class TestSampling:
    def test_sample_moments(self, rng):
        mix = two_component()
        draws = mix.sample(300_000, rng)
        assert draws.mean() == pytest.approx(mix.mean, rel=0.01)
        assert draws.var() == pytest.approx(mix.variance, rel=0.03)

    def test_sample_size(self, rng):
        mix = two_component()
        assert mix.sample(1234, rng).shape == (1234,)
