"""Tests for the stable special-function helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import special as sc
from scipy import stats as stdist

from repro.stats.special import (
    digamma,
    gamma_cdf_increment,
    gamma_sf_ratio,
    log1mexp,
    log_factorial,
    log_gamma_cdf,
    log_gamma_cdf_increment,
    log_gamma_fn,
    log_gamma_sf,
    log_sum_exp,
    log_sum_exp_stream,
    logsumexp,
)


class TestLog1mExp:
    def test_matches_naive_for_moderate_values(self):
        for x in (-0.1, -0.5, -1.0, -3.0):
            assert log1mexp(x) == pytest.approx(math.log(1.0 - math.exp(x)), rel=1e-12)

    def test_tiny_argument_does_not_underflow(self):
        # exp(-1e-18) == 1 in float, but log1mexp must stay finite.
        assert math.isfinite(log1mexp(-1e-18))
        assert log1mexp(-1e-18) == pytest.approx(math.log(1e-18), rel=1e-6)

    def test_zero_maps_to_minus_infinity(self):
        assert log1mexp(0.0) == -math.inf

    def test_rejects_positive_input(self):
        with pytest.raises(ValueError):
            log1mexp(0.5)

    def test_vectorised(self):
        x = np.array([-0.5, -2.0, -50.0])
        out = log1mexp(x)
        assert out.shape == (3,)
        assert np.all(np.isfinite(out))

    @given(st.floats(min_value=-700.0, max_value=-1e-10))
    @settings(max_examples=200)
    def test_always_negative_and_finite(self, x):
        value = log1mexp(x)
        assert math.isfinite(value)
        assert value <= 0.0


class TestLogSumExp:
    def test_simple_reduction(self):
        values = np.log([1.0, 2.0, 3.0])
        assert logsumexp(values) == pytest.approx(math.log(6.0))

    def test_with_weights(self):
        values = np.log([1.0, 1.0])
        assert logsumexp(values, weights=np.array([2.0, 3.0])) == pytest.approx(
            math.log(5.0)
        )

    def test_handles_minus_infinity(self):
        values = np.array([-math.inf, 0.0])
        assert logsumexp(values) == pytest.approx(0.0)

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=20)
    )
    @settings(max_examples=100)
    def test_shift_invariance(self, values):
        arr = np.asarray(values)
        shifted = logsumexp(arr + 5.0)
        assert shifted == pytest.approx(logsumexp(arr) + 5.0, rel=1e-9, abs=1e-9)


class TestLogSumExpStream:
    """The scalar/segmented bit-identity contract the fleet engine
    rests on: a segment of a large concatenation must reduce to the
    same float as the scalar helper applied to that slice alone."""

    def test_matches_scipy_to_rounding(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            x = rng.normal(scale=rng.uniform(0.5, 40.0), size=rng.integers(1, 200))
            assert log_sum_exp(x) == pytest.approx(float(sc.logsumexp(x)), rel=1e-13)

    def test_segments_bit_identical_to_scalar_calls(self):
        rng = np.random.default_rng(12)
        for _ in range(20):
            sizes = rng.integers(1, 300, size=rng.integers(1, 30))
            flat = rng.normal(scale=30.0, size=int(sizes.sum()))
            stops = np.cumsum(sizes)
            starts = (stops - sizes).astype(np.intp)
            out = log_sum_exp_stream(flat, starts)
            for k, (a, b) in enumerate(zip(starts, stops)):
                assert out[k] == log_sum_exp(flat[a:b])

    def test_scalar_is_the_one_segment_case(self):
        x = np.log([1.0, 2.0, 3.0])
        assert log_sum_exp(x) == pytest.approx(math.log(6.0))
        assert log_sum_exp(x) == float(
            log_sum_exp_stream(x, np.zeros(1, dtype=np.intp))[0]
        )

    def test_minus_infinity_entries(self):
        assert log_sum_exp(np.array([-math.inf, 0.0])) == pytest.approx(0.0)
        # An all--inf segment must not poison its neighbours.
        flat = np.array([-math.inf, -math.inf, 0.0, 1.0])
        out = log_sum_exp_stream(flat, np.array([0, 2], dtype=np.intp))
        assert out[0] == -math.inf
        assert out[1] == pytest.approx(float(sc.logsumexp(flat[2:])))


class TestGammaTails:
    def test_log_cdf_matches_scipy(self):
        for shape, rate, x in [(1.0, 2.0, 0.5), (3.5, 0.1, 10.0), (0.5, 5.0, 0.01)]:
            expected = stdist.gamma.logcdf(x, a=shape, scale=1.0 / rate)
            assert log_gamma_cdf(x, shape, rate) == pytest.approx(expected, rel=1e-9)

    def test_log_sf_matches_scipy(self):
        for shape, rate, x in [(1.0, 2.0, 0.5), (3.5, 0.1, 60.0), (2.0, 1.0, 8.0)]:
            expected = stdist.gamma.logsf(x, a=shape, scale=1.0 / rate)
            assert log_gamma_sf(x, shape, rate) == pytest.approx(expected, rel=1e-9)

    def test_log_sf_deep_tail_is_finite(self):
        # Far beyond float underflow of the survival function itself.
        value = log_gamma_sf(10_000.0, 2.0, 1.0)
        assert math.isfinite(value)
        # Exponential-dominated decay: roughly -rate * x.
        assert value == pytest.approx(-10_000.0 + math.log(10_000.0), rel=0.01)

    def test_log_cdf_deep_lower_tail_is_finite(self):
        value = log_gamma_cdf(1e-12, 5.0, 1.0)
        assert math.isfinite(value)
        expected = 5.0 * math.log(1e-12) - float(sc.gammaln(6.0))
        assert value == pytest.approx(expected, rel=1e-6)

    def test_log_cdf_at_zero(self):
        assert log_gamma_cdf(0.0, 2.0, 1.0) == -math.inf

    def test_log_sf_at_zero(self):
        assert log_gamma_sf(0.0, 2.0, 1.0) == 0.0

    @given(
        shape=st.floats(min_value=0.1, max_value=50.0),
        rate=st.floats(min_value=1e-3, max_value=1e3),
        x=st.floats(min_value=1e-6, max_value=1e3),
    )
    @settings(max_examples=200)
    def test_cdf_sf_complementarity(self, shape, rate, x):
        log_p = log_gamma_cdf(x, shape, rate)
        log_q = log_gamma_sf(x, shape, rate)
        total = math.exp(log_p) + math.exp(log_q)
        assert total == pytest.approx(1.0, abs=1e-9)


class TestGammaSfRatio:
    def test_exponential_case_closed_form(self):
        # shape=1: ratio = SF(x;2)/SF(x;1) = (1 + rate x e^{-rx}/e^{-rx})...
        rate, x = 2.0, 3.0
        expected = stdist.gamma.sf(x, a=2.0, scale=0.5) / math.exp(-rate * x)
        assert gamma_sf_ratio(x, 1.0, rate) == pytest.approx(expected, rel=1e-10)

    def test_at_zero_is_one(self):
        assert gamma_sf_ratio(0.0, 3.0, 1.0) == 1.0

    def test_deep_tail_limit(self):
        # ratio -> rate*x/shape for x -> infinity.
        value = gamma_sf_ratio(5000.0, 2.0, 1.0)
        assert value == pytest.approx(5000.0 / 2.0, rel=0.01)

    @given(
        shape=st.floats(min_value=0.2, max_value=20.0),
        rate=st.floats(min_value=1e-2, max_value=1e2),
        x=st.floats(min_value=1e-3, max_value=100.0),
    )
    @settings(max_examples=150)
    def test_ratio_at_least_one(self, shape, rate, x):
        # SF(x; shape+1) >= SF(x; shape): a gamma with larger shape is
        # stochastically larger at the same rate.
        assert gamma_sf_ratio(x, shape, rate) >= 1.0 - 1e-12


class TestGammaIncrement:
    def test_increment_matches_cdf_difference(self):
        shape, rate = 2.5, 0.8
        lo, hi = 1.0, 4.0
        expected = stdist.gamma.cdf(hi, a=shape, scale=1.0 / rate) - stdist.gamma.cdf(
            lo, a=shape, scale=1.0 / rate
        )
        assert gamma_cdf_increment(lo, hi, shape, rate) == pytest.approx(
            expected, rel=1e-12
        )

    def test_log_increment_deep_tail(self):
        # Interval far in the right tail: plain difference underflows and
        # even scipy's logsf returns -inf at x=800, but the closed form
        # for shape 2 is log[(1+lo)e^-lo - (1+hi)e^-hi].
        value = log_gamma_cdf_increment(800.0, 810.0, 2.0, 1.0)
        assert math.isfinite(value)
        log_sf_lo = math.log(801.0) - 800.0
        log_sf_hi = math.log(811.0) - 810.0
        expected = log_sf_lo + math.log1p(-math.exp(log_sf_hi - log_sf_lo))
        assert value == pytest.approx(expected, rel=1e-6)

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            gamma_cdf_increment(3.0, 2.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            gamma_cdf_increment(-1.0, 2.0, 1.0, 1.0)

    @given(
        shape=st.floats(min_value=0.3, max_value=10.0),
        rate=st.floats(min_value=0.01, max_value=10.0),
        lo=st.floats(min_value=0.0, max_value=50.0),
        width=st.floats(min_value=1e-3, max_value=50.0),
    )
    @settings(max_examples=150)
    def test_increment_in_unit_interval(self, shape, rate, lo, width):
        inc = gamma_cdf_increment(lo, lo + width, shape, rate)
        assert -1e-12 <= inc <= 1.0 + 1e-12


class TestSmallHelpers:
    def test_log_factorial(self):
        assert log_factorial(0) == pytest.approx(0.0)
        assert log_factorial(5) == pytest.approx(math.log(120.0))
        arr = log_factorial(np.array([0, 1, 2, 3]))
        assert arr == pytest.approx([0.0, 0.0, math.log(2), math.log(6)])

    def test_log_gamma_fn(self):
        assert log_gamma_fn(5.0) == pytest.approx(math.log(24.0))

    def test_digamma(self):
        # psi(1) = -euler_gamma
        assert digamma(1.0) == pytest.approx(-0.5772156649, rel=1e-9)
