"""Tests for truncated/censored gamma moments and samplers.

These quantities are the heart of the VB E-step (paper Eqs. 24/26), so
they are checked against Monte Carlo, closed forms, and limit cases.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.truncated import (
    censored_gamma_mean,
    sample_censored_gamma,
    sample_truncated_gamma,
    truncated_gamma_mean,
)

positive = st.floats(min_value=0.05, max_value=50.0)


class TestCensoredMean:
    def test_exponential_memorylessness(self):
        # shape 1: E[T | T > c] = c + 1/rate exactly.
        assert censored_gamma_mean(3.0, 1.0, 2.0) == pytest.approx(3.5)

    def test_zero_cut_returns_unconditional_mean(self):
        assert censored_gamma_mean(0.0, 2.5, 0.5) == pytest.approx(5.0)

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(2)
        shape, rate, cut = 2.0, 1.5, 2.0
        samples = rng.gamma(shape, 1.0 / rate, size=2_000_000)
        tail = samples[samples > cut]
        assert censored_gamma_mean(cut, shape, rate) == pytest.approx(
            tail.mean(), rel=5e-3
        )

    def test_deep_tail_stays_finite_and_ordered(self):
        cut = 5_000.0
        value = censored_gamma_mean(cut, 2.0, 1.0)
        assert math.isfinite(value)
        assert value > cut
        # Asymptotically cut + 1/rate for the gamma right tail.
        assert value == pytest.approx(cut + 1.0, rel=1e-3)

    @given(shape=positive, rate=positive, cut=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=200)
    def test_exceeds_cut_and_unconditional_mean(self, shape, rate, cut):
        value = censored_gamma_mean(cut, shape, rate)
        assert value >= cut
        assert value >= shape / rate - 1e-9


class TestTruncatedMean:
    def test_inside_interval(self):
        value = truncated_gamma_mean(1.0, 2.0, 2.0, 1.0)
        assert 1.0 <= value <= 2.0

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(3)
        shape, rate, lo, hi = 3.0, 2.0, 0.5, 2.0
        samples = rng.gamma(shape, 1.0 / rate, size=2_000_000)
        inside = samples[(samples > lo) & (samples <= hi)]
        assert truncated_gamma_mean(lo, hi, shape, rate) == pytest.approx(
            inside.mean(), rel=5e-3
        )

    def test_degenerate_far_tail_interval(self):
        # Negligible mass: must not divide 0/0; returns boundary point.
        value = truncated_gamma_mean(900.0, 901.0, 2.0, 1.0)
        assert 900.0 <= value <= 901.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            truncated_gamma_mean(2.0, 1.0, 1.0, 1.0)

    @given(
        shape=positive,
        rate=positive,
        lo=st.floats(min_value=0.0, max_value=20.0),
        width=st.floats(min_value=0.01, max_value=20.0),
    )
    @settings(max_examples=200)
    def test_mean_within_interval_property(self, shape, rate, lo, width):
        value = truncated_gamma_mean(lo, lo + width, shape, rate)
        assert lo - 1e-9 <= value <= lo + width + 1e-9


class TestTruncatedSampler:
    def test_samples_in_interval(self, rng):
        draws = sample_truncated_gamma(1.0, 3.0, 2.0, 1.0, 10_000, rng)
        assert np.all(draws > 1.0)
        assert np.all(draws <= 3.0 + 1e-12)

    def test_sample_mean_matches_analytic(self, rng):
        lo, hi, shape, rate = 0.5, 4.0, 2.5, 1.2
        draws = sample_truncated_gamma(lo, hi, shape, rate, 400_000, rng)
        assert draws.mean() == pytest.approx(
            truncated_gamma_mean(lo, hi, shape, rate), rel=5e-3
        )

    def test_far_tail_fallback_does_not_stall(self, rng):
        draws = sample_truncated_gamma(900.0, 901.0, 2.0, 1.0, 100, rng)
        assert np.all((draws >= 900.0) & (draws <= 901.0))


class TestCensoredSampler:
    def test_samples_beyond_cut(self, rng):
        draws = sample_censored_gamma(2.0, 2.0, 1.0, 10_000, rng)
        assert np.all(draws > 2.0)

    def test_sample_mean_matches_analytic(self, rng):
        cut, shape, rate = 1.5, 3.0, 2.0
        draws = sample_censored_gamma(cut, shape, rate, 400_000, rng)
        assert draws.mean() == pytest.approx(
            censored_gamma_mean(cut, shape, rate), rel=5e-3
        )

    def test_zero_cut_is_plain_gamma(self, rng):
        draws = sample_censored_gamma(0.0, 2.0, 1.0, 200_000, rng)
        assert draws.mean() == pytest.approx(2.0, rel=0.02)

    def test_underflowed_tail_fallback(self, rng):
        draws = sample_censored_gamma(10_000.0, 2.0, 1.0, 1000, rng)
        assert np.all(draws > 10_000.0)
        assert np.all(np.isfinite(draws))
