"""Correctness tests for the uniform→variate inverse-CDF layer.

These functions are the bridge between a lane's raw uniform stream and
the Gibbs conditionals, so each one must (a) be an accurate quantile
map and (b) be a *pure elementwise* transform — batching must never
change a value. scipy's own inversions are the accuracy oracle.
"""

import numpy as np
import pytest
import scipy.special as sc
import scipy.stats as st
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st_h

from repro.stats.gamma_dist import gamma_from_uniform
from repro.stats.poisson import poisson_from_uniform
from repro.stats.truncated import (
    censored_gamma_from_uniform,
    truncated_gamma_from_uniform,
)

_SETTINGS = dict(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestPoissonFromUniform:
    def test_exact_match_with_scipy_ppf(self):
        rng = np.random.default_rng(5)
        u = rng.random(2_000) * 0.999998 + 1e-6
        mean = rng.uniform(0.01, 400.0, size=2_000)
        ours = poisson_from_uniform(u, mean)
        scipys = st.poisson.ppf(u, mean).astype(np.int64)
        assert np.array_equal(ours, scipys)

    def test_extreme_tails(self):
        mean = np.full(4, 50.0)
        u = np.array([1e-300, 1e-12, 1.0 - 1e-12, 1.0 - 1e-16])
        ours = poisson_from_uniform(u, mean)
        scipys = st.poisson.ppf(u, mean).astype(np.int64)
        assert np.array_equal(ours, scipys)

    def test_u_zero_maps_to_zero(self):
        assert np.array_equal(
            poisson_from_uniform(np.zeros(3), np.array([0.0, 1.0, 90.0])),
            [0, 0, 0],
        )

    def test_zero_mean_is_point_mass(self):
        u = np.array([0.0, 0.3, 0.999])
        assert np.array_equal(poisson_from_uniform(u, np.zeros(3)), [0, 0, 0])

    def test_elementwise_purity(self):
        # Batched evaluation equals one-at-a-time evaluation exactly.
        rng = np.random.default_rng(6)
        u = rng.random(50)
        mean = rng.uniform(0.1, 200.0, size=50)
        batched = poisson_from_uniform(u, mean)
        singles = [poisson_from_uniform(u[i : i + 1], mean[i : i + 1])[0]
                   for i in range(50)]
        assert np.array_equal(batched, singles)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_from_uniform(np.array([1.0]), np.array([2.0]))
        with pytest.raises(ValueError):
            poisson_from_uniform(np.array([0.5]), np.array([-1.0]))

    @given(
        u=st_h.floats(1e-9, 1.0 - 1e-9),
        mean=st_h.floats(1e-3, 1e4),
    )
    @settings(**_SETTINGS)
    def test_quantile_definition(self, u, mean):
        k = int(poisson_from_uniform(np.array([u]), np.array([mean]))[0])
        assert sc.pdtr(k, mean) >= u
        if k > 0:
            assert sc.pdtr(k - 1, mean) < u


class TestGammaFromUniform:
    def test_fast_region_accuracy(self):
        rng = np.random.default_rng(7)
        shape = rng.uniform(8.0, 500.0, size=1_000)
        u = rng.random(1_000)
        ours = gamma_from_uniform(shape, u)
        exact = sc.gammaincinv(shape, u)
        np.testing.assert_allclose(ours, exact, rtol=1e-9)

    def test_slow_region_is_exact_inversion(self):
        rng = np.random.default_rng(8)
        shape = rng.uniform(0.2, 7.9, size=500)
        u = rng.random(500)
        assert np.array_equal(
            gamma_from_uniform(shape, u), sc.gammaincinv(shape, u)
        )

    def test_mixed_regions_agree_with_pure_calls(self):
        shape = np.array([2.0, 50.0, 4.0, 120.0])
        u = np.array([0.3, 0.7, 0.01, 0.99])
        mixed = gamma_from_uniform(shape, u)
        for i in range(4):
            alone = gamma_from_uniform(shape[i : i + 1], u[i : i + 1])[0]
            assert mixed[i] == alone

    def test_log_gamma_shape_hint_changes_nothing(self):
        shape = np.full(64, 37.5)
        u = np.random.default_rng(9).random(64)
        assert np.array_equal(
            gamma_from_uniform(shape, u),
            gamma_from_uniform(shape, u, log_gamma_shape=sc.gammaln(shape)),
        )

    def test_monotone_in_u(self):
        u = np.linspace(0.001, 0.999, 200)
        x = gamma_from_uniform(np.full(200, 25.0), u)
        assert np.all(np.diff(x) > 0.0)

    @given(
        shape=st_h.floats(8.0, 1e4),
        u=st_h.floats(1e-8, 1.0 - 1e-8),
    )
    @settings(**_SETTINGS)
    def test_round_trip(self, shape, u):
        x = gamma_from_uniform(np.array([shape]), np.array([u]))[0]
        assert sc.gammainc(shape, x) == pytest.approx(u, abs=1e-9)


class TestTruncatedGammaFromUniform:
    def test_draws_inside_interval(self):
        rng = np.random.default_rng(10)
        lo = rng.uniform(0.0, 2.0, size=300)
        hi = lo + rng.uniform(0.1, 3.0, size=300)
        rate = rng.uniform(0.05, 4.0, size=300)
        u = rng.random(300)
        for shape in (1.0, 2.5):
            x = truncated_gamma_from_uniform(lo, hi, shape, rate, u)
            assert np.all(x >= lo) and np.all(x <= hi)

    def test_shape_one_closed_form(self):
        lo, hi = np.array([1.0]), np.array([4.0])
        rate, u = np.array([0.7]), np.array([0.42])
        x = truncated_gamma_from_uniform(lo, hi, 1.0, rate, u)[0]
        p = st.expon(scale=1.0 / 0.7).cdf
        expected = st.expon(scale=1.0 / 0.7).ppf(
            p(1.0) + 0.42 * (p(4.0) - p(1.0))
        )
        assert x == pytest.approx(expected, rel=1e-12)

    def test_general_shape_matches_cdf_inversion(self):
        lo, hi = np.array([0.5]), np.array([2.0])
        rate, u = np.array([1.3]), np.array([0.8])
        x = truncated_gamma_from_uniform(lo, hi, 3.0, rate, u)[0]
        p_lo = sc.gammainc(3.0, 1.3 * 0.5)
        p_hi = sc.gammainc(3.0, 1.3 * 2.0)
        expected = sc.gammaincinv(3.0, p_lo + 0.8 * (p_hi - p_lo)) / 1.3
        assert x == pytest.approx(expected, rel=1e-12)

    def test_degenerate_interval_jitters_on_support(self):
        # Far right tail: CDF increment underflows, fall back to jitter.
        lo, hi = np.array([4000.0]), np.array([4001.0])
        x = truncated_gamma_from_uniform(
            lo, hi, 1.0, np.array([1.0]), np.array([0.25])
        )[0]
        assert x == pytest.approx(4000.25)

    def test_uniform_stream_recovers_distribution(self):
        u = (np.arange(20_000) + 0.5) / 20_000
        x = truncated_gamma_from_uniform(
            np.full_like(u, 1.0), np.full_like(u, 3.0), 2.0,
            np.full_like(u, 1.0), u,
        )
        p_lo, p_hi = sc.gammainc(2.0, 1.0), sc.gammainc(2.0, 3.0)
        grid = np.linspace(1.05, 2.95, 9)
        for g in grid:
            expected = (sc.gammainc(2.0, g) - p_lo) / (p_hi - p_lo)
            assert np.mean(x <= g) == pytest.approx(expected, abs=5e-4)


class TestCensoredGammaFromUniform:
    def test_draws_beyond_cut(self):
        rng = np.random.default_rng(11)
        cut = rng.uniform(0.0, 5.0, size=300)
        rate = rng.uniform(0.05, 4.0, size=300)
        u = rng.random(300) * 0.999 + 5e-4
        for shape in (1.0, 2.5):
            x = censored_gamma_from_uniform(cut, shape, rate, u)
            assert np.all(x >= cut)

    def test_shape_one_memoryless(self):
        cut, rate, u = np.array([2.0]), np.array([0.5]), np.array([0.3])
        x = censored_gamma_from_uniform(cut, 1.0, rate, u)[0]
        assert x == pytest.approx(2.0 - np.log(0.3) / 0.5, rel=1e-12)

    def test_general_shape_survival_inversion(self):
        cut, rate, u = np.array([1.5]), np.array([0.8]), np.array([0.6])
        x = censored_gamma_from_uniform(cut, 3.0, rate, u)[0]
        q_cut = sc.gammaincc(3.0, 0.8 * 1.5)
        expected = sc.gammainccinv(3.0, 0.6 * q_cut) / 0.8
        assert x == pytest.approx(expected, rel=1e-12)

    def test_deep_tail_fallback_stays_beyond_cut(self):
        x = censored_gamma_from_uniform(
            np.array([5000.0]), 2.0, np.array([1.0]), np.array([0.5])
        )[0]
        assert np.isfinite(x) and x > 5000.0
