"""Tests for quadrature rules and the tensor grid."""

import math

import numpy as np
import pytest

from repro.stats.quadrature import TensorGrid, gauss_legendre_panel, simpson_weights


class TestGaussLegendre:
    def test_integrates_polynomials_exactly(self):
        x, w = gauss_legendre_panel(-1.0, 2.0, 5)
        # Degree 9 polynomial is exact with 5 nodes.
        poly = lambda t: 3 * t**9 - t**4 + 2.0
        exact = (3 / 10) * (2.0**10 - 1.0) - (1 / 5) * (2.0**5 + 1.0) + 2.0 * 3.0
        assert float(w @ poly(x)) == pytest.approx(exact, rel=1e-12)

    def test_weights_sum_to_length(self):
        x, w = gauss_legendre_panel(2.0, 7.0, 16)
        assert w.sum() == pytest.approx(5.0)
        assert np.all((x > 2.0) & (x < 7.0))

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            gauss_legendre_panel(2.0, 2.0, 4)
        with pytest.raises(ValueError):
            gauss_legendre_panel(0.0, 1.0, 0)


class TestSimpson:
    def test_weights_sum_to_interval_length(self):
        w = simpson_weights(11, 0.1)
        assert w.sum() == pytest.approx(1.0)

    def test_exact_for_cubics(self):
        n, a, b = 21, 0.0, 2.0
        x = np.linspace(a, b, n)
        w = simpson_weights(n, x[1] - x[0])
        f = x**3 - 2 * x**2 + 5
        exact = (b**4 / 4 - 2 * b**3 / 3 + 5 * b)
        assert float(w @ f) == pytest.approx(exact, rel=1e-12)

    def test_rejects_even_point_count(self):
        with pytest.raises(ValueError):
            simpson_weights(10, 0.1)
        with pytest.raises(ValueError):
            simpson_weights(1, 0.1)


class TestTensorGrid:
    def test_simpson_factory_rounds_to_odd(self):
        grid = TensorGrid.simpson((0.0, 1.0), (0.0, 2.0), 10, 16)
        assert grid.x.size % 2 == 1
        assert grid.y.size % 2 == 1

    def test_integrate_separable_function(self):
        grid = TensorGrid.simpson((0.0, 1.0), (0.0, 1.0), 41, 41)
        xx, yy = grid.mesh()
        values = xx**2 * yy
        assert grid.integrate(values) == pytest.approx(1.0 / 6.0, rel=1e-8)

    def test_gauss_legendre_grid(self):
        grid = TensorGrid.gauss_legendre((0.0, 1.0), (0.0, 1.0), 12, 12)
        xx, yy = grid.mesh()
        assert grid.integrate(xx * yy) == pytest.approx(0.25, rel=1e-12)

    def test_log_integrate_matches_linear(self):
        grid = TensorGrid.simpson((0.1, 3.0), (0.1, 3.0), 61, 61)
        xx, yy = grid.mesh()
        log_values = -(xx**2) - yy**2
        linear = grid.integrate(np.exp(log_values))
        assert grid.log_integrate(log_values) == pytest.approx(
            math.log(linear), rel=1e-10
        )

    def test_log_integrate_survives_huge_offsets(self):
        # Values that would overflow exp(): log-space path must not care.
        grid = TensorGrid.simpson((0.0, 1.0), (0.0, 1.0), 21, 21)
        xx, yy = grid.mesh()
        log_values = 800.0 - xx - yy
        result = grid.log_integrate(log_values)
        reference = grid.log_integrate(log_values - 800.0) + 800.0
        assert result == pytest.approx(reference, rel=1e-12)

    def test_normalised_density_integrates_to_one(self):
        grid = TensorGrid.simpson((0.0, 4.0), (0.0, 4.0), 81, 81)
        xx, yy = grid.mesh()
        density = grid.normalised_density(-(xx - 2) ** 2 - (yy - 2) ** 2)
        assert grid.integrate(density) == pytest.approx(1.0, rel=1e-12)

    def test_shape_validation(self):
        grid = TensorGrid.simpson((0.0, 1.0), (0.0, 1.0), 11, 11)
        with pytest.raises(ValueError):
            grid.integrate(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            grid.log_integrate(np.zeros((3, 3)))
