"""Tests for the buffered per-lane uniform streams.

The whole lane-engine identity argument rests on one contract: the
concatenation of everything a lane is handed — across block takes,
ragged takes, chunk refills and oversized requests — equals that
lane's generator's plain sequential ``random()`` stream. These tests
pin the contract down directly against fresh generators.
"""

import numpy as np
import pytest

from repro.stats.uniforms import DEFAULT_CHUNK, UniformLaneStream, segment_sums


def _streams(n_lanes, seed=0, chunk=DEFAULT_CHUNK):
    seeds = [seed + 17 * lane for lane in range(n_lanes)]
    stream = UniformLaneStream(
        [np.random.default_rng(s) for s in seeds], chunk=chunk
    )
    reference = [np.random.default_rng(s) for s in seeds]
    return stream, reference


class TestTakeBlock:
    def test_matches_sequential_stream(self):
        stream, reference = _streams(5)
        out = stream.take_block(7)
        assert out.shape == (5, 7)
        for lane, rng in enumerate(reference):
            assert np.array_equal(out[lane], rng.random(7))

    def test_repeated_takes_continue_the_stream(self):
        stream, reference = _streams(3)
        chunks = [stream.take_block(k) for k in (3, 1, 5, 2)]
        for lane, rng in enumerate(reference):
            handed = np.concatenate([c[lane] for c in chunks])
            assert np.array_equal(handed, rng.random(handed.size))

    def test_take_granularity_is_irrelevant(self):
        one, _ = _streams(2)
        many, _ = _streams(2)
        a = one.take_block(6)
        b = np.hstack([many.take_block(2), many.take_block(3), many.take_block(1)])
        assert np.array_equal(a, b)

    def test_refill_preserves_order(self):
        stream, reference = _streams(2, chunk=8)
        takes = [stream.take_block(5) for _ in range(10)]
        for lane, rng in enumerate(reference):
            handed = np.concatenate([t[lane] for t in takes])
            assert np.array_equal(handed, rng.random(50))


class TestTakeRagged:
    def test_lane_major_order(self):
        stream, reference = _streams(3)
        counts = np.array([2, 0, 4])
        flat = stream.take_ragged(counts)
        assert flat.shape == (6,)
        assert np.array_equal(flat[:2], reference[0].random(2))
        reference[1].random(0)
        assert np.array_equal(flat[2:], reference[2].random(4))

    def test_interleaved_block_and_ragged(self):
        stream, reference = _streams(3, chunk=17)
        pieces = [[] for _ in range(3)]
        rng = np.random.default_rng(99)
        for _ in range(40):
            if rng.random() < 0.5:
                block = stream.take_block(int(rng.integers(1, 6)))
                for lane in range(3):
                    pieces[lane].append(block[lane])
            else:
                counts = rng.integers(0, 9, size=3)
                flat = stream.take_ragged(counts.astype(np.intp))
                offsets = np.concatenate(([0], np.cumsum(counts)))
                for lane in range(3):
                    pieces[lane].append(flat[offsets[lane]:offsets[lane + 1]])
        for lane, ref in enumerate(reference):
            handed = np.concatenate(pieces[lane])
            assert np.array_equal(handed, ref.random(handed.size))

    def test_oversized_request_stays_on_stream(self):
        stream, reference = _streams(2, chunk=8)
        stream.take_block(3)
        flat = stream.take_ragged(np.array([30, 2]))
        after = stream.take_block(4)
        for lane, ref in enumerate(reference):
            ref.random(3)
        assert np.array_equal(flat[:30], reference[0].random(30))
        assert np.array_equal(flat[30:], reference[1].random(2))
        for lane, ref in enumerate(reference):
            assert np.array_equal(after[lane], ref.random(4))

    def test_zero_counts_consume_nothing(self):
        stream, reference = _streams(2)
        assert stream.take_ragged(np.array([0, 0])).size == 0
        out = stream.take_block(2)
        for lane, ref in enumerate(reference):
            assert np.array_equal(out[lane], ref.random(2))


class TestSegmentSums:
    def test_matches_reduceat(self):
        rng = np.random.default_rng(1)
        values = rng.random(100)
        offsets = np.array([0, 10, 40, 95])
        assert np.array_equal(
            segment_sums(values, offsets), np.add.reduceat(values, offsets)
        )

    def test_position_independent(self):
        # The property the engine and the scalar reference rely on: a
        # segment's sum does not depend on where the segment sits in
        # the global array.
        rng = np.random.default_rng(2)
        for _ in range(50):
            counts = rng.integers(1, 12, size=6)
            values = rng.random(int(counts.sum()))
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            whole = segment_sums(values, offsets)
            for i in range(6):
                seg = values[offsets[i]:offsets[i] + counts[i]]
                alone = segment_sums(seg, np.array([0]))[0]
                assert whole[i] == alone


class TestValidation:
    def test_needs_at_least_one_lane(self):
        with pytest.raises(ValueError):
            UniformLaneStream([])

    def test_chunk_must_be_positive(self):
        with pytest.raises(ValueError):
            UniformLaneStream([np.random.default_rng(0)], chunk=0)

    def test_ragged_counts_must_match_lanes(self):
        stream, _ = _streams(3)
        with pytest.raises(ValueError):
            stream.take_ragged(np.array([1, 2]))
