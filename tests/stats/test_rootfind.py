"""Tests for the bracketing root finders."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConvergenceError
from repro.stats.rootfind import bisect_increasing, bracket_quantile


class TestBisect:
    def test_linear_root(self):
        root = bisect_increasing(lambda x: x - 2.5, 0.0, 10.0)
        assert root == pytest.approx(2.5, abs=1e-9)

    def test_nonlinear_root(self):
        root = bisect_increasing(lambda x: math.tanh(x) - 0.5, 0.0, 5.0)
        assert root == pytest.approx(math.atanh(0.5), abs=1e-9)

    def test_root_at_lower_edge(self):
        assert bisect_increasing(lambda x: x, 0.0, 1.0) == pytest.approx(0.0, abs=1e-9)

    def test_invalid_bracket_raises(self):
        with pytest.raises(ValueError):
            bisect_increasing(lambda x: x, 2.0, 1.0)

    def test_sign_violation_raises(self):
        with pytest.raises(ConvergenceError):
            bisect_increasing(lambda x: x + 10.0, 1.0, 2.0)

    @given(target=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=100)
    def test_cdf_style_inversion(self, target):
        cdf = lambda x: 1.0 - math.exp(-x)
        root = bisect_increasing(lambda x: cdf(x) - target, 0.0, 100.0)
        assert cdf(root) == pytest.approx(target, abs=1e-8)


class TestBracketQuantile:
    def test_brackets_exponential_quantiles(self):
        cdf = lambda x: 1.0 - math.exp(-x)
        for q in (0.001, 0.5, 0.999):
            lo, hi = bracket_quantile(cdf, q)
            assert cdf(lo) <= q <= cdf(hi)

    def test_handles_far_scale(self):
        # Distribution concentrated near 1e-5: expansion must find it.
        cdf = lambda x: 1.0 - math.exp(-x / 1e-5)
        lo, hi = bracket_quantile(cdf, 0.5)
        assert cdf(lo) <= 0.5 <= cdf(hi)

    def test_invalid_inputs(self):
        cdf = lambda x: 1.0 - math.exp(-x)
        with pytest.raises(ValueError):
            bracket_quantile(cdf, 0.0)
        with pytest.raises(ValueError):
            bracket_quantile(cdf, 0.5, x0=-1.0)
