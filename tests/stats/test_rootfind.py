"""Tests for the bracketing root finders."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.exceptions import ConvergenceError
from repro.stats.rootfind import (
    bisect_increasing,
    bisect_increasing_batch,
    bracket_quantile,
)


class TestBisect:
    def test_linear_root(self):
        root = bisect_increasing(lambda x: x - 2.5, 0.0, 10.0)
        assert root == pytest.approx(2.5, abs=1e-9)

    def test_nonlinear_root(self):
        root = bisect_increasing(lambda x: math.tanh(x) - 0.5, 0.0, 5.0)
        assert root == pytest.approx(math.atanh(0.5), abs=1e-9)

    def test_root_at_lower_edge(self):
        assert bisect_increasing(lambda x: x, 0.0, 1.0) == pytest.approx(0.0, abs=1e-9)

    def test_invalid_bracket_raises(self):
        with pytest.raises(ValueError):
            bisect_increasing(lambda x: x, 2.0, 1.0)

    def test_sign_violation_raises(self):
        with pytest.raises(ConvergenceError):
            bisect_increasing(lambda x: x + 10.0, 1.0, 2.0)

    @given(target=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=100)
    def test_cdf_style_inversion(self, target):
        cdf = lambda x: 1.0 - math.exp(-x)
        root = bisect_increasing(lambda x: cdf(x) - target, 0.0, 100.0)
        assert cdf(root) == pytest.approx(target, abs=1e-8)


class TestBisectExhaustion:
    def test_exhaustion_raises_convergence_error(self):
        # A one-iteration budget on a wide bracket cannot converge.
        with pytest.raises(ConvergenceError) as excinfo:
            bisect_increasing(lambda x: x - 2.5, 0.0, 10.0, max_iter=1)
        err = excinfo.value
        assert err.iterations == 1
        # The residual carries the final bracket width.
        assert err.residual is not None
        assert 0.0 < err.residual <= 10.0
        assert "bracket width" in str(err)

    def test_exhaustion_emits_divergence_telemetry(self):
        with obs.capture() as col:
            with pytest.raises(ConvergenceError):
                bisect_increasing(lambda x: x - 2.5, 0.0, 10.0, max_iter=1)
        events = [e for e in col.events if e["name"] == "rootfind.divergence"]
        assert len(events) == 1
        assert events[0]["iterations"] == 1
        assert events[0]["bracket_width"] > 0.0
        assert events[0]["lanes"] == 1
        assert col.counters["rootfind.failures"] == 1


class TestBisectBatch:
    def test_matches_scalar_per_lane(self):
        f = lambda x: np.tanh(x) - np.array([0.1, 0.5, 0.9])
        lo = np.zeros(3)
        hi = np.full(3, 5.0)
        roots = bisect_increasing_batch(f, lo, hi)
        for i, target in enumerate((0.1, 0.5, 0.9)):
            scalar = bisect_increasing(
                lambda x: math.tanh(x) - target, 0.0, 5.0
            )
            assert roots[i] == scalar

    def test_degenerate_lane_pinned(self):
        # lo == hi lanes return the pinned point without evaluating f there.
        f = lambda x: x - np.array([2.0, 3.0])
        roots = bisect_increasing_batch(
            f, np.array([0.0, 3.0]), np.array([10.0, 3.0])
        )
        assert roots[0] == pytest.approx(2.0, abs=1e-9)
        assert roots[1] == 3.0

    def test_sign_violation_raises(self):
        f = lambda x: x + 10.0
        with pytest.raises(ConvergenceError):
            bisect_increasing_batch(f, np.array([1.0]), np.array([2.0]))

    def test_root_near_edge_pinned_within_tolerance(self):
        # f(lo) slightly positive within the edge tolerance: pin to lo.
        f = lambda x: x + 1e-10
        roots = bisect_increasing_batch(f, np.array([0.0]), np.array([1.0]))
        assert roots[0] == 0.0

    def test_invalid_bracket_raises(self):
        with pytest.raises(ValueError):
            bisect_increasing_batch(
                lambda x: x, np.array([2.0]), np.array([1.0])
            )
        with pytest.raises(ValueError):
            bisect_increasing_batch(
                lambda x: x, np.array([0.0, 1.0]), np.array([2.0])
            )

    def test_exhaustion_raises_with_lane_count(self):
        f = lambda x: x - np.array([2.5, 7.5])
        with pytest.raises(ConvergenceError) as excinfo:
            bisect_increasing_batch(
                f, np.zeros(2), np.full(2, 10.0), max_iter=1
            )
        assert excinfo.value.iterations == 1
        assert excinfo.value.residual > 0.0

    @given(target=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=50)
    def test_batch_of_one_equals_scalar(self, target):
        cdf = lambda x: 1.0 - np.exp(-x)
        batch = bisect_increasing_batch(
            lambda x: cdf(x) - target, np.array([0.0]), np.array([100.0])
        )
        scalar = bisect_increasing(
            lambda x: 1.0 - math.exp(-x) - target, 0.0, 100.0
        )
        assert batch[0] == scalar


class TestBracketQuantile:
    def test_brackets_exponential_quantiles(self):
        cdf = lambda x: 1.0 - math.exp(-x)
        for q in (0.001, 0.5, 0.999):
            lo, hi = bracket_quantile(cdf, q)
            assert cdf(lo) <= q <= cdf(hi)

    def test_handles_far_scale(self):
        # Distribution concentrated near 1e-5: expansion must find it.
        cdf = lambda x: 1.0 - math.exp(-x / 1e-5)
        lo, hi = bracket_quantile(cdf, 0.5)
        assert cdf(lo) <= 0.5 <= cdf(hi)

    def test_invalid_inputs(self):
        cdf = lambda x: 1.0 - math.exp(-x)
        with pytest.raises(ValueError):
            bracket_quantile(cdf, 0.0)
        with pytest.raises(ValueError):
            bracket_quantile(cdf, 0.5, x0=-1.0)
