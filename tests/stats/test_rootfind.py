"""Tests for the bracketing root finders."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.fixed_point import RESIDUAL_HISTORY_LEN, solve_fixed_point
from repro.exceptions import ConvergenceError
from repro.stats.rootfind import (
    FIXED_POINT_HISTORY_LEN,
    bisect_increasing,
    bisect_increasing_batch,
    bracket_quantile,
    solve_fixed_point_batch,
)


class TestBisect:
    def test_linear_root(self):
        root = bisect_increasing(lambda x: x - 2.5, 0.0, 10.0)
        assert root == pytest.approx(2.5, abs=1e-9)

    def test_nonlinear_root(self):
        root = bisect_increasing(lambda x: math.tanh(x) - 0.5, 0.0, 5.0)
        assert root == pytest.approx(math.atanh(0.5), abs=1e-9)

    def test_root_at_lower_edge(self):
        assert bisect_increasing(lambda x: x, 0.0, 1.0) == pytest.approx(0.0, abs=1e-9)

    def test_invalid_bracket_raises(self):
        with pytest.raises(ValueError):
            bisect_increasing(lambda x: x, 2.0, 1.0)

    def test_sign_violation_raises(self):
        with pytest.raises(ConvergenceError):
            bisect_increasing(lambda x: x + 10.0, 1.0, 2.0)

    @given(target=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=100)
    def test_cdf_style_inversion(self, target):
        cdf = lambda x: 1.0 - math.exp(-x)
        root = bisect_increasing(lambda x: cdf(x) - target, 0.0, 100.0)
        assert cdf(root) == pytest.approx(target, abs=1e-8)


class TestBisectExhaustion:
    def test_exhaustion_raises_convergence_error(self):
        # A one-iteration budget on a wide bracket cannot converge.
        with pytest.raises(ConvergenceError) as excinfo:
            bisect_increasing(lambda x: x - 2.5, 0.0, 10.0, max_iter=1)
        err = excinfo.value
        assert err.iterations == 1
        # The residual carries the final bracket width.
        assert err.residual is not None
        assert 0.0 < err.residual <= 10.0
        assert "bracket width" in str(err)

    def test_exhaustion_emits_divergence_telemetry(self):
        with obs.capture() as col:
            with pytest.raises(ConvergenceError):
                bisect_increasing(lambda x: x - 2.5, 0.0, 10.0, max_iter=1)
        events = [e for e in col.events if e["name"] == "rootfind.divergence"]
        assert len(events) == 1
        assert events[0]["iterations"] == 1
        assert events[0]["bracket_width"] > 0.0
        assert events[0]["lanes"] == 1
        assert col.counters["rootfind.failures"] == 1


class TestBisectBatch:
    def test_matches_scalar_per_lane(self):
        f = lambda x: np.tanh(x) - np.array([0.1, 0.5, 0.9])
        lo = np.zeros(3)
        hi = np.full(3, 5.0)
        roots = bisect_increasing_batch(f, lo, hi)
        for i, target in enumerate((0.1, 0.5, 0.9)):
            scalar = bisect_increasing(
                lambda x: math.tanh(x) - target, 0.0, 5.0
            )
            assert roots[i] == scalar

    def test_degenerate_lane_pinned(self):
        # lo == hi lanes return the pinned point without evaluating f there.
        f = lambda x: x - np.array([2.0, 3.0])
        roots = bisect_increasing_batch(
            f, np.array([0.0, 3.0]), np.array([10.0, 3.0])
        )
        assert roots[0] == pytest.approx(2.0, abs=1e-9)
        assert roots[1] == 3.0

    def test_sign_violation_raises(self):
        f = lambda x: x + 10.0
        with pytest.raises(ConvergenceError):
            bisect_increasing_batch(f, np.array([1.0]), np.array([2.0]))

    def test_root_near_edge_pinned_within_tolerance(self):
        # f(lo) slightly positive within the edge tolerance: pin to lo.
        f = lambda x: x + 1e-10
        roots = bisect_increasing_batch(f, np.array([0.0]), np.array([1.0]))
        assert roots[0] == 0.0

    def test_invalid_bracket_raises(self):
        with pytest.raises(ValueError):
            bisect_increasing_batch(
                lambda x: x, np.array([2.0]), np.array([1.0])
            )
        with pytest.raises(ValueError):
            bisect_increasing_batch(
                lambda x: x, np.array([0.0, 1.0]), np.array([2.0])
            )

    def test_exhaustion_raises_with_lane_count(self):
        f = lambda x: x - np.array([2.5, 7.5])
        with pytest.raises(ConvergenceError) as excinfo:
            bisect_increasing_batch(
                f, np.zeros(2), np.full(2, 10.0), max_iter=1
            )
        assert excinfo.value.iterations == 1
        assert excinfo.value.residual > 0.0

    @given(target=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=50)
    def test_batch_of_one_equals_scalar(self, target):
        cdf = lambda x: 1.0 - np.exp(-x)
        batch = bisect_increasing_batch(
            lambda x: cdf(x) - target, np.array([0.0]), np.array([100.0])
        )
        scalar = bisect_increasing(
            lambda x: 1.0 - math.exp(-x) - target, 0.0, 100.0
        )
        assert batch[0] == scalar


def _contractive_map(a, b, c):
    """VB-style update family x -> a / (b + c x), elementwise."""
    return lambda x: a / (b + c * x)


class TestSolveFixedPointBatch:
    """Frozen-lane fixed-point solver: every lane must replay the
    scalar solver bit for bit, in success and in failure."""

    def _coeffs(self, n, seed=7):
        rng = np.random.default_rng(seed)
        return (
            rng.uniform(0.5, 50.0, n),
            rng.uniform(0.1, 10.0, n),
            rng.uniform(0.01, 5.0, n),
            rng.uniform(1e-3, 10.0, n),
        )

    def test_history_length_matches_scalar_solver(self):
        assert FIXED_POINT_HISTORY_LEN == RESIDUAL_HISTORY_LEN

    def test_lanes_match_scalar_bitwise(self):
        a, b, c, x0 = self._coeffs(48)
        result = solve_fixed_point_batch(_contractive_map(a, b, c), x0)
        for i in range(48):
            scalar = solve_fixed_point(
                _contractive_map(a[i], b[i], c[i]), float(x0[i])
            )
            assert result.converged[i]
            assert result.values[i] == scalar.value
            assert result.iterations[i] == scalar.iterations
            assert result.residuals[i] == scalar.residual

    def test_single_lane_equals_scalar(self):
        a, b, c, x0 = self._coeffs(1)
        batch = solve_fixed_point_batch(
            _contractive_map(a[0], b[0], c[0]), x0[:1].copy()
        )
        scalar = solve_fixed_point(
            _contractive_map(a[0], b[0], c[0]), float(x0[0])
        )
        assert batch.values[0] == scalar.value
        assert batch.iterations[0] == scalar.iterations
        assert batch.residuals[0] == scalar.residual

    def test_no_aitken_matches_scalar_including_failures(self):
        a, b, c, x0 = self._coeffs(48, seed=42)
        result = solve_fixed_point_batch(
            _contractive_map(a, b, c), x0,
            use_aitken=False, raise_on_failure=False,
        )
        for i in range(48):
            try:
                scalar = solve_fixed_point(
                    _contractive_map(a[i], b[i], c[i]),
                    float(x0[i]),
                    use_aitken=False,
                )
            except ConvergenceError as err:
                assert not result.converged[i]
                assert result.iterations[i] == err.iterations
                assert result.residuals[i] == err.residual
                assert result.residual_histories[i] == tuple(
                    err.residual_history
                )
            else:
                assert result.converged[i]
                assert result.values[i] == scalar.value
                assert result.iterations[i] == scalar.iterations

    def test_diverging_lane_raises_with_its_own_statistics(self):
        # Lane 2 walks out of the positive domain; the raised error must
        # carry that lane's iterations/residual/history, matching the
        # scalar solver run on the same map.
        def f(x):
            out = 10.0 / (1.0 + x)
            out = np.where(np.arange(x.size) == 2, x - 1.0, out)
            return out

        x0 = np.array([1.0, 2.0, 2.5, 3.0])
        with pytest.raises(ConvergenceError) as excinfo:
            solve_fixed_point_batch(f, x0.copy())
        err = excinfo.value
        try:
            solve_fixed_point(lambda x: x - 1.0, 2.5)
        except ConvergenceError as scalar_err:
            assert err.iterations == scalar_err.iterations
            assert err.residual == scalar_err.residual
            assert tuple(err.residual_history) == tuple(
                scalar_err.residual_history
            )
        else:  # pragma: no cover - scalar must fail too
            pytest.fail("scalar solver unexpectedly converged")

    def test_diverging_lane_does_not_poison_converged_lanes(self):
        def f(x):
            out = 10.0 / (1.0 + x)
            out = np.where(np.arange(x.size) == 1, x - 1.0, out)
            return out

        x0 = np.array([1.0, 2.5, 4.0])
        result = solve_fixed_point_batch(f, x0.copy(), raise_on_failure=False)
        assert list(result.converged) == [True, False, True]
        for i in (0, 2):
            scalar = solve_fixed_point(lambda x: 10.0 / (1.0 + x), float(x0[i]))
            assert result.values[i] == scalar.value
            assert result.iterations[i] == scalar.iterations
            assert result.residuals[i] == scalar.residual

    def test_budget_exhaustion_matches_scalar_contract(self):
        # x -> 1/x oscillates forever; both solvers must report the same
        # iteration count, residual, and trailing history.
        result = solve_fixed_point_batch(
            lambda x: 1.0 / x, np.array([2.0]),
            max_iter=20, use_aitken=False, raise_on_failure=False,
        )
        assert not result.converged[0]
        assert result.iterations[0] == 20
        with pytest.raises(ConvergenceError) as excinfo:
            solve_fixed_point(lambda x: 1.0 / x, 2.0, max_iter=20,
                              use_aitken=False)
        err = excinfo.value
        assert err.iterations == result.iterations[0]
        assert err.residual == result.residuals[0]
        assert tuple(err.residual_history) == result.residual_histories[0]
        assert len(result.residual_histories[0]) == FIXED_POINT_HISTORY_LEN

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_fixed_point_batch(lambda x: x, np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            solve_fixed_point_batch(lambda x: x, np.ones((2, 2)))

    def test_empty_batch(self):
        result = solve_fixed_point_batch(lambda x: x, np.empty(0))
        assert result.values.size == 0
        assert result.converged.size == 0

    def test_divergence_emits_scalar_compatible_telemetry(self):
        def f(x):
            return x - 1.0

        with obs.capture() as col:
            with pytest.raises(ConvergenceError):
                solve_fixed_point_batch(f, np.array([0.5, 0.5]))
        events = [
            e for e in col.events if e["name"] == "fixed_point.divergence"
        ]
        assert len(events) == 2
        assert col.counters["fixed_point.failures"] == 2
        for event in events:
            assert event["evaluations"] >= 1

    @given(
        coeffs=st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=200.0),
                st.floats(min_value=0.05, max_value=20.0),
                st.floats(min_value=0.01, max_value=10.0),
                st.floats(min_value=1e-3, max_value=50.0),
            ),
            min_size=1,
            max_size=12,
        ),
        use_aitken=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_batched_matches_scalar_bitwise(self, coeffs, use_aitken):
        # Random members of the gamma-update family x -> a / (b + c x):
        # each lane of the batch must replay its scalar solve exactly,
        # in values, iteration counts, residuals, and histories.
        a = np.array([t[0] for t in coeffs])
        b = np.array([t[1] for t in coeffs])
        c = np.array([t[2] for t in coeffs])
        x0 = np.array([t[3] for t in coeffs])
        result = solve_fixed_point_batch(
            _contractive_map(a, b, c), x0.copy(),
            use_aitken=use_aitken, raise_on_failure=False,
        )
        for i in range(x0.size):
            fi = _contractive_map(a[i], b[i], c[i])
            try:
                scalar = solve_fixed_point(
                    fi, float(x0[i]), use_aitken=use_aitken
                )
            except ConvergenceError as err:
                assert not result.converged[i]
                assert result.iterations[i] == err.iterations
                assert result.residuals[i] == err.residual
                assert result.residual_histories[i] == tuple(
                    err.residual_history
                )
            else:
                assert result.converged[i]
                assert result.values[i] == scalar.value
                assert result.iterations[i] == scalar.iterations
                assert result.residuals[i] == scalar.residual

    def test_batch_span_attrs(self):
        a, b, c, x0 = self._coeffs(5)
        with obs.capture(level="debug") as col:
            solve_fixed_point_batch(_contractive_map(a, b, c), x0)
        spans = [
            e for e in col.events
            if e["kind"] == "span" and e["name"] == "fixed_point.batch"
        ]
        assert len(spans) == 1
        sp = spans[0]
        assert sp["lanes"] == 5
        assert sp["evaluations"] > 0
        assert sp["max_residual"] <= 1e-12
        assert sp["failed_lanes"] == 0


class TestPerLaneRtol:
    def test_scalar_rtol_array_equivalence(self):
        a, b, c, x0 = TestSolveFixedPointBatch._coeffs(None, 16)
        tight = solve_fixed_point_batch(
            _contractive_map(a, b, c), x0.copy(), rtol=1e-12
        )
        lanes = solve_fixed_point_batch(
            _contractive_map(a, b, c), x0.copy(),
            rtol=np.full(16, 1e-12),
        )
        np.testing.assert_array_equal(lanes.values, tight.values)
        np.testing.assert_array_equal(lanes.iterations, tight.iterations)

    def test_loose_lanes_stop_earlier(self):
        a, b, c, x0 = TestSolveFixedPointBatch._coeffs(None, 16)
        rtols = np.full(16, 1e-12)
        rtols[::2] = 1e-3
        mixed = solve_fixed_point_batch(
            _contractive_map(a, b, c), x0.copy(), rtol=rtols
        )
        tight = solve_fixed_point_batch(
            _contractive_map(a, b, c), x0.copy(), rtol=1e-12
        )
        assert np.all(mixed.iterations[::2] <= tight.iterations[::2])
        assert np.any(mixed.iterations[::2] < tight.iterations[::2])
        # tight lanes are untouched by their loose neighbours
        np.testing.assert_array_equal(
            mixed.values[1::2], tight.values[1::2]
        )
        np.testing.assert_array_equal(
            mixed.iterations[1::2], tight.iterations[1::2]
        )

    def test_per_lane_rtol_validation(self):
        f = lambda x: 0.5 * x + 1.0
        with pytest.raises(ValueError, match="shape"):
            solve_fixed_point_batch(
                f, np.ones(3), rtol=np.full(2, 1e-10)
            )
        with pytest.raises(ValueError, match="positive"):
            solve_fixed_point_batch(
                f, np.ones(2), rtol=np.array([1e-10, 0.0])
            )
        with pytest.raises(ValueError, match="positive"):
            solve_fixed_point_batch(
                f, np.ones(2), rtol=np.array([1e-10, np.inf])
            )


class TestBracketQuantile:
    def test_brackets_exponential_quantiles(self):
        cdf = lambda x: 1.0 - math.exp(-x)
        for q in (0.001, 0.5, 0.999):
            lo, hi = bracket_quantile(cdf, q)
            assert cdf(lo) <= q <= cdf(hi)

    def test_handles_far_scale(self):
        # Distribution concentrated near 1e-5: expansion must find it.
        cdf = lambda x: 1.0 - math.exp(-x / 1e-5)
        lo, hi = bracket_quantile(cdf, 0.5)
        assert cdf(lo) <= 0.5 <= cdf(hi)

    def test_invalid_inputs(self):
        cdf = lambda x: 1.0 - math.exp(-x)
        with pytest.raises(ValueError):
            bracket_quantile(cdf, 0.0)
        with pytest.raises(ValueError):
            bracket_quantile(cdf, 0.5, x0=-1.0)
