"""Canonical serialization and cache-key invariance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayes.priors import ModelPrior
from repro.cache.keys import canonical_bytes, canonical_key, fit_cache_key
from repro.core.config import VBConfig
from repro.data.failure_data import FailureTimeData, GroupedData


@pytest.fixture()
def data():
    return FailureTimeData(np.array([1.0, 2.5, 4.0]), horizon=5.0)


@pytest.fixture()
def prior():
    return ModelPrior.informative(50.0, 15.8, 1.0e-5, 3.2e-6)


class TestCanonicalEncoding:
    def test_deterministic(self, prior):
        assert canonical_bytes(prior) == canonical_bytes(prior)
        assert canonical_key(prior) == canonical_key(prior)

    def test_dict_key_order_invariant(self):
        assert canonical_key({"a": 1, "b": 2.0}) == canonical_key(
            {"b": 2.0, "a": 1}
        )

    def test_type_tags_disambiguate(self):
        # 1 (int), 1.0 (float), True and "1" must all hash apart —
        # a tagless encoding would collide some of these.
        keys = {
            canonical_key(1),
            canonical_key(1.0),
            canonical_key(True),
            canonical_key("1"),
        }
        assert len(keys) == 4

    def test_array_dtype_and_shape_matter(self):
        flat = np.arange(4, dtype=np.float64)
        assert canonical_key(flat) != canonical_key(flat.reshape(2, 2))
        assert canonical_key(flat) != canonical_key(flat.astype(np.int64))

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError, match="canonically serialize"):
            canonical_key(object())


class TestConfigAndPriorValueSemantics:
    def test_config_default_vs_explicit(self):
        assert VBConfig() == VBConfig(nmax_initial=VBConfig().nmax_initial)
        assert hash(VBConfig()) == hash(
            VBConfig(nmax_initial=VBConfig().nmax_initial)
        )

    def test_config_canonical_covers_every_field(self):
        from dataclasses import fields

        assert set(VBConfig().canonical()) == {
            f.name for f in fields(VBConfig)
        }

    def test_prior_equality_and_hash(self, prior):
        twin = ModelPrior.informative(50.0, 15.8, 1.0e-5, 3.2e-6)
        assert prior == twin
        assert hash(prior) == hash(twin)
        assert prior != ModelPrior.informative(50.0, 15.8, 1.0e-5, 3.3e-6)


class TestFitCacheKey:
    def test_kwarg_spelling_invariance(self, data, prior):
        # default config, explicitly-constructed default config, and
        # None all produce the same key
        base = fit_cache_key("VB2", data, prior)
        assert fit_cache_key("VB2", data, prior, 1.0, VBConfig()) == base
        assert fit_cache_key(
            "VB2", data, prior, alpha0=1.0, config=None
        ) == base

    def test_every_input_perturbs_the_key(self, data, prior):
        base = fit_cache_key("VB2", data, prior)
        bumped_data = FailureTimeData(
            np.array([1.0, 2.5, 4.000001]), horizon=5.0
        )
        variants = [
            fit_cache_key("VB1", data, prior),
            fit_cache_key("VB2", bumped_data, prior),
            fit_cache_key("VB2", data, prior, alpha0=2.0),
            fit_cache_key(
                "VB2", data, prior,
                config=VBConfig(fixed_point_rtol=1e-8),
            ),
            fit_cache_key("VB2", data, prior, nmax=80),
            fit_cache_key(
                "VB2", data,
                ModelPrior.informative(50.0, 15.8, 1.0e-5, 3.3e-6),
            ),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_data_kind_disambiguated(self, prior):
        times = FailureTimeData(np.array([1.0, 2.0]), horizon=2.0)
        grouped = GroupedData(
            counts=np.array([1, 1]), boundaries=np.array([1.0, 2.0])
        )
        assert fit_cache_key("VB2", times, prior) != fit_cache_key(
            "VB2", grouped, prior
        )

    def test_warm_start_content_in_key(self, data, prior):
        from repro.core.vb2 import fit_vb2
        from repro.core.warmstart import warm_start_from

        warm = warm_start_from(fit_vb2(data, prior, 1.0))
        cold_key = fit_cache_key("VB2", data, prior)
        warm_key = fit_cache_key(
            "VB2", data, prior, config=VBConfig(warm_start=warm)
        )
        assert warm_key != cold_key

    def test_key_is_hex_sha256(self, data, prior):
        key = fit_cache_key("VB2", data, prior)
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")
