"""PosteriorCache round-trips, failure modes, and cached fitting."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import obs
from repro.bayes.priors import ModelPrior
from repro.cache.fitting import fit_vb1_cached, fit_vb2_cached
from repro.cache.keys import fit_cache_key
from repro.cache.store import PosteriorCache
from repro.core.config import VBConfig
from repro.core.vb2 import fit_vb2
from repro.data.failure_data import FailureTimeData


@pytest.fixture(scope="module")
def data():
    return FailureTimeData(np.array([1.0, 2.5, 4.0, 7.5]), horizon=9.0)


@pytest.fixture(scope="module")
def prior():
    return ModelPrior.informative(20.0, 8.0, 0.2, 0.08)


@pytest.fixture(scope="module")
def posterior(data, prior):
    return fit_vb2(data, prior, 1.0)


def _artifact_paths(cache, key):
    return cache._paths(key)


class TestRoundTrip:
    def test_disk_hit_is_byte_identical(self, tmp_path, data, prior, posterior):
        writer = PosteriorCache(tmp_path)
        key = fit_cache_key("VB2", data, prior)
        writer.put(key, posterior)

        reader = PosteriorCache(tmp_path)  # fresh process stand-in
        loaded = reader.get(key)
        assert reader.stats.hits_disk == 1
        np.testing.assert_array_equal(loaded.n_values, posterior.n_values)
        np.testing.assert_array_equal(loaded.weights, posterior.weights)
        for name in ("_omega_components", "_beta_components"):
            got = getattr(loaded, name)
            want = getattr(posterior, name)
            assert [(g.shape, g.rate) for g in got] == [
                (w.shape, w.rate) for w in want
            ]
        assert loaded.elbo == posterior.elbo
        stripped = {
            k: v for k, v in posterior.diagnostics.items() if k != "telemetry"
        }
        assert loaded.diagnostics == stripped

    def test_memory_hit_returns_same_object(self, tmp_path, posterior):
        cache = PosteriorCache(tmp_path)
        cache.put("ab" * 32, posterior)
        assert cache.get("ab" * 32) is posterior
        assert cache.stats.hits_memory == 1

    def test_memoryless_mode(self, posterior):
        cache = PosteriorCache(None, memory_entries=0)
        cache.put("cd" * 32, posterior)
        assert cache.get("cd" * 32) is None
        assert cache.stats.misses == 1

    def test_non_posterior_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="VBPosterior"):
            PosteriorCache(tmp_path).put("ef" * 32, object())


class TestCachedFitting:
    def test_hit_never_runs_the_solver(self, tmp_path, data, prior):
        cache = PosteriorCache(tmp_path)
        with obs.capture() as cold:
            first = fit_vb2_cached(data, prior, 1.0, cache=cache)
        assert cold.counters.get("vb2.solves", 0) > 0
        assert cache.stats.misses == 1 and cache.stats.stores == 1

        hit_cache = PosteriorCache(tmp_path)  # disk tier only
        with obs.capture() as warm:
            second = fit_vb2_cached(data, prior, 1.0, cache=hit_cache)
        assert warm.counters.get("vb2.solves", 0) == 0
        assert hit_cache.stats.hits_disk == 1
        np.testing.assert_array_equal(second.weights, first.weights)

    def test_sandwich_hits_share_the_raw_mixture(self, tmp_path, data, prior):
        cache = PosteriorCache(tmp_path)
        config = VBConfig(variance_correction="sandwich")
        first = fit_vb2_cached(data, prior, 1.0, config, cache=cache)
        second = fit_vb2_cached(data, prior, 1.0, config, cache=cache)
        assert cache.stats.stores == 1 and cache.stats.hits == 1
        assert second.variance("omega") == first.variance("omega")
        # the artifact is the uncorrected mixture, so the plain fit
        # shares it (same key); only the sandwich calls re-wrap it
        plain = fit_vb2_cached(data, prior, 1.0, cache=cache)
        assert cache.stats.stores == 1 and cache.stats.hits == 2
        assert type(plain).__name__ == "VBPosterior"
        assert type(first).__name__ == "ScaledPosterior"

    def test_vb1_cached(self, tmp_path, data, prior):
        cache = PosteriorCache(tmp_path)
        fit_vb1_cached(data, prior, 1.0, cache=cache)
        fit_vb1_cached(data, prior, 1.0, cache=cache)
        assert cache.stats.stores == 1 and cache.stats.hits == 1

    def test_no_cache_falls_through(self, data, prior):
        assert fit_vb2_cached(data, prior, 1.0, cache=None).mean("omega") > 0


class TestFailureModes:
    def test_corrupt_npz_degrades_to_miss(self, tmp_path, data, prior, posterior):
        cache = PosteriorCache(tmp_path)
        key = fit_cache_key("VB2", data, prior)
        cache.put(key, posterior)
        _, npz_path = _artifact_paths(cache, key)
        npz_path.write_bytes(b"not a zip archive")

        reader = PosteriorCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupt"), obs.capture() as c:
            assert reader.get(key) is None
        assert reader.stats.corrupt == 1
        assert reader.stats.misses == 1
        assert c.counters.get("cache.corrupt") == 1

    def test_truncated_json_degrades_to_miss(
        self, tmp_path, data, prior, posterior
    ):
        cache = PosteriorCache(tmp_path)
        key = fit_cache_key("VB2", data, prior)
        cache.put(key, posterior)
        json_path, _ = _artifact_paths(cache, key)
        json_path.write_text(json_path.read_text()[:25])

        reader = PosteriorCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert reader.get(key) is None
        assert reader.stats.corrupt == 1

    def test_corrupt_artifact_heals_on_refit(self, tmp_path, data, prior):
        cache = PosteriorCache(tmp_path)
        key = fit_cache_key("VB2", data, prior)
        fit_vb2_cached(data, prior, 1.0, cache=cache)
        json_path, _ = _artifact_paths(cache, key)
        json_path.write_text("{")

        healer = PosteriorCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupt"):
            fit_vb2_cached(data, prior, 1.0, cache=healer)
        assert healer.stats.stores == 1
        assert PosteriorCache(tmp_path).get(key) is not None

    def test_concurrent_writers_one_key(self, tmp_path, posterior):
        key = "12" * 32
        errors = []

        def writer():
            try:
                PosteriorCache(tmp_path).put(key, posterior)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        loaded = PosteriorCache(tmp_path).get(key)
        np.testing.assert_array_equal(loaded.weights, posterior.weights)

    def test_missing_artifact_is_plain_miss(self, tmp_path):
        cache = PosteriorCache(tmp_path)
        assert cache.get("34" * 32) is None
        assert cache.stats.misses == 1 and cache.stats.corrupt == 0


class TestLruAndMaintenance:
    def test_lru_eviction_order(self, tmp_path, posterior):
        cache = PosteriorCache(tmp_path, memory_entries=2)
        k1, k2, k3 = "a1" * 32, "b2" * 32, "c3" * 32
        cache.put(k1, posterior)
        cache.put(k2, posterior)
        cache.get(k1)  # k1 now most recent; k2 is the LRU entry
        cache.put(k3, posterior)
        assert cache.stats.evictions == 1
        assert cache.memory_keys() == [k1, k3]
        # the evicted entry still loads from disk
        assert cache.get(k2) is not None
        assert cache.stats.hits_disk == 1

    def test_disk_entries_and_bytes(self, tmp_path, posterior):
        cache = PosteriorCache(tmp_path)
        keys = sorted(["d4" * 32, "e5" * 32])
        for key in keys:
            cache.put(key, posterior)
        assert cache.disk_entries() == keys
        assert cache.disk_bytes() > 0

    def test_clear_leaves_unrelated_files(self, tmp_path, posterior):
        cache = PosteriorCache(tmp_path)
        key = "f6" * 32
        cache.put(key, posterior)
        bystander = tmp_path / "README.txt"
        bystander.write_text("not an artifact")
        shard_guest = tmp_path / key[:2] / "notes.md"
        shard_guest.write_text("also not an artifact")

        assert cache.clear() == 1
        assert cache.disk_entries() == []
        assert len(cache) == 0
        assert bystander.exists()
        assert shard_guest.exists()  # shard kept alive by the guest

    def test_clear_empty_cache(self, tmp_path):
        assert PosteriorCache(tmp_path / "never-created").clear() == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="memory_entries"):
            PosteriorCache(None, memory_entries=-1)
