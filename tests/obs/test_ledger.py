"""Tests for the unified perf ledger (repro.obs.ledger) and its CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.exceptions import TelemetryError
from repro.obs.ledger import (
    compare,
    load_ledger,
    normalise,
    render_ledger,
    self_check,
)

RESULTS_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "results"


def _v1_fit_doc(speedup=10.0, vb2_diff=0.0):
    return {
        "schema": 1,
        "generated_by": "benchmarks/bench_fit_path.py",
        "acceptance": {
            "grouped_vb2_speedup_target": 5.0,
            "nint_speedup_target": 3.0,
        },
        "agreement": {
            "vb2_max_abs_diff": vb2_diff,
            "nint_max_abs_diff_vs_legacy": 1e-14,
        },
        "modes": {
            "quick": {
                "repeat": 2,
                "workloads": {
                    "DG-Info/vb2_grouped": {
                        "legacy_s": 1.0,
                        "batched_s": 1.0 / speedup,
                        "speedup": speedup,
                    },
                },
            },
        },
    }


def _v2_doc(identical=True):
    return {
        "schema": 2,
        "kind": "bench",
        "suite": "robustness",
        "generated_by": "benchmarks/bench_robustness.py",
        "speedups": {"parallel4/campaign": 2.0},
        "checks": {
            "serial_parallel_identical": {"value": identical, "expect": True},
        },
        "info": {},
    }


class TestNormalise:
    def test_v1_fit_lifts(self):
        ledger = normalise(_v1_fit_doc())
        assert ledger["schema"] == 2
        assert ledger["suite"] == "fit"
        assert ledger["speedups"]["quick/DG-Info/vb2_grouped"] == 10.0
        assert ledger["checks"]["vb2_max_abs_diff"] == {
            "value": 0.0, "exact": 0.0,
        }
        assert ledger["info"]["grouped_vb2_speedup_target"] == 5.0

    def test_v2_passes_through(self):
        doc = _v2_doc()
        assert normalise(doc) is doc

    def test_unknown_v1_layout_rejected(self):
        with pytest.raises(TelemetryError, match="unknown schema-1"):
            normalise({"schema": 1, "generated_by": "mystery.py"})

    def test_missing_schema_rejected(self):
        with pytest.raises(TelemetryError, match="schema"):
            normalise({"suite": "fit"})

    def test_unsupported_schema_rejected(self):
        with pytest.raises(TelemetryError, match="unsupported"):
            normalise({"schema": 3})

    def test_v2_wrong_kind_rejected(self):
        with pytest.raises(TelemetryError, match="kind"):
            normalise({"schema": 2, "kind": "trace"})

    def test_v1_missing_check_field_rejected(self):
        doc = _v1_fit_doc()
        del doc["agreement"]["vb2_max_abs_diff"]
        with pytest.raises(TelemetryError, match="missing check"):
            normalise(doc)


class TestSelfCheck:
    def test_clean_doc_passes(self):
        assert self_check(_v1_fit_doc()) == []
        assert self_check(_v2_doc()) == []

    def test_exact_violation_reported(self):
        failures = self_check(_v1_fit_doc(vb2_diff=1e-9))
        assert len(failures) == 1
        assert "vb2_max_abs_diff" in failures[0]

    def test_expect_violation_reported(self):
        failures = self_check(_v2_doc(identical=False))
        assert len(failures) == 1
        assert "serial_parallel_identical" in failures[0]

    def test_committed_baselines_pass(self):
        paths = sorted(RESULTS_DIR.glob("BENCH_*.json"))
        assert paths, "no committed BENCH baselines found"
        for path in paths:
            doc = json.loads(path.read_text())
            assert self_check(doc) == [], path.name

    def _min_doc(self, value):
        doc = _v2_doc()
        doc["checks"]["warm_iteration_ratio"] = {"value": value, "min": 3.0}
        return doc

    def test_min_criterion(self):
        assert self_check(self._min_doc(3.15)) == []
        assert self_check(self._min_doc(3.0)) == []
        failures = self_check(self._min_doc(2.4))
        assert failures == [
            "robustness: check warm_iteration_ratio: observed 2.4, "
            "expected >= 3.0"
        ]
        # a non-numeric value can never satisfy a floor
        assert len(self_check(self._min_doc("fast"))) == 1

    def test_failure_messages_name_both_sides(self):
        # every criterion reports observed and expected on one line
        doc = _v2_doc(identical=False)
        doc["checks"]["diff"] = {"value": 2e-9, "max": 1e-9}
        doc["checks"]["count"] = {"value": 1, "exact": 0}
        doc["checks"]["orphan"] = {"value": 5}
        failures = self_check(doc)
        assert len(failures) == 4
        joined = "\n".join(failures)
        assert (
            "check serial_parallel_identical: observed False, "
            "expected True" in joined
        )
        assert "check diff: observed 2e-09, expected <= 1e-09" in joined
        assert "check count: observed 1, expected exactly 0" in joined
        assert "check orphan declares no criterion" in joined


class TestCompare:
    def test_identical_runs_pass(self):
        assert compare(_v1_fit_doc(), _v1_fit_doc()) == []

    def test_injected_regression_fails(self):
        # >20% slowdown of the speedup ratio must trip the gate.
        fresh = _v1_fit_doc(speedup=7.0)
        baseline = _v1_fit_doc(speedup=10.0)
        failures = compare(fresh, baseline)
        assert len(failures) == 1
        assert "fell below" in failures[0]

    def test_small_slowdown_passes(self):
        fresh = _v1_fit_doc(speedup=8.5)
        baseline = _v1_fit_doc(speedup=10.0)
        assert compare(fresh, baseline) == []

    def test_suite_mismatch_rejected(self):
        failures = compare(_v1_fit_doc(), _v2_doc())
        assert failures and "suite mismatch" in failures[0]

    def test_fresh_must_pass_own_checks(self):
        failures = compare(_v1_fit_doc(vb2_diff=0.5), _v1_fit_doc())
        assert any("vb2_max_abs_diff" in f for f in failures)

    def test_injected_regression_on_committed_fit_baseline(self):
        baseline = json.loads((RESULTS_DIR / "BENCH_fit.json").read_text())
        degraded = json.loads(json.dumps(baseline))
        for payload in degraded["modes"].values():
            for workload in payload["workloads"].values():
                workload["speedup"] *= 0.5
        failures = compare(degraded, baseline)
        assert failures, "halved speedups must trip the regression gate"


class TestLoadAndRender:
    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TelemetryError, match="not found"):
            load_ledger(tmp_path / "BENCH_nope.json")

    def test_load_bad_json(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        with pytest.raises(TelemetryError, match="not JSON"):
            load_ledger(bad)

    def test_render_shows_checks_and_speedups(self):
        text = render_ledger([normalise(_v1_fit_doc()), _v2_doc()])
        assert "suite fit" in text
        assert "suite robustness" in text
        assert "vb2_max_abs_diff" in text
        assert "ok" in text
        assert "10.0x" in text


class TestBenchCli:
    def test_check_committed_baselines(self, capsys):
        code = main(["bench", "check", "--baseline-dir", str(RESULTS_DIR)])
        assert code == 0
        out = capsys.readouterr().out
        assert "BENCH_fit.json" in out
        assert "passes its own checks" in out

    def test_check_fresh_within_gate(self, tmp_path, capsys):
        fresh = tmp_path / "BENCH_fit.json"
        baseline = (RESULTS_DIR / "BENCH_fit.json").read_text()
        fresh.write_text(baseline)
        code = main([
            "bench", "check", str(fresh),
            "--baseline-dir", str(RESULTS_DIR),
        ])
        assert code == 0
        assert "within the gate" in capsys.readouterr().out

    def test_check_fresh_regression_fails(self, tmp_path, capsys):
        doc = json.loads((RESULTS_DIR / "BENCH_fit.json").read_text())
        for payload in doc["modes"].values():
            for workload in payload["workloads"].values():
                workload["speedup"] *= 0.5
        fresh = tmp_path / "BENCH_fit.json"
        fresh.write_text(json.dumps(doc))
        code = main([
            "bench", "check", str(fresh),
            "--baseline-dir", str(RESULTS_DIR),
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().err

    def test_check_fresh_without_baseline_exits(self, tmp_path):
        fresh = tmp_path / "BENCH_unknown.json"
        fresh.write_text(json.dumps(_v2_doc()))
        with pytest.raises(SystemExit, match="no committed baseline"):
            main([
                "bench", "check", str(fresh),
                "--baseline-dir", str(tmp_path / "empty"),
            ])

    def test_report_text(self, capsys):
        code = main(["bench", "report", "--dir", str(RESULTS_DIR)])
        assert code == 0
        out = capsys.readouterr().out
        assert "suite fit" in out
        assert "suite robustness" in out

    def test_report_json(self, capsys):
        code = main([
            "bench", "report", "--dir", str(RESULTS_DIR), "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        suites = {entry["suite"] for entry in payload}
        assert {"fit", "interval", "mcmc", "robustness"} <= suites

    def test_report_missing_dir_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "report", "--dir", str(tmp_path / "nope")])
