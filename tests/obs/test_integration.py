"""Telemetry integration tests: instrumented solvers, campaign traces.

The two load-bearing guarantees checked here:

1. **No-op bit-identity** — enabling telemetry must not change a single
   bit of any numerical result.
2. **Serial/parallel trace byte-identity** — an SBC campaign traced at
   the default ``summary`` level produces the same canonical event
   stream whether replications run in-process or on a worker pool.
"""

import numpy as np
import pytest

from repro import obs
from repro.bayes.laplace import fit_laplace
from repro.bayes.nint import fit_nint
from repro.core.vb1 import fit_vb1
from repro.core.vb2 import fit_vb2
from repro.mle.em import fit_mle_em
from repro.obs.sink import encode_event
from repro.validation.sbc import SBCSpec, run_sbc

_SMOKE = dict(replications=6, ranks=7, seed=17)


class TestTelemetryOnResults:
    def test_vb2_attaches_telemetry(self, times_data, info_prior_times):
        with obs.capture():
            post = fit_vb2(times_data, info_prior_times, alpha0=1.0)
        telemetry = post.diagnostics["telemetry"]
        assert telemetry["counters"]["vb2.solves"] >= 1
        assert telemetry["histograms"]["vb2.nmax"]["count"] == 1
        assert telemetry["histograms"]["vb2.nmax"]["max"] == pytest.approx(
            post.diagnostics["nmax"]
        )

    def test_vb1_attaches_telemetry(self, times_data, info_prior_times):
        with obs.capture():
            post = fit_vb1(times_data, info_prior_times, alpha0=1.0)
        telemetry = post.diagnostics["telemetry"]
        hist = telemetry["histograms"]["vb1.outer_iterations"]
        assert hist["count"] == 1
        assert hist["max"] == post.diagnostics["iterations"]

    def test_nint_attaches_telemetry(self, times_data, info_prior_times,
                                     vb2_times):
        with obs.capture():
            post = fit_nint(
                times_data, info_prior_times, 1.0,
                reference_posterior=vb2_times, n_omega=41, n_beta=41,
            )
        telemetry = post.diagnostics["telemetry"]
        assert telemetry["counters"]["nint.grid_evaluations"] == 41 * 41

    def test_laplace_attaches_telemetry(self, times_data, info_prior_times):
        with obs.capture():
            post = fit_laplace(times_data, info_prior_times, alpha0=1.0)
        telemetry = post.diagnostics["telemetry"]
        assert telemetry["counters"]["laplace.fits"] == 1

    def test_no_telemetry_key_when_disabled(self, times_data,
                                            info_prior_times):
        post = fit_vb2(times_data, info_prior_times, alpha0=1.0)
        assert "telemetry" not in post.diagnostics


class TestNoOpBitIdentity:
    def test_vb2_results_identical(self, times_data, info_prior_times):
        plain = fit_vb2(times_data, info_prior_times, alpha0=1.0)
        with obs.capture(level="debug"):
            traced = fit_vb2(times_data, info_prior_times, alpha0=1.0)
        np.testing.assert_array_equal(plain.weights, traced.weights)
        np.testing.assert_array_equal(plain.n_values, traced.n_values)
        for param in ("omega", "beta"):
            assert plain.mean(param) == traced.mean(param)
            assert plain.variance(param) == traced.variance(param)
        assert plain.diagnostics["nmax"] == traced.diagnostics["nmax"]
        assert plain.elbo == traced.elbo

    def test_em_results_identical(self, times_data):
        plain = fit_mle_em(times_data, information=False)
        with obs.capture(level="debug"):
            traced = fit_mle_em(times_data, information=False)
        assert plain.model.omega == traced.model.omega
        assert plain.model.beta == traced.model.beta
        assert plain.log_likelihood == traced.log_likelihood
        assert plain.iterations == traced.iterations

    def test_sbc_ranks_identical(self):
        from repro.validation.sbc import SBC_QUANTITIES

        plain = run_sbc(SBCSpec(method="VB2", **_SMOKE))
        with obs.capture():
            traced = run_sbc(SBCSpec(method="VB2", **_SMOKE))
        for quantity in SBC_QUANTITIES:
            np.testing.assert_array_equal(
                plain.ranks(quantity), traced.ranks(quantity)
            )


def _campaign_events(workers):
    """Run the smoke SBC campaign traced; return its canonical lines."""
    with obs.capture(level="summary") as col:
        col.emit("meta", schema=1, level="summary")
        run_sbc(SBCSpec(method="VB2", **_SMOKE), workers=workers)
        col.emit_summary()
    return [encode_event(ev) for ev in col.events]


class TestCampaignTraces:
    def test_serial_repeat_is_byte_identical(self):
        assert _campaign_events(1) == _campaign_events(1)

    def test_parallel_matches_serial_byte_for_byte(self):
        # The pool may fall back to serial in restricted sandboxes
        # (parallel_map warns and degrades) — the guarantee under test
        # is unchanged either way: one canonical event stream.
        import warnings

        serial = _campaign_events(1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = _campaign_events(2)
        assert serial == parallel

    def test_campaign_event_emitted(self):
        with obs.capture() as col:
            run_sbc(SBCSpec(method="VB2", **_SMOKE))
        (ev,) = [e for e in col.events if e.get("name") == "sbc.campaign"]
        assert ev["replications"] == _SMOKE["replications"]
        assert ev["method"] == "VB2"
        assert ev["ok"] + ev["skipped"] + ev["failed"] == ev["replications"]

    def test_replication_spans_tagged_with_rep(self):
        with obs.capture() as col:
            run_sbc(SBCSpec(method="VB2", **_SMOKE))
        spans = [e for e in col.events if e["kind"] == "span"]
        assert spans, "campaign should merge replication spans"
        reps = {e["rep"] for e in spans}
        assert reps <= set(range(_SMOKE["replications"]))

    def test_histograms_aggregate_across_replications(self):
        with obs.capture() as col:
            result = run_sbc(SBCSpec(method="VB2", **_SMOKE))
        assert col.counters["vb2.solves"] > 0
        assert col.histograms["vb2.nmax"].count == result.used


def _traced_campaign_bytes(path, workers):
    """Full tracing() run (meta + spans + metrics + summary) to disk."""
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with obs.tracing(path, level="summary", command="sbc"):
            run_sbc(SBCSpec(method="VB2", **_SMOKE), workers=workers)
    return path.read_bytes()


class TestMetricsByteIdentity:
    """The schema-2 additions must preserve the serial-vs-parallel
    byte-identity guarantee: merged metrics registries (solver-health
    gauges, labeled histograms) are part of the trace now."""

    def test_serial_and_parallel_traces_identical(self, tmp_path):
        serial = _traced_campaign_bytes(tmp_path / "serial.jsonl", 1)
        parallel = _traced_campaign_bytes(tmp_path / "parallel.jsonl", 2)
        assert serial == parallel

    def test_trace_contains_merged_solver_health(self, tmp_path):
        from repro.obs.sink import load_validated_trace

        _traced_campaign_bytes(tmp_path / "trace.jsonl", 1)
        events = load_validated_trace(tmp_path / "trace.jsonl")
        (metrics,) = [e for e in events if e["kind"] == "metrics"]
        hist = metrics["histograms"]["fit.iterations{method=VB2}"]
        assert hist["count"] > 0
        assert metrics["gauges"]["fit.nmax{method=VB2}"]["updates"] > 0

    def test_merged_registry_equals_serial_registry(self):
        import warnings

        registries = []
        for workers in (1, 2):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with obs.capture(level="summary") as col:
                    run_sbc(SBCSpec(method="VB2", **_SMOKE), workers=workers)
            registries.append(col.metrics.export())
        assert registries[0] == registries[1]
