"""Tests for `repro report` rendering and the CLI trace plumbing."""

import pytest

from repro import obs
from repro.cli import main
from repro.obs.report import method_of, render_report
from repro.obs.sink import load_validated_trace


def _trace_events(level="summary"):
    """A small realistic event list built through the real collector."""
    with obs.capture(level=level) as col:
        col.emit("meta", schema=1, level=level, command="fit")
        with obs.span("vb2.fit"):
            obs.counter_add("vb2.solves", 201)
            obs.observe("vb2.nmax", 228)
            obs.observe("vb2.tail_mass", 1e-12)
        col.emit_summary()
    return col.events


class TestMethodOf:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("vb2.fit", "VB2"),
            ("vb1.outer_iterations", "VB1"),
            ("nint.grid_evaluations", "NINT"),
            ("laplace.fits", "LAPL"),
            ("mcmc.ess_omega", "MCMC"),
            ("mle.em.fit", "MLE"),
            ("fixed_point.iterations", "fixed_point"),
        ],
    )
    def test_prefix_mapping(self, name, expected):
        assert method_of(name) == expected


class TestRenderReport:
    def test_header_and_sections(self):
        text = render_report(_trace_events())
        assert "level summary" in text
        assert "command fit" in text
        assert "## cost per method (spans)" in text
        assert "## convergence metrics (histograms)" in text
        assert "## counters" in text
        assert "VB2" in text
        assert "vb2.solves" in text

    def test_summary_level_has_no_wall_clock_column_values(self):
        text = render_report(_trace_events())
        # Span table shows "-" for wall clock at the summary level.
        vb2_row = next(
            line for line in text.splitlines() if line.startswith("VB2")
        )
        assert "-" in vb2_row

    def test_timing_level_reports_wall_clock(self):
        text = render_report(_trace_events(level="timing"))
        vb2_row = next(
            line for line in text.splitlines() if line.startswith("VB2")
        )
        assert "-" not in vb2_row.split()[3]

    def test_failure_events_listed(self):
        with obs.capture() as col:
            col.emit("meta", schema=1, level="summary")
            obs.event("mle.em.divergence", iterations=100)
            col.emit_summary()
        text = render_report(col.events)
        assert "## failure events" in text
        assert "mle.em.divergence" in text

    def test_failed_spans_listed(self):
        with obs.capture() as col:
            col.emit("meta", schema=1, level="summary")
            with pytest.raises(ValueError):
                with obs.span("vb1.fit"):
                    raise ValueError
            col.emit_summary()
        text = render_report(col.events)
        assert "## failed spans" in text
        assert "error:ValueError" in text

    def test_merged_replications_counted(self):
        with obs.capture() as child:
            with obs.span("vb2.fit"):
                pass
        payload = child.export()
        with obs.capture() as parent:
            parent.emit("meta", schema=1, level="summary")
            for rep in range(3):
                parent.merge(payload, rep=rep)
            parent.emit_summary()
        text = render_report(parent.events)
        assert "replications merged: 3" in text
        assert "spawn keys 0..2" in text

    def test_empty_trace_renders_placeholder(self):
        text = render_report([])
        assert "(no telemetry recorded)" in text


@pytest.fixture()
def sim_csv(tmp_path):
    path = tmp_path / "sim.csv"
    code = main([
        "simulate", "--model", "goel-okumoto", "--omega", "40",
        "--beta", "0.1", "--horizon", "25", "--seed", "3",
        "--out", str(path),
    ])
    assert code == 0
    return path


class TestCliTraceRoundTrip:
    def test_fit_trace_report(self, sim_csv, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main([
            "fit", "--data", str(sim_csv), "--kind", "times",
            "--omega-mean", "40", "--omega-std", "12",
            "--beta-mean", "0.1", "--beta-std", "0.04",
            "--trace", str(trace), "--trace-level", "timing",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert f"trace written to {trace}" in err

        events = load_validated_trace(trace)
        assert events[0]["kind"] == "meta"
        assert events[0]["command"] == "fit"
        assert events[0]["level"] == "timing"
        assert events[-1]["kind"] == "summary"
        assert events[-1]["counters"]["vb2.solves"] >= 1

        code = main(["report", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "VB2" in out

    def test_validate_sbc_trace_tags_command(self, tmp_path, capsys):
        trace = tmp_path / "sbc.jsonl"
        code = main([
            "validate", "sbc", "--method", "VB2", "--replications", "4",
            "--seed", "11", "--out", str(tmp_path / "sbc.json"),
            "--trace", str(trace),
        ])
        assert code == 0
        events = load_validated_trace(trace)
        assert events[0]["command"] == "validate sbc"
        assert any(e.get("name") == "sbc.campaign" for e in events)

    def test_validate_coverage_trace(self, tmp_path, capsys):
        trace = tmp_path / "cov.jsonl"
        code = main([
            "validate", "coverage", "--replications", "8",
            "--methods", "VB1", "--seed", "13",
            "--out", str(tmp_path / "cov.json"), "--trace", str(trace),
        ])
        assert code == 0
        events = load_validated_trace(trace)
        assert events[0]["command"] == "validate coverage"
        (ev,) = [e for e in events if e.get("name") == "coverage.campaign"]
        assert ev["replications"] == 8
        assert 0.0 < ev["confidence"] < 1.0

    def test_no_trace_flag_writes_nothing(self, sim_csv, tmp_path, capsys):
        code = main([
            "fit", "--data", str(sim_csv), "--kind", "times",
            "--omega-mean", "40", "--omega-std", "12",
            "--beta-mean", "0.1", "--beta-std", "0.04",
        ])
        assert code == 0
        assert "trace written" not in capsys.readouterr().err
        assert not obs.enabled()

    def test_report_missing_file_exits_nonzero(self, tmp_path):
        with pytest.raises(SystemExit, match="error:"):
            main(["report", str(tmp_path / "missing.jsonl")])

    def test_report_invalid_trace_exits_nonzero(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind":"mystery","seq":0}\n')
        with pytest.raises(SystemExit, match="invalid trace"):
            main(["report", str(bad)])


@pytest.fixture()
def fit_trace(sim_csv, tmp_path):
    trace = tmp_path / "trace.jsonl"
    code = main([
        "fit", "--data", str(sim_csv), "--kind", "times",
        "--omega-mean", "40", "--omega-std", "12",
        "--beta-mean", "0.1", "--beta-std", "0.04",
        "--trace", str(trace), "--trace-level", "timing",
    ])
    assert code == 0
    return trace


class TestReportFormats:
    def test_json_format(self, fit_trace, capsys):
        import json

        assert main(["report", str(fit_trace), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 2
        assert payload["command"] == "fit"
        assert "VB2" in payload["methods"]
        assert payload["metrics"]["gauges"]
        assert any(
            key.startswith("fit.elbo") for key in payload["metrics"]["gauges"]
        )

    def test_json_format_with_profile(self, fit_trace, capsys):
        import json

        code = main([
            "report", str(fit_trace), "--format", "json", "--profile",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        names = {c["name"] for c in payload["profile"]["children"]}
        assert "vb2.fit" in names

    def test_metrics_section(self, fit_trace, capsys):
        assert main(["report", str(fit_trace), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "## metrics snapshot" in out
        assert "metric gauges" in out
        assert "fit.elbo{method=VB2}" in out

    def test_profile_section(self, fit_trace, capsys):
        assert main(["report", str(fit_trace), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "## span profile" in out
        assert "vb2.fit" in out
        assert "cum_s" in out  # timing-level trace carries wall time

    def test_folded_export(self, fit_trace, tmp_path, capsys):
        folded = tmp_path / "stacks.folded"
        code = main(["report", str(fit_trace), "--folded", str(folded)])
        assert code == 0
        lines = folded.read_text().splitlines()
        assert lines
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert path
            int(value)  # folded values are integers

    def test_unbalanced_trace_profile_error(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"kind":"meta","seq":0,"schema":2,"level":"summary"}\n'
            '{"kind":"span","seq":1,"name":"a.b","depth":3,"status":"ok"}\n'
        )
        with pytest.raises(SystemExit, match="invalid trace"):
            main(["report", str(bad), "--profile"])
