"""Unit tests for the telemetry core: spans, counters, histograms."""

import math

import pytest

from repro import obs
from repro.obs.core import Collector, Histogram


class TestHistogram:
    def test_empty(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.std == 0.0

    def test_single_value(self):
        hist = Histogram()
        hist.record(3.5)
        assert hist.count == 1
        assert hist.mean == 3.5
        assert hist.std == 0.0
        assert hist.min == 3.5
        assert hist.max == 3.5

    def test_mean_and_population_std(self):
        hist = Histogram()
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for v in values:
            hist.record(v)
        assert hist.mean == pytest.approx(5.0)
        assert hist.std == pytest.approx(2.0)  # classic population-std example
        assert hist.min == 2.0
        assert hist.max == 9.0

    def test_merge_state_is_exact(self):
        left, right, whole = Histogram(), Histogram(), Histogram()
        values = [0.1, -2.5, 3.75, 11.0, 0.0, 6.25]
        for v in values[:3]:
            left.record(v)
            whole.record(v)
        for v in values[3:]:
            right.record(v)
            whole.record(v)
        left.merge_state(right.state())
        assert left.summary() == whole.summary()

    def test_summary_fields(self):
        hist = Histogram()
        hist.record(1.0)
        assert set(hist.summary()) == {
            "count", "total", "mean", "std", "min", "max",
        }


class TestDisabledMode:
    def test_module_api_is_noop(self):
        assert not obs.enabled()
        assert obs.active() is None
        # None of these should raise or allocate a collector.
        obs.counter_add("x.y")
        obs.observe("x.y", 1.0)
        obs.event("x.y", value=1)
        obs.timing_sample("label", [0.1])

    def test_span_returns_shared_noop(self):
        first = obs.span("a.b")
        second = obs.span("c.d", collect=True)
        assert first is second  # shared singleton — zero allocation
        with first as sp:
            assert sp.collecting is False
            assert sp.telemetry() == {}

    def test_noop_span_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with obs.span("a.b"):
                raise RuntimeError("boom")


class TestCapture:
    def test_install_and_restore(self):
        assert not obs.enabled()
        with obs.capture() as col:
            assert obs.enabled()
            assert obs.active() is col
        assert not obs.enabled()

    def test_nesting_restores_previous(self):
        with obs.capture() as outer:
            with obs.capture() as inner:
                assert obs.active() is inner
            assert obs.active() is outer

    def test_restored_on_exception(self):
        with pytest.raises(ValueError):
            with obs.capture():
                raise ValueError
        assert not obs.enabled()

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            Collector(level="verbose")

    def test_event_with_invalid_level_fails_loudly(self):
        # Catches `level=` attribute collisions at call sites: the
        # keyword is reserved for the trace level.
        with obs.capture():
            with pytest.raises(ValueError, match="unknown trace level"):
                obs.event("coverage.campaign", level=0.99)


class TestSpans:
    def test_span_event_fields(self):
        with obs.capture() as col:
            with obs.span("vb2.fit", data="FailureTimeData"):
                pass
        (ev,) = [e for e in col.events if e["kind"] == "span"]
        assert ev["name"] == "vb2.fit"
        assert ev["depth"] == 0
        assert ev["status"] == "ok"
        assert ev["data"] == "FailureTimeData"
        assert "wall_s" not in ev  # summary level is deterministic

    def test_wall_clock_only_at_timing_level(self):
        with obs.capture(level="timing") as col:
            with obs.span("vb2.fit"):
                pass
        (ev,) = [e for e in col.events if e["kind"] == "span"]
        assert ev["wall_s"] >= 0.0

    def test_nesting_depth(self):
        with obs.capture() as col:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        inner, outer = [e for e in col.events if e["kind"] == "span"]
        # Inner span closes (and is emitted) first.
        assert (inner["name"], inner["depth"]) == ("inner", 1)
        assert (outer["name"], outer["depth"]) == ("outer", 0)

    def test_error_status_and_propagation(self):
        with obs.capture() as col:
            with pytest.raises(ZeroDivisionError):
                with obs.span("mle.em.fit"):
                    1 / 0
        (ev,) = col.events
        assert ev["status"] == "error:ZeroDivisionError"
        assert col.span_stats["mle.em.fit"]["errors"] == 1

    def test_collecting_span_scopes_metrics(self):
        with obs.capture() as col:
            obs.counter_add("before", 1)
            with obs.span("fit", collect=True) as sp:
                obs.counter_add("fit.solves", 3)
                obs.observe("fit.nmax", 100)
                obs.observe("fit.nmax", 200)
            telemetry = sp.telemetry()
        assert telemetry["counters"] == {"fit.solves": 3}
        assert telemetry["histograms"]["fit.nmax"]["count"] == 2
        assert telemetry["histograms"]["fit.nmax"]["mean"] == 150.0
        assert "before" not in telemetry["counters"]
        # Global aggregates still see everything.
        assert col.counters == {"before": 1, "fit.solves": 3}

    def test_nested_collecting_spans_both_see_updates(self):
        with obs.capture():
            with obs.span("outer", collect=True) as outer_sp:
                obs.counter_add("a")
                with obs.span("inner", collect=True) as inner_sp:
                    obs.counter_add("a")
        assert outer_sp.telemetry()["counters"]["a"] == 2
        assert inner_sp.telemetry()["counters"]["a"] == 1

    def test_level_gated_span_is_noop(self):
        with obs.capture(level="summary") as col:
            with obs.span("vb2.solve_n", level="debug") as sp:
                pass
            assert sp.collecting is False
        assert col.events == []


class TestEventsAndMetrics:
    def test_point_event(self):
        with obs.capture() as col:
            obs.event("fixed_point.divergence", residuals=[1.0, 0.5])
        (ev,) = col.events
        assert ev["kind"] == "point"
        assert ev["name"] == "fixed_point.divergence"
        assert ev["residuals"] == [1.0, 0.5]

    def test_level_gated_event(self):
        with obs.capture(level="summary") as col:
            obs.event("vb2.growth_round", level="debug", nmax=64)
        assert col.events == []

    def test_seq_strictly_increasing(self):
        with obs.capture() as col:
            for _ in range(5):
                obs.event("tick")
        assert [e["seq"] for e in col.events] == [0, 1, 2, 3, 4]

    def test_timing_sample_suppressed_at_summary_level(self):
        with obs.capture(level="summary") as col:
            obs.timing_sample("bench", [0.1, 0.2])
        assert col.events == []

    def test_timing_sample_statistics(self):
        with obs.capture(level="timing") as col:
            obs.timing_sample("bench", [0.1, 0.2, 0.3])
        (ev,) = col.events
        assert ev["kind"] == "timing"
        assert ev["label"] == "bench"
        assert ev["repeat"] == 3
        assert ev["min_s"] == pytest.approx(0.1)
        assert ev["mean_s"] == pytest.approx(0.2)
        assert ev["std_s"] == pytest.approx(math.sqrt(0.02 / 3))

    def test_summary_event_sorted_and_complete(self):
        with obs.capture() as col:
            obs.counter_add("z.last")
            obs.counter_add("a.first", 2)
            obs.observe("m.metric", 7.0)
            with obs.span("fit"):
                pass
            ev = col.emit_summary()
        assert list(ev["counters"]) == ["a.first", "z.last"]
        assert ev["histograms"]["m.metric"]["count"] == 1
        assert ev["spans"]["fit"] == {"count": 1, "errors": 0}


class TestMerge:
    def test_merge_re_sequences_and_tags_rep(self):
        with obs.capture() as child:
            with obs.span("vb1.fit"):
                pass
            obs.counter_add("vb1.fits")
            obs.observe("vb1.iterations", 12)
        payload = child.export()

        with obs.capture() as parent:
            parent.emit("meta", schema=1, level="summary")
            parent.merge(payload, rep=4)
            parent.merge(payload, rep=9)
        spans = [e for e in parent.events if e["kind"] == "span"]
        assert [e["rep"] for e in spans] == [4, 9]
        assert [e["seq"] for e in parent.events] == list(
            range(len(parent.events))
        )
        assert parent.counters["vb1.fits"] == 2
        assert parent.histograms["vb1.iterations"].count == 2
        assert parent.span_stats["vb1.fit"]["count"] == 2

    def test_export_roundtrips_through_pickle(self):
        import pickle

        with obs.capture() as child:
            obs.observe("x", 1.5)
        payload = pickle.loads(pickle.dumps(child.export()))
        with obs.capture() as parent:
            parent.merge(payload)
        assert parent.histograms["x"].total == 1.5

    def test_traced_task_returns_result_and_export(self):
        result, payload = obs.traced_task(lambda x: x * 2, "summary", 21)
        assert result == 42
        assert set(payload) == {
            "events", "counters", "histograms", "spans", "metrics",
        }
        assert not obs.enabled()  # capture restored
