"""Tests for campaign progress heartbeats (repro.obs.heartbeat)."""

import logging

from repro import obs
from repro.obs.heartbeat import Heartbeat


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def _progress_events(col):
    return [e for e in col.events if e["kind"] == "progress"]


class TestHeartbeat:
    def test_rate_limited(self):
        clock = FakeClock()
        with obs.capture(level="timing") as col:
            hb = Heartbeat("sbc.replications", 100, interval_s=1.0,
                           clock=clock)
            for _ in range(10):
                clock.now += 0.01  # 10 ticks inside one interval
                hb.tick()
        assert _progress_events(col) == []

    def test_reports_after_interval(self):
        clock = FakeClock()
        with obs.capture(level="timing") as col:
            hb = Heartbeat("sbc.replications", 100, interval_s=1.0,
                           clock=clock)
            clock.now += 2.0
            hb.tick()
        (ev,) = _progress_events(col)
        assert ev["label"] == "sbc.replications"
        assert ev["done"] == 1 and ev["total"] == 100
        assert ev["elapsed_s"] == 2.0
        assert ev["rate_per_s"] == 0.5
        assert ev["eta_s"] == 99 / 0.5

    def test_final_tick_always_reports(self):
        clock = FakeClock()
        with obs.capture(level="timing") as col:
            hb = Heartbeat("cov.replications", 3, interval_s=60.0,
                           clock=clock)
            clock.now += 0.1
            for done in (1, 2, 3):
                hb.tick(done)
        (ev,) = _progress_events(col)
        assert ev["done"] == 3 and ev["total"] == 3
        assert "eta_s" not in ev  # nothing left to estimate

    def test_summary_level_emits_no_events(self):
        clock = FakeClock()
        with obs.capture(level="summary") as col:
            hb = Heartbeat("sbc.replications", 2, clock=clock)
            clock.now += 10.0
            hb.tick(2)
        assert _progress_events(col) == []

    def test_logs_at_info(self, caplog):
        clock = FakeClock()
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            hb = Heartbeat("sbc.replications", 2, clock=clock)
            clock.now += 5.0
            hb.tick(2)
        assert "sbc.replications: 2/2" in caplog.text

    def test_tick_without_argument_increments(self):
        hb = Heartbeat("x.y", 10, clock=FakeClock())
        hb.tick()
        hb.tick()
        assert hb.done == 2
