"""Unit tests for the labeled-metrics registry (repro.obs.metrics)."""

import math
from fractions import Fraction

import pytest

from repro.obs.metrics import (
    METRIC_KEY_RE,
    LogHistogram,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
    decode_metric_key,
    encode_metric_key,
)


class TestMetricKeys:
    def test_plain_name(self):
        assert encode_metric_key("vb2.solves") == "vb2.solves"

    def test_labels_sorted(self):
        key = encode_metric_key("fit.elbo", {"method": "VB2", "data": "DG"})
        assert key == "fit.elbo{data=DG,method=VB2}"

    def test_round_trip(self):
        key = encode_metric_key("fit.kappa", {"method": "VB2+SW"})
        name, labels = decode_metric_key(key)
        assert name == "fit.kappa"
        assert labels == {"method": "VB2+SW"}

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="dotted identifier"):
            encode_metric_key("Bad Name")

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError):
            encode_metric_key("ok.name", {"k": "bad value"})

    def test_regex_matches_encoded_keys(self):
        for key in (
            "vb2.solves",
            "fit.elbo{method=VB2}",
            "fit.kappa_omega{method=VB2+SW}",
            "a.b{x=1,y=2.5}",
        ):
            assert METRIC_KEY_RE.match(key), key

    def test_regex_rejects_garbage(self):
        for key in ("", "Bad", "a.b{", "a.b{x=}", "a.b{=v}", "a b"):
            assert not METRIC_KEY_RE.match(key), key


class TestBuckets:
    def test_bounds_contain_value(self):
        for value in (1e-8, 3.2e-4, 0.5, 1.0, 7.3, 9999.0):
            lo, hi = bucket_bounds(bucket_index(value))
            assert lo <= value <= hi * (1 + 1e-12)

    def test_monotone(self):
        indices = [bucket_index(v) for v in (1e-6, 1e-3, 1.0, 1e3)]
        assert indices == sorted(indices)
        assert len(set(indices)) == 4


class TestLogHistogram:
    def test_summary_fields(self):
        hist = LogHistogram()
        for v in (1.0, 2.0, 4.0):
            hist.record(v)
        s = hist.summary()
        assert s["count"] == 3
        assert s["total"] == pytest.approx(7.0)
        assert s["mean"] == pytest.approx(7.0 / 3.0)
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["p50"] is not None

    def test_total_is_exact(self):
        hist = LogHistogram()
        # 0.1 is not dyadic but is an exact binary float once parsed;
        # Fraction accumulation keeps the float sum independent of order.
        values = [0.1, 1e300, -1e300, 0.2]
        for v in values:
            hist.record(v)
        assert hist.total == sum(Fraction(v) for v in values)

    def test_non_finite_rejected(self):
        hist = LogHistogram()
        for bad in (math.inf, -math.inf, math.nan):
            with pytest.raises(ValueError):
                hist.record(bad)

    def test_quantile_none_with_negatives(self):
        hist = LogHistogram()
        hist.record(-1.0)
        hist.record(2.0)
        assert hist.quantile(0.5) is None

    def test_state_round_trip(self):
        hist = LogHistogram()
        for v in (0.5, 1.5, 1.5, 300.0, 0.0, -2.0):
            hist.record(v)
        other = LogHistogram()
        other.merge_state(hist.state())
        assert other.state() == hist.state()
        assert other.summary() == hist.summary()

    def test_merge_is_sum(self):
        a, b = LogHistogram(), LogHistogram()
        for v in (1.0, 2.0):
            a.record(v)
        for v in (3.0, 4.0):
            b.record(v)
        a.merge_state(b.state())
        assert a.count == 4
        assert float(a.total) == pytest.approx(10.0)
        assert a.min == 1.0 and a.max == 4.0


class TestMetricsRegistry:
    def test_counter_int_when_integral(self):
        reg = MetricsRegistry()
        reg.counter_add("vb2.solves", 2)
        reg.counter_add("vb2.solves", 3)
        snap = reg.snapshot()
        assert snap["counters"]["vb2.solves"] == 5
        assert isinstance(snap["counters"]["vb2.solves"], int)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge_set("fit.elbo", 1.0, {"method": "VB2"})
        reg.gauge_set("fit.elbo", 2.0, {"method": "VB2"})
        entry = reg.snapshot()["gauges"]["fit.elbo{method=VB2}"]
        assert entry == {"value": 2.0, "updates": 2}

    def test_empty_property(self):
        reg = MetricsRegistry()
        assert reg.empty
        reg.counter_add("x.y")
        assert not reg.empty

    def test_merge_of_export_doubles_counters(self):
        reg = MetricsRegistry()
        reg.counter_add("a.b", 3)
        reg.observe("lat.x", 0.25)
        payload = reg.export()
        reg.merge(payload)
        snap = reg.snapshot()
        assert snap["counters"]["a.b"] == 6
        assert snap["histograms"]["lat.x"]["count"] == 2

    def test_merge_gauge_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge_set("g.v", 1.0)
        b.gauge_set("g.v", 9.0)
        a.merge(b.export())
        assert a.snapshot()["gauges"]["g.v"]["value"] == 9.0
        assert a.snapshot()["gauges"]["g.v"]["updates"] == 2

    def test_merge_skips_empty_gauge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge_set("g.v", 1.0)
        # b never touched g.v: merging must not clobber a's value.
        b.counter_add("c.x")
        a.merge(b.export())
        assert a.snapshot()["gauges"]["g.v"]["value"] == 1.0

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        reg.counter_add("z.last")
        reg.counter_add("a.first")
        assert list(reg.snapshot()["counters"]) == ["a.first", "z.last"]
