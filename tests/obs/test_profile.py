"""Tests for span-tree profiling (repro.obs.profile)."""

import pytest

from repro import obs
from repro.obs.profile import build_profile, fold_stacks, render_profile


def _span(name, depth, status="ok", wall=None, **extra):
    ev = {"kind": "span", "seq": 0, "name": name, "depth": depth,
          "status": status}
    if wall is not None:
        ev["wall_s"] = wall
    ev.update(extra)
    return ev


class TestBuildProfile:
    def test_nesting_reconstructed_from_exit_depths(self):
        # Exit order: child exits first (depth 1), then parent (depth 0).
        events = [
            _span("vb2.solve_n", 1),
            _span("vb2.solve_n", 1),
            _span("vb2.fit", 0),
        ]
        root = build_profile(events)
        assert list(root.children) == ["vb2.fit"]
        fit = root.children["vb2.fit"]
        assert fit.count == 1
        assert fit.children["vb2.solve_n"].count == 2

    def test_sibling_replications_aggregate(self):
        # Two merged replications restart at depth 0 — the fits become
        # one aggregated node under the implicit root.
        events = [
            _span("vb2.solve_n", 1),
            _span("vb2.fit", 0),
            _span("vb2.solve_n", 1),
            _span("vb2.fit", 0),
        ]
        root = build_profile(events)
        fit = root.children["vb2.fit"]
        assert fit.count == 2
        assert fit.children["vb2.solve_n"].count == 2

    def test_errors_counted(self):
        events = [_span("vb1.fit", 0, status="error:ConvergenceError")]
        root = build_profile(events)
        assert root.children["vb1.fit"].errors == 1

    def test_wall_and_self_wall(self):
        events = [
            _span("inner.a", 1, wall=0.25),
            _span("outer.b", 0, wall=1.0),
        ]
        root = build_profile(events)
        outer = root.children["outer.b"]
        assert outer.wall_s == 1.0
        assert outer.self_wall_s == pytest.approx(0.75)
        assert outer.children["inner.a"].self_wall_s == 0.25

    def test_summary_trace_has_no_wall(self):
        root = build_profile([_span("vb2.fit", 0)])
        assert root.children["vb2.fit"].wall_s is None
        assert root.children["vb2.fit"].self_wall_s is None

    def test_orphaned_depth_raises(self):
        with pytest.raises(ValueError, match="unbalanced"):
            build_profile([_span("lost.span", 2)])

    def test_non_span_events_skipped(self):
        events = [
            {"kind": "meta", "seq": 0, "schema": 2, "level": "summary"},
            _span("vb2.fit", 0),
            {"kind": "summary", "seq": 2, "counters": {}, "histograms": {},
             "spans": {}},
        ]
        root = build_profile(events)
        assert root.children["vb2.fit"].count == 1

    def test_merge_is_order_independent(self):
        a = build_profile([_span("x.y", 1), _span("a.b", 0)])
        b = build_profile([_span("a.b", 0), _span("c.d", 0)])
        ab = build_profile([])
        ab.merge(a)
        ab.merge(b)
        ba = build_profile([])
        ba.merge(b)
        ba.merge(a)
        assert ab.to_dict() == ba.to_dict()
        assert ab.children["a.b"].count == 2

    def test_real_collector_stream(self, times_data, info_prior_times):
        from repro.core.vb2 import fit_vb2

        with obs.capture(level="timing") as col:
            fit_vb2(times_data, info_prior_times, alpha0=1.0)
        root = build_profile(col.events)
        assert "vb2.fit" in root.children
        assert root.children["vb2.fit"].wall_s > 0.0


class TestFoldedStacks:
    def test_paths_and_values(self):
        events = [
            _span("inner.a", 1, wall=0.25),
            _span("outer.b", 0, wall=1.0),
        ]
        lines = fold_stacks(build_profile(events))
        assert "outer.b 750000" in lines
        assert "outer.b;inner.a 250000" in lines

    def test_counts_when_no_timing(self):
        lines = fold_stacks(build_profile([_span("a.b", 0), _span("a.b", 0)]))
        assert lines == ["a.b 2"]

    def test_deterministic_order(self):
        events = [_span("z.z", 0), _span("a.a", 0)]
        lines = fold_stacks(build_profile(events))
        assert lines == sorted(lines)


class TestRenderProfile:
    def test_summary_has_no_wall_columns(self):
        text = render_profile(build_profile([_span("vb2.fit", 0)]))
        assert "calls" in text and "errors" in text
        assert "cum_s" not in text

    def test_timing_has_wall_columns(self):
        text = render_profile(
            build_profile([_span("vb2.fit", 0, wall=0.5)])
        )
        assert "cum_s" in text and "self_s" in text

    def test_children_indented(self):
        events = [_span("inner.a", 1), _span("outer.b", 0)]
        text = render_profile(build_profile(events))
        assert "\n  inner.a" in text

    def test_empty(self):
        assert "no spans" in render_profile(build_profile([]))
