"""Schema validation, JSONL round-trip, and canonical encoding tests."""

from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.exceptions import TelemetryError
from repro.obs.events import sanitise_value, validate_event, validate_trace
from repro.obs.sink import (
    JsonlSink,
    encode_event,
    load_validated_trace,
    read_trace,
)


class TestSanitiseValue:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert sanitise_value(value) is value

    def test_numpy_scalars_become_python(self):
        out = sanitise_value(np.float64(1.5))
        assert type(out) is float and out == 1.5
        out = sanitise_value(np.int64(7))
        assert type(out) is int and out == 7

    def test_numpy_array_becomes_list(self):
        assert sanitise_value(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_nested_structures(self):
        out = sanitise_value({"a": (np.int32(1), [np.float32(2.0)])})
        assert out == {"a": [1, [2.0]]}

    def test_unknown_objects_stringified(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert sanitise_value(Weird()) == "<weird>"


class TestValidateEvent:
    def test_valid_span(self):
        validate_event(
            {"kind": "span", "seq": 1, "name": "vb2.fit", "depth": 0,
             "status": "ok"}
        )

    def test_unknown_kind(self):
        with pytest.raises(TelemetryError, match="kind"):
            validate_event({"kind": "bogus", "seq": 0})

    def test_missing_required_field(self):
        with pytest.raises(TelemetryError, match="status"):
            validate_event(
                {"kind": "span", "seq": 0, "name": "a", "depth": 0}
            )

    def test_bad_span_name(self):
        with pytest.raises(TelemetryError, match="dotted identifier"):
            validate_event(
                {"kind": "span", "seq": 0, "name": "Bad Name", "depth": 0,
                 "status": "ok"}
            )

    def test_bad_status(self):
        with pytest.raises(TelemetryError, match="status"):
            validate_event(
                {"kind": "span", "seq": 0, "name": "a.b", "depth": 0,
                 "status": "crashed"}
            )

    def test_error_status_accepted(self):
        validate_event(
            {"kind": "span", "seq": 0, "name": "a.b", "depth": 0,
             "status": "error:ConvergenceError"}
        )

    def test_meta_level_checked(self):
        with pytest.raises(TelemetryError, match="level"):
            validate_event(
                {"kind": "meta", "seq": 0, "schema": 1, "level": "loud"}
            )

    def test_nested_attribute_rejected(self):
        with pytest.raises(TelemetryError, match="flat list"):
            validate_event(
                {"kind": "point", "seq": 0, "name": "x", "bad": {"a": 1}}
            )

    def test_flat_list_attribute_accepted(self):
        validate_event(
            {"kind": "point", "seq": 0, "name": "fixed_point.divergence",
             "residuals": [1.0, 0.5, 0.25]}
        )

    def test_timing_fields(self):
        with pytest.raises(TelemetryError, match="repeat"):
            validate_event(
                {"kind": "timing", "seq": 0, "label": "x", "repeat": 0,
                 "min_s": 0.1, "mean_s": 0.1, "std_s": 0.0}
            )

    def test_summary_histogram_shape(self):
        with pytest.raises(TelemetryError, match="histogram"):
            validate_event(
                {"kind": "summary", "seq": 0, "counters": {},
                 "histograms": {"m": {"count": 1}}, "spans": {}}
            )

    def test_rep_must_be_int(self):
        with pytest.raises(TelemetryError, match="rep"):
            validate_event(
                {"kind": "point", "seq": 0, "name": "x", "rep": "3"}
            )


class TestValidateTrace:
    def test_must_start_with_meta(self):
        with pytest.raises(TelemetryError, match="meta"):
            validate_trace([{"kind": "point", "seq": 0, "name": "x"}])

    def test_empty_trace_rejected(self):
        with pytest.raises(TelemetryError, match="empty"):
            validate_trace([])

    def test_seq_must_increase(self):
        events = [
            {"kind": "meta", "seq": 0, "schema": 1, "level": "summary"},
            {"kind": "point", "seq": 0, "name": "x"},
        ]
        with pytest.raises(TelemetryError, match="strictly increasing"):
            validate_trace(events)

    def test_counts_events(self):
        events = [
            {"kind": "meta", "seq": 0, "schema": 1, "level": "summary"},
            {"kind": "point", "seq": 1, "name": "x"},
        ]
        assert validate_trace(events) == 2


class TestJsonlRoundTrip:
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [
            {"kind": "meta", "seq": 0, "schema": 1, "level": "summary"},
            {"kind": "point", "seq": 1, "name": "x", "value": 2.5},
        ]
        with JsonlSink(path) as sink:
            for ev in events:
                sink.write(ev)
        assert read_trace(path) == events
        assert load_validated_trace(path) == events

    def test_encoding_is_canonical(self):
        ev = {"seq": 0, "kind": "meta", "schema": 1, "level": "summary"}
        line = encode_event(ev)
        assert line == '{"kind":"meta","level":"summary","schema":1,"seq":0}'
        # Key order in the dict must not matter.
        assert line == encode_event(dict(reversed(list(ev.items()))))

    def test_corrupt_line_raises_telemetry_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind":"meta","seq":0}\nnot json\n')
        with pytest.raises(TelemetryError, match="not valid JSON"):
            read_trace(path)

    def test_invalid_event_caught_on_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind":"mystery","seq":0}\n')
        with pytest.raises(TelemetryError, match="kind"):
            load_validated_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind":"meta","seq":0,"schema":1,"level":"summary"}\n\n')
        assert len(read_trace(path)) == 1

    def test_sink_creates_parent_directory(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.write({"kind": "meta", "seq": 0})
        assert path.exists()


class TestSchema2Events:
    def test_metrics_event_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path, level="summary", command="fit"):
            obs.metric_counter("vb2.fits", 3)
            obs.fit_health("VB2", iterations=12, elbo=-5.0)
        events = load_validated_trace(path)
        assert events[0]["schema"] == 2
        (metrics,) = [e for e in events if e["kind"] == "metrics"]
        assert metrics["counters"]["vb2.fits"] == 3
        assert metrics["gauges"]["fit.elbo{method=VB2}"]["value"] == -5.0
        assert metrics["histograms"]["fit.iterations{method=VB2}"][
            "count"
        ] == 1

    def test_progress_event_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path, level="timing"):
            obs.progress("sbc.replications", 3, 10, elapsed_s=1.5,
                         rate_per_s=2.0, eta_s=3.5)
        events = load_validated_trace(path)
        (progress,) = [e for e in events if e["kind"] == "progress"]
        assert progress["done"] == 3 and progress["total"] == 10

    def test_progress_gated_behind_timing(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path, level="summary"):
            obs.progress("sbc.replications", 3, 10)
        events = load_validated_trace(path)
        assert not [e for e in events if e["kind"] == "progress"]

    def test_no_metrics_event_when_registry_empty(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path, level="summary"):
            obs.counter_add("legacy.counter")  # span-layer, not registry
        events = load_validated_trace(path)
        assert not [e for e in events if e["kind"] == "metrics"]

    def test_schema_1_trace_still_valid(self):
        events = [
            {"kind": "meta", "seq": 0, "schema": 1, "level": "summary"},
            {"kind": "point", "seq": 1, "name": "x"},
        ]
        assert validate_trace(events) == 2

    def test_unsupported_schema_rejected(self):
        with pytest.raises(TelemetryError, match="schema"):
            validate_trace(
                [{"kind": "meta", "seq": 0, "schema": 3, "level": "summary"}]
            )

    def test_bad_metric_key_rejected(self):
        with pytest.raises(TelemetryError, match="metric counter"):
            validate_event(
                {"kind": "metrics", "seq": 0,
                 "counters": {"Bad Key": 1}, "gauges": {},
                 "histograms": {}}
            )

    def test_gauge_shape_checked(self):
        with pytest.raises(TelemetryError, match="gauge"):
            validate_event(
                {"kind": "metrics", "seq": 0, "counters": {},
                 "gauges": {"g.v": {"value": 1.0}}, "histograms": {}}
            )

    def test_progress_done_beyond_total_rejected(self):
        with pytest.raises(TelemetryError, match="done"):
            validate_event(
                {"kind": "progress", "seq": 0, "label": "x.y",
                 "done": 11, "total": 10}
            )


class TestCrashSafety:
    def test_killed_writer_leaves_readable_trace(self, tmp_path):
        """A process killed mid-trace (os._exit, no atexit, no flush
        of Python-level buffers) must leave every completed event
        readable — the JsonlSink flushes per event."""
        import subprocess
        import sys as _sys

        path = tmp_path / "killed.jsonl"
        script = (
            "import os, sys\n"
            "sys.path.insert(0, sys.argv[2])\n"
            "from repro import obs\n"
            "from repro.obs.sink import JsonlSink\n"
            "sink = JsonlSink(sys.argv[1])\n"
            "with obs.capture(level='summary', sink=sink) as col:\n"
            "    col.emit('meta', schema=2, level='summary')\n"
            "    with obs.span('vb2.fit'):\n"
            "        obs.counter_add('vb2.solves')\n"
            "    os._exit(1)  # simulated hard crash, nothing runs after\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        proc = subprocess.run(
            [_sys.executable, "-c", script, str(path), src],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 1, proc.stderr
        events = read_trace(path)
        assert [e["kind"] for e in events] == ["meta", "span"]
        validate_trace(events)


class TestTracingContext:
    def test_full_trace_is_valid(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path, level="summary", command="test"):
            with obs.span("vb2.fit"):
                obs.counter_add("vb2.solves", 2)
        events = load_validated_trace(path)
        assert events[0]["kind"] == "meta"
        assert events[0]["command"] == "test"
        assert events[-1]["kind"] == "summary"
        assert events[-1]["counters"] == {"vb2.solves": 2}

    def test_file_closed_on_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with pytest.raises(RuntimeError):
            with obs.tracing(path):
                raise RuntimeError
        # Partial trace is still readable (meta event was flushed).
        events = read_trace(path)
        assert events and events[0]["kind"] == "meta"
        assert not obs.enabled()
