"""Schema validation, JSONL round-trip, and canonical encoding tests."""

import numpy as np
import pytest

from repro import obs
from repro.exceptions import TelemetryError
from repro.obs.events import sanitise_value, validate_event, validate_trace
from repro.obs.sink import (
    JsonlSink,
    encode_event,
    load_validated_trace,
    read_trace,
)


class TestSanitiseValue:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert sanitise_value(value) is value

    def test_numpy_scalars_become_python(self):
        out = sanitise_value(np.float64(1.5))
        assert type(out) is float and out == 1.5
        out = sanitise_value(np.int64(7))
        assert type(out) is int and out == 7

    def test_numpy_array_becomes_list(self):
        assert sanitise_value(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_nested_structures(self):
        out = sanitise_value({"a": (np.int32(1), [np.float32(2.0)])})
        assert out == {"a": [1, [2.0]]}

    def test_unknown_objects_stringified(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert sanitise_value(Weird()) == "<weird>"


class TestValidateEvent:
    def test_valid_span(self):
        validate_event(
            {"kind": "span", "seq": 1, "name": "vb2.fit", "depth": 0,
             "status": "ok"}
        )

    def test_unknown_kind(self):
        with pytest.raises(TelemetryError, match="kind"):
            validate_event({"kind": "bogus", "seq": 0})

    def test_missing_required_field(self):
        with pytest.raises(TelemetryError, match="status"):
            validate_event(
                {"kind": "span", "seq": 0, "name": "a", "depth": 0}
            )

    def test_bad_span_name(self):
        with pytest.raises(TelemetryError, match="dotted identifier"):
            validate_event(
                {"kind": "span", "seq": 0, "name": "Bad Name", "depth": 0,
                 "status": "ok"}
            )

    def test_bad_status(self):
        with pytest.raises(TelemetryError, match="status"):
            validate_event(
                {"kind": "span", "seq": 0, "name": "a.b", "depth": 0,
                 "status": "crashed"}
            )

    def test_error_status_accepted(self):
        validate_event(
            {"kind": "span", "seq": 0, "name": "a.b", "depth": 0,
             "status": "error:ConvergenceError"}
        )

    def test_meta_level_checked(self):
        with pytest.raises(TelemetryError, match="level"):
            validate_event(
                {"kind": "meta", "seq": 0, "schema": 1, "level": "loud"}
            )

    def test_nested_attribute_rejected(self):
        with pytest.raises(TelemetryError, match="flat list"):
            validate_event(
                {"kind": "point", "seq": 0, "name": "x", "bad": {"a": 1}}
            )

    def test_flat_list_attribute_accepted(self):
        validate_event(
            {"kind": "point", "seq": 0, "name": "fixed_point.divergence",
             "residuals": [1.0, 0.5, 0.25]}
        )

    def test_timing_fields(self):
        with pytest.raises(TelemetryError, match="repeat"):
            validate_event(
                {"kind": "timing", "seq": 0, "label": "x", "repeat": 0,
                 "min_s": 0.1, "mean_s": 0.1, "std_s": 0.0}
            )

    def test_summary_histogram_shape(self):
        with pytest.raises(TelemetryError, match="histogram"):
            validate_event(
                {"kind": "summary", "seq": 0, "counters": {},
                 "histograms": {"m": {"count": 1}}, "spans": {}}
            )

    def test_rep_must_be_int(self):
        with pytest.raises(TelemetryError, match="rep"):
            validate_event(
                {"kind": "point", "seq": 0, "name": "x", "rep": "3"}
            )


class TestValidateTrace:
    def test_must_start_with_meta(self):
        with pytest.raises(TelemetryError, match="meta"):
            validate_trace([{"kind": "point", "seq": 0, "name": "x"}])

    def test_empty_trace_rejected(self):
        with pytest.raises(TelemetryError, match="empty"):
            validate_trace([])

    def test_seq_must_increase(self):
        events = [
            {"kind": "meta", "seq": 0, "schema": 1, "level": "summary"},
            {"kind": "point", "seq": 0, "name": "x"},
        ]
        with pytest.raises(TelemetryError, match="strictly increasing"):
            validate_trace(events)

    def test_counts_events(self):
        events = [
            {"kind": "meta", "seq": 0, "schema": 1, "level": "summary"},
            {"kind": "point", "seq": 1, "name": "x"},
        ]
        assert validate_trace(events) == 2


class TestJsonlRoundTrip:
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [
            {"kind": "meta", "seq": 0, "schema": 1, "level": "summary"},
            {"kind": "point", "seq": 1, "name": "x", "value": 2.5},
        ]
        with JsonlSink(path) as sink:
            for ev in events:
                sink.write(ev)
        assert read_trace(path) == events
        assert load_validated_trace(path) == events

    def test_encoding_is_canonical(self):
        ev = {"seq": 0, "kind": "meta", "schema": 1, "level": "summary"}
        line = encode_event(ev)
        assert line == '{"kind":"meta","level":"summary","schema":1,"seq":0}'
        # Key order in the dict must not matter.
        assert line == encode_event(dict(reversed(list(ev.items()))))

    def test_corrupt_line_raises_telemetry_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind":"meta","seq":0}\nnot json\n')
        with pytest.raises(TelemetryError, match="not valid JSON"):
            read_trace(path)

    def test_invalid_event_caught_on_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind":"mystery","seq":0}\n')
        with pytest.raises(TelemetryError, match="kind"):
            load_validated_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind":"meta","seq":0,"schema":1,"level":"summary"}\n\n')
        assert len(read_trace(path)) == 1

    def test_sink_creates_parent_directory(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.write({"kind": "meta", "seq": 0})
        assert path.exists()


class TestTracingContext:
    def test_full_trace_is_valid(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path, level="summary", command="test"):
            with obs.span("vb2.fit"):
                obs.counter_add("vb2.solves", 2)
        events = load_validated_trace(path)
        assert events[0]["kind"] == "meta"
        assert events[0]["command"] == "test"
        assert events[-1]["kind"] == "summary"
        assert events[-1]["counters"] == {"vb2.solves": 2}

    def test_file_closed_on_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with pytest.raises(RuntimeError):
            with obs.tracing(path):
                raise RuntimeError
        # Partial trace is still readable (meta event was flushed).
        events = read_trace(path)
        assert events and events[0]["kind"] == "meta"
        assert not obs.enabled()
