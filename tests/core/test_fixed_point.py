"""Tests for the scalar fixed-point solver."""

import math

import pytest

from repro.core.fixed_point import solve_fixed_point
from repro.exceptions import ConvergenceError


class TestSolve:
    def test_linear_contraction(self):
        # x = 0.5 x + 1 -> x* = 2.
        result = solve_fixed_point(lambda x: 0.5 * x + 1.0, 10.0)
        assert result.value == pytest.approx(2.0, rel=1e-10)
        assert result.converged

    def test_cosine_fixed_point(self):
        result = solve_fixed_point(lambda x: math.cos(x) + 1.5, 1.0)
        assert result.value == pytest.approx(math.cos(result.value) + 1.5, rel=1e-9)

    def test_aitken_accelerates_slow_contraction(self):
        # Contraction factor 0.99: plain substitution needs thousands of
        # steps for 1e-12; Aitken needs far fewer evaluations.
        update = lambda x: 0.99 * x + 0.01 * 5.0
        accelerated = solve_fixed_point(update, 100.0, use_aitken=True)
        assert accelerated.value == pytest.approx(5.0, rel=1e-9)
        plain_budget_fails = False
        try:
            solve_fixed_point(update, 100.0, use_aitken=False, max_iter=100)
        except ConvergenceError:
            plain_budget_fails = True
        assert plain_budget_fails
        assert accelerated.iterations <= 100

    def test_fixed_point_already_at_start(self):
        result = solve_fixed_point(lambda x: x, 3.0)
        assert result.value == 3.0
        assert result.iterations == 1

    def test_budget_exhaustion_raises(self):
        with pytest.raises(ConvergenceError) as excinfo:
            solve_fixed_point(lambda x: 2.0 * x, 1.0, max_iter=20, use_aitken=False)
        assert excinfo.value.iterations == 20

    def test_domain_violation_raises(self):
        with pytest.raises(ConvergenceError):
            solve_fixed_point(lambda x: x - 10.0, 1.0)

    def test_invalid_start_rejected(self):
        with pytest.raises(ValueError):
            solve_fixed_point(lambda x: x, -1.0)

    def test_result_residual_small_on_convergence(self):
        result = solve_fixed_point(lambda x: 0.3 * x + 0.7, 5.0, rtol=1e-10)
        assert result.residual <= 1e-10
