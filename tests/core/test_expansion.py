"""Tests for the Cornish-Fisher expansion intervals (paper future work)."""

import numpy as np
import pytest

from repro.bayes.laplace import fit_laplace
from repro.core.expansion import cornish_fisher_quantile, expansion_interval
from repro.stats.gamma_dist import GammaDistribution
from repro.core.posterior import VBPosterior


def gamma_posterior(shape=8.0, rate=0.2):
    """One-component VB posterior whose quantiles are known exactly."""
    return VBPosterior(
        n_values=[1.0],
        weights=[1.0],
        omega_components=[GammaDistribution(shape, rate)],
        beta_components=[GammaDistribution(38.0, 4e6)],
    )


class TestAgainstExactGamma:
    def test_order4_beats_order2_on_skewed_posterior(self):
        posterior = gamma_posterior()
        exact = posterior.quantile("omega", 0.995)
        errors = {
            order: abs(
                cornish_fisher_quantile(posterior, "omega", 0.995, order=order)
                - exact
            )
            for order in (2, 3, 4)
        }
        assert errors[3] < errors[2]
        assert errors[4] < 0.5 * errors[2]

    def test_order2_is_normal_quantile(self):
        posterior = gamma_posterior()
        from scipy import stats as st

        z = st.norm.ppf(0.975)
        expected = posterior.mean("omega") + z * posterior.std("omega")
        assert cornish_fisher_quantile(
            posterior, "omega", 0.975, order=2
        ) == pytest.approx(expected, rel=1e-12)

    def test_symmetric_posterior_needs_no_correction(self):
        # Large shape: gamma approaches normal; orders 2 and 4 converge.
        posterior = gamma_posterior(shape=10_000.0, rate=100.0)
        q2 = cornish_fisher_quantile(posterior, "omega", 0.995, order=2)
        q4 = cornish_fisher_quantile(posterior, "omega", 0.995, order=4)
        assert q2 == pytest.approx(q4, rel=1e-3)


class TestOnRealPosteriors:
    def test_matches_exact_interval_on_vb2(self, vb2_times):
        exact = vb2_times.credible_interval("omega", 0.99)
        expansion = expansion_interval(vb2_times, "omega", 0.99, order=4)
        assert expansion.lower == pytest.approx(exact[0], rel=0.01)
        assert expansion.upper == pytest.approx(exact[1], rel=0.01)

    def test_beats_laplace_interval(
        self, vb2_times, nint_times, times_data, info_prior_times
    ):
        # The expansion interval built on VB2 cumulants should land closer
        # to NINT's exact interval than LAPL's symmetric one does.
        lapl = fit_laplace(times_data, info_prior_times)
        exact = nint_times.credible_interval("omega", 0.99)
        lapl_interval = lapl.credible_interval("omega", 0.99)
        cf = expansion_interval(vb2_times, "omega", 0.99, order=4)
        lapl_error = abs(lapl_interval[0] - exact[0]) + abs(
            lapl_interval[1] - exact[1]
        )
        cf_error = abs(cf.lower - exact[0]) + abs(cf.upper - exact[1])
        assert cf_error < 0.5 * lapl_error

    def test_records_cumulants(self, vb2_times):
        interval = expansion_interval(vb2_times, "omega", 0.99)
        assert interval.skewness > 0.0  # right-skewed posterior
        assert interval.level == 0.99

    def test_validation(self, vb2_times):
        with pytest.raises(ValueError):
            cornish_fisher_quantile(vb2_times, "omega", 1.5)
        with pytest.raises(ValueError):
            cornish_fisher_quantile(vb2_times, "omega", 0.5, order=5)
        with pytest.raises(ValueError):
            expansion_interval(vb2_times, "omega", level=0.0)
