"""Tests for the VB2 conditional update equations.

These tests pin down the mathematical content of paper Section 5.2,
including the erratum documented in DESIGN.md: the residual-fault terms
use the gamma *survival* function, which is what makes the paper's own
closed-form claim for the Goel–Okumoto case come out.
"""

import math

import numpy as np
import pytest

from repro.bayes.priors import GammaPrior, ModelPrior
from repro.core.config import VBConfig
from repro.core.gamma_updates import (
    GroupedStats,
    TimesStats,
    elbo_constant,
    solve_conditional_grouped,
    solve_conditional_times,
)
from repro.data.datasets import system17_failure_times, system17_grouped
from repro.stats.truncated import censored_gamma_mean, truncated_gamma_mean


@pytest.fixture(scope="module")
def times_stats():
    return TimesStats.from_data(system17_failure_times())


@pytest.fixture(scope="module")
def grouped_stats():
    return GroupedStats.from_data(system17_grouped())


@pytest.fixture(scope="module")
def prior_times():
    return ModelPrior.informative(50.0, 15.8, 1.0e-5, 3.2e-6)


@pytest.fixture(scope="module")
def prior_grouped():
    return ModelPrior.informative(50.0, 15.8, 3.3e-2, 1.1e-2)


CONFIG = VBConfig()


class TestClosedFormGoelOkumoto:
    """The paper states (Section 5.2) that for alpha0 = 1 and failure-time
    data the non-linear equations can be solved explicitly. This only
    works with survival-function residual terms — the erratum check."""

    def test_xi_closed_form(self, times_stats, prior_times):
        n = 50
        solution = solve_conditional_times(n, 1.0, prior_times, times_stats, CONFIG)
        m_beta, phi_beta = prior_times.beta.shape, prior_times.beta.rate
        expected = (m_beta + times_stats.me) / (
            phi_beta
            + times_stats.sum_times
            + (n - times_stats.me) * times_stats.horizon
        )
        assert solution.xi == pytest.approx(expected, rel=1e-12)

    def test_closed_form_is_fixed_point(self, times_stats, prior_times):
        # xi must satisfy xi = (m_beta + N alpha0) / (phi_beta + zeta(xi)).
        n = 60
        s = solve_conditional_times(n, 1.0, prior_times, times_stats, CONFIG)
        zeta = times_stats.sum_times + (n - times_stats.me) * censored_gamma_mean(
            times_stats.horizon, 1.0, s.xi
        )
        assert s.zeta == pytest.approx(zeta, rel=1e-12)
        assert s.xi == pytest.approx(
            (prior_times.beta.shape + n) / (prior_times.beta.rate + zeta), rel=1e-12
        )

    def test_gibbs_parallel_with_flat_prior(self, times_stats):
        # With a flat prior the closed form parallels Kuo-Yang Eq. 11:
        # beta | N ~ Gamma(me, sum t_i + (N - me) te).
        prior = ModelPrior(omega=GammaPrior(1.0, 0.0), beta=GammaPrior(1.0, 0.0))
        n = 45
        s = solve_conditional_times(n, 1.0, prior, times_stats, CONFIG)
        expected = (1.0 + times_stats.me) / (
            times_stats.sum_times + (n - times_stats.me) * times_stats.horizon
        )
        assert s.xi == pytest.approx(expected, rel=1e-12)


class TestConditionalStructure:
    def test_omega_posterior_parameters(self, times_stats, prior_times):
        n = 55
        s = solve_conditional_times(n, 1.0, prior_times, times_stats, CONFIG)
        assert s.a_omega == pytest.approx(prior_times.omega.shape + n)
        assert s.b_omega == pytest.approx(prior_times.omega.rate + 1.0)

    def test_beta_posterior_parameters_general_alpha(self, times_stats, prior_times):
        # Paper erratum 2: the shape is m_beta + N * alpha0 (not m_beta + N).
        n, alpha0 = 55, 2.0
        s = solve_conditional_times(n, alpha0, prior_times, times_stats, CONFIG)
        assert s.a_beta == pytest.approx(prior_times.beta.shape + n * alpha0)
        assert s.b_beta == pytest.approx(prior_times.beta.rate + s.zeta)
        assert s.xi == pytest.approx(s.a_beta / s.b_beta, rel=1e-10)

    def test_zeta_exceeds_observed_sum(self, times_stats, prior_times):
        # Residual faults fail after the horizon, so zeta > sum of
        # observed times whenever N > me.
        s = solve_conditional_times(
            times_stats.me + 10, 1.0, prior_times, times_stats, CONFIG
        )
        assert s.zeta > times_stats.sum_times + 10 * times_stats.horizon

    def test_n_equal_observed_has_no_residual_terms(self, times_stats, prior_times):
        s = solve_conditional_times(
            times_stats.me, 1.0, prior_times, times_stats, CONFIG
        )
        assert s.zeta == pytest.approx(times_stats.sum_times)

    def test_below_observed_rejected(self, times_stats, prior_times):
        with pytest.raises(ValueError):
            solve_conditional_times(
                times_stats.me - 1, 1.0, prior_times, times_stats, CONFIG
            )

    def test_warm_start_changes_nothing(self, times_stats, prior_times):
        n, alpha0 = 70, 2.0
        cold = solve_conditional_times(n, alpha0, prior_times, times_stats, CONFIG)
        warm = solve_conditional_times(
            n, alpha0, prior_times, times_stats, CONFIG, xi_start=cold.xi * 1.3
        )
        assert warm.xi == pytest.approx(cold.xi, rel=1e-9)
        assert warm.log_weight == pytest.approx(cold.log_weight, rel=1e-9)


class TestVectorisedExponentialRange:
    """The batch solver must agree with the scalar one exactly."""

    def test_matches_scalar_solutions(self, times_stats, prior_times):
        from repro.core.gamma_updates import (
            solve_conditional_times_exponential_range,
        )

        batch = solve_conditional_times_exponential_range(
            times_stats.me, times_stats.me + 100, prior_times, times_stats
        )
        for solution in (batch[0], batch[37], batch[-1]):
            reference = solve_conditional_times(
                solution.n, 1.0, prior_times, times_stats, CONFIG
            )
            assert solution.xi == pytest.approx(reference.xi, rel=1e-14)
            assert solution.zeta == pytest.approx(reference.zeta, rel=1e-14)
            assert solution.log_weight == pytest.approx(
                reference.log_weight, abs=1e-9
            )

    def test_matches_scalar_with_flat_prior(self, times_stats):
        from repro.bayes.priors import ModelPrior
        from repro.core.gamma_updates import (
            solve_conditional_times_exponential_range,
        )

        flat = ModelPrior.noninformative()
        batch = solve_conditional_times_exponential_range(
            times_stats.me, times_stats.me + 20, flat, times_stats
        )
        reference = solve_conditional_times(
            times_stats.me + 20, 1.0, flat, times_stats, CONFIG
        )
        assert batch[-1].log_weight == pytest.approx(
            reference.log_weight, abs=1e-9
        )

    def test_validation(self, times_stats, prior_times):
        from repro.core.gamma_updates import (
            solve_conditional_times_exponential_range,
        )

        with pytest.raises(ValueError):
            solve_conditional_times_exponential_range(
                times_stats.me - 1, times_stats.me, prior_times, times_stats
            )
        with pytest.raises(ValueError):
            solve_conditional_times_exponential_range(
                50, 40, prior_times, times_stats
            )


class TestGroupedUpdates:
    def test_zeta_composition(self, grouped_stats, prior_grouped):
        n = 50
        s = solve_conditional_grouped(n, 1.0, prior_grouped, grouped_stats, CONFIG)
        edges = grouped_stats.edges
        expected = sum(
            count
            * truncated_gamma_mean(float(edges[i]), float(edges[i + 1]), 1.0, s.xi)
            for i, count in enumerate(grouped_stats.counts)
            if count
        ) + (n - grouped_stats.total) * censored_gamma_mean(
            grouped_stats.horizon, 1.0, s.xi
        )
        assert s.zeta == pytest.approx(expected, rel=1e-10)

    def test_fixed_point_consistency(self, grouped_stats, prior_grouped):
        n, alpha0 = 60, 2.0
        s = solve_conditional_grouped(n, alpha0, prior_grouped, grouped_stats, CONFIG)
        assert s.xi == pytest.approx(s.a_beta / s.b_beta, rel=1e-10)

    def test_below_observed_rejected(self, grouped_stats, prior_grouped):
        with pytest.raises(ValueError):
            solve_conditional_grouped(
                grouped_stats.total - 1, 1.0, prior_grouped, grouped_stats, CONFIG
            )


class TestLogWeights:
    def test_weights_peak_near_posterior_mode(self, times_stats, prior_times):
        # The latent-count weight should be unimodal with its mode near
        # the posterior mean of N (~ observed + expected residual).
        ns = np.arange(times_stats.me, times_stats.me + 120)
        weights = [
            solve_conditional_times(int(n), 1.0, prior_times, times_stats, CONFIG).log_weight
            for n in ns
        ]
        mode = ns[int(np.argmax(weights))]
        assert times_stats.me < mode < times_stats.me + 30
        diffs = np.sign(np.diff(weights))
        # Unimodal: signs go from +1 to -1 with a single change.
        changes = int(np.sum(np.abs(np.diff(diffs)) > 0))
        assert changes <= 2

    def test_log_weight_finite_deep_into_tail(self, times_stats, prior_times):
        s = solve_conditional_times(5000, 1.0, prior_times, times_stats, CONFIG)
        assert math.isfinite(s.log_weight)

    def test_grouped_weights_finite(self, grouped_stats, prior_grouped):
        for n in (grouped_stats.total, 100, 1000):
            s = solve_conditional_grouped(n, 1.0, prior_grouped, grouped_stats, CONFIG)
            assert math.isfinite(s.log_weight)


class TestMarginalExactness:
    """For the Goel-Okumoto model the *exact* marginal posterior of N is
    available by analytic integration over omega and beta:

    P(N | D_T) ∝ Γ(m_ω+N)/(φ_ω+1)^{m_ω+N} / (N-me)!
               x Γ(m_β+me) / (φ_β + Σt_i + (N-me) t_e)^{m_β+me}

    (the beta integral is conjugate because the residual-fault survival
    terms are exponential). VB2's Pv(N) is an approximation of this; for
    informative priors they should agree closely near the mode.
    """

    @staticmethod
    def _exact_log_pmf(n, stats, prior):
        from scipy.special import gammaln

        m_omega, phi_omega = prior.omega.shape, prior.omega.rate
        m_beta, phi_beta = prior.beta.shape, prior.beta.rate
        r = n - stats.me
        return (
            float(gammaln(m_omega + n))
            - (m_omega + n) * math.log(phi_omega + 1.0)
            - float(gammaln(r + 1.0))
            - (m_beta + stats.me) * math.log(
                phi_beta + stats.sum_times + r * stats.horizon
            )
        )

    def test_vb_latent_pmf_tracks_exact(self, times_stats, prior_times):
        ns = np.arange(times_stats.me, times_stats.me + 80)
        log_vb = np.array(
            [
                solve_conditional_times(
                    int(n), 1.0, prior_times, times_stats, CONFIG
                ).log_weight
                for n in ns
            ]
        )
        log_exact = np.array(
            [self._exact_log_pmf(int(n), times_stats, prior_times) for n in ns]
        )
        from scipy.special import logsumexp

        vb = np.exp(log_vb - logsumexp(log_vb))
        exact = np.exp(log_exact - logsumexp(log_exact))
        # Means of N under the two pmfs agree within a fraction of a fault.
        assert float(ns @ vb) == pytest.approx(float(ns @ exact), abs=0.5)
        # Total variation distance is small.
        assert 0.5 * np.abs(vb - exact).sum() < 0.05


class TestElboConstant:
    def test_requires_proper_priors(self, times_stats):
        flat = ModelPrior.noninformative()
        with pytest.raises(Exception):
            elbo_constant(times_stats, flat, 1.0)

    def test_times_value(self, times_stats, prior_times):
        value = elbo_constant(times_stats, prior_times, 1.0)
        expected = (
            -prior_times.omega.log_normaliser() - prior_times.beta.log_normaliser()
        )
        assert value == pytest.approx(expected)  # alpha0=1: data terms vanish

    def test_grouped_value(self, grouped_stats, prior_grouped):
        value = elbo_constant(grouped_stats, prior_grouped, 1.0)
        assert math.isfinite(value)
