"""Tests for the posterior-predictive failure-count distribution."""

import numpy as np
import pytest

from repro.bayes.laplace import fit_laplace
from repro.bayes.mcmc.chains import ChainSettings
from repro.bayes.mcmc.gibbs_failure_time import gibbs_failure_time
from repro.core.prediction import predict_failure_counts
from repro.core.reliability import reliability_increment


class TestVBPredictive:
    def test_pmf_is_probability_vector(self, vb2_times, times_data):
        pred = predict_failure_counts(vb2_times, times_data.horizon, 10_000.0)
        assert np.all(pred.pmf >= 0.0)
        assert pred.pmf.sum() + pred.tail_mass == pytest.approx(1.0, abs=1e-8)

    def test_zero_count_probability_equals_reliability(
        self, vb2_times, times_data
    ):
        # P(K = 0) is the software reliability by definition (Eq. 3).
        pred = predict_failure_counts(vb2_times, times_data.horizon, 10_000.0)
        c = reliability_increment(1.0, times_data.horizon, 10_000.0)
        assert pred.probability_of_no_failure() == pytest.approx(
            vb2_times.reliability_point(c), rel=1e-9
        )

    def test_mean_matches_posterior_expectation(self, vb2_times, times_data, rng):
        # E[K] = E[omega c(beta)] under the posterior.
        u = 10_000.0
        pred = predict_failure_counts(vb2_times, times_data.horizon, u)
        draws = vb2_times.sample(400_000, rng)
        c = reliability_increment(1.0, times_data.horizon, u)
        expected = float(np.mean(draws[:, 0] * np.asarray(c(draws[:, 1]))))
        assert pred.mean() == pytest.approx(expected, rel=0.01)

    def test_predictive_is_overdispersed(self, vb2_times, times_data):
        # Parameter uncertainty makes Var[K] > E[K] (negative binomial).
        pred = predict_failure_counts(vb2_times, times_data.horizon, 100_000.0)
        support = pred.support
        mean = float(support @ pred.pmf)
        var = float((support - mean) ** 2 @ pred.pmf)
        assert var > mean

    def test_quantiles_monotone(self, vb2_times, times_data):
        pred = predict_failure_counts(vb2_times, times_data.horizon, 50_000.0)
        q50 = pred.quantile(0.5)
        q95 = pred.quantile(0.95)
        q999 = pred.quantile(0.999)
        assert q50 <= q95 <= q999
        assert pred.cdf(q95) >= 0.95

    def test_zero_window(self, vb2_times, times_data):
        pred = predict_failure_counts(vb2_times, times_data.horizon, 0.0)
        assert pred.probability_of_no_failure() == pytest.approx(1.0)

    def test_quantile_validation(self, vb2_times, times_data):
        pred = predict_failure_counts(vb2_times, times_data.horizon, 1000.0)
        with pytest.raises(ValueError):
            pred.quantile(0.0)

    def test_cdf_below_support(self, vb2_times, times_data):
        pred = predict_failure_counts(vb2_times, times_data.horizon, 1000.0)
        assert pred.cdf(-1) == 0.0


class TestOtherPosteriorTypes:
    def test_empirical_predictive(self, times_data, info_prior_times):
        posterior = gibbs_failure_time(
            times_data,
            info_prior_times,
            settings=ChainSettings(n_samples=4000, burn_in=1500, thin=2, seed=41),
        ).posterior()
        pred = predict_failure_counts(posterior, times_data.horizon, 10_000.0)
        c = reliability_increment(1.0, times_data.horizon, 10_000.0)
        assert pred.probability_of_no_failure() == pytest.approx(
            posterior.reliability_point(c), rel=1e-9
        )

    def test_laplace_predictive_is_plugin_poisson(
        self, times_data, info_prior_times
    ):
        posterior = fit_laplace(times_data, info_prior_times)
        pred = predict_failure_counts(posterior, times_data.horizon, 10_000.0)
        c = reliability_increment(1.0, times_data.horizon, 10_000.0)
        mean = posterior.mean("omega") * float(c(posterior.mean("beta")))
        assert pred.probability_of_no_failure() == pytest.approx(
            np.exp(-mean), rel=1e-9
        )

    def test_agreement_between_vb_and_mcmc_predictives(
        self, vb2_times, times_data, info_prior_times
    ):
        posterior = gibbs_failure_time(
            times_data,
            info_prior_times,
            settings=ChainSettings(n_samples=8000, burn_in=2000, thin=2, seed=42),
        ).posterior()
        u = 10_000.0
        vb_pred = predict_failure_counts(vb2_times, times_data.horizon, u)
        mc_pred = predict_failure_counts(posterior, times_data.horizon, u)
        size = min(vb_pred.pmf.size, mc_pred.pmf.size, 6)
        assert vb_pred.pmf[:size] == pytest.approx(mc_pred.pmf[:size], abs=0.01)
