"""Tests for the sequential reliability tracker."""

import numpy as np
import pytest

from repro.core.sequential import ReliabilityTracker
from repro.bayes.priors import ModelPrior


@pytest.fixture()
def tracker(info_prior_grouped):
    return ReliabilityTracker(
        info_prior_grouped,
        prediction_window=1.0,
        reliability_target=0.7,
    )


class TestTracker:
    def test_replay_grouped_produces_one_record_per_period(
        self, tracker, grouped_data
    ):
        history = tracker.replay_grouped(grouped_data, period=8)
        assert len(history) == grouped_data.n_intervals // 8
        horizons = [record.horizon for record in history]
        assert horizons == sorted(horizons)

    def test_observed_counts_cumulative(self, tracker, grouped_data):
        history = tracker.replay_grouped(grouped_data, period=8)
        counts = [record.observed_failures for record in history]
        assert counts == sorted(counts)
        assert counts[-1] == grouped_data.total_count

    def test_reliability_improves_as_faults_deplete(self, tracker, grouped_data):
        history = tracker.replay_grouped(grouped_data, period=8)
        # Late-campaign reliability should exceed early-campaign.
        assert history[-1].reliability_point > history[0].reliability_point

    def test_first_ship_record(self, tracker, grouped_data):
        tracker.replay_grouped(grouped_data, period=8)
        record = tracker.first_ship_record()
        if record is not None:
            assert record.meets_target
            assert record.reliability_lower >= 0.7

    def test_replay_times(self, times_data, info_prior_times):
        tracker = ReliabilityTracker(
            info_prior_times,
            prediction_window=1000.0,
            reliability_target=0.9,
        )
        checkpoints = np.linspace(
            times_data.times[5], times_data.horizon, 4
        )
        history = tracker.replay_times(times_data, checkpoints)
        assert len(history) == 4
        assert history[-1].observed_failures == times_data.count

    def test_residuals_decrease_over_campaign(self, tracker, grouped_data):
        history = tracker.replay_grouped(grouped_data, period=16)
        assert history[-1].expected_residual < history[0].expected_residual + 5.0

    def test_second_replay_does_not_double_count(self, tracker, grouped_data):
        # Regression: replay_* used to return the cumulative
        # ``self.history``, so a second call reported the first call's
        # records again.
        first = tracker.replay_grouped(grouped_data, period=16)
        second = tracker.replay_grouped(grouped_data, period=16)
        assert len(first) == len(second) == grouped_data.n_intervals // 16
        # history is where accumulation happens, by contract
        assert len(tracker.history) == len(first) + len(second)

    def test_replay_times_returns_only_own_records(
        self, times_data, info_prior_times
    ):
        tracker = ReliabilityTracker(info_prior_times, prediction_window=1000.0)
        checkpoints = [float(times_data.times[5]), float(times_data.horizon)]
        first = tracker.replay_times(times_data, checkpoints)
        second = tracker.replay_times(times_data, checkpoints)
        assert len(first) == 2
        assert len(second) == 2
        assert len(tracker.history) == 4

    def test_validation(self, info_prior_grouped, grouped_data):
        with pytest.raises(ValueError):
            ReliabilityTracker(info_prior_grouped, reliability_target=1.5)
        tracker = ReliabilityTracker(info_prior_grouped)
        with pytest.raises(ValueError):
            tracker.replay_grouped(grouped_data, period=0)
