"""Tests for the sequential reliability tracker."""

import numpy as np
import pytest

from repro.core.sequential import ReliabilityTracker
from repro.bayes.priors import ModelPrior


@pytest.fixture()
def tracker(info_prior_grouped):
    return ReliabilityTracker(
        info_prior_grouped,
        prediction_window=1.0,
        reliability_target=0.7,
    )


class TestTracker:
    def test_replay_grouped_produces_one_record_per_period(
        self, tracker, grouped_data
    ):
        history = tracker.replay_grouped(grouped_data, period=8)
        assert len(history) == grouped_data.n_intervals // 8
        horizons = [record.horizon for record in history]
        assert horizons == sorted(horizons)

    def test_observed_counts_cumulative(self, tracker, grouped_data):
        history = tracker.replay_grouped(grouped_data, period=8)
        counts = [record.observed_failures for record in history]
        assert counts == sorted(counts)
        assert counts[-1] == grouped_data.total_count

    def test_reliability_improves_as_faults_deplete(self, tracker, grouped_data):
        history = tracker.replay_grouped(grouped_data, period=8)
        # Late-campaign reliability should exceed early-campaign.
        assert history[-1].reliability_point > history[0].reliability_point

    def test_first_ship_record(self, tracker, grouped_data):
        tracker.replay_grouped(grouped_data, period=8)
        record = tracker.first_ship_record()
        if record is not None:
            assert record.meets_target
            assert record.reliability_lower >= 0.7

    def test_replay_times(self, times_data, info_prior_times):
        tracker = ReliabilityTracker(
            info_prior_times,
            prediction_window=1000.0,
            reliability_target=0.9,
        )
        checkpoints = np.linspace(
            times_data.times[5], times_data.horizon, 4
        )
        history = tracker.replay_times(times_data, checkpoints)
        assert len(history) == 4
        assert history[-1].observed_failures == times_data.count

    def test_residuals_decrease_over_campaign(self, tracker, grouped_data):
        history = tracker.replay_grouped(grouped_data, period=16)
        assert history[-1].expected_residual < history[0].expected_residual + 5.0

    def test_second_replay_does_not_double_count(self, tracker, grouped_data):
        # Regression: replay_* used to return the cumulative
        # ``self.history``, so a second call reported the first call's
        # records again.
        first = tracker.replay_grouped(grouped_data, period=16)
        second = tracker.replay_grouped(grouped_data, period=16)
        assert len(first) == len(second) == grouped_data.n_intervals // 16
        # history is where accumulation happens, by contract
        assert len(tracker.history) == len(first) + len(second)

    def test_replay_times_returns_only_own_records(
        self, times_data, info_prior_times
    ):
        tracker = ReliabilityTracker(info_prior_times, prediction_window=1000.0)
        checkpoints = [float(times_data.times[5]), float(times_data.horizon)]
        first = tracker.replay_times(times_data, checkpoints)
        second = tracker.replay_times(times_data, checkpoints)
        assert len(first) == 2
        assert len(second) == 2
        assert len(tracker.history) == 4

    def test_validation(self, info_prior_grouped, grouped_data):
        with pytest.raises(ValueError):
            ReliabilityTracker(info_prior_grouped, reliability_target=1.5)
        tracker = ReliabilityTracker(info_prior_grouped)
        with pytest.raises(ValueError):
            tracker.replay_grouped(grouped_data, period=0)


class TestCampaignScale:
    def test_200_period_campaign(self):
        """A long campaign stays linear: 200 truncate views share the
        full campaign's buffers and every period warm-starts."""
        rng = np.random.default_rng(11)
        counts = rng.poisson(4.0 * np.exp(-np.arange(200) / 80.0))
        from repro.data.failure_data import GroupedData

        campaign = GroupedData(
            counts=counts, boundaries=np.arange(1.0, 201.0)
        )
        # truncate views alias the parent's validated buffers
        view = campaign.truncate(120)
        assert view.counts.base is not None
        assert np.shares_memory(view.counts, campaign.counts)
        assert np.shares_memory(view.boundaries, campaign.boundaries)

        prior = ModelPrior.informative(60.0, 25.0, 0.05, 0.02)
        tracker = ReliabilityTracker(
            prior, prediction_window=1.0, reliability_target=0.9
        )
        history = tracker.replay_grouped(campaign)
        assert len(history) == 200
        assert [r.horizon for r in history] == list(
            np.arange(1.0, 201.0)
        )
        assert history[-1].observed_failures == campaign.total_count
        # every period after the first must have warm-started
        assert all(r.warm_started for r in history[1:])
        assert not history[0].warm_started

    def test_cold_tracker_never_flags_warm(self, info_prior_grouped, grouped_data):
        tracker = ReliabilityTracker(info_prior_grouped, warm_start=False)
        history = tracker.replay_grouped(grouped_data, period=16)
        assert not any(r.warm_started for r in history)

    def test_cached_tracker_replays_prefix_without_solving(
        self, info_prior_grouped, grouped_data, tmp_path
    ):
        from repro import obs
        from repro.cache.store import PosteriorCache

        def replay(cache):
            tracker = ReliabilityTracker(
                info_prior_grouped, warm_start=False, cache=cache
            )
            return tracker.replay_grouped(grouped_data, period=16)

        first = replay(PosteriorCache(tmp_path))
        with obs.capture() as counters:
            second = replay(PosteriorCache(tmp_path))
        assert counters.counters.get("vb2.solves", 0) == 0
        assert [r.reliability_lower for r in first] == [
            r.reliability_lower for r in second
        ]
