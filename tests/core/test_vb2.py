"""Tests for the VB2 fitting loop (paper Section 5.1, Steps 1-5)."""

import math

import numpy as np
import pytest

from repro.bayes.priors import ModelPrior
from repro.core.config import VBConfig
from repro.core.vb2 import fit_vb2
from repro.data.failure_data import FailureTimeData
from repro.exceptions import TruncationError


class TestFitting:
    def test_returns_mixture_starting_at_observed_count(
        self, times_data, info_prior_times
    ):
        posterior = fit_vb2(times_data, info_prior_times)
        ns, weights = posterior.fault_count_pmf()
        assert ns[0] == times_data.count
        assert weights.sum() == pytest.approx(1.0)

    def test_tail_tolerance_met(self, times_data, info_prior_times):
        config = VBConfig(tail_tolerance=1e-10)
        posterior = fit_vb2(times_data, info_prior_times, config=config)
        assert posterior.tail_mass() < 1e-10

    def test_tighter_tolerance_grows_nmax(self, times_data, info_prior_times):
        loose = fit_vb2(
            times_data, info_prior_times, config=VBConfig(tail_tolerance=1e-6)
        )
        tight = fit_vb2(
            times_data, info_prior_times, config=VBConfig(tail_tolerance=1e-14)
        )
        assert tight.diagnostics["nmax"] >= loose.diagnostics["nmax"]

    def test_fixed_nmax_mode(self, times_data, info_prior_times):
        posterior = fit_vb2(times_data, info_prior_times, nmax=100)
        assert posterior.diagnostics["nmax"] == 100
        assert posterior.n_components == 100 - times_data.count + 1

    def test_fixed_nmax_below_observed_rejected(self, times_data, info_prior_times):
        with pytest.raises(ValueError):
            fit_vb2(times_data, info_prior_times, nmax=times_data.count - 1)

    def test_results_independent_of_initial_nmax(self, times_data, info_prior_times):
        small_start = fit_vb2(
            times_data, info_prior_times, config=VBConfig(nmax_initial=5)
        )
        large_start = fit_vb2(
            times_data, info_prior_times, config=VBConfig(nmax_initial=500)
        )
        assert small_start.mean("omega") == pytest.approx(
            large_start.mean("omega"), rel=1e-9
        )
        assert small_start.variance("beta") == pytest.approx(
            large_start.variance("beta"), rel=1e-6
        )

    def test_invalid_alpha0(self, times_data, info_prior_times):
        with pytest.raises(ValueError):
            fit_vb2(times_data, info_prior_times, alpha0=0.0)

    def test_unsupported_data_type(self, info_prior_times):
        with pytest.raises(TypeError):
            fit_vb2([1.0, 2.0], info_prior_times)

    def test_grouped_fit(self, grouped_data, info_prior_grouped):
        posterior = fit_vb2(grouped_data, info_prior_grouped)
        assert posterior.mean("omega") > grouped_data.total_count
        assert posterior.covariance() < 0.0  # joint skew: more faults, slower rate

    def test_delayed_s_shaped_member(self, times_data, info_prior_times):
        posterior = fit_vb2(times_data, info_prior_times, alpha0=2.0)
        assert posterior.mean("omega") > 0
        assert posterior.diagnostics["alpha0"] == 2.0


class TestTruncationPolicy:
    def test_error_policy_raises_on_heavy_tail(self, times_data, flat_prior):
        config = VBConfig(nmax_ceiling=500, truncation_policy="error")
        with pytest.raises(TruncationError):
            fit_vb2(times_data, flat_prior, config=config)

    def test_clamp_policy_returns_truncated_posterior(self, times_data, flat_prior):
        config = VBConfig(nmax_ceiling=500, truncation_policy="clamp")
        posterior = fit_vb2(times_data, flat_prior, config=config)
        assert posterior.diagnostics["truncation_clamped"]
        assert posterior.diagnostics["nmax"] == 500

    def test_clamp_policy_not_flagged_when_tolerance_met(
        self, times_data, info_prior_times
    ):
        config = VBConfig(truncation_policy="clamp")
        posterior = fit_vb2(times_data, info_prior_times, config=config)
        assert not posterior.diagnostics["truncation_clamped"]


class TestElbo:
    def test_elbo_present_for_proper_priors(self, vb2_times):
        assert vb2_times.elbo is not None
        assert math.isfinite(vb2_times.elbo)

    def test_elbo_absent_for_flat_priors(self, times_data, flat_prior):
        posterior = fit_vb2(
            times_data,
            flat_prior,
            config=VBConfig(truncation_policy="clamp", nmax_ceiling=1024),
        )
        assert posterior.elbo is None

    def test_elbo_monotone_in_nmax(self, times_data, info_prior_times):
        # Each additional mixture component can only add probability mass
        # to the variational family: F must not decrease.
        elbos = [
            fit_vb2(times_data, info_prior_times, nmax=n).elbo
            for n in (45, 60, 100, 200)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(elbos, elbos[1:]))

    def test_elbo_bounded_by_evidence(
        self, times_data, info_prior_times, nint_times
    ):
        # F[Pv] <= log P(D); NINT's log normaliser approximates log P(D)
        # up to its (dominant-mass) truncation.
        vb2 = fit_vb2(times_data, info_prior_times)
        assert vb2.elbo <= nint_times.log_normaliser + 1e-6

    def test_elbo_close_to_evidence(self, times_data, info_prior_times, nint_times):
        # The structured family is rich; the gap should be small.
        vb2 = fit_vb2(times_data, info_prior_times)
        gap = nint_times.log_normaliser - vb2.elbo
        assert 0.0 <= gap < 0.5


class TestSmallData:
    def test_single_failure(self, info_prior_times):
        data = FailureTimeData([1000.0], horizon=240_000.0)
        posterior = fit_vb2(data, info_prior_times)
        assert posterior.mean("omega") > 0
        assert posterior.tail_mass() < VBConfig().tail_tolerance

    def test_no_failures_with_proper_prior(self, info_prior_times):
        data = FailureTimeData([], horizon=240_000.0)
        posterior = fit_vb2(data, info_prior_times)
        # Nothing observed: the posterior mean of omega must fall below
        # the prior mean (evidence of absence).
        assert posterior.mean("omega") < 50.0

    def test_warm_start_equals_cold_numerics(self, times_data, info_prior_times):
        # alpha0 != 1 exercises the warm-started fixed point across N.
        posterior = fit_vb2(times_data, info_prior_times, alpha0=1.5)
        cold = fit_vb2(
            times_data,
            info_prior_times,
            alpha0=1.5,
            config=VBConfig(use_aitken=False),
        )
        assert posterior.mean("omega") == pytest.approx(cold.mean("omega"), rel=1e-8)
        assert posterior.mean("beta") == pytest.approx(cold.mean("beta"), rel=1e-8)
