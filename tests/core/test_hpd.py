"""Tests for HPD intervals."""

import pytest

from repro.core.hpd import hpd_interval
from repro.core.posterior import VBPosterior
from repro.stats.gamma_dist import GammaDistribution


def skewed_posterior():
    """Single-gamma posterior: the HPD interval is known to sit left of
    the central one."""
    return VBPosterior(
        n_values=[1.0],
        weights=[1.0],
        omega_components=[GammaDistribution(5.0, 0.125)],  # heavily skewed
        beta_components=[GammaDistribution(38.0, 4e6)],
    )


class TestHPD:
    def test_coverage_is_exact(self):
        posterior = skewed_posterior()
        interval = hpd_interval(posterior, "omega", 0.9)
        mass = posterior.marginal("omega").cdf(interval.upper) - posterior.marginal(
            "omega"
        ).cdf(interval.lower)
        assert mass == pytest.approx(0.9, abs=1e-6)

    def test_shorter_than_central_interval(self):
        posterior = skewed_posterior()
        hpd = hpd_interval(posterior, "omega", 0.9)
        central = posterior.credible_interval("omega", 0.9)
        assert hpd.width < central[1] - central[0]

    def test_shifted_left_under_right_skew(self):
        posterior = skewed_posterior()
        hpd = hpd_interval(posterior, "omega", 0.9)
        central = posterior.credible_interval("omega", 0.9)
        assert hpd.lower < central[0]
        assert hpd.upper < central[1]
        assert hpd.left_tail < 0.05  # less than the central interval's tail

    def test_density_at_endpoints_nearly_equal(self):
        # The defining property of an HPD interval for a smooth unimodal
        # density: equal density at the two endpoints.
        posterior = skewed_posterior()
        hpd = hpd_interval(posterior, "omega", 0.9)
        marginal = posterior.marginal("omega")
        f_lo = float(marginal.pdf(hpd.lower))
        f_hi = float(marginal.pdf(hpd.upper))
        assert f_lo == pytest.approx(f_hi, rel=0.02)

    def test_on_real_vb2_posterior(self, vb2_times):
        hpd = hpd_interval(vb2_times, "omega", 0.99)
        central = vb2_times.credible_interval("omega", 0.99)
        assert hpd.width <= (central[1] - central[0]) + 1e-9
        assert hpd.lower < vb2_times.mean("omega") < hpd.upper

    def test_symmetric_posterior_matches_central(self):
        # Near-normal gamma: HPD ~ central interval.
        posterior = VBPosterior(
            n_values=[1.0],
            weights=[1.0],
            omega_components=[GammaDistribution(40_000.0, 1000.0)],
            beta_components=[GammaDistribution(38.0, 4e6)],
        )
        hpd = hpd_interval(posterior, "omega", 0.95)
        central = posterior.credible_interval("omega", 0.95)
        assert hpd.lower == pytest.approx(central[0], rel=1e-3)
        assert hpd.upper == pytest.approx(central[1], rel=1e-3)

    def test_validation(self, vb2_times):
        with pytest.raises(ValueError):
            hpd_interval(vb2_times, "omega", 0.0)

    def test_works_on_grid_posterior(self, nint_times):
        hpd = hpd_interval(nint_times, "omega", 0.95)
        central = nint_times.credible_interval("omega", 0.95)
        assert hpd.width <= (central[1] - central[0]) + 1e-6
        assert hpd.lower <= central[0] + 1e-6

    def test_agrees_across_methods(self, vb2_times, nint_times):
        vb2_hpd = hpd_interval(vb2_times, "omega", 0.95)
        nint_hpd = hpd_interval(nint_times, "omega", 0.95)
        assert vb2_hpd.lower == pytest.approx(nint_hpd.lower, rel=0.02)
        assert vb2_hpd.upper == pytest.approx(nint_hpd.upper, rel=0.02)
