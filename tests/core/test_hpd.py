"""Tests for HPD intervals."""

import pytest

from repro.core.hpd import hpd_interval
from repro.core.posterior import VBPosterior
from repro.stats.gamma_dist import GammaDistribution


def skewed_posterior():
    """Single-gamma posterior: the HPD interval is known to sit left of
    the central one."""
    return VBPosterior(
        n_values=[1.0],
        weights=[1.0],
        omega_components=[GammaDistribution(5.0, 0.125)],  # heavily skewed
        beta_components=[GammaDistribution(38.0, 4e6)],
    )


class TestHPD:
    def test_coverage_is_exact(self):
        posterior = skewed_posterior()
        interval = hpd_interval(posterior, "omega", 0.9)
        mass = posterior.marginal("omega").cdf(interval.upper) - posterior.marginal(
            "omega"
        ).cdf(interval.lower)
        assert mass == pytest.approx(0.9, abs=1e-6)

    def test_shorter_than_central_interval(self):
        posterior = skewed_posterior()
        hpd = hpd_interval(posterior, "omega", 0.9)
        central = posterior.credible_interval("omega", 0.9)
        assert hpd.width < central[1] - central[0]

    def test_shifted_left_under_right_skew(self):
        posterior = skewed_posterior()
        hpd = hpd_interval(posterior, "omega", 0.9)
        central = posterior.credible_interval("omega", 0.9)
        assert hpd.lower < central[0]
        assert hpd.upper < central[1]
        assert hpd.left_tail < 0.05  # less than the central interval's tail

    def test_density_at_endpoints_nearly_equal(self):
        # The defining property of an HPD interval for a smooth unimodal
        # density: equal density at the two endpoints.
        posterior = skewed_posterior()
        hpd = hpd_interval(posterior, "omega", 0.9)
        marginal = posterior.marginal("omega")
        f_lo = float(marginal.pdf(hpd.lower))
        f_hi = float(marginal.pdf(hpd.upper))
        assert f_lo == pytest.approx(f_hi, rel=0.02)

    def test_on_real_vb2_posterior(self, vb2_times):
        hpd = hpd_interval(vb2_times, "omega", 0.99)
        central = vb2_times.credible_interval("omega", 0.99)
        assert hpd.width <= (central[1] - central[0]) + 1e-9
        assert hpd.lower < vb2_times.mean("omega") < hpd.upper

    def test_symmetric_posterior_matches_central(self):
        # Near-normal gamma: HPD ~ central interval.
        posterior = VBPosterior(
            n_values=[1.0],
            weights=[1.0],
            omega_components=[GammaDistribution(40_000.0, 1000.0)],
            beta_components=[GammaDistribution(38.0, 4e6)],
        )
        hpd = hpd_interval(posterior, "omega", 0.95)
        central = posterior.credible_interval("omega", 0.95)
        assert hpd.lower == pytest.approx(central[0], rel=1e-3)
        assert hpd.upper == pytest.approx(central[1], rel=1e-3)

    def test_validation(self, vb2_times):
        with pytest.raises(ValueError):
            hpd_interval(vb2_times, "omega", 0.0)

    def test_degenerate_grid_sizes_rejected(self, vb2_times):
        # grid_size=1 used to hit ZeroDivisionError in the grid spacing;
        # both it and 0 must be rejected up front.
        for bad in (1, 0, -3):
            with pytest.raises(ValueError, match="grid_size"):
                hpd_interval(vb2_times, "omega", 0.9, grid_size=bad)

    def test_negative_refinement_rejected(self, vb2_times):
        with pytest.raises(ValueError, match="refine_iterations"):
            hpd_interval(vb2_times, "omega", 0.9, refine_iterations=-1)

    def test_coarse_minimum_at_left_edge(self):
        # Exponential marginal (gamma shape 1): the width q(t+L) - q(t)
        # is strictly increasing in t, so the coarse minimum lands on
        # index 0 and the refinement bracket degenerates to the first
        # two grid points. The HPD interval must still pin the left
        # tail at (numerically) zero mass.
        posterior = VBPosterior(
            n_values=[1.0],
            weights=[1.0],
            omega_components=[GammaDistribution(1.0, 0.1)],
            beta_components=[GammaDistribution(38.0, 4e6)],
        )
        hpd = hpd_interval(posterior, "omega", 0.9)
        marginal = posterior.marginal("omega")
        mass = marginal.cdf(hpd.upper) - marginal.cdf(hpd.lower)
        assert mass == pytest.approx(0.9, abs=1e-6)
        assert hpd.left_tail < 1e-3
        assert hpd.width < 0.9 * (
            posterior.credible_interval("omega", 0.9)[1]
            - posterior.credible_interval("omega", 0.9)[0]
        )

    def test_coarse_minimum_at_left_edge_small_grid(self):
        # Same degenerate-bracket regression with the smallest legal
        # grid: best=0, so the bracket is [candidates[0], candidates[1]]
        # — the full admissible range — and refinement must still find
        # the left-pinned optimum.
        posterior = VBPosterior(
            n_values=[1.0],
            weights=[1.0],
            omega_components=[GammaDistribution(1.0, 0.1)],
            beta_components=[GammaDistribution(38.0, 4e6)],
        )
        hpd = hpd_interval(
            posterior, "omega", 0.9, grid_size=2, refine_iterations=60
        )
        marginal = posterior.marginal("omega")
        mass = marginal.cdf(hpd.upper) - marginal.cdf(hpd.lower)
        assert mass == pytest.approx(0.9, abs=1e-6)
        assert hpd.left_tail < 1e-2

    def test_coarse_minimum_at_right_edge(self):
        # Force the minimum onto the last grid point by searching a
        # 2-point grid on a left-skewed width profile: with grid_size=2
        # and a concentrated near-symmetric posterior, both candidates
        # may tie numerically — the bracket [best-1, best+1] must clamp
        # at grid_size-1 without stepping out of range.
        posterior = VBPosterior(
            n_values=[1.0],
            weights=[1.0],
            omega_components=[GammaDistribution(40_000.0, 1000.0)],
            beta_components=[GammaDistribution(38.0, 4e6)],
        )
        hpd = hpd_interval(
            posterior, "omega", 0.95, grid_size=2, refine_iterations=60
        )
        marginal = posterior.marginal("omega")
        mass = marginal.cdf(hpd.upper) - marginal.cdf(hpd.lower)
        assert mass == pytest.approx(0.95, abs=1e-6)

    def test_zero_refinement_uses_coarse_grid(self, vb2_times):
        hpd = hpd_interval(vb2_times, "omega", 0.9, refine_iterations=0)
        marginal = vb2_times.marginal("omega")
        mass = float(marginal.cdf(hpd.upper) - marginal.cdf(hpd.lower))
        assert mass == pytest.approx(0.9, abs=1e-6)

    def test_works_on_grid_posterior(self, nint_times):
        hpd = hpd_interval(nint_times, "omega", 0.95)
        central = nint_times.credible_interval("omega", 0.95)
        assert hpd.width <= (central[1] - central[0]) + 1e-6
        assert hpd.lower <= central[0] + 1e-6

    def test_agrees_across_methods(self, vb2_times, nint_times):
        vb2_hpd = hpd_interval(vb2_times, "omega", 0.95)
        nint_hpd = hpd_interval(nint_times, "omega", 0.95)
        assert vb2_hpd.lower == pytest.approx(nint_hpd.lower, rel=0.02)
        assert vb2_hpd.upper == pytest.approx(nint_hpd.upper, rel=0.02)
