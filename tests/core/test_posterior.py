"""Tests for the VB mixture posterior object."""

import numpy as np
import pytest

from repro.core.posterior import VBPosterior
from repro.core.reliability import reliability_increment
from repro.stats.gamma_dist import GammaDistribution


def small_mixture():
    return VBPosterior(
        n_values=[40, 41],
        weights=[0.25, 0.75],
        omega_components=[GammaDistribution(40.0, 1.0), GammaDistribution(41.0, 1.0)],
        beta_components=[GammaDistribution(38.0, 4e6), GammaDistribution(39.0, 4.2e6)],
    )


class TestConstruction:
    def test_weights_normalised(self):
        posterior = small_mixture()
        assert posterior.weights.sum() == pytest.approx(1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            VBPosterior(
                n_values=[1],
                weights=[0.5, 0.5],
                omega_components=[GammaDistribution(1.0, 1.0)],
                beta_components=[GammaDistribution(1.0, 1.0)],
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VBPosterior([], [], [], [])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            VBPosterior(
                n_values=[1],
                weights=[0.0],
                omega_components=[GammaDistribution(1.0, 1.0)],
                beta_components=[GammaDistribution(1.0, 1.0)],
            )


class TestMoments:
    def test_mean_is_weight_average_of_component_means(self):
        posterior = small_mixture()
        expected = 0.25 * 40.0 + 0.75 * 41.0
        assert posterior.mean("omega") == pytest.approx(expected)

    def test_cross_moment_uses_conditional_independence(self):
        posterior = small_mixture()
        expected = 0.25 * 40.0 * (38.0 / 4e6) + 0.75 * 41.0 * (39.0 / 4.2e6)
        assert posterior.cross_moment() == pytest.approx(expected, rel=1e-12)

    def test_mixing_induces_negative_covariance(self, vb2_times):
        # For the real fit: larger N goes with smaller beta.
        assert vb2_times.covariance() < 0.0

    def test_invalid_param_name(self):
        posterior = small_mixture()
        with pytest.raises(ValueError):
            posterior.mean("gamma")

    def test_covariance_matrix_symmetry(self, vb2_times):
        matrix = vb2_times.covariance_matrix()
        assert matrix[0, 1] == matrix[1, 0]
        assert matrix[0, 0] == pytest.approx(vb2_times.variance("omega"))

    def test_moments_against_sampling(self, vb2_times, rng):
        draws = vb2_times.sample(400_000, rng)
        assert draws[:, 0].mean() == pytest.approx(vb2_times.mean("omega"), rel=5e-3)
        assert draws[:, 1].mean() == pytest.approx(vb2_times.mean("beta"), rel=5e-3)
        assert np.cov(draws.T)[0, 1] == pytest.approx(
            vb2_times.covariance(), rel=0.05
        )

    def test_central_moment_third_skewness(self, vb2_times):
        # Right-skewed posterior: positive third central moment for omega.
        assert vb2_times.central_moment("omega", 3) > 0.0


class TestLatentCount:
    def test_pmf_support_and_mass(self, vb2_times, times_data):
        ns, weights = vb2_times.fault_count_pmf()
        assert ns[0] == times_data.count
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights >= 0.0)

    def test_expected_total_faults_between_support_ends(self, vb2_times):
        expected = vb2_times.expected_total_faults()
        ns, _ = vb2_times.fault_count_pmf()
        assert ns[0] < expected < ns[-1]

    def test_omega_mean_identity(self, vb2_times, info_prior_times):
        # E[omega] = (m_omega + E[N]) / (phi_omega + 1): exact, because
        # every conditional is Gamma(m_omega + N, phi_omega + 1).
        expected = (
            info_prior_times.omega.shape + vb2_times.expected_total_faults()
        ) / (info_prior_times.omega.rate + 1.0)
        assert vb2_times.mean("omega") == pytest.approx(expected, rel=1e-10)


class TestDensityGrid:
    def test_log_pdf_grid_shape(self, vb2_times):
        omega = np.linspace(30.0, 60.0, 7)
        beta = np.linspace(5e-6, 1.5e-5, 5)
        grid = vb2_times.log_pdf_grid(omega, beta)
        assert grid.shape == (7, 5)
        assert np.all(np.isfinite(grid))

    def test_density_integrates_to_one(self, vb2_times):
        omega = np.linspace(10.0, 110.0, 301)
        beta = np.linspace(1e-7, 3e-5, 301)
        density = np.exp(vb2_times.log_pdf_grid(omega, beta))
        integral = np.trapezoid(np.trapezoid(density, beta, axis=1), omega)
        assert integral == pytest.approx(1.0, abs=5e-3)


class TestQuantiles:
    def test_quantiles_monotone(self, vb2_times):
        qs = [0.005, 0.025, 0.5, 0.975, 0.995]
        values = [vb2_times.quantile("omega", q) for q in qs]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_credible_interval_contains_mean(self, vb2_times):
        lo, hi = vb2_times.credible_interval("omega", 0.99)
        assert lo < vb2_times.mean("omega") < hi

    def test_interval_level_validation(self, vb2_times):
        with pytest.raises(ValueError):
            vb2_times.credible_interval("omega", 0.0)


class TestReliabilityPrimitives:
    def test_cdf_limits(self, vb2_times, times_data):
        c = reliability_increment(1.0, times_data.horizon, 1000.0)
        assert vb2_times.reliability_cdf(0.0, c) == 0.0
        assert vb2_times.reliability_cdf(1.0, c) == 1.0

    def test_cdf_monotone(self, vb2_times, times_data):
        c = reliability_increment(1.0, times_data.horizon, 5000.0)
        rs = np.linspace(0.01, 0.99, 25)
        values = [vb2_times.reliability_cdf(r, c) for r in rs]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_point_matches_monte_carlo(self, vb2_times, times_data, rng):
        c = reliability_increment(1.0, times_data.horizon, 10_000.0)
        draws = vb2_times.sample(400_000, rng)
        mc = np.exp(-draws[:, 0] * np.asarray(c(draws[:, 1]))).mean()
        assert vb2_times.reliability_point(c) == pytest.approx(mc, rel=2e-3)

    def test_quantile_matches_monte_carlo(self, vb2_times, times_data, rng):
        c = reliability_increment(1.0, times_data.horizon, 10_000.0)
        draws = vb2_times.sample(400_000, rng)
        mc = np.exp(-draws[:, 0] * np.asarray(c(draws[:, 1])))
        for q in (0.005, 0.5, 0.995):
            assert vb2_times.reliability_quantile(q, c) == pytest.approx(
                np.quantile(mc, q), abs=3e-3
            )

    def test_zero_window_reliability_is_one(self, vb2_times, times_data):
        c = reliability_increment(1.0, times_data.horizon, 0.0)
        assert vb2_times.reliability_point(c) == pytest.approx(1.0)
        assert vb2_times.reliability_cdf(0.999, c) == pytest.approx(0.0)

    def test_tables_cached_per_increment(self, vb2_times, times_data):
        c = reliability_increment(1.0, times_data.horizon, 1000.0)
        first = vb2_times.reliability_tables(c)
        second = vb2_times.reliability_tables(c)
        assert first is second
