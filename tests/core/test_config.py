"""Tests for VBConfig validation."""

import pytest

from repro.core.config import VBConfig


class TestValidation:
    def test_defaults_valid(self):
        config = VBConfig()
        assert config.truncation_policy == "error"

    def test_tail_tolerance_bounds(self):
        with pytest.raises(ValueError):
            VBConfig(tail_tolerance=0.0)
        with pytest.raises(ValueError):
            VBConfig(tail_tolerance=1.0)

    def test_nmax_initial_positive(self):
        with pytest.raises(ValueError):
            VBConfig(nmax_initial=0)

    def test_growth_above_one(self):
        with pytest.raises(ValueError):
            VBConfig(nmax_growth=1.0)

    def test_ceiling_at_least_initial(self):
        with pytest.raises(ValueError):
            VBConfig(nmax_initial=100, nmax_ceiling=50)

    def test_fixed_point_settings(self):
        with pytest.raises(ValueError):
            VBConfig(fixed_point_rtol=0.0)
        with pytest.raises(ValueError):
            VBConfig(fixed_point_max_iter=0)

    def test_truncation_policy_values(self):
        assert VBConfig(truncation_policy="clamp").truncation_policy == "clamp"
        with pytest.raises(ValueError):
            VBConfig(truncation_policy="ignore")

    def test_frozen(self):
        config = VBConfig()
        with pytest.raises(Exception):
            config.tail_tolerance = 0.5
