"""Bit-identity of the batched fit path against the scalar per-N loop.

The lane-parallel solvers in ``gamma_updates`` promise *exact* agreement
with the scalar fixed-point path — not merely close-to. These tests pin
that contract at both levels: the range solvers against per-N scalar
loops, and whole ``fit_vb2`` posteriors (weights, component parameters,
ELBO, iteration diagnostics) with ``batched_solver`` on versus off.
"""

import numpy as np
import pytest

from repro.bayes.priors import ModelPrior
from repro.core.config import VBConfig
from repro.core.gamma_updates import (
    GroupedStats,
    TimesStats,
    solve_conditional_grouped,
    solve_conditional_grouped_range,
    solve_conditional_times,
    solve_conditional_times_range,
)
from repro.core.vb2 import fit_vb2

SCALAR = VBConfig(batched_solver=False)
BATCHED = VBConfig(batched_solver=True)

FIELDS = ("n", "zeta", "xi", "a_omega", "b_omega", "a_beta", "b_beta",
          "log_weight", "iterations")


def assert_solutions_identical(batch, scalar_list):
    assert len(batch) == len(scalar_list)
    for got, want in zip(batch, scalar_list):
        for field in FIELDS:
            assert getattr(got, field) == getattr(want, field), field


def assert_posteriors_identical(batched, scalar):
    assert np.array_equal(batched.n_values, scalar.n_values)
    assert np.array_equal(batched.weights, scalar.weights)
    for b, s in zip(batched._omega_components, scalar._omega_components):
        assert (b.shape, b.rate) == (s.shape, s.rate)
    for b, s in zip(batched._beta_components, scalar._beta_components):
        assert (b.shape, b.rate) == (s.shape, s.rate)
    assert batched.elbo == scalar.elbo
    assert batched.diagnostics["nmax"] == scalar.diagnostics["nmax"]
    assert (
        batched.diagnostics["fixed_point_iterations"]
        == scalar.diagnostics["fixed_point_iterations"]
    )


class TestRangeSolvers:
    """Range solvers replay the scalar per-N loop field for field."""

    @pytest.mark.parametrize("alpha0", [1.0, 2.0])
    def test_grouped_range_matches_scalar_loop(
        self, grouped_data, info_prior_grouped, alpha0
    ):
        stats = GroupedStats.from_data(grouped_data)
        lo, hi = stats.total, stats.total + 40
        batch = solve_conditional_grouped_range(
            lo, hi, alpha0, info_prior_grouped, stats, SCALAR
        )
        scalar = [
            solve_conditional_grouped(
                n, alpha0, info_prior_grouped, stats, SCALAR
            )
            for n in range(lo, hi + 1)
        ]
        assert_solutions_identical(batch, scalar)

    def test_grouped_range_matches_with_improper_prior(self, grouped_data):
        prior = ModelPrior.noninformative()
        stats = GroupedStats.from_data(grouped_data)
        lo, hi = stats.total, stats.total + 25
        batch = solve_conditional_grouped_range(
            lo, hi, 1.0, prior, stats, SCALAR
        )
        scalar = [
            solve_conditional_grouped(n, 1.0, prior, stats, SCALAR)
            for n in range(lo, hi + 1)
        ]
        assert_solutions_identical(batch, scalar)

    @pytest.mark.parametrize("alpha0", [2.0, 0.7])
    def test_times_range_matches_scalar_loop(
        self, times_data, info_prior_times, alpha0
    ):
        stats = TimesStats.from_data(times_data)
        lo, hi = stats.me, stats.me + 40
        batch = solve_conditional_times_range(
            lo, hi, alpha0, info_prior_times, stats, SCALAR
        )
        scalar = [
            solve_conditional_times(
                n, alpha0, info_prior_times, stats, SCALAR
            )
            for n in range(lo, hi + 1)
        ]
        assert_solutions_identical(batch, scalar)

    def test_range_validation(self, grouped_data, info_prior_grouped):
        stats = GroupedStats.from_data(grouped_data)
        with pytest.raises(ValueError):
            solve_conditional_grouped_range(
                stats.total - 1, stats.total, 1.0,
                info_prior_grouped, stats, SCALAR,
            )
        with pytest.raises(ValueError):
            solve_conditional_grouped_range(
                stats.total + 5, stats.total, 1.0,
                info_prior_grouped, stats, SCALAR,
            )


class TestFitLevelIdentity:
    """Whole fit_vb2 posteriors agree exactly, batched vs scalar."""

    def test_grouped_info(self, grouped_data, info_prior_grouped):
        batched = fit_vb2(grouped_data, info_prior_grouped, config=BATCHED)
        scalar = fit_vb2(grouped_data, info_prior_grouped, config=SCALAR)
        assert_posteriors_identical(batched, scalar)

    @pytest.mark.slow
    def test_grouped_noinfo_clamped(self, grouped_data, flat_prior):
        batched = fit_vb2(
            grouped_data, flat_prior,
            config=VBConfig(
                batched_solver=True,
                truncation_policy="clamp",
                nmax_ceiling=512,
            ),
        )
        scalar = fit_vb2(
            grouped_data, flat_prior,
            config=VBConfig(
                batched_solver=False,
                truncation_policy="clamp",
                nmax_ceiling=512,
            ),
        )
        assert_posteriors_identical(batched, scalar)

    def test_grouped_delayed_s_shaped(self, grouped_data, info_prior_grouped):
        batched = fit_vb2(
            grouped_data, info_prior_grouped, alpha0=2.0, config=BATCHED
        )
        scalar = fit_vb2(
            grouped_data, info_prior_grouped, alpha0=2.0, config=SCALAR
        )
        assert_posteriors_identical(batched, scalar)

    def test_times_delayed_s_shaped(self, times_data, info_prior_times):
        batched = fit_vb2(
            times_data, info_prior_times, alpha0=2.0, config=BATCHED
        )
        scalar = fit_vb2(
            times_data, info_prior_times, alpha0=2.0, config=SCALAR
        )
        assert_posteriors_identical(batched, scalar)

    def test_fixed_nmax_mode(self, grouped_data, info_prior_grouped):
        batched = fit_vb2(
            grouped_data, info_prior_grouped, config=BATCHED, nmax=90
        )
        scalar = fit_vb2(
            grouped_data, info_prior_grouped, config=SCALAR, nmax=90
        )
        assert_posteriors_identical(batched, scalar)
