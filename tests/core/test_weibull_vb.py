"""Tests for the Weibull-type VB extension (power-transform reduction)."""

import numpy as np
import pytest

from repro.bayes.priors import GammaPrior, ModelPrior
from repro.core.reliability import reliability_increment
from repro.core.weibull_vb import fit_vb2_weibull
from repro.data.simulation import simulate_failure_times
from repro.models.weibull_srm import WeibullSRM

SHAPE = 2.0  # Rayleigh member
TRUE_OMEGA = 80.0
TRUE_BETA = 0.12


@pytest.fixture(scope="module")
def weibull_data():
    model = WeibullSRM(omega=TRUE_OMEGA, beta=TRUE_BETA, shape=SHAPE)
    return simulate_failure_times(model, 15.0, np.random.default_rng(606))


@pytest.fixture(scope="module")
def theta_prior():
    # Prior on theta = beta^c; center near TRUE_BETA^2 with wide spread.
    return ModelPrior(
        omega=GammaPrior.from_mean_std(75.0, 30.0),
        beta=GammaPrior.from_mean_std(TRUE_BETA**SHAPE, 0.8 * TRUE_BETA**SHAPE),
    )


@pytest.fixture(scope="module")
def posterior(weibull_data, theta_prior):
    return fit_vb2_weibull(weibull_data, theta_prior, shape=SHAPE)


class TestWeibullVB:
    def test_recovers_truth(self, posterior):
        lo, hi = posterior.credible_interval("omega", 0.99)
        assert lo < TRUE_OMEGA < hi
        lo, hi = posterior.credible_interval("beta", 0.99)
        assert lo < TRUE_BETA < hi

    def test_beta_moments_match_sampling(self, posterior, rng):
        draws = posterior.sample(300_000, rng)
        assert posterior.mean("beta") == pytest.approx(
            draws[:, 1].mean(), rel=5e-3
        )
        assert posterior.variance("beta") == pytest.approx(
            draws[:, 1].var(), rel=0.03
        )
        assert posterior.cross_moment() == pytest.approx(
            np.mean(draws[:, 0] * draws[:, 1]), rel=5e-3
        )

    def test_quantile_transform_exact(self, posterior):
        # beta quantile = (theta quantile)^(1/c), monotone map.
        inner = posterior.theta_posterior
        for q in (0.05, 0.5, 0.95):
            assert posterior.quantile("beta", q) == pytest.approx(
                inner.quantile("beta", q) ** 0.5, rel=1e-10
            )

    def test_matches_nint_on_weibull_likelihood(
        self, weibull_data, theta_prior, posterior
    ):
        # Independent validation: integrate the *untransformed* Weibull
        # posterior numerically over (omega, beta) with the prior mapped
        # through theta = beta^c (Jacobian c beta^(c-1)).
        from repro.bayes.grid_posterior import GridPosterior
        from repro.stats.quadrature import TensorGrid

        omega_range = (
            posterior.quantile("omega", 0.0005) * 0.5,
            posterior.quantile("omega", 0.9995) * 1.5,
        )
        beta_range = (
            posterior.quantile("beta", 0.0005) * 0.5,
            posterior.quantile("beta", 0.9995) * 1.5,
        )
        grid = TensorGrid.simpson(omega_range, beta_range, 241, 241)

        def log_post_matrix():
            out = np.empty((grid.x.size, grid.y.size))
            for j, beta in enumerate(grid.y):
                model = WeibullSRM(omega=1.0, beta=beta, shape=SHAPE)
                base = float(
                    np.sum(model.lifetime_log_pdf(weibull_data.times))
                )
                g_te = float(model.lifetime_cdf(weibull_data.horizon))
                theta = beta**SHAPE
                log_prior_beta = float(
                    theta_prior.beta.log_pdf(theta)
                ) + np.log(SHAPE) + (SHAPE - 1.0) * np.log(beta)
                out[:, j] = (
                    weibull_data.count * np.log(grid.x)
                    - grid.x * g_te
                    + base
                    + log_prior_beta
                    + np.asarray(theta_prior.omega.log_pdf(grid.x))
                )
            return out

        nint = GridPosterior(grid, log_post_matrix())
        assert posterior.mean("omega") == pytest.approx(
            nint.mean("omega"), rel=0.01
        )
        assert posterior.mean("beta") == pytest.approx(
            nint.mean("beta"), rel=0.01
        )
        assert posterior.variance("beta") == pytest.approx(
            nint.variance("beta"), rel=0.10
        )

    def test_reliability_window_transform(self, posterior, weibull_data):
        te = weibull_data.horizon
        u = 2.0
        c = reliability_increment(1.0, te, u)
        point = posterior.reliability_point(c)
        # Monte-Carlo check with the actual Weibull model.
        rng = np.random.default_rng(607)
        draws = posterior.sample(200_000, rng)
        model_vals = np.exp(
            -draws[:, 0]
            * (
                np.exp(-((draws[:, 1] * te) ** SHAPE))
                - np.exp(-((draws[:, 1] * (te + u)) ** SHAPE))
            )
        )
        assert point == pytest.approx(model_vals.mean(), rel=5e-3)
        assert 0.0 < posterior.reliability_quantile(0.005, c) < point

    def test_reliability_rejects_wrong_kernel(self, posterior, weibull_data):
        c = reliability_increment(2.0, weibull_data.horizon, 1.0)
        with pytest.raises(ValueError):
            posterior.reliability_point(c)

    def test_density_grid_integrates_to_one(self, posterior):
        omega = np.linspace(
            posterior.quantile("omega", 0.0005),
            posterior.quantile("omega", 0.9995),
            301,
        )
        beta = np.linspace(
            posterior.quantile("beta", 0.0005),
            posterior.quantile("beta", 0.9995),
            301,
        )
        density = np.exp(posterior.log_pdf_grid(omega, beta))
        integral = np.trapezoid(np.trapezoid(density, beta, axis=1), omega)
        assert integral == pytest.approx(1.0, abs=5e-3)

    def test_grouped_data_supported(self, theta_prior):
        model = WeibullSRM(omega=TRUE_OMEGA, beta=TRUE_BETA, shape=SHAPE)
        rng = np.random.default_rng(608)
        from repro.data.simulation import simulate_grouped

        grouped = simulate_grouped(model, np.arange(1.0, 16.0), rng)
        posterior = fit_vb2_weibull(grouped, theta_prior, shape=SHAPE)
        lo, hi = posterior.credible_interval("omega", 0.99)
        assert lo < TRUE_OMEGA < hi

    def test_shape_validation(self, weibull_data, theta_prior):
        with pytest.raises(ValueError):
            fit_vb2_weibull(weibull_data, theta_prior, shape=0.0)

    def test_elbo_jacobian_correction(self, weibull_data, theta_prior, posterior):
        # The corrected ELBO lives on the original clock: it must equal
        # the inner (transformed-clock) ELBO plus sum(log(c t^{c-1})).
        import math

        expected = posterior.theta_posterior.elbo + (
            weibull_data.count * math.log(SHAPE)
            + (SHAPE - 1.0) * weibull_data.sum_log_times
        )
        assert posterior.elbo == pytest.approx(expected)

    def test_weibull_evidence_beats_goel_okumoto_on_weibull_data(
        self, weibull_data, theta_prior, posterior
    ):
        # Model selection by evidence: the correct family must win on
        # data simulated from it (this is what the Jacobian correction
        # makes possible).
        from repro.core.vb2 import fit_vb2

        go_prior = ModelPrior(
            omega=theta_prior.omega,
            beta=GammaPrior.from_mean_std(0.08, 0.06),
        )
        go = fit_vb2(weibull_data, go_prior, alpha0=1.0)
        assert posterior.elbo > go.elbo
