"""Warm-start states and warm-vs-cold fit agreement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayes.priors import ModelPrior
from repro.core.config import VBConfig
from repro.core.vb1 import fit_vb1
from repro.core.vb2 import fit_vb2
from repro.core.warmstart import WarmStart, warm_start_from
from repro.core.weibull_vb import fit_vb2_weibull
from repro.data.failure_data import GroupedData


@pytest.fixture(scope="module")
def campaign():
    """Synthetic decaying-rate grouped campaign (benchmark's shape)."""
    rng = np.random.default_rng(7)
    counts = rng.poisson(6.0 * np.exp(-np.arange(30) / 25.0))
    return GroupedData(counts=counts, boundaries=np.arange(1.0, 31.0))


@pytest.fixture(scope="module")
def campaign_prior():
    return ModelPrior.informative(100.0, 50.0, 0.2, 0.1)


class TestWarmStartState:
    def test_extraction_spans_grid(self, vb2_times):
        warm = warm_start_from(vb2_times)
        assert warm.method == "VB2"
        assert warm.n[0] == warm.observed
        assert warm.n[-1] == warm.nmax
        assert np.all(np.diff(warm.n) == 1)
        np.testing.assert_allclose(warm.xi, warm.a_beta / warm.b_beta)

    def test_vb1_state_has_no_grid(self, times_data, info_prior_times):
        warm = warm_start_from(fit_vb1(times_data, info_prior_times))
        assert warm.method == "VB1"
        assert warm.n.size == 0
        assert warm.xi_mean > 0.0

    def test_weibull_state_reads_theta_space(self, times_data):
        prior = ModelPrior.informative(50.0, 15.8, 1.0e-7, 5.0e-8)
        posterior = fit_vb2_weibull(times_data, prior, shape=1.2)
        warm = warm_start_from(posterior)
        inner = warm_start_from(posterior.theta_posterior)
        assert warm == inner

    def test_grid_validation(self):
        with pytest.raises(ValueError, match="span"):
            WarmStart(
                method="VB2", alpha0=1.0, observed=3, nmax=6,
                n=np.array([3, 4, 5]), a_beta=np.ones(3),
                b_beta=np.ones(3), log_weights=np.zeros(3),
                lam=1.0, xi_mean=1.0,
            )
        with pytest.raises(ValueError, match="contiguous"):
            WarmStart(
                method="VB2", alpha0=1.0, observed=3, nmax=6,
                n=np.array([3, 5, 6]), a_beta=np.ones(3),
                b_beta=np.ones(3), log_weights=np.zeros(3),
                lam=1.0, xi_mean=1.0,
            )
        with pytest.raises(ValueError, match="positive"):
            WarmStart(
                method="VB2", alpha0=1.0, observed=3, nmax=4,
                n=np.array([3, 4]), a_beta=np.array([1.0, -1.0]),
                b_beta=np.ones(2), log_weights=np.zeros(2),
                lam=1.0, xi_mean=1.0,
            )

    def test_value_semantics(self, vb2_times):
        first = warm_start_from(vb2_times)
        second = warm_start_from(vb2_times)
        assert first == second
        assert hash(first) == hash(second)
        assert first != "not a warm start"

    def test_seeds_replay_and_prior_fallback(self, vb2_times):
        warm = warm_start_from(vb2_times)
        seeds = warm.seeds_for_range(warm.observed, warm.nmax + 5)
        covered = seeds[: warm.n.size]
        np.testing.assert_allclose(covered, warm.xi)
        assert np.all(np.isnan(seeds[warm.n.size :]))

    def test_effective_nmax_drops_overshoot(self, vb2_times):
        warm = warm_start_from(vb2_times)
        effective = warm.effective_nmax(1e-6)
        assert warm.observed <= effective <= warm.nmax
        # no lane below tolerance -> the raw bound survives
        assert warm.effective_nmax(1e-300) == warm.nmax

    def test_lane_rtols_stratified_by_weight(self, vb2_times):
        warm = warm_start_from(vb2_times)
        rtols = warm.lane_rtols(
            warm.observed, warm.nmax + 3,
            rtol=1e-10, loose_rtol=1e-4, weight_tolerance=1e-5,
        )
        light = warm.log_weights < np.log(1e-5)
        np.testing.assert_array_equal(
            rtols[: warm.n.size][light], 1e-4
        )
        np.testing.assert_array_equal(
            rtols[: warm.n.size][~light], 1e-10
        )
        # growth rows past the cached grid stay tight
        np.testing.assert_array_equal(rtols[warm.n.size :], 1e-10)

    def test_lane_rtols_ignore_non_loosening(self, vb2_times):
        warm = warm_start_from(vb2_times)
        rtols = warm.lane_rtols(
            warm.observed, warm.nmax,
            rtol=1e-4, loose_rtol=1e-10, weight_tolerance=1e-5,
        )
        np.testing.assert_array_equal(rtols, 1e-4)


class TestWarmColdAgreement:
    @pytest.mark.parametrize("alpha0", [1.0, 2.0])
    def test_chained_refits_match_cold(self, campaign, campaign_prior, alpha0):
        """A 6-period warm chain agrees with the cold full-data fit."""
        state = None
        for end in range(5, 31, 5):
            config = VBConfig(warm_start=state)
            posterior = fit_vb2(
                campaign.truncate(end), campaign_prior, alpha0, config
            )
            state = warm_start_from(posterior)
        cold = fit_vb2(campaign, campaign_prior, alpha0)

        # common latent support: warm/cold truncation growth may stop
        # at different overshoots past the tail tolerance
        warm_post = posterior
        n_common = min(warm_post.n_values[-1], cold.n_values[-1])
        keep_w = warm_post.n_values <= n_common
        keep_c = cold.n_values <= n_common
        np.testing.assert_allclose(
            warm_post.weights[keep_w], cold.weights[keep_c], atol=1e-8
        )
        for param in ("omega", "beta"):
            assert warm_post.mean(param) == pytest.approx(
                cold.mean(param), rel=1e-7
            )
            lo_w, hi_w = warm_post.credible_interval(param, 0.99)
            lo_c, hi_c = cold.credible_interval(param, 0.99)
            assert lo_w == pytest.approx(lo_c, rel=1e-7)
            assert hi_w == pytest.approx(hi_c, rel=1e-7)

    def test_warm_fit_is_flagged_and_cheaper(self, campaign, campaign_prior):
        base = campaign.truncate(29)
        cold_prev = fit_vb2(base, campaign_prior, 1.0)
        config = VBConfig(warm_start=warm_start_from(cold_prev))
        warm = fit_vb2(campaign, campaign_prior, 1.0, config)
        cold = fit_vb2(campaign, campaign_prior, 1.0)
        assert warm.diagnostics["warm_started"] is True
        assert "warm_started" not in cold.diagnostics or (
            cold.diagnostics.get("warm_started") is False
        )
        assert (
            warm.diagnostics["fixed_point_iterations"]
            < cold.diagnostics["fixed_point_iterations"]
        )

    def test_config_rejects_foreign_state(self):
        with pytest.raises(TypeError, match="WarmStart"):
            VBConfig(warm_start={"xi": [1.0]})
