"""Tests for the fully factorised VB1 baseline."""

import math

import pytest

from repro.core.config import VBConfig
from repro.core.vb1 import fit_vb1
from repro.core.vb2 import fit_vb2
from repro.data.failure_data import FailureTimeData


class TestStructure:
    def test_single_component_product_posterior(self, vb1_times):
        assert vb1_times.n_components == 1
        assert vb1_times.method_name == "VB1"

    def test_zero_covariance_by_construction(self, vb1_times):
        # The defining failure of VB1 (paper Table 1).
        assert vb1_times.covariance() == pytest.approx(0.0, abs=1e-12)
        assert vb1_times.correlation() == pytest.approx(0.0, abs=1e-12)

    def test_expected_n_above_observed(self, vb1_times, times_data):
        assert vb1_times.diagnostics["expected_n"] > times_data.count

    def test_grouped_fit(self, grouped_data, info_prior_grouped):
        posterior = fit_vb1(grouped_data, info_prior_grouped)
        assert posterior.covariance() == 0.0
        assert posterior.mean("omega") > grouped_data.total_count

    def test_invalid_alpha0(self, times_data, info_prior_times):
        with pytest.raises(ValueError):
            fit_vb1(times_data, info_prior_times, alpha0=-1.0)

    def test_unsupported_data_type(self, info_prior_times):
        with pytest.raises(TypeError):
            fit_vb1({"not": "data"}, info_prior_times)


class TestAgainstVB2:
    def test_means_close_to_vb2(self, vb1_times, vb2_times):
        # VB1 biases means slightly but stays in the same neighbourhood.
        assert vb1_times.mean("omega") == pytest.approx(
            vb2_times.mean("omega"), rel=0.05
        )
        assert vb1_times.mean("beta") == pytest.approx(
            vb2_times.mean("beta"), rel=0.10
        )

    def test_underestimates_variances(self, vb1_times, vb2_times):
        # The paper's central observation about VB1.
        assert vb1_times.variance("omega") < vb2_times.variance("omega")
        assert vb1_times.variance("beta") < vb2_times.variance("beta")

    def test_narrower_intervals_than_vb2(self, vb1_times, vb2_times):
        lo1, hi1 = vb1_times.credible_interval("beta", 0.99)
        lo2, hi2 = vb2_times.credible_interval("beta", 0.99)
        assert hi1 - lo1 < hi2 - lo2

    def test_elbo_below_vb2(self, times_data, info_prior_times, vb1_times):
        # VB2's variational family strictly contains VB1's, so the
        # optimised bound must be at least as tight.
        vb2 = fit_vb2(times_data, info_prior_times)
        assert vb1_times.elbo is not None
        assert vb1_times.elbo <= vb2.elbo + 1e-9

    def test_grouped_elbo_below_vb2(self, grouped_data, info_prior_grouped):
        vb1 = fit_vb1(grouped_data, info_prior_grouped)
        vb2 = fit_vb2(grouped_data, info_prior_grouped)
        assert vb1.elbo <= vb2.elbo + 1e-9


class TestConvergence:
    def test_deterministic(self, times_data, info_prior_times):
        a = fit_vb1(times_data, info_prior_times)
        b = fit_vb1(times_data, info_prior_times)
        assert a.mean("omega") == b.mean("omega")

    def test_flat_prior_runs(self, times_data, flat_prior):
        posterior = fit_vb1(times_data, flat_prior)
        assert math.isfinite(posterior.mean("omega"))
        assert posterior.elbo is None

    def test_single_failure(self, info_prior_times):
        data = FailureTimeData([1000.0], horizon=240_000.0)
        posterior = fit_vb1(data, info_prior_times)
        assert posterior.mean("omega") > 0

    def test_iterations_recorded(self, vb1_times):
        assert vb1_times.diagnostics["iterations"] >= 1

    def test_tolerance_config_respected(self, times_data, info_prior_times):
        config = VBConfig(fixed_point_rtol=1e-6, fixed_point_max_iter=50)
        posterior = fit_vb1(times_data, info_prior_times, config=config)
        loose = posterior.diagnostics["lambda_star"]
        tight = fit_vb1(times_data, info_prior_times).diagnostics["lambda_star"]
        assert loose == pytest.approx(tight, rel=1e-4)
