"""Fleet fitting: one vectorized sweep over a portfolio of projects.

The load-bearing property is *bit-identity*: every dataset's fleet
result must equal the scalar fit exactly (max abs diff 0.0 across
weights, components, ELBO and diagnostics), for any mix of data kinds,
shapes, priors and truncation settings sharing the sweep.
"""

import numpy as np
import pytest

from repro.bayes.nint import fit_nint
from repro.bayes.priors import ModelPrior
from repro.core import fit_nint_fleet, fit_vb1_fleet, fit_vb2_fleet
from repro.core.config import VBConfig
from repro.core.vb1 import fit_vb1
from repro.core.vb2 import fit_vb2
from repro.data.simulation import simulate_failure_times, simulate_grouped
from repro.exceptions import ConvergenceError, TruncationError
from repro.models import GoelOkumoto


@pytest.fixture(scope="module")
def portfolio():
    """Ragged mixed-kind portfolio: failure-time and grouped datasets
    of different sizes and horizons."""
    rng = np.random.default_rng(20260809)
    times = [
        simulate_failure_times(GoelOkumoto(18.0 + 6.0 * i, 0.011), 75.0 + 4.0 * i, rng)
        for i in range(5)
    ]
    grouped = [
        simulate_grouped(
            GoelOkumoto(24.0 + 5.0 * i, 0.013),
            np.linspace(0.0, 85.0 + 6.0 * i, 9 + 2 * i)[1:],
            rng,
        )
        for i in range(4)
    ]
    return times + grouped


@pytest.fixture(scope="module")
def prior():
    return ModelPrior.informative(30.0, 10.0, 0.01, 0.005)


def _components(posterior):
    return [
        (c.shape, c.rate)
        for c in posterior._omega_components + posterior._beta_components
    ]


def assert_identical(fleet_posterior, scalar_posterior):
    """Exact equality: mixture support, weights, every gamma component,
    ELBO and the diagnostics dict (modulo the per-fit telemetry entry)."""
    ns_f, w_f = fleet_posterior.fault_count_pmf()
    ns_s, w_s = scalar_posterior.fault_count_pmf()
    assert list(ns_f) == list(ns_s)
    assert float(np.max(np.abs(w_f - w_s))) == 0.0
    assert _components(fleet_posterior) == _components(scalar_posterior)
    assert fleet_posterior.elbo == scalar_posterior.elbo
    scalar_diag = {
        k: v for k, v in scalar_posterior.diagnostics.items() if k != "telemetry"
    }
    assert fleet_posterior.diagnostics == scalar_diag


class TestVB2Identity:
    def test_mixed_portfolio_goel_okumoto(self, portfolio, prior):
        fleet = fit_vb2_fleet(portfolio, prior, 1.0)
        for i, data in enumerate(portfolio):
            assert_identical(fleet.posterior(i), fit_vb2(data, prior, 1.0))

    def test_fixed_point_shape(self, portfolio, prior):
        fleet = fit_vb2_fleet(portfolio, prior, 2.0)
        for i, data in enumerate(portfolio):
            assert_identical(fleet.posterior(i), fit_vb2(data, prior, 2.0))

    def test_per_dataset_alpha0_nmax_and_priors(self, portfolio, prior):
        other = ModelPrior.informative(40.0, 14.0, 0.02, 0.008)
        priors = [prior, other] * 5
        alphas = [1.0, 2.0, 1.0] * 3
        nmaxes = [None, 70, None] * 3
        count = len(portfolio)
        fleet = fit_vb2_fleet(
            portfolio, priors[:count], alphas[:count], nmax=nmaxes[:count]
        )
        for i, data in enumerate(portfolio):
            scalar = fit_vb2(data, priors[i], alphas[i], nmax=nmaxes[i])
            assert_identical(fleet.posterior(i), scalar)

    def test_growth_rounds_match(self, portfolio, prior):
        config = VBConfig(nmax_initial=4, tail_tolerance=1e-13)
        fleet = fit_vb2_fleet(portfolio, prior, 1.0, config)
        saw_growth = False
        for i, data in enumerate(portfolio):
            scalar = fit_vb2(data, prior, 1.0, config)
            assert_identical(fleet.posterior(i), scalar)
            saw_growth |= scalar.diagnostics["n_growth_rounds"] > 0
        assert saw_growth

    def test_clamp_policy(self, portfolio, prior):
        config = VBConfig(
            nmax_initial=4,
            tail_tolerance=1e-300,
            nmax_ceiling=40,
            truncation_policy="clamp",
        )
        fleet = fit_vb2_fleet(portfolio, prior, 1.0, config)
        for i, data in enumerate(portfolio):
            assert_identical(fleet.posterior(i), fit_vb2(data, prior, 1.0, config))
            assert fleet.diagnostics[i]["truncation_clamped"]

    def test_truncation_error_names_dataset(self, portfolio, prior):
        config = VBConfig(nmax_initial=4, tail_tolerance=1e-300, nmax_ceiling=40)
        with pytest.raises(TruncationError, match="dataset 0"):
            fit_vb2_fleet(portfolio[:1], prior, 1.0, config)

    def test_sandwich_correction(self, portfolio, prior):
        config = VBConfig(variance_correction="sandwich")
        fleet = fit_vb2_fleet(portfolio[:3], prior, 1.0, config)
        for i, data in enumerate(portfolio[:3]):
            scalar = fit_vb2(data, prior, 1.0, config)
            assert fleet.posterior(i).variance("omega") == scalar.variance("omega")
            assert fleet.posterior(i).mean("beta") == scalar.mean("beta")

    def test_validation(self, portfolio, prior):
        with pytest.raises(ValueError, match="at least one dataset"):
            fit_vb2_fleet([], prior)
        with pytest.raises(ValueError, match="alpha0 must be positive"):
            fit_vb2_fleet(portfolio[:2], prior, 0.0)
        with pytest.raises(ValueError, match="one entry per dataset"):
            fit_vb2_fleet(portfolio[:2], prior, [1.0])
        with pytest.raises(ValueError, match="below the observed"):
            fit_vb2_fleet(portfolio[:1], prior, 1.0, nmax=1)

    def test_per_dataset_warm_states_stay_identical(self, portfolio, prior):
        from repro.core.warmstart import warm_start_from

        subset = portfolio[:4]
        # mixed warm/cold lanes: datasets 0 and 2 warm-start from their
        # own converged posteriors, 1 and 3 stay cold
        warms = [
            warm_start_from(fit_vb2(subset[0], prior, 1.0)),
            None,
            warm_start_from(fit_vb2(subset[2], prior, 1.0)),
            None,
        ]
        fleet = fit_vb2_fleet(subset, prior, 1.0, warm_start=warms)
        for i, data in enumerate(subset):
            config = VBConfig(warm_start=warms[i])
            assert_identical(fleet.posterior(i), fit_vb2(data, prior, 1.0, config))
            assert fleet.diagnostics[i]["warm_started"] is (warms[i] is not None)

    def test_warm_state_alpha0_mismatch_names_dataset(self, portfolio, prior):
        from repro.core.warmstart import warm_start_from

        warm = warm_start_from(fit_vb2(portfolio[0], prior, 1.0))
        with pytest.raises(ValueError, match="dataset 1.*alpha0"):
            fit_vb2_fleet(portfolio[:2], prior, 2.0, warm_start=[None, warm])


class TestVB1Identity:
    def test_mixed_portfolio(self, portfolio, prior):
        fleet = fit_vb1_fleet(portfolio, prior, 1.0)
        for i, data in enumerate(portfolio):
            assert_identical(fleet.posterior(i), fit_vb1(data, prior, 1.0))

    def test_fixed_point_shape(self, portfolio, prior):
        fleet = fit_vb1_fleet(portfolio, prior, 2.0)
        for i, data in enumerate(portfolio):
            assert_identical(fleet.posterior(i), fit_vb1(data, prior, 2.0))

    def test_per_dataset_priors_and_alpha0(self, portfolio, prior):
        other = ModelPrior.informative(45.0, 16.0, 0.015, 0.006)
        count = len(portfolio)
        priors = ([prior, other] * 5)[:count]
        alphas = ([1.0, 2.0, 2.0] * 3)[:count]
        fleet = fit_vb1_fleet(portfolio, priors, alphas)
        for i, data in enumerate(portfolio):
            assert_identical(fleet.posterior(i), fit_vb1(data, priors[i], alphas[i]))

    def test_no_aitken_matches_scalar(self, portfolio, prior):
        config = VBConfig(use_aitken=False)
        fleet = fit_vb1_fleet(portfolio, prior, 1.0, config)
        for i, data in enumerate(portfolio):
            assert_identical(fleet.posterior(i), fit_vb1(data, prior, 1.0, config))

    def test_divergence_names_dataset(self, portfolio, prior):
        config = VBConfig(fixed_point_max_iter=2)
        with pytest.raises(ConvergenceError, match="dataset"):
            fit_vb1_fleet(portfolio, prior, 1.0, config)


class TestNINTIdentity:
    def test_reference_fleet(self, portfolio, prior):
        subset = portfolio[:4]
        reference = fit_vb2_fleet(subset, prior, 1.0)
        fleet = fit_nint_fleet(
            subset, prior, 1.0, reference=reference, n_omega=61, n_beta=61
        )
        for i, data in enumerate(subset):
            scalar = fit_nint(
                data, prior, 1.0,
                reference_posterior=reference.posterior(i),
                n_omega=61, n_beta=61,
            )
            posterior = fleet.posterior(i)
            assert posterior.log_normaliser == scalar.log_normaliser
            for param in ("omega", "beta"):
                assert posterior.mean(param) == scalar.mean(param)
                assert posterior.quantile(param, 0.975) == scalar.quantile(
                    param, 0.975
                )

    def test_explicit_limits_broadcast(self, portfolio, prior):
        data = portfolio[0]
        limits = {"omega": (5.0, 60.0), "beta": (1e-3, 0.05)}
        fleet = fit_nint_fleet(
            [data, data], prior, 1.0, limits=limits, n_omega=41, n_beta=41
        )
        scalar = fit_nint(data, prior, 1.0, limits=limits, n_omega=41, n_beta=41)
        assert fleet.posterior(0).mean("omega") == scalar.mean("omega")
        assert fleet.posterior(1).mean("beta") == scalar.mean("beta")

    def test_validation(self, portfolio, prior):
        with pytest.raises(ValueError, match="reference fleet"):
            fit_nint_fleet(portfolio[:1], prior, 1.0)
        bad = {"omega": (-1.0, 2.0), "beta": (1e-3, 0.05)}
        with pytest.raises(ValueError, match="dataset 0"):
            fit_nint_fleet(portfolio[:1], prior, 1.0, limits=bad)


class TestFleetResult:
    def test_lazy_and_cached(self, portfolio, prior):
        fleet = fit_vb2_fleet(portfolio[:3], prior, 1.0)
        assert len(fleet) == 3
        assert fleet._cache == {}
        p = fleet.posterior(1)
        assert fleet.posterior(1) is p
        assert set(fleet._cache) == {1}

    def test_batched_interval_contracts(self, portfolio, prior):
        fleet = fit_vb2_fleet(portfolio[:3], prior, 1.0)
        levels = np.array([0.025, 0.5, 0.975])
        table = fleet.quantile_batch("omega", levels)
        assert table.shape == (3, 3)
        intervals = fleet.credible_intervals("beta", 0.9)
        assert intervals.shape == (3, 2)
        for i, data in enumerate(portfolio[:3]):
            scalar = fit_vb2(data, prior, 1.0)
            expected = np.asarray(scalar.quantile_batch("omega", levels))
            assert float(np.max(np.abs(table[i] - expected))) == 0.0
            lo, hi = scalar.credible_interval("beta", 0.9)
            assert intervals[i, 0] == lo and intervals[i, 1] == hi

    def test_means_and_expected_faults(self, portfolio, prior):
        fleet = fit_vb2_fleet(portfolio[:2], prior, 1.0)
        scalars = [fit_vb2(d, prior, 1.0) for d in portfolio[:2]]
        assert list(fleet.means("omega")) == [s.mean("omega") for s in scalars]
        assert list(fleet.expected_total_faults()) == [
            s.expected_total_faults() for s in scalars
        ]
