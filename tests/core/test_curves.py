"""Tests for posterior curve bands."""

import numpy as np
import pytest

from repro.core.curves import mean_value_band, residual_fault_band


class TestMeanValueBand:
    def test_band_orders(self, vb2_times, times_data):
        times = np.linspace(0.0, times_data.horizon, 20)
        band = mean_value_band(vb2_times, times, level=0.95)
        assert np.all(band.lower <= band.mean + 1e-12)
        assert np.all(band.mean <= band.upper + 1e-12)

    def test_band_monotone_in_time(self, vb2_times, times_data):
        times = np.linspace(0.0, times_data.horizon, 20)
        band = mean_value_band(vb2_times, times)
        assert np.all(np.diff(band.mean) >= -1e-9)
        assert np.all(np.diff(band.lower) >= -1e-9)

    def test_band_covers_observed_counts(self, vb2_times, times_data):
        # The cumulative count curve of the data that produced the
        # posterior should mostly lie inside a 99% band for Lambda(t).
        checkpoints = times_data.times[::4]
        observed = np.arange(1, times_data.count + 1)[::4].astype(float)
        band = mean_value_band(vb2_times, checkpoints, level=0.99)
        assert band.contains(observed).mean() > 0.8

    def test_wider_level_wider_band(self, vb2_times, times_data):
        times = np.array([times_data.horizon / 2])
        narrow = mean_value_band(vb2_times, times, level=0.5)
        wide = mean_value_band(vb2_times, times, level=0.99)
        assert (wide.upper - wide.lower)[0] > (narrow.upper - narrow.lower)[0]

    def test_zero_at_time_zero(self, vb2_times):
        band = mean_value_band(vb2_times, np.array([0.0, 1.0]))
        assert band.mean[0] == pytest.approx(0.0, abs=1e-12)
        assert band.upper[0] == pytest.approx(0.0, abs=1e-12)

    def test_to_rows(self, vb2_times):
        band = mean_value_band(vb2_times, np.array([0.0, 1000.0]))
        rows = band.to_rows()
        assert len(rows) == 2
        assert len(rows[0]) == 4

    def test_validation(self, vb2_times):
        with pytest.raises(ValueError):
            mean_value_band(vb2_times, np.array([-1.0]))
        with pytest.raises(ValueError):
            mean_value_band(vb2_times, np.array([1.0]), level=1.5)


class TestResidualBand:
    def test_residuals_decrease(self, vb2_times, times_data):
        times = np.linspace(0.0, times_data.horizon, 20)
        band = residual_fault_band(vb2_times, times)
        assert np.all(np.diff(band.mean) <= 1e-9)

    def test_starts_at_omega(self, vb2_times):
        band = residual_fault_band(vb2_times, np.array([0.0]))
        assert band.mean[0] == pytest.approx(vb2_times.mean("omega"), rel=0.02)

    def test_complementarity_with_mean_value(self, vb2_times, times_data):
        times = np.linspace(0.0, times_data.horizon, 10)
        total = vb2_times.mean("omega")
        mv = mean_value_band(vb2_times, times)
        res = residual_fault_band(vb2_times, times)
        assert mv.mean + res.mean == pytest.approx(
            np.full_like(times, total), rel=0.02
        )
