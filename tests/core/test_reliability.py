"""Tests for the reliability-increment helper and the user-facing API."""

import math

import numpy as np
import pytest

from repro.core.reliability import (
    ReliabilityEstimate,
    estimate_reliability,
    reliability_increment,
)
from repro.models.gamma_srm import GammaSRM


class TestIncrement:
    def test_matches_model_cdf_difference(self):
        c = reliability_increment(2.0, 10.0, 3.0)
        model = GammaSRM(omega=1.0, beta=0.4, alpha0=2.0)
        expected = model.lifetime_cdf(13.0) - model.lifetime_cdf(10.0)
        assert c(0.4) == pytest.approx(expected, rel=1e-10)

    def test_zero_window(self):
        c = reliability_increment(1.0, 5.0, 0.0)
        assert c(0.3) == 0.0

    def test_vectorised(self):
        c = reliability_increment(1.0, 5.0, 2.0)
        betas = np.array([0.1, 0.2, 0.5])
        out = c(betas)
        assert out.shape == (3,)
        assert np.all((out >= 0.0) & (out <= 1.0))

    def test_deep_tail_stability(self):
        # te so large that both CDFs are 1 to machine precision: the SF
        # difference must return a clean 0, not a negative round-off.
        c = reliability_increment(1.0, 1e9, 1.0)
        assert c(1.0) == 0.0

    def test_derivative_matches_numeric(self):
        c = reliability_increment(2.0, 10.0, 3.0)
        beta = 0.37
        step = 1e-7
        numeric = (c(beta + step) - c(beta - step)) / (2.0 * step)
        assert c.derivative(beta) == pytest.approx(numeric, rel=1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            reliability_increment(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            reliability_increment(1.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            reliability_increment(1.0, 1.0, -1.0)
        with pytest.raises(ValueError):
            reliability_increment(1.0, 1.0, 1.0).derivative(0.0)

    def test_hashable_for_caching(self):
        a = reliability_increment(1.0, 5.0, 2.0)
        b = reliability_increment(1.0, 5.0, 2.0)
        assert a == b
        assert hash(a) == hash(b)


class TestEstimateReliability:
    def test_estimate_structure(self, vb2_times, times_data):
        estimate = estimate_reliability(vb2_times, times_data.horizon, 1000.0)
        assert isinstance(estimate, ReliabilityEstimate)
        assert estimate.method == "VB2"
        assert 0.0 < estimate.lower < estimate.point < estimate.upper <= 1.0

    def test_longer_window_lower_reliability(self, vb2_times, times_data):
        short = estimate_reliability(vb2_times, times_data.horizon, 1000.0)
        long = estimate_reliability(vb2_times, times_data.horizon, 10_000.0)
        assert long.point < short.point

    def test_level_widens_interval(self, vb2_times, times_data):
        narrow = estimate_reliability(
            vb2_times, times_data.horizon, 5000.0, level=0.5
        )
        wide = estimate_reliability(vb2_times, times_data.horizon, 5000.0, level=0.99)
        assert wide.upper - wide.lower > narrow.upper - narrow.lower

    def test_point_within_model_plugin_neighbourhood(self, vb2_times, times_data):
        estimate = estimate_reliability(vb2_times, times_data.horizon, 1000.0)
        plug_in = GammaSRM(
            omega=vb2_times.mean("omega"),
            beta=vb2_times.mean("beta"),
            alpha0=1.0,
        ).reliability(times_data.horizon, 1000.0)
        assert estimate.point == pytest.approx(plug_in, abs=0.02)

    def test_str_rendering(self, vb2_times, times_data):
        estimate = estimate_reliability(vb2_times, times_data.horizon, 1000.0)
        text = str(estimate)
        assert "VB2" in text
        assert "99%" in text


class TestNewtonReliabilityQuantile:
    """VBPosterior's safeguarded-Newton quantile path vs the generic
    bisection it replaces (docs/PERFORMANCE.md §5)."""

    def _early_posterior(self, alpha0):
        from repro.bayes.priors import ModelPrior
        from repro.core.vb2 import fit_vb2
        from repro.data.failure_data import GroupedData

        # an early-campaign posterior puts the lower reliability
        # quantile deep in the tail (r ~ 1e-4) — the regime where
        # plain Newton on F degenerates to bisection
        data = GroupedData(
            counts=np.array([5, 7, 4]), boundaries=np.array([1.0, 2.0, 3.0])
        )
        prior = ModelPrior.informative(100.0, 50.0, 0.2, 0.1)
        return fit_vb2(data, prior, alpha0), data

    @pytest.mark.parametrize("alpha0", [1.0, 2.0])
    @pytest.mark.parametrize("u", [0.5, 1.0, 5.0])
    def test_matches_generic_bisection(self, alpha0, u):
        from repro.bayes.joint import JointPosterior

        posterior, data = self._early_posterior(alpha0)
        c = reliability_increment(alpha0, data.horizon, u)
        levels = np.array([0.005, 0.025, 0.5, 0.975, 0.995])
        fast = posterior.reliability_quantile_batch(levels, c)
        for q, value in zip(levels, fast):
            slow = JointPosterior.reliability_quantile(posterior, q, c)
            # both paths promise xtol = 1e-10 in r
            assert value == pytest.approx(slow, abs=5e-10)

    def test_matches_on_late_posterior(self, vb2_times, times_data):
        from repro.bayes.joint import JointPosterior

        c = reliability_increment(1.0, times_data.horizon, 1000.0)
        levels = np.array([0.005, 0.5, 0.995])
        fast = vb2_times.reliability_quantile_batch(levels, c)
        for q, value in zip(levels, fast):
            slow = JointPosterior.reliability_quantile(vb2_times, q, c)
            assert value == pytest.approx(slow, abs=5e-10)

    def test_scalar_delegates_to_batch(self, vb2_times, times_data):
        c = reliability_increment(1.0, times_data.horizon, 1000.0)
        batch = vb2_times.reliability_quantile_batch(np.array([0.25]), c)
        assert vb2_times.reliability_quantile(0.25, c) == batch[0]

    def test_monotone_in_level(self, vb2_times, times_data):
        c = reliability_increment(1.0, times_data.horizon, 1000.0)
        levels = np.linspace(0.01, 0.99, 9)
        values = vb2_times.reliability_quantile_batch(levels, c)
        assert np.all(np.diff(values) > 0)

    def test_zero_window_is_certain(self, vb2_times, times_data):
        c = reliability_increment(1.0, times_data.horizon, 0.0)
        values = vb2_times.reliability_quantile_batch(
            np.array([0.025, 0.975]), c
        )
        np.testing.assert_array_equal(values, 1.0)

    def test_level_validation(self, vb2_times, times_data):
        c = reliability_increment(1.0, times_data.horizon, 1000.0)
        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError, match="quantile levels"):
                vb2_times.reliability_quantile_batch(np.array([bad]), c)
