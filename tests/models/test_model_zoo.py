"""Tests for the concrete model families and the registry."""

import math

import numpy as np
import pytest
from scipy import stats as stdist

from repro.exceptions import ModelSpecificationError
from repro.models import (
    DelayedSShaped,
    GammaSRM,
    GoelOkumoto,
    RayleighSRM,
    WeibullSRM,
    make_model,
    model_registry,
)


class TestGoelOkumoto:
    def test_is_gamma_shape_one(self):
        go = GoelOkumoto(omega=40.0, beta=0.1)
        generic = GammaSRM(omega=40.0, beta=0.1, alpha0=1.0)
        t = np.array([0.5, 2.0, 10.0])
        assert go.lifetime_cdf(t) == pytest.approx(generic.lifetime_cdf(t), rel=1e-12)
        assert go.lifetime_log_pdf(t) == pytest.approx(
            generic.lifetime_log_pdf(t), rel=1e-12
        )

    def test_mean_value_closed_form(self):
        go = GoelOkumoto(omega=40.0, beta=0.1)
        assert go.mean_value(5.0) == pytest.approx(40.0 * (1 - math.exp(-0.5)))

    def test_replace_preserves_class(self):
        go = GoelOkumoto(omega=40.0, beta=0.1).replace(beta=0.2)
        assert isinstance(go, GoelOkumoto)
        assert go.beta == 0.2

    def test_log_sf_closed_form(self):
        go = GoelOkumoto(omega=40.0, beta=0.1)
        assert go.lifetime_log_sf(30.0) == pytest.approx(-3.0)

    def test_sampling_is_exponential(self, rng):
        go = GoelOkumoto(omega=1.0, beta=0.5)
        draws = go.sample_lifetimes(200_000, rng)
        assert draws.mean() == pytest.approx(2.0, rel=0.02)


class TestDelayedSShaped:
    def test_is_gamma_shape_two(self):
        ds = DelayedSShaped(omega=40.0, beta=0.1)
        generic = GammaSRM(omega=40.0, beta=0.1, alpha0=2.0)
        t = np.array([0.5, 2.0, 10.0])
        assert ds.lifetime_cdf(t) == pytest.approx(generic.lifetime_cdf(t), rel=1e-10)

    def test_mean_value_closed_form(self):
        # Yamada et al.: Lambda(t) = omega (1 - (1 + beta t) e^{-beta t}).
        ds = DelayedSShaped(omega=40.0, beta=0.1)
        t = 7.0
        expected = 40.0 * (1.0 - (1.0 + 0.7) * math.exp(-0.7))
        assert ds.mean_value(t) == pytest.approx(expected, rel=1e-12)

    def test_mean_value_is_s_shaped(self):
        # Intensity increases then decreases: inflection in Lambda.
        ds = DelayedSShaped(omega=40.0, beta=0.5)
        t = np.linspace(0.01, 20.0, 500)
        intensity = ds.intensity(t)
        peak = np.argmax(intensity)
        assert 0 < peak < len(t) - 1

    def test_sampling_is_erlang2(self, rng):
        ds = DelayedSShaped(omega=1.0, beta=0.5)
        draws = ds.sample_lifetimes(200_000, rng)
        assert draws.mean() == pytest.approx(4.0, rel=0.02)
        assert draws.var() == pytest.approx(8.0, rel=0.05)

    def test_replace_preserves_class(self):
        ds = DelayedSShaped(omega=40.0, beta=0.1).replace(omega=30.0)
        assert isinstance(ds, DelayedSShaped)
        assert ds.alpha0 == 2.0


class TestWeibull:
    def test_cdf_matches_scipy(self):
        model = WeibullSRM(omega=1.0, beta=0.5, shape=1.7)
        t = np.array([0.5, 2.0, 5.0])
        ref = stdist.weibull_min.cdf(t, c=1.7, scale=2.0)
        assert model.lifetime_cdf(t) == pytest.approx(ref, rel=1e-10)

    def test_log_pdf_matches_scipy(self):
        model = WeibullSRM(omega=1.0, beta=0.5, shape=1.7)
        t = np.array([0.5, 2.0, 5.0])
        ref = stdist.weibull_min.logpdf(t, c=1.7, scale=2.0)
        assert model.lifetime_log_pdf(t) == pytest.approx(ref, rel=1e-10)

    def test_shape_one_equals_goel_okumoto(self):
        weibull = WeibullSRM(omega=40.0, beta=0.1, shape=1.0)
        go = GoelOkumoto(omega=40.0, beta=0.1)
        t = np.array([1.0, 3.0])
        assert weibull.lifetime_cdf(t) == pytest.approx(go.lifetime_cdf(t), rel=1e-12)

    def test_rayleigh_is_shape_two(self):
        ray = RayleighSRM(omega=40.0, beta=0.1)
        assert ray.shape == 2.0
        weib = WeibullSRM(omega=40.0, beta=0.1, shape=2.0)
        assert ray.lifetime_cdf(3.0) == pytest.approx(weib.lifetime_cdf(3.0))

    def test_sampling_moments(self, rng):
        model = WeibullSRM(omega=1.0, beta=0.5, shape=2.0)
        draws = model.sample_lifetimes(200_000, rng)
        expected_mean = 2.0 * math.gamma(1.5)
        assert draws.mean() == pytest.approx(expected_mean, rel=0.02)

    def test_replace(self):
        model = WeibullSRM(omega=10.0, beta=1.0, shape=3.0).replace(beta=2.0)
        assert model.shape == 3.0
        assert model.beta == 2.0
        with pytest.raises(ModelSpecificationError):
            model.replace(shape=1.0)


class TestRegistry:
    def test_all_families_registered(self):
        registry = model_registry()
        assert set(registry) == {
            "goel-okumoto",
            "delayed-s-shaped",
            "gamma",
            "weibull",
            "rayleigh",
            "lognormal",
            "pareto",
        }

    def test_make_model(self):
        model = make_model("goel-okumoto", omega=40.0, beta=1e-5)
        assert isinstance(model, GoelOkumoto)

    def test_make_model_with_extra_params(self):
        model = make_model("gamma", omega=40.0, beta=1e-5, alpha0=2.0)
        assert model.alpha0 == 2.0

    def test_unknown_name_rejected(self):
        with pytest.raises(ModelSpecificationError):
            make_model("jelinski-moranda", omega=1.0)
