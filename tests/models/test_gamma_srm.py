"""Tests for the gamma-type NHPP SRM (and its base-class machinery)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as stdist

from repro.data.failure_data import FailureTimeData, GroupedData
from repro.exceptions import ModelSpecificationError
from repro.models.gamma_srm import GammaSRM


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelSpecificationError):
            GammaSRM(omega=-1.0, beta=1.0)
        with pytest.raises(ModelSpecificationError):
            GammaSRM(omega=1.0, beta=0.0)
        with pytest.raises(ModelSpecificationError):
            GammaSRM(omega=1.0, beta=1.0, alpha0=-2.0)

    def test_params_mapping(self):
        model = GammaSRM(omega=10.0, beta=0.5, alpha0=2.0)
        assert dict(model.params) == {"omega": 10.0, "beta": 0.5}

    def test_replace(self):
        model = GammaSRM(omega=10.0, beta=0.5, alpha0=2.0)
        other = model.replace(omega=20.0)
        assert other.omega == 20.0
        assert other.beta == 0.5
        assert other.alpha0 == 2.0
        assert model.omega == 10.0  # original untouched

    def test_replace_rejects_unknown(self):
        model = GammaSRM(omega=10.0, beta=0.5)
        with pytest.raises(ModelSpecificationError):
            model.replace(alpha0=3.0)


class TestLifetimeDistribution:
    def test_cdf_matches_scipy(self):
        model = GammaSRM(omega=1.0, beta=0.5, alpha0=3.0)
        t = np.array([0.5, 1.0, 5.0, 20.0])
        ref = stdist.gamma.cdf(t, a=3.0, scale=2.0)
        assert model.lifetime_cdf(t) == pytest.approx(ref, rel=1e-12)

    def test_sf_complementary(self):
        model = GammaSRM(omega=1.0, beta=0.5, alpha0=3.0)
        t = 2.0
        assert model.lifetime_cdf(t) + model.lifetime_sf(t) == pytest.approx(1.0)

    def test_log_pdf_matches_scipy(self):
        model = GammaSRM(omega=1.0, beta=2.0, alpha0=1.5)
        t = np.array([0.1, 1.0, 3.0])
        ref = stdist.gamma.logpdf(t, a=1.5, scale=0.5)
        assert model.lifetime_log_pdf(t) == pytest.approx(ref, rel=1e-12)

    def test_log_sf_stable(self):
        model = GammaSRM(omega=1.0, beta=1.0, alpha0=2.0)
        value = model.lifetime_log_sf(5000.0)
        assert math.isfinite(value)

    def test_sample_lifetimes_moments(self, rng):
        model = GammaSRM(omega=1.0, beta=0.25, alpha0=2.0)
        draws = model.sample_lifetimes(300_000, rng)
        assert draws.mean() == pytest.approx(8.0, rel=0.02)


class TestProcessQuantities:
    def test_mean_value_saturates_at_omega(self):
        model = GammaSRM(omega=30.0, beta=1.0, alpha0=1.0)
        assert model.mean_value(1e9) == pytest.approx(30.0)

    def test_intensity_integrates_to_mean_value(self):
        model = GammaSRM(omega=30.0, beta=0.7, alpha0=2.0)
        t = np.linspace(1e-9, 10.0, 40_001)
        integral = np.trapezoid(model.intensity(t), t)
        assert integral == pytest.approx(model.mean_value(10.0), rel=1e-6)

    def test_expected_residual_faults(self):
        model = GammaSRM(omega=30.0, beta=0.7, alpha0=1.0)
        assert model.expected_residual_faults(0.0) == pytest.approx(30.0)
        assert model.expected_residual_faults(100.0) == pytest.approx(
            30.0 * math.exp(-70.0), rel=1e-9
        )

    def test_reliability_formula(self):
        # Paper Eq. 3: R = exp(-omega (G(t+u) - G(t))).
        model = GammaSRM(omega=30.0, beta=0.7, alpha0=1.0)
        t, u = 2.0, 1.0
        expected = math.exp(
            -30.0 * (model.lifetime_cdf(t + u) - model.lifetime_cdf(t))
        )
        assert model.reliability(t, u) == pytest.approx(expected, rel=1e-12)

    def test_reliability_of_zero_window_is_one(self):
        model = GammaSRM(omega=30.0, beta=0.7)
        assert model.reliability(5.0, 0.0) == 1.0

    def test_reliability_rejects_negative_window(self):
        model = GammaSRM(omega=30.0, beta=0.7)
        with pytest.raises(ValueError):
            model.reliability(5.0, -1.0)

    @given(
        omega=st.floats(min_value=0.5, max_value=200.0),
        beta=st.floats(min_value=1e-3, max_value=10.0),
        t=st.floats(min_value=0.0, max_value=100.0),
        u=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=150)
    def test_reliability_in_unit_interval(self, omega, beta, t, u):
        model = GammaSRM(omega=omega, beta=beta, alpha0=1.0)
        r = model.reliability(t, u)
        assert 0.0 <= r <= 1.0

    def test_reliability_decreasing_in_u(self):
        model = GammaSRM(omega=30.0, beta=0.7, alpha0=2.0)
        values = [model.reliability(2.0, u) for u in (0.0, 0.5, 1.0, 2.0, 5.0)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestLikelihoods:
    def test_times_loglik_formula(self):
        # Check Eq. 4 against a hand computation.
        model = GammaSRM(omega=10.0, beta=0.5, alpha0=1.0)
        data = FailureTimeData([1.0, 2.0], horizon=4.0)
        expected = (
            2.0 * math.log(10.0)
            + sum(math.log(0.5) - 0.5 * t for t in (1.0, 2.0))
            - 10.0 * (1.0 - math.exp(-2.0))
        )
        assert model.log_likelihood(data) == pytest.approx(expected, rel=1e-12)

    def test_grouped_loglik_formula(self):
        model = GammaSRM(omega=10.0, beta=0.5, alpha0=1.0)
        data = GroupedData(counts=[2, 1], boundaries=[1.0, 3.0])
        g1 = 1.0 - math.exp(-0.5)
        g2 = 1.0 - math.exp(-1.5)
        expected = (
            2.0 * (math.log(g1) + math.log(10.0))
            + 1.0 * (math.log(g2 - g1) + math.log(10.0))
            - math.log(2.0)
            - 10.0 * g2
        )
        assert model.log_likelihood(data) == pytest.approx(expected, rel=1e-12)

    def test_grouped_zero_mass_interval_with_failures(self):
        # A count in an interval the model gives zero probability (the
        # CDF increment underflows to exactly 0 for beta = 1000):
        # likelihood must be -inf, not an exception.
        model = GammaSRM(omega=10.0, beta=1000.0, alpha0=1.0)
        data = GroupedData(counts=[0, 1], boundaries=[1.0, 2.0])
        assert model.log_likelihood(data) == -math.inf

    def test_empty_data_loglik(self):
        model = GammaSRM(omega=5.0, beta=0.5)
        data = FailureTimeData([], horizon=2.0)
        expected = -5.0 * (1.0 - math.exp(-1.0))
        assert model.log_likelihood(data) == pytest.approx(expected)

    def test_dispatch_rejects_unknown_type(self):
        model = GammaSRM(omega=5.0, beta=0.5)
        with pytest.raises(TypeError):
            model.log_likelihood([1.0, 2.0])

    def test_grouping_loses_little_information_at_fine_resolution(self):
        # The grouped likelihood of finely bucketed data should peak near
        # the same parameters as the exact times likelihood.
        model = GammaSRM(omega=40.0, beta=0.1, alpha0=1.0)
        rng = np.random.default_rng(5)
        from repro.data.simulation import simulate_failure_times

        data = simulate_failure_times(model, 30.0, rng)
        fine = data.to_grouped(np.linspace(0.3, 30.0, 100))
        candidates = np.linspace(0.05, 0.2, 31)
        ll_times = [
            model.replace(beta=b).log_likelihood(data) for b in candidates
        ]
        ll_grouped = [
            model.replace(beta=b).log_likelihood(fine) for b in candidates
        ]
        assert abs(
            candidates[np.argmax(ll_times)] - candidates[np.argmax(ll_grouped)]
        ) <= 0.02
