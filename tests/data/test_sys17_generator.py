"""Provenance test: the frozen System 17 analogue arrays in
repro.data.datasets must be exactly what the checked-in generator
produces, so the dataset's origin stays auditable."""

import numpy as np

from repro.data._sys17_generator import (
    HORIZON_SECONDS,
    N_DAYS,
    TARGET_FAILURES,
    generate,
)
from repro.data.datasets import system17_failure_times, system17_grouped


class TestProvenance:
    def test_generator_reproduces_frozen_failure_times(self):
        times, _, _ = generate()
        frozen = system17_failure_times().times
        assert np.allclose(np.round(times, 1), frozen)

    def test_generator_reproduces_frozen_daily_counts(self):
        _, _, counts = generate()
        frozen = system17_grouped().counts
        assert np.array_equal(counts, frozen)

    def test_generator_constants_match_dataset_shape(self):
        data = system17_failure_times()
        assert data.count == TARGET_FAILURES
        assert data.horizon == HORIZON_SECONDS
        assert system17_grouped().n_intervals == N_DAYS
