"""Lane-major portfolio packing, dedup and the fleet manifest loader."""

import json

import numpy as np
import pytest
from scipy import special as sc

from repro.core.gamma_updates import GroupedStats
from repro.data.failure_data import FailureTimeData, GroupedData
from repro.data.fleet import (
    dedupe_datasets,
    load_fleet_manifest,
    pack_grouped,
    pack_times,
)
from repro.data.io import save_failure_times_csv, save_grouped_csv, save_json
from repro.exceptions import DataValidationError


@pytest.fixture
def times_pair():
    return [
        FailureTimeData([1.0, 4.0, 9.0], horizon=12.0),
        FailureTimeData([0.5, 2.5], horizon=6.0),
    ]


@pytest.fixture
def grouped_pair():
    return [
        GroupedData([3, 0, 2], [2.0, 5.0, 9.0]),
        GroupedData([1, 4], [1.0, 3.0]),
    ]


class TestPackTimes:
    def test_columnar_statistics(self, times_pair):
        packed = pack_times(times_pair)
        assert len(packed) == 2
        assert list(packed.me) == [3.0, 2.0]
        assert packed.me.dtype == np.float64
        assert list(packed.sum_times) == [d.total_time for d in times_pair]
        assert list(packed.sum_log_times) == [d.sum_log_times for d in times_pair]
        assert list(packed.horizon) == [12.0, 6.0]

    def test_rejects_wrong_kind(self, grouped_pair):
        with pytest.raises(TypeError, match="dataset 0"):
            pack_times(grouped_pair)


class TestPackGrouped:
    def test_lane_major_occupied_intervals(self, grouped_pair):
        packed = pack_grouped(grouped_pair)
        assert len(packed) == 2
        # Dataset 0 has a zero-count interval: only occupied intervals
        # pack, ascending within the dataset, datasets in order.
        assert list(packed.offsets) == [0, 2, 4]
        assert list(packed.interval_counts_per_dataset()) == [2, 2]
        assert list(packed.interval_lo) == [0.0, 5.0, 0.0, 1.0]
        assert list(packed.interval_hi) == [2.0, 9.0, 1.0, 3.0]
        assert list(packed.interval_count) == [3.0, 2.0, 1.0, 4.0]
        assert packed.interval_count.dtype == np.float64
        assert list(packed.total) == [5.0, 5.0]
        assert list(packed.horizon) == [9.0, 3.0]

    def test_scalar_statistics_match_grouped_stats(self, grouped_pair):
        packed = pack_grouped(grouped_pair)
        for i, data in enumerate(grouped_pair):
            stats = GroupedStats.from_data(data)
            assert packed.sum_log_count_factorials[i] == (
                stats.sum_log_count_factorials
            )
            counts = np.asarray(data.counts, dtype=np.int64)
            edges = data.interval_edges()
            assert packed.seed_dot[i] == float(np.dot(counts, edges[1:]))

    def test_log_factorials_are_gammaln(self):
        data = GroupedData([4, 7], [1.0, 2.0])
        packed = pack_grouped([data])
        expected = float(sc.gammaln(5.0) + sc.gammaln(8.0))
        assert packed.sum_log_count_factorials[0] == expected

    def test_rejects_wrong_kind(self, times_pair):
        with pytest.raises(TypeError, match="dataset 1"):
            pack_grouped([GroupedData([1], [1.0]), times_pair[0]])


class TestDedupe:
    def test_value_equal_datasets_collapse(self, times_pair):
        clone = FailureTimeData([1.0, 4.0, 9.0], horizon=12.0)
        unique, index = dedupe_datasets(
            [times_pair[0], times_pair[1], clone, times_pair[1]]
        )
        assert unique == [times_pair[0], times_pair[1]]
        assert list(index) == [0, 1, 0, 1]

    def test_mixed_kinds(self, times_pair, grouped_pair):
        unique, index = dedupe_datasets(times_pair + grouped_pair)
        assert len(unique) == 4
        assert list(index) == [0, 1, 2, 3]


class TestManifestLoader:
    def test_loads_all_kinds_with_defaults(self, tmp_path, times_pair, grouped_pair):
        save_failure_times_csv(times_pair[0], tmp_path / "a.csv")
        save_grouped_csv(grouped_pair[0], tmp_path / "b.csv")
        save_json(times_pair[1], tmp_path / "c.json")
        manifest = tmp_path / "fleet.json"
        manifest.write_text(json.dumps({
            "defaults": {"horizon": 12.0},
            "datasets": [
                "a.csv",
                {"path": "b.csv", "kind": "grouped"},
                {"path": "c.json"},
            ],
        }))
        loaded = load_fleet_manifest(manifest)
        assert loaded[0] == times_pair[0]
        assert loaded[1] == grouped_pair[0]
        assert loaded[2] == times_pair[1]

    def test_relative_paths_resolve_against_manifest(self, tmp_path, times_pair):
        sub = tmp_path / "projects"
        sub.mkdir()
        save_failure_times_csv(times_pair[0], sub / "a.csv")
        manifest = tmp_path / "fleet.json"
        manifest.write_text(json.dumps({
            "datasets": [{"path": "projects/a.csv", "horizon": 12.0}],
        }))
        assert load_fleet_manifest(manifest) == [times_pair[0]]

    def test_invalid_json(self, tmp_path):
        manifest = tmp_path / "fleet.json"
        manifest.write_text("{not json")
        with pytest.raises(DataValidationError, match="not valid JSON"):
            load_fleet_manifest(manifest)

    def test_missing_datasets_list(self, tmp_path):
        manifest = tmp_path / "fleet.json"
        manifest.write_text(json.dumps({"defaults": {}}))
        with pytest.raises(DataValidationError, match="datasets"):
            load_fleet_manifest(manifest)
        manifest.write_text(json.dumps({"datasets": []}))
        with pytest.raises(DataValidationError, match="non-empty"):
            load_fleet_manifest(manifest)

    def test_entry_without_path(self, tmp_path):
        manifest = tmp_path / "fleet.json"
        manifest.write_text(json.dumps({"datasets": [{"kind": "times"}]}))
        with pytest.raises(DataValidationError, match="entry 0 needs a 'path'"):
            load_fleet_manifest(manifest)

    def test_unknown_kind(self, tmp_path, times_pair):
        save_failure_times_csv(times_pair[0], tmp_path / "a.csv")
        manifest = tmp_path / "fleet.json"
        manifest.write_text(json.dumps({
            "datasets": [{"path": "a.csv", "kind": "parquet"}],
        }))
        with pytest.raises(DataValidationError, match="unknown kind 'parquet'"):
            load_fleet_manifest(manifest)
