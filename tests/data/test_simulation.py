"""Tests for the NHPP simulators."""

import numpy as np
import pytest

from repro.data.simulation import (
    simulate_failure_times,
    simulate_grouped,
    simulate_nhpp_thinning,
)
from repro.models.goel_okumoto import GoelOkumoto


class TestOrderStatisticsSimulator:
    def test_counts_match_mean_value_function(self):
        model = GoelOkumoto(omega=50.0, beta=0.1)
        horizon = 20.0
        rng = np.random.default_rng(11)
        counts = [
            simulate_failure_times(model, horizon, rng).count for _ in range(400)
        ]
        expected = model.mean_value(horizon)
        assert np.mean(counts) == pytest.approx(expected, rel=0.05)
        # NHPP counts: variance equals mean.
        assert np.var(counts) == pytest.approx(expected, rel=0.2)

    def test_all_times_within_horizon(self):
        model = GoelOkumoto(omega=30.0, beta=0.05)
        rng = np.random.default_rng(12)
        data = simulate_failure_times(model, 15.0, rng)
        assert np.all(data.times <= 15.0)
        assert np.all(np.diff(data.times) >= 0.0)

    def test_zero_faults_possible(self):
        model = GoelOkumoto(omega=1e-6, beta=1.0)
        rng = np.random.default_rng(13)
        data = simulate_failure_times(model, 1.0, rng)
        assert data.count == 0

    def test_invalid_horizon(self):
        model = GoelOkumoto(omega=10.0, beta=1.0)
        with pytest.raises(ValueError):
            simulate_failure_times(model, 0.0, np.random.default_rng(0))


class TestGroupedSimulator:
    def test_structure(self):
        model = GoelOkumoto(omega=40.0, beta=0.2)
        rng = np.random.default_rng(14)
        data = simulate_grouped(model, np.arange(1.0, 11.0), rng, unit="weeks")
        assert data.n_intervals == 10
        assert data.unit == "weeks"

    def test_mean_counts_per_interval(self):
        model = GoelOkumoto(omega=60.0, beta=0.3)
        bounds = np.arange(1.0, 6.0)
        rng = np.random.default_rng(15)
        totals = np.zeros(len(bounds))
        n_rep = 400
        for _ in range(n_rep):
            totals += simulate_grouped(model, bounds, rng).counts
        edges = np.concatenate(([0.0], bounds))
        expected = np.diff(model.mean_value(edges))
        assert totals / n_rep == pytest.approx(expected, rel=0.1)

    def test_empty_boundaries_rejected(self):
        model = GoelOkumoto(omega=10.0, beta=1.0)
        with pytest.raises(ValueError):
            simulate_grouped(model, [], np.random.default_rng(0))


class TestThinning:
    def test_agrees_with_order_statistics_method(self):
        model = GoelOkumoto(omega=50.0, beta=0.1)
        horizon = 20.0
        # GO intensity is decreasing; its supremum is omega * beta at 0+.
        bound = model.omega * model.beta * 1.01
        rng = np.random.default_rng(16)
        counts = [
            simulate_nhpp_thinning(
                model.intensity, bound, horizon, rng
            ).count
            for _ in range(400)
        ]
        assert np.mean(counts) == pytest.approx(model.mean_value(horizon), rel=0.05)

    def test_bound_violation_detected(self):
        rng = np.random.default_rng(17)
        with pytest.raises(ValueError):
            simulate_nhpp_thinning(lambda t: 10.0 + 0 * t, 1.0, 100.0, rng)

    def test_invalid_arguments(self):
        rng = np.random.default_rng(18)
        with pytest.raises(ValueError):
            simulate_nhpp_thinning(lambda t: t, 1.0, -1.0, rng)
        with pytest.raises(ValueError):
            simulate_nhpp_thinning(lambda t: t, 0.0, 1.0, rng)
