"""Tests for the failure-data containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.failure_data import FailureTimeData, GroupedData
from repro.exceptions import DataValidationError


class TestFailureTimeData:
    def test_basic_properties(self):
        data = FailureTimeData([1.0, 2.0, 5.0], horizon=10.0)
        assert data.count == 3
        assert data.total_time == pytest.approx(8.0)
        assert data.sum_log_times == pytest.approx(np.log([1, 2, 5]).sum())
        assert data.horizon == 10.0

    def test_default_horizon_is_last_failure(self):
        data = FailureTimeData([1.0, 4.0])
        assert data.horizon == 4.0

    def test_ties_allowed(self):
        data = FailureTimeData([1.0, 1.0, 2.0])
        assert data.count == 3

    def test_rejects_unsorted(self):
        with pytest.raises(DataValidationError):
            FailureTimeData([2.0, 1.0])

    def test_rejects_nonpositive_times(self):
        with pytest.raises(DataValidationError):
            FailureTimeData([0.0, 1.0])
        with pytest.raises(DataValidationError):
            FailureTimeData([-1.0, 1.0])

    def test_rejects_horizon_before_last_failure(self):
        with pytest.raises(DataValidationError):
            FailureTimeData([1.0, 5.0], horizon=4.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(DataValidationError):
            FailureTimeData([1.0, np.nan])
        with pytest.raises(DataValidationError):
            FailureTimeData([1.0], horizon=np.inf)

    def test_empty_needs_horizon(self):
        with pytest.raises(DataValidationError):
            FailureTimeData([])
        data = FailureTimeData([], horizon=5.0)
        assert data.count == 0
        assert data.sum_log_times == 0.0

    def test_times_are_immutable(self):
        data = FailureTimeData([1.0, 2.0])
        with pytest.raises(ValueError):
            data.times[0] = 9.9

    def test_truncate(self):
        data = FailureTimeData([1.0, 2.0, 5.0], horizon=10.0)
        cut = data.truncate(3.0)
        assert cut.count == 2
        assert cut.horizon == 3.0

    def test_truncate_cannot_extend(self):
        data = FailureTimeData([1.0], horizon=2.0)
        with pytest.raises(DataValidationError):
            data.truncate(5.0)

    def test_interarrival_times(self):
        data = FailureTimeData([1.0, 3.0, 6.0])
        assert data.interarrival_times() == pytest.approx([1.0, 2.0, 3.0])

    def test_summary_keys(self):
        summary = FailureTimeData([1.0, 2.0], horizon=4.0).summary()
        assert summary["count"] == 2.0
        assert summary["horizon"] == 4.0


class TestToGrouped:
    def test_counts_bucketing(self):
        data = FailureTimeData([1.0, 2.0, 5.0], horizon=10.0)
        grouped = data.to_grouped([2.0, 4.0, 10.0])
        assert grouped.counts.tolist() == [2, 0, 1]

    def test_boundary_time_goes_to_closing_interval(self):
        # t == boundary belongs to (s_{i-1}, s_i].
        data = FailureTimeData([2.0], horizon=4.0)
        grouped = data.to_grouped([2.0, 4.0])
        assert grouped.counts.tolist() == [1, 0]

    def test_total_preserved(self):
        data = FailureTimeData([0.5, 1.5, 2.5, 3.5], horizon=4.0)
        grouped = data.to_grouped([1.0, 2.0, 3.0, 4.0])
        assert grouped.total_count == data.count

    def test_rejects_short_boundaries(self):
        data = FailureTimeData([5.0], horizon=6.0)
        with pytest.raises(DataValidationError):
            data.to_grouped([2.0, 4.0])

    def test_rejects_boundaries_short_of_horizon(self):
        # Regression: boundaries covering every failure but stopping
        # before the horizon used to pass, silently dropping the
        # failure-free tail (s_k, te] from the grouped likelihood.
        data = FailureTimeData([1.0, 2.0], horizon=10.0)
        with pytest.raises(DataValidationError, match="horizon"):
            data.to_grouped([1.0, 2.0])

    def test_boundary_at_horizon_accepted(self):
        data = FailureTimeData([1.0, 2.0], horizon=10.0)
        grouped = data.to_grouped([2.0, 10.0])
        assert grouped.horizon == data.horizon

    def test_empty_data_still_checks_horizon(self):
        data = FailureTimeData([], horizon=10.0)
        with pytest.raises(DataValidationError, match="horizon"):
            data.to_grouped([5.0])

    @given(
        times=st.lists(
            st.floats(min_value=0.01, max_value=9.99), min_size=0, max_size=30
        )
    )
    @settings(max_examples=100)
    def test_total_count_preserved_property(self, times):
        data = FailureTimeData(np.sort(times), horizon=10.0)
        grouped = data.to_grouped(np.linspace(1.0, 10.0, 10))
        assert grouped.total_count == data.count


class TestEqualityAndHashing:
    # Regression: the generated dataclass __eq__/__hash__ raised
    # ValueError/TypeError on the ndarray fields; equality and hashing
    # are now value-based, which fleet-level dedup relies on.

    def test_times_equality(self):
        a = FailureTimeData([1.0, 2.0], horizon=5.0)
        b = FailureTimeData([1.0, 2.0], horizon=5.0)
        c = FailureTimeData([1.0, 2.5], horizon=5.0)
        assert a == b
        assert a != c
        assert a != FailureTimeData([1.0, 2.0], horizon=6.0)
        assert a != FailureTimeData([1.0, 2.0], horizon=5.0, unit="hours")
        assert a != "not data"

    def test_times_hash(self):
        a = FailureTimeData([1.0, 2.0], horizon=5.0)
        b = FailureTimeData([1.0, 2.0], horizon=5.0)
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_grouped_equality(self):
        a = GroupedData(counts=[1, 2], boundaries=[1.0, 2.0])
        b = GroupedData(counts=[1, 2], boundaries=[1.0, 2.0])
        c = GroupedData(counts=[1, 3], boundaries=[1.0, 2.0])
        assert a == b
        assert a != c
        assert a != GroupedData(counts=[1, 2], boundaries=[1.0, 3.0])
        assert a != "not data"

    def test_grouped_hash_dedup(self):
        a = GroupedData(counts=[1, 2], boundaries=[1.0, 2.0])
        b = GroupedData(counts=[1, 2], boundaries=[1.0, 2.0])
        c = GroupedData(counts=[0, 2], boundaries=[1.0, 2.0])
        assert hash(a) == hash(b)
        assert len({a, b, c}) == 2

    def test_cross_type_never_equal(self):
        times = FailureTimeData([1.0], horizon=1.0)
        grouped = GroupedData(counts=[1], boundaries=[1.0])
        assert times != grouped
        assert grouped != times


class TestGroupedData:
    def test_basic_properties(self):
        data = GroupedData(counts=[1, 0, 2], boundaries=[1.0, 2.0, 3.0])
        assert data.n_intervals == 3
        assert data.total_count == 3
        assert data.horizon == 3.0
        assert data.cumulative_counts.tolist() == [1, 1, 3]

    def test_interval_edges(self):
        data = GroupedData(counts=[1, 1], boundaries=[2.0, 5.0])
        assert data.interval_edges().tolist() == [0.0, 2.0, 5.0]
        assert data.intervals() == [(0.0, 2.0, 1), (2.0, 5.0, 1)]

    def test_from_equal_intervals(self):
        data = GroupedData.from_equal_intervals([3, 1, 0], interval_length=2.0)
        assert data.boundaries.tolist() == [2.0, 4.0, 6.0]

    def test_rejects_negative_counts(self):
        with pytest.raises(DataValidationError):
            GroupedData(counts=[-1], boundaries=[1.0])

    def test_rejects_noninteger_counts(self):
        with pytest.raises(DataValidationError):
            GroupedData(counts=[1.5], boundaries=[1.0])

    def test_rejects_nonincreasing_boundaries(self):
        with pytest.raises(DataValidationError):
            GroupedData(counts=[1, 1], boundaries=[2.0, 2.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DataValidationError):
            GroupedData(counts=[1], boundaries=[1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(DataValidationError):
            GroupedData(counts=[], boundaries=[])

    def test_truncate(self):
        data = GroupedData(counts=[1, 2, 3], boundaries=[1.0, 2.0, 3.0])
        cut = data.truncate(2)
        assert cut.total_count == 3
        assert cut.horizon == 2.0

    def test_truncate_bounds(self):
        data = GroupedData(counts=[1], boundaries=[1.0])
        with pytest.raises(DataValidationError):
            data.truncate(0)
        with pytest.raises(DataValidationError):
            data.truncate(2)

    def test_merge_intervals(self):
        data = GroupedData(counts=[1, 2, 3, 4, 5], boundaries=[1, 2, 3, 4, 5])
        merged = data.merge_intervals(2)
        assert merged.counts.tolist() == [3, 7, 5]
        assert merged.boundaries.tolist() == [2.0, 4.0, 5.0]
        assert merged.total_count == data.total_count

    def test_merge_identity(self):
        data = GroupedData(counts=[1, 2], boundaries=[1.0, 2.0])
        assert data.merge_intervals(1) is data

    def test_with_unit(self):
        data = GroupedData(counts=[1], boundaries=[1.0], unit="days")
        assert data.with_unit("weeks").unit == "weeks"

    @given(
        counts=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=40),
        factor=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=100)
    def test_merge_preserves_totals_property(self, counts, factor):
        data = GroupedData.from_equal_intervals(counts)
        merged = data.merge_intervals(factor)
        assert merged.total_count == data.total_count
        assert merged.horizon == data.horizon
