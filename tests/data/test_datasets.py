"""Tests for the bundled datasets."""

import numpy as np
import pytest

from repro.data.datasets import (
    dataset_registry,
    ntds_failure_times,
    system17_failure_times,
    system17_grouped,
)


class TestSystem17:
    def test_failure_time_view_shape(self):
        data = system17_failure_times()
        # Same sample size and scale as the paper's System 17 data.
        assert data.count == 38
        assert data.unit == "seconds"
        assert data.horizon == 240_000.0
        assert data.times[-1] <= data.horizon

    def test_grouped_view_shape(self):
        data = system17_grouped()
        assert data.n_intervals == 64
        assert data.total_count == 38
        assert data.unit == "days"
        assert data.horizon == 64.0

    def test_views_agree_on_total(self):
        assert system17_failure_times().count == system17_grouped().total_count

    def test_deterministic(self):
        a = system17_failure_times()
        b = system17_failure_times()
        assert np.array_equal(a.times, b.times)

    def test_growth_is_concave_overall(self):
        # Goel-Okumoto-like data: more failures in the first half of the
        # observation period than the second.
        data = system17_failure_times()
        first_half = int((data.times <= data.horizon / 2).sum())
        assert first_half > data.count / 2


class TestNTDS:
    def test_classic_values(self):
        data = ntds_failure_times()
        assert data.count == 26
        assert data.times[0] == 9.0
        assert data.times[-1] == 250.0
        assert data.unit == "days"

    def test_cumulative_of_known_interfailures(self):
        data = ntds_failure_times()
        inter = data.interarrival_times()
        assert inter[:5] == pytest.approx([9, 12, 11, 4, 7])
        assert inter[-3:] == pytest.approx([91, 2, 1])


class TestRegistry:
    def test_contains_all_loaders(self):
        registry = dataset_registry()
        assert set(registry) == {"system17_times", "system17_grouped", "ntds_times"}

    def test_loaders_work(self):
        for loader in dataset_registry().values():
            data = loader()
            assert data.horizon > 0
