"""Tests for the Musa-format reader/writer."""

import numpy as np
import pytest

from repro.data.datasets import ntds_failure_times
from repro.data.failure_data import FailureTimeData
from repro.data.musa_format import load_musa, save_musa
from repro.exceptions import DataValidationError


class TestLoad:
    def test_interfailure_rows(self, tmp_path):
        path = tmp_path / "musa.dat"
        path.write_text("# NTDS head\n1 9\n2 12\n3 11\n")
        data = load_musa(path, unit="days")
        assert data.times.tolist() == [9.0, 21.0, 32.0]
        assert data.unit == "days"

    def test_cumulative_rows(self, tmp_path):
        path = tmp_path / "musa.dat"
        path.write_text("1 9\n2 21\n3 32\n")
        data = load_musa(path, cumulative=True)
        assert data.times.tolist() == [9.0, 21.0, 32.0]

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "musa.dat"
        path.write_text("; comment\n\n// other comment\n1 5\n2 2\n")
        assert load_musa(path).count == 2

    def test_explicit_horizon(self, tmp_path):
        path = tmp_path / "musa.dat"
        path.write_text("1 5\n")
        data = load_musa(path, horizon=100.0)
        assert data.horizon == 100.0

    def test_bad_rows_rejected(self, tmp_path):
        path = tmp_path / "musa.dat"
        path.write_text("1\n")
        with pytest.raises(DataValidationError):
            load_musa(path)
        path.write_text("1 abc\n")
        with pytest.raises(DataValidationError):
            load_musa(path)
        path.write_text("")
        with pytest.raises(DataValidationError):
            load_musa(path)

    def test_unsorted_indices_rejected(self, tmp_path):
        path = tmp_path / "musa.dat"
        path.write_text("2 5\n1 3\n")
        with pytest.raises(DataValidationError):
            load_musa(path)

    def test_negative_gap_rejected(self, tmp_path):
        path = tmp_path / "musa.dat"
        path.write_text("1 5\n2 -1\n")
        with pytest.raises(DataValidationError):
            load_musa(path)


class TestRoundTrip:
    def test_interfailure_roundtrip(self, tmp_path):
        original = ntds_failure_times()
        path = tmp_path / "ntds.dat"
        save_musa(original, path, header="NTDS production phase")
        loaded = load_musa(path, unit="days")
        assert np.allclose(loaded.times, original.times)

    def test_cumulative_roundtrip(self, tmp_path):
        original = FailureTimeData([1.5, 3.25, 9.0], horizon=10.0)
        path = tmp_path / "cum.dat"
        save_musa(original, path, cumulative=True)
        loaded = load_musa(path, cumulative=True, horizon=10.0)
        assert np.allclose(loaded.times, original.times)
        assert loaded.horizon == 10.0

    def test_header_written_as_comment(self, tmp_path):
        path = tmp_path / "x.dat"
        save_musa(
            FailureTimeData([1.0]), path, header="line one\nline two"
        )
        text = path.read_text()
        assert text.startswith("# line one\n# line two\n")
