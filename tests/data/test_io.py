"""Tests for CSV/JSON data I/O round-trips."""

import numpy as np
import pytest

from repro.data.datasets import system17_failure_times, system17_grouped
from repro.data.failure_data import FailureTimeData, GroupedData
from repro.data.io import (
    load_failure_times_csv,
    load_grouped_csv,
    load_json,
    save_failure_times_csv,
    save_grouped_csv,
    save_json,
)
from repro.exceptions import DataValidationError


class TestCsvRoundTrip:
    def test_failure_times(self, tmp_path):
        original = system17_failure_times()
        path = tmp_path / "times.csv"
        save_failure_times_csv(original, path)
        loaded = load_failure_times_csv(path, horizon=original.horizon)
        assert np.array_equal(loaded.times, original.times)
        assert loaded.horizon == original.horizon

    def test_grouped(self, tmp_path):
        original = system17_grouped()
        path = tmp_path / "grouped.csv"
        save_grouped_csv(original, path)
        loaded = load_grouped_csv(path)
        assert np.array_equal(loaded.counts, original.counts)
        assert np.array_equal(loaded.boundaries, original.boundaries)

    def test_header_is_skipped(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("time\n1.5\n2.5\n")
        loaded = load_failure_times_csv(path)
        assert loaded.times.tolist() == [1.5, 2.5]

    def test_garbage_mid_file_rejected(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("1.5\nhello\n")
        with pytest.raises(DataValidationError):
            load_failure_times_csv(path)

    def test_grouped_needs_two_columns(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("1.0\n")
        with pytest.raises(DataValidationError):
            load_grouped_csv(path)

    def test_empty_file_times(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        loaded = load_failure_times_csv(path, horizon=5.0)
        assert loaded.count == 0
        assert loaded.horizon == 5.0

    def test_header_only_file_times(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("time\n")
        loaded = load_failure_times_csv(path, horizon=5.0)
        assert loaded.count == 0

    def test_second_header_line_rejected(self, tmp_path):
        # Regression: only ONE header line is allowed. Previously every
        # non-numeric row before the first data row was swallowed, so a
        # typo'd value in an early row simply vanished.
        path = tmp_path / "x.csv"
        path.write_text("time\noops\n1.5\n2.5\n")
        with pytest.raises(DataValidationError):
            load_failure_times_csv(path)

    def test_grouped_second_header_line_rejected(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("boundary,count\ntypo,3\n1.0,2\n")
        with pytest.raises(DataValidationError):
            load_grouped_csv(path)

    def test_grouped_header_then_data(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("boundary,count\n1.0,2\n2.0,0\n")
        loaded = load_grouped_csv(path)
        assert loaded.counts.tolist() == [2, 0]
        assert loaded.boundaries.tolist() == [1.0, 2.0]

    def test_grouped_garbage_after_data_rejected(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("1.0,2\nwhat,1\n")
        with pytest.raises(DataValidationError):
            load_grouped_csv(path)

    def test_blank_lines_still_skipped(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("time\n\n1.5\n\n2.5\n")
        loaded = load_failure_times_csv(path)
        assert loaded.times.tolist() == [1.5, 2.5]


class TestJsonRoundTrip:
    def test_failure_times(self, tmp_path):
        original = FailureTimeData([1.0, 2.5], horizon=7.0, unit="hours")
        path = tmp_path / "d.json"
        save_json(original, path)
        loaded = load_json(path)
        assert isinstance(loaded, FailureTimeData)
        assert np.array_equal(loaded.times, original.times)
        assert loaded.horizon == 7.0
        assert loaded.unit == "hours"

    def test_grouped(self, tmp_path):
        original = GroupedData(counts=[1, 0, 4], boundaries=[1.0, 2.0, 3.5])
        path = tmp_path / "g.json"
        save_json(original, path)
        loaded = load_json(path)
        assert isinstance(loaded, GroupedData)
        assert np.array_equal(loaded.counts, original.counts)
        assert np.array_equal(loaded.boundaries, original.boundaries)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "mystery"}')
        with pytest.raises(DataValidationError):
            load_json(path)

    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_json("not data", tmp_path / "x.json")
