"""Property tests: the metrics merge is exact, associative, and
order-independent.

These properties are what lets campaign runners merge per-replication
registries in spawn-key order and still produce byte-identical
``metrics`` snapshot events whether the replications ran serially or on
a worker pool: the merged state is a pure function of the inputs, not
of the grouping or arrival order (gauges excepted — their *value* is
last-write-wins by design, which is why merge order is pinned to the
spawn key; their update counts still commute).
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import LogHistogram, MetricsRegistry

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=64, min_value=-1e12,
    max_value=1e12,
)
value_lists = st.lists(finite_floats, max_size=30)


def _hist_of(values):
    hist = LogHistogram()
    for v in values:
        hist.record(v)
    return hist


def _registry_of(values):
    reg = MetricsRegistry()
    for i, v in enumerate(values):
        reg.counter_add("c.total", v)
        reg.observe("h.values", v)
        reg.gauge_set("g.last", v, {"lane": str(i % 3)})
    return reg


@given(value_lists)
@settings(max_examples=200)
def test_histogram_total_is_exact(values):
    hist = _hist_of(values)
    assert hist.total == sum((Fraction(v) for v in values), Fraction(0))


@given(value_lists, value_lists)
@settings(max_examples=200)
def test_histogram_merge_equals_concatenation(a, b):
    merged = _hist_of(a)
    merged.merge_state(_hist_of(b).state())
    assert merged.state() == _hist_of(a + b).state()


@given(value_lists, value_lists)
@settings(max_examples=200)
def test_histogram_merge_commutes(a, b):
    ab = _hist_of(a)
    ab.merge_state(_hist_of(b).state())
    ba = _hist_of(b)
    ba.merge_state(_hist_of(a).state())
    assert ab.state() == ba.state()
    assert ab.summary() == ba.summary()


@given(value_lists, value_lists, value_lists)
@settings(max_examples=100)
def test_histogram_merge_associates(a, b, c):
    left = _hist_of(a)
    left.merge_state(_hist_of(b).state())
    left.merge_state(_hist_of(c).state())
    bc = _hist_of(b)
    bc.merge_state(_hist_of(c).state())
    right = _hist_of(a)
    right.merge_state(bc.state())
    assert left.state() == right.state()


@given(value_lists, value_lists)
@settings(max_examples=100)
def test_registry_merge_equals_concatenation(a, b):
    # Counters and histograms are order-free; gauges are last-write-wins
    # so the *sequential* concatenation is the reference.
    merged = _registry_of(a)
    merged.merge(_registry_of(b).export())
    direct = _registry_of(a + b)
    # The gauge label cycles restart per registry, so compare the
    # order-free parts against the concatenation...
    assert merged.export()["counters"] == direct.export()["counters"]
    assert merged.export()["histograms"] == direct.export()["histograms"]
    # ...and the gauge merge against explicit last-write-wins.
    for key, entry in merged.export()["gauges"].items():
        a_entry = _registry_of(a).export()["gauges"].get(key)
        b_entry = _registry_of(b).export()["gauges"].get(key)
        expected_updates = (a_entry or {"updates": 0})["updates"] + (
            b_entry or {"updates": 0}
        )["updates"]
        assert entry["updates"] == expected_updates
        winner = b_entry if b_entry and b_entry["updates"] else a_entry
        assert entry["value"] == winner["value"]


@given(value_lists, value_lists, value_lists)
@settings(max_examples=50)
def test_registry_merge_associates(a, b, c):
    left = _registry_of(a)
    left.merge(_registry_of(b).export())
    left.merge(_registry_of(c).export())
    bc = _registry_of(b)
    bc.merge(_registry_of(c).export())
    right = _registry_of(a)
    right.merge(bc.export())
    assert left.export() == right.export()
    assert left.snapshot() == right.snapshot()


@given(value_lists)
@settings(max_examples=100)
def test_export_round_trips_through_fresh_registry(values):
    reg = _registry_of(values)
    fresh = MetricsRegistry()
    fresh.merge(reg.export())
    assert fresh.export() == reg.export()
    assert fresh.snapshot() == reg.snapshot()
