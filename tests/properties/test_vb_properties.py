"""Property-based tests: VB invariants under randomly generated data.

Hypothesis drives the data generator; each property must hold for any
valid dataset, not just the bundled ones.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bayes.priors import ModelPrior
from repro.core.config import VBConfig
from repro.core.vb1 import fit_vb1
from repro.core.vb2 import fit_vb2
from repro.data.failure_data import FailureTimeData, GroupedData

# Hypothesis strategies -------------------------------------------------

failure_times = st.lists(
    st.floats(min_value=0.01, max_value=99.0),
    min_size=1,
    max_size=25,
).map(lambda values: FailureTimeData(np.sort(values), horizon=100.0))

grouped_counts = st.lists(
    st.integers(min_value=0, max_value=6), min_size=2, max_size=15
).filter(lambda counts: sum(counts) >= 1).map(
    lambda counts: GroupedData.from_equal_intervals(counts)
)

priors = st.tuples(
    st.floats(min_value=5.0, max_value=100.0),   # omega mean
    st.floats(min_value=2.0, max_value=40.0),    # omega std
    st.floats(min_value=1e-3, max_value=0.5),    # beta mean
    st.floats(min_value=1e-3, max_value=0.2),    # beta std
).map(lambda args: ModelPrior.informative(*args))

_FAST = VBConfig(tail_tolerance=1e-8, fixed_point_rtol=1e-10)
_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestVB2PropertiesTimes:
    @given(data=failure_times, prior=priors)
    @settings(**_SETTINGS)
    def test_posterior_is_proper_and_ordered(self, data, prior):
        posterior = fit_vb2(data, prior, config=_FAST)
        ns, weights = posterior.fault_count_pmf()
        assert ns[0] == data.count
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights >= 0.0)
        assert posterior.mean("omega") > 0.0
        assert posterior.variance("omega") > 0.0
        lo, hi = posterior.credible_interval("omega", 0.95)
        assert lo < posterior.quantile("omega", 0.5) < hi

    @given(data=failure_times, prior=priors)
    @settings(**_SETTINGS)
    def test_latent_mean_dominates_observed_count(self, data, prior):
        posterior = fit_vb2(data, prior, config=_FAST)
        # E[N] = sum_N N Pv(N) with N >= count everywhere, but the
        # normalised weights can sum to 1 - O(ulp); allow that rounding.
        assert posterior.expected_total_faults() >= data.count * (1.0 - 1e-12)

    @given(data=failure_times, prior=priors)
    @settings(**_SETTINGS)
    def test_elbo_dominates_vb1(self, data, prior):
        vb2 = fit_vb2(data, prior, config=_FAST)
        vb1 = fit_vb1(data, prior, config=_FAST)
        assert vb2.elbo is not None and vb1.elbo is not None
        assert vb2.elbo >= vb1.elbo - 1e-6

    @given(data=failure_times, prior=priors)
    @settings(**_SETTINGS)
    def test_posterior_mean_between_prior_and_likelihood_regions(
        self, data, prior
    ):
        # With a proper prior the posterior mean of omega cannot exceed
        # max(prior mean, a generous data bound) nor drop below zero.
        posterior = fit_vb2(data, prior, config=_FAST)
        upper = max(prior.omega.mean + 6 * prior.omega.std, data.count * 50.0)
        assert 0.0 < posterior.mean("omega") < upper


class TestVB2PropertiesGrouped:
    @given(data=grouped_counts, prior=priors)
    @settings(**_SETTINGS)
    def test_posterior_proper_on_grouped(self, data, prior):
        posterior = fit_vb2(data, prior, config=_FAST)
        ns, weights = posterior.fault_count_pmf()
        assert ns[0] == data.total_count
        assert weights.sum() == pytest.approx(1.0)
        assert posterior.variance("beta") > 0.0

    @given(
        data=grouped_counts,
        prior=priors,
        scale=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(**_SETTINGS)
    def test_time_scale_equivariance(self, data, prior, scale):
        # Rescaling the clock by s while transforming the beta prior as
        # beta' = beta / s (a gamma rate scaling) leaves the omega
        # posterior invariant and scales the beta posterior by 1/s —
        # an exact symmetry of the model.
        from repro.bayes.priors import GammaPrior

        scaled_data = GroupedData(
            counts=data.counts, boundaries=data.boundaries * scale
        )
        scaled_prior = ModelPrior(
            omega=prior.omega,
            beta=GammaPrior(prior.beta.shape, prior.beta.rate * scale),
        )
        base = fit_vb2(data, prior, config=_FAST)
        scaled = fit_vb2(scaled_data, scaled_prior, config=_FAST)
        assert scaled.mean("omega") == pytest.approx(
            base.mean("omega"), rel=1e-8
        )
        assert scaled.variance("omega") == pytest.approx(
            base.variance("omega"), rel=1e-6
        )
        assert scaled.mean("beta") == pytest.approx(
            base.mean("beta") / scale, rel=1e-8
        )


class TestValidationProperties:
    """Invariants of the SBC engine and the parallel campaign runner."""

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        index=st.integers(min_value=0, max_value=50),
        n_ranks=st.integers(min_value=1, max_value=127),
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sbc_ranks_always_within_bounds(self, seed, index, n_ranks):
        from repro.validation.sbc import SBCSpec, run_replication

        spec = SBCSpec(method="VB1", seed=seed, ranks=n_ranks)
        outcome = run_replication(spec, index)
        if outcome.status == "ok":
            for rank in outcome.ranks.values():
                assert 0 <= rank <= n_ranks
        else:
            assert outcome.ranks is None

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_parallel_and_serial_campaigns_bit_identical(self, seed):
        from repro.validation.sbc import SBCSpec, run_sbc

        spec = SBCSpec(method="VB1", seed=seed, replications=6, ranks=15)
        serial = run_sbc(spec, workers=1)
        parallel = run_sbc(spec, workers=2)
        assert parallel.to_dict() == serial.to_dict()

    @given(order=st.permutations(range(4)))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_scenario_order_never_changes_per_scenario_output(self, order):
        from repro.experiments import run_scenarios

        scenarios = self._scenarios()
        shuffled = [scenarios[i] for i in order]
        results = run_scenarios(shuffled, methods=("VB1", "VB2"))
        baseline = self._baseline_moments()
        assert {
            name: result.moments() for name, result in results.items()
        } == baseline

    # Scenario fits are deterministic but not free; compute the serial
    # baseline once per test session.
    _cache: dict = {}

    @classmethod
    def _scenarios(cls):
        from repro.experiments import paper_scenarios

        if "scenarios" not in cls._cache:
            cls._cache["scenarios"] = list(paper_scenarios().values())[:4]
        return cls._cache["scenarios"]

    @classmethod
    def _baseline_moments(cls):
        from repro.experiments import run_scenarios

        if "baseline" not in cls._cache:
            results = run_scenarios(cls._scenarios(), methods=("VB1", "VB2"))
            cls._cache["baseline"] = {
                name: result.moments() for name, result in results.items()
            }
        return cls._cache["baseline"]


class TestReliabilityProperties:
    @given(
        data=failure_times,
        prior=priors,
        u=st.floats(min_value=0.1, max_value=50.0),
    )
    @settings(**_SETTINGS)
    def test_reliability_point_in_unit_interval(self, data, prior, u):
        from repro.core.reliability import reliability_increment

        posterior = fit_vb2(data, prior, config=_FAST)
        c = reliability_increment(1.0, data.horizon, u)
        point = posterior.reliability_point(c)
        assert 0.0 < point <= 1.0

    @given(data=failure_times, prior=priors)
    @settings(**_SETTINGS)
    def test_reliability_cdf_is_monotone(self, data, prior):
        from repro.core.reliability import reliability_increment

        posterior = fit_vb2(data, prior, config=_FAST)
        c = reliability_increment(1.0, data.horizon, 10.0)
        values = [posterior.reliability_cdf(r, c) for r in (0.2, 0.5, 0.8)]
        assert values[0] <= values[1] <= values[2]
