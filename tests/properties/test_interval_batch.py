"""Property-based tests: the batched quantile path is the scalar path.

The vectorized interval engine promises that ``ppf(q_array)`` is a
*batch of simultaneous scalar inversions* — every level must come out
identical to a one-level call, for any gamma mixture. Hypothesis
drives random mixtures (component counts, shapes, rates, weights) and
random level sets, always including the extreme tails and the
single-component case where the bisection bracket degenerates to a
point.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.stats.gamma_dist import GammaDistribution
from repro.stats.mixtures import MixtureDistribution

# Hypothesis strategies -------------------------------------------------

components = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=500.0),   # shape
        st.floats(min_value=1e-3, max_value=100.0),  # rate
    ),
    min_size=1,
    max_size=8,
)

weights = st.lists(
    st.floats(min_value=0.05, max_value=1.0), min_size=8, max_size=8
)

levels_strategy = st.lists(
    st.floats(min_value=1e-5, max_value=1.0 - 1e-5),
    min_size=1,
    max_size=6,
)

_SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_mixture(params, raw_weights):
    comps = [GammaDistribution(a, b) for a, b in params]
    return MixtureDistribution(comps, np.asarray(raw_weights[: len(comps)]))


class TestBatchedMatchesScalar:
    @given(params=components, raw_weights=weights, raw_levels=levels_strategy)
    @settings(**_SETTINGS)
    def test_batched_ppf_equals_scalar_per_level(
        self, params, raw_weights, raw_levels
    ):
        mix = build_mixture(params, raw_weights)
        # Always exercise the extreme tails alongside the random levels.
        levels = np.array(raw_levels + [1e-6, 1.0 - 1e-6])
        batch = mix.ppf(levels)
        scalars = np.array([mix.ppf(float(q)) for q in levels])
        assert np.array_equal(batch, scalars)
        # And both invert the CDF. Bulk levels only: in the extreme
        # tails of near-zero-quantile components the bisection's
        # absolute x-tolerance (1e-12, same as the scalar and legacy
        # paths) caps the attainable CDF accuracy, so the tails are
        # covered by the bit-equality assertion above instead.
        bulk = (levels >= 1e-4) & (levels <= 1.0 - 1e-4)
        assert mix.cdf(batch[bulk]) == pytest.approx(levels[bulk], abs=1e-7)

    @given(
        shape=st.floats(min_value=0.5, max_value=500.0),
        rate=st.floats(min_value=1e-3, max_value=100.0),
        raw_levels=levels_strategy,
    )
    @settings(**_SETTINGS)
    def test_single_component_degenerate_bracket(self, shape, rate, raw_levels):
        # lo == hi for every level: the batch bisection pins each root
        # at the (exact) component quantile without any iteration.
        base = GammaDistribution(shape, rate)
        mix = MixtureDistribution([base], [1.0])
        levels = np.array(raw_levels + [1e-6, 1.0 - 1e-6])
        batch = mix.ppf(levels)
        expected = np.array([base.ppf(float(q)) for q in levels])
        assert batch == pytest.approx(expected, rel=1e-12)
        scalars = np.array([mix.ppf(float(q)) for q in levels])
        assert np.array_equal(batch, scalars)

    @given(params=components, raw_weights=weights)
    @settings(**_SETTINGS)
    def test_batched_quantiles_monotone_in_level(self, params, raw_weights):
        mix = build_mixture(params, raw_weights)
        levels = np.array([1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0 - 1e-6])
        batch = mix.ppf(levels)
        assert np.all(np.diff(batch) >= 0.0)

    @given(
        params=components,
        raw_weights=weights,
        confidence=st.floats(min_value=0.5, max_value=0.999),
    )
    @settings(**_SETTINGS)
    def test_interval_batch_equals_interval(self, params, raw_weights, confidence):
        mix = build_mixture(params, raw_weights)
        (row,) = mix.interval_batch([confidence])
        lo, hi = mix.interval(confidence)
        assert row[0] == lo
        assert row[1] == hi
