"""Property-based tests for the misspecification data generators.

Every scenario family must behave like a genuine NHPP with the exact
mean-value function it claims: Λ nondecreasing from 0, continuous even
at structural breaks, simulated counts Poisson-consistent with the
analytic mean, and severity 0 collapsing to the Goel–Okumoto baseline.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.robustness.generators import (
    BASE_BETA,
    BASE_OMEGA,
    SCENARIO_FAMILIES,
    ChangePointScenario,
    ContaminatedScenario,
    TruncatedReportingScenario,
    WeibullHazardScenario,
    default_severities,
    make_scenario,
)

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

severities = st.floats(min_value=0.0, max_value=1.0)
times = st.floats(min_value=0.0, max_value=200.0)
families = st.sampled_from(sorted(SCENARIO_FAMILIES))


def _go_mean_value(t):
    return BASE_OMEGA * -np.expm1(-BASE_BETA * np.asarray(t, dtype=float))


class TestMeanValueShape:
    @given(family=families, severity=severities)
    @settings(**_SETTINGS)
    def test_mean_value_nondecreasing(self, family, severity):
        scenario = make_scenario(family, severity)
        grid = np.linspace(0.0, 120.0, 601)
        values = scenario.mean_value(grid)
        assert np.all(np.diff(values) >= -1e-9)

    @given(family=families, severity=severities)
    @settings(**_SETTINGS)
    def test_mean_value_starts_at_zero(self, family, severity):
        scenario = make_scenario(family, severity)
        assert scenario.mean_value(0.0) == pytest.approx(0.0, abs=1e-12)
        # Negative times clip to the process start.
        assert scenario.mean_value(-3.0) == pytest.approx(0.0, abs=1e-12)

    @given(family=families, severity=severities)
    @settings(**_SETTINGS)
    def test_mean_value_bounded_by_total_faults(self, family, severity):
        scenario = make_scenario(family, severity)
        grid = np.linspace(0.0, 500.0, 101)
        assert np.all(scenario.mean_value(grid) <= scenario.total_faults + 1e-9)

    @given(family=families)
    @settings(**_SETTINGS)
    def test_severity_zero_is_goel_okumoto(self, family):
        scenario = make_scenario(family, 0.0)
        grid = np.linspace(0.0, 80.0, 81)
        np.testing.assert_allclose(
            scenario.mean_value(grid), _go_mean_value(grid), rtol=1e-10,
            atol=1e-12,
        )

    @given(severity=severities)
    @settings(**_SETTINGS)
    def test_change_point_continuous_at_tau(self, severity):
        scenario = ChangePointScenario(severity=severity)
        tau = scenario.tau
        eps = 1e-7
        left = scenario.mean_value(tau - eps)
        right = scenario.mean_value(tau + eps)
        assert right - left < 1e-4
        assert right >= left - 1e-12

    @given(severity=severities, t=times)
    @settings(**_SETTINGS)
    def test_scalar_and_array_mean_value_agree(self, severity, t):
        scenario = ContaminatedScenario(severity=severity)
        scalar = scenario.mean_value(t)
        array = scenario.mean_value(np.array([t]))
        assert scalar == pytest.approx(float(array[0]))


class TestTruths:
    @given(family=families, severity=severities)
    @settings(**_SETTINGS)
    def test_truths_are_consistent(self, family, severity):
        scenario = make_scenario(family, severity)
        truths = scenario.truths(25.0)
        assert truths["omega"] == pytest.approx(scenario.total_faults)
        expected_residual = scenario.total_faults - scenario.mean_value(25.0)
        assert truths["residual"] == pytest.approx(expected_residual)
        assert truths["residual"] >= -1e-9

    @given(family=families, severity=severities)
    @settings(**_SETTINGS)
    def test_expected_count_matches_mean_value(self, family, severity):
        scenario = make_scenario(family, severity)
        assert scenario.expected_count(17.0) == pytest.approx(
            scenario.mean_value(17.0)
        )


class TestSimulation:
    """Simulated counts must match the analytic mean within Poisson
    tolerance — the acid test that ``simulate`` and ``mean_value``
    describe the same process."""

    @pytest.mark.parametrize("family", sorted(SCENARIO_FAMILIES))
    @pytest.mark.parametrize("severity_index", [0, 1, 2])
    def test_counts_match_analytic_mean(self, family, severity_index):
        severity = default_severities(family)[severity_index]
        scenario = make_scenario(family, severity)
        horizon = 25.0
        n_rep = 200
        total = 0
        for i in range(n_rep):
            rng = np.random.default_rng(1_000 + i)
            total += scenario.simulate(horizon, rng).count
        mean_count = scenario.expected_count(horizon)
        # Sum of n_rep Poisson(Λ) counts: tolerance of 5 standard errors.
        tolerance = 5.0 * np.sqrt(n_rep * mean_count)
        assert abs(total - n_rep * mean_count) < tolerance

    @given(family=families, severity=severities, seed=st.integers(0, 2**31))
    @settings(**_SETTINGS)
    def test_simulation_is_deterministic_per_seed(self, family, severity, seed):
        scenario = make_scenario(family, severity)
        first = scenario.simulate(25.0, np.random.default_rng(seed))
        second = scenario.simulate(25.0, np.random.default_rng(seed))
        np.testing.assert_array_equal(first.times, second.times)
        assert first.horizon == second.horizon

    @given(family=families, severity=severities)
    @settings(**_SETTINGS)
    def test_simulated_times_are_sorted_within_horizon(self, family, severity):
        scenario = make_scenario(family, severity)
        data = scenario.simulate(25.0, np.random.default_rng(7))
        assert np.all(np.diff(data.times) >= 0.0)
        assert np.all(data.times >= 0.0)
        assert np.all(data.times <= 25.0)
        assert data.horizon == 25.0

    def test_simulate_rejects_bad_horizon(self):
        scenario = make_scenario("weibull-hazard", 0.5)
        with pytest.raises(ValueError, match="horizon"):
            scenario.simulate(0.0, np.random.default_rng(0))


class TestTruncatedThinning:
    """Truncated reporting must be a *prefix-measurable thinning*: with
    the same seed, the reported stream is a subset of the untruncated
    stream, untouched before the cutoff — so severity only ever removes
    post-cutoff events, never perturbs the underlying campaign."""

    @given(severity=severities, seed=st.integers(0, 2**31))
    @settings(**_SETTINGS)
    def test_reported_is_subset_of_untruncated(self, severity, seed):
        scenario = TruncatedReportingScenario(severity=severity)
        full = scenario.simulate_untruncated(
            25.0, np.random.default_rng(seed)
        )
        reported = scenario.simulate(25.0, np.random.default_rng(seed))
        full_times = set(np.asarray(full.times).tolist())
        assert all(t in full_times for t in np.asarray(reported.times))

    @given(severity=severities, seed=st.integers(0, 2**31))
    @settings(**_SETTINGS)
    def test_pre_cutoff_prefix_is_identical(self, severity, seed):
        scenario = TruncatedReportingScenario(severity=severity)
        full = scenario.simulate_untruncated(
            25.0, np.random.default_rng(seed)
        )
        reported = scenario.simulate(25.0, np.random.default_rng(seed))
        cutoff = scenario.cutoff
        np.testing.assert_array_equal(
            np.asarray(reported.times)[np.asarray(reported.times) <= cutoff],
            np.asarray(full.times)[np.asarray(full.times) <= cutoff],
        )

    @given(seed=st.integers(0, 2**31))
    @settings(**_SETTINGS)
    def test_severity_zero_reports_everything(self, seed):
        scenario = TruncatedReportingScenario(severity=0.0)
        full = scenario.simulate_untruncated(
            25.0, np.random.default_rng(seed)
        )
        reported = scenario.simulate(25.0, np.random.default_rng(seed))
        np.testing.assert_array_equal(reported.times, full.times)


class TestRegistry:
    def test_all_families_registered(self):
        assert set(SCENARIO_FAMILIES) == {
            "weibull-hazard",
            "change-point",
            "contaminated",
            "truncated-reporting",
        }
        assert SCENARIO_FAMILIES["weibull-hazard"] is WeibullHazardScenario

    def test_default_severities_start_at_anchor(self):
        for family in SCENARIO_FAMILIES:
            grid = default_severities(family)
            assert grid[0] == 0.0
            assert list(grid) == sorted(grid)

    def test_default_severities_unknown_family(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            default_severities("nosuch")

    def test_make_scenario_unknown_family(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            make_scenario("nosuch", 0.5)

    def test_make_scenario_overrides(self):
        scenario = make_scenario("contaminated", 0.4, kappa=0.7, omega=55.0)
        assert scenario.kappa == 0.7
        assert scenario.omega == 55.0
        assert scenario.severity == 0.4

    def test_describe_includes_family_and_severity(self):
        for family in SCENARIO_FAMILIES:
            info = make_scenario(family, 0.25).describe()
            assert info["family"] == family
            assert info["severity"] == 0.25

    @pytest.mark.parametrize("severity", [-0.1, float("nan")])
    def test_invalid_severity_rejected(self, severity):
        with pytest.raises(ValueError):
            make_scenario("weibull-hazard", severity)

    @pytest.mark.parametrize("family", ["contaminated", "truncated-reporting"])
    def test_probability_severity_capped_at_one(self, family):
        # For these families severity is a probability; the hazard-style
        # families accept any nonnegative multiplier.
        with pytest.raises(ValueError):
            make_scenario(family, 1.5)
        make_scenario("weibull-hazard", 1.5)
        make_scenario("change-point", 1.5)
