"""Tests for the goodness-of-fit tools."""

import math

import numpy as np
import pytest

from repro.data.failure_data import FailureTimeData, GroupedData
from repro.data.simulation import simulate_failure_times
from repro.metrics.gof import (
    chi_square_grouped,
    ks_uplot_statistic,
    laplace_trend_test,
    log_likelihood_ratio,
)
from repro.mle.em import fit_mle_em
from repro.models.goel_okumoto import GoelOkumoto


class TestLaplaceTrend:
    def test_growth_detected_on_system17(self, times_data):
        result = laplace_trend_test(times_data)
        assert result.statistic < 0.0
        assert result.indicates_growth
        assert result.p_value < 0.01

    def test_homogeneous_process_not_flagged(self, rng):
        # Uniform arrival times = homogeneous Poisson: no trend.
        flagged = 0
        for _ in range(20):
            times = np.sort(rng.uniform(0.0, 100.0, size=50))
            result = laplace_trend_test(FailureTimeData(times, horizon=100.0))
            flagged += result.indicates_growth
        assert flagged <= 4  # ~5% false-positive rate, generous bound

    def test_needs_two_failures(self):
        with pytest.raises(ValueError):
            laplace_trend_test(FailureTimeData([1.0], horizon=2.0))


class TestUPlot:
    def test_well_specified_model_has_small_distance(self, rng):
        model = GoelOkumoto(omega=200.0, beta=0.1)
        data = simulate_failure_times(model, 30.0, rng)
        fitted = fit_mle_em(data, information=False).model
        assert ks_uplot_statistic(data, fitted) < 0.15

    def test_misspecified_model_has_larger_distance(self, rng):
        model = GoelOkumoto(omega=200.0, beta=0.1)
        data = simulate_failure_times(model, 30.0, rng)
        good = fit_mle_em(data, information=False).model
        bad = good.replace(beta=good.params["beta"] * 8.0)
        assert ks_uplot_statistic(data, bad) > ks_uplot_statistic(data, good)

    def test_needs_failures(self):
        data = FailureTimeData([], horizon=10.0)
        with pytest.raises(ValueError):
            ks_uplot_statistic(data, GoelOkumoto(omega=1.0, beta=1.0))


class TestChiSquare:
    def test_fitted_model_passes_on_system17(self, grouped_data):
        fitted = fit_mle_em(grouped_data, information=False).model
        result = chi_square_grouped(grouped_data, fitted)
        assert result.dof > 0
        assert result.p_value > 0.01  # the synthetic data IS Goel-Okumoto

    def test_bad_model_fails(self, grouped_data):
        bad = GoelOkumoto(omega=10.0, beta=0.5)
        good = fit_mle_em(grouped_data, information=False).model
        bad_result = chi_square_grouped(grouped_data, bad)
        good_result = chi_square_grouped(grouped_data, good)
        assert bad_result.statistic > good_result.statistic

    def test_pooling_respects_min_expected(self, grouped_data):
        fitted = fit_mle_em(grouped_data, information=False).model
        result = chi_square_grouped(grouped_data, fitted, min_expected=5.0)
        # Pooled cells are far fewer than the 64 raw intervals.
        assert 2 <= result.n_cells < grouped_data.n_intervals

    def test_single_cell_degenerate_dof(self):
        data = GroupedData(counts=[3], boundaries=[1.0])
        model = GoelOkumoto(omega=3.0, beta=1.0)
        result = chi_square_grouped(data, model)
        assert result.dof <= 0
        assert math.isnan(result.p_value)


class TestLikelihoodRatio:
    def test_sign_convention(self, times_data):
        good = fit_mle_em(times_data, information=False).model
        bad = good.replace(omega=good.omega * 3.0)
        assert log_likelihood_ratio(times_data, good, bad) > 0.0
        assert log_likelihood_ratio(times_data, bad, good) < 0.0
