"""Unit tests for the wall-clock timing helpers."""

import time

import pytest

from repro.metrics.timing import TimingRecord, time_callable


class TestTimeCallable:
    def test_returns_callable_result(self):
        record = time_callable(lambda: 42)
        assert record.result == 42
        assert record.seconds >= 0.0

    def test_label_carried_through(self):
        record = time_callable(lambda: None, label="vb2")
        assert record.label == "vb2"

    def test_measures_elapsed_time(self):
        record = time_callable(lambda: time.sleep(0.02))
        assert record.seconds >= 0.015

    def test_repeat_keeps_minimum_and_first_result(self):
        calls = []

        def fn():
            calls.append(len(calls))
            return len(calls)

        record = time_callable(fn, repeat=3)
        assert calls == [0, 1, 2]
        assert record.result == 1  # result of the FIRST run
        assert record.seconds < 1.0

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeat=0)

    def test_record_is_immutable(self):
        record = TimingRecord(result=1, seconds=0.5)
        with pytest.raises(AttributeError):
            record.seconds = 0.0

    def test_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            time_callable(lambda: (_ for _ in ()).throw(RuntimeError("boom")))

    def test_all_samples_recorded(self):
        record = time_callable(lambda: None, repeat=4)
        assert len(record.samples) == 4
        assert record.seconds == min(record.samples)
        assert all(s >= 0.0 for s in record.samples)

    def test_mean_and_std_from_samples(self):
        record = TimingRecord(
            result=None, seconds=0.1, samples=(0.1, 0.2, 0.3)
        )
        assert record.mean == pytest.approx(0.2)
        assert record.std == pytest.approx((0.02 / 3) ** 0.5)

    def test_mean_falls_back_to_seconds_without_samples(self):
        record = TimingRecord(result=None, seconds=0.5)
        assert record.mean == 0.5
        assert record.std == 0.0

    def test_single_sample_has_zero_std(self):
        record = time_callable(lambda: None)
        assert len(record.samples) == 1
        assert record.std == 0.0


class TestTimingTelemetry:
    def test_timing_event_emitted_when_tracing(self):
        from repro import obs

        with obs.capture(level="timing") as col:
            time_callable(lambda: None, label="bench", repeat=3)
        (ev,) = [e for e in col.events if e["kind"] == "timing"]
        assert ev["label"] == "bench"
        assert ev["repeat"] == 3
        assert ev["min_s"] <= ev["mean_s"]

    def test_unlabelled_timing_uses_placeholder(self):
        from repro import obs

        with obs.capture(level="timing") as col:
            time_callable(lambda: None)
        (ev,) = [e for e in col.events if e["kind"] == "timing"]
        assert ev["label"] == "anonymous"

    def test_no_event_at_summary_level(self):
        from repro import obs

        with obs.capture(level="summary") as col:
            time_callable(lambda: None, label="bench")
        assert col.events == []
