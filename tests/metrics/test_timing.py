"""Unit tests for the wall-clock timing helpers."""

import time

import pytest

from repro.metrics.timing import TimingRecord, time_callable


class TestTimeCallable:
    def test_returns_callable_result(self):
        record = time_callable(lambda: 42)
        assert record.result == 42
        assert record.seconds >= 0.0

    def test_label_carried_through(self):
        record = time_callable(lambda: None, label="vb2")
        assert record.label == "vb2"

    def test_measures_elapsed_time(self):
        record = time_callable(lambda: time.sleep(0.02))
        assert record.seconds >= 0.015

    def test_repeat_keeps_minimum_and_first_result(self):
        calls = []

        def fn():
            calls.append(len(calls))
            return len(calls)

        record = time_callable(fn, repeat=3)
        assert calls == [0, 1, 2]
        assert record.result == 1  # result of the FIRST run
        assert record.seconds < 1.0

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeat=0)

    def test_record_is_immutable(self):
        record = TimingRecord(result=1, seconds=0.5)
        with pytest.raises(AttributeError):
            record.seconds = 0.0

    def test_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            time_callable(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
