"""Tests for comparison metrics, table rendering, and timing."""

import math
import time

import pytest

from repro.metrics.comparison import deviation_table, relative_deviation
from repro.metrics.tables import format_value, render_table
from repro.metrics.timing import TimingRecord, time_callable


class TestRelativeDeviation:
    def test_basic(self):
        assert relative_deviation(11.0, 10.0) == pytest.approx(0.1)
        assert relative_deviation(9.0, 10.0) == pytest.approx(-0.1)

    def test_negative_reference_uses_absolute_value(self):
        # Paper convention: VB1's Cov = 0 against Cov = -2.1e-6 prints
        # as +100%.
        assert relative_deviation(0.0, -2.1e-6) == pytest.approx(1.0)

    def test_zero_reference(self):
        assert relative_deviation(0.0, 0.0) == 0.0
        assert math.isnan(relative_deviation(1.0, 0.0))


class TestDeviationTable:
    def test_reference_excluded(self):
        results = {
            "NINT": {"x": 10.0},
            "VB2": {"x": 10.5},
        }
        table = deviation_table(results, "NINT")
        assert set(table) == {"VB2"}
        assert table["VB2"]["x"] == pytest.approx(0.05)

    def test_missing_reference_rejected(self):
        with pytest.raises(KeyError):
            deviation_table({"VB2": {"x": 1.0}}, "NINT")

    def test_quantity_subset(self):
        results = {
            "NINT": {"x": 10.0, "y": 1.0},
            "VB2": {"x": 10.0, "y": 2.0},
        }
        table = deviation_table(results, "NINT", quantities=("y",))
        assert list(table["VB2"]) == ["y"]


class TestFormatValue:
    def test_scientific_for_small_magnitudes(self):
        assert "E-" in format_value(1.11e-5)

    def test_fixed_for_moderate(self):
        assert format_value(41.78) == "41.78"

    def test_zero_and_none(self):
        assert format_value(0.0) == "0"
        assert format_value(None) == "-"

    def test_string_passthrough(self):
        assert format_value("+1.2%") == "+1.2%"

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_int(self):
        assert format_value(630000) == "630000"


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["method", "E"],
            [["NINT", 41.78], ["VB2", 41.75]],
            title="Table X",
        )
        lines = text.splitlines()
        assert lines[0] == "Table X"
        assert "method" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestTiming:
    def test_returns_result_and_time(self):
        record = time_callable(lambda: 42, label="answer")
        assert record.result == 42
        assert record.seconds >= 0.0
        assert record.label == "answer"

    def test_repeat_keeps_minimum(self):
        calls = []

        def work():
            calls.append(1)
            time.sleep(0.001)
            return len(calls)

        record = time_callable(work, repeat=3)
        assert record.result == 1  # result of the first run
        assert len(calls) == 3

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: 1, repeat=0)

    def test_record_frozen(self):
        record = TimingRecord(result=1, seconds=0.1)
        with pytest.raises(Exception):
            record.seconds = 0.2
