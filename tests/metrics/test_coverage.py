"""Tests for the interval coverage study harness."""

import pytest

from repro.bayes.priors import ModelPrior
from repro.core.vb1 import fit_vb1
from repro.core.vb2 import fit_vb2
from repro.metrics.coverage import interval_coverage_study
from repro.models.goel_okumoto import GoelOkumoto


@pytest.fixture(scope="module")
def study():
    true_model = GoelOkumoto(omega=50.0, beta=0.1)
    prior = ModelPrior.informative(45.0, 20.0, 0.12, 0.06)
    return interval_coverage_study(
        true_model,
        prior,
        {"VB2": fit_vb2, "VB1": fit_vb1},
        horizon=25.0,
        level=0.9,
        replications=120,
        seed=13,
    )


class TestCoverageStudy:
    def test_same_campaigns_for_all_fitters(self, study):
        assert study["VB2"].replications == study["VB1"].replications
        assert study["VB2"].replications > 100

    def test_vb2_near_nominal(self, study):
        # 90% nominal: VB2's empirical coverage within sampling noise.
        assert study["VB2"].coverage("omega") > 0.82
        assert study["VB2"].coverage("beta") > 0.82
        assert not study["VB2"].undercovers("omega")

    def test_vb1_intervals_narrower(self, study):
        assert study["VB1"].widths["omega"] < study["VB2"].widths["omega"]
        assert study["VB1"].widths["beta"] < study["VB2"].widths["beta"]

    def test_vb1_coverage_not_better(self, study):
        # Narrower intervals cannot cover more often.
        assert study["VB1"].coverage("beta") <= study["VB2"].coverage("beta") + 0.02

    def test_standard_error(self, study):
        se = study["VB2"].coverage_standard_error("omega")
        assert 0.0 <= se < 0.1

    def test_validation(self):
        true_model = GoelOkumoto(omega=1e-6, beta=1.0)
        prior = ModelPrior.informative(45.0, 20.0, 0.12, 0.06)
        with pytest.raises(ValueError):
            interval_coverage_study(
                true_model, prior, {"VB2": fit_vb2},
                horizon=1.0, replications=5,
            )
        with pytest.raises(ValueError):
            interval_coverage_study(
                GoelOkumoto(omega=50.0, beta=0.1), prior, {"VB2": fit_vb2},
                horizon=25.0, replications=0,
            )
