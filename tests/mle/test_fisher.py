"""Tests for the observed information and Wald intervals."""

import math

import numpy as np
import pytest

from repro.mle.em import fit_mle_em
from repro.mle.fisher import observed_information, wald_interval


class TestObservedInformation:
    def test_positive_definite_at_mle(self, times_data):
        result = fit_mle_em(times_data, information=False)
        info = observed_information(times_data, result.model)
        eigenvalues = np.linalg.eigvalsh(info)
        assert np.all(eigenvalues > 0.0)

    def test_symmetry(self, times_data):
        result = fit_mle_em(times_data, information=False)
        info = observed_information(times_data, result.model)
        assert info[0, 1] == pytest.approx(info[1, 0])

    def test_omega_block_closed_form(self, times_data):
        # d^2/d omega^2 log L = -me / omega^2 for any NHPP of this class.
        result = fit_mle_em(times_data, information=False)
        info = observed_information(times_data, result.model)
        expected = times_data.count / result.omega**2
        assert info[0, 0] == pytest.approx(expected, rel=1e-3)

    def test_grouped_data(self, grouped_data):
        result = fit_mle_em(grouped_data, information=False)
        info = observed_information(grouped_data, result.model)
        assert np.all(np.linalg.eigvalsh(info) > 0.0)


class TestWaldInterval:
    def test_symmetric_around_estimate(self):
        lo, hi = wald_interval(10.0, 2.0, 0.95)
        assert hi - 10.0 == pytest.approx(10.0 - lo)
        assert hi - lo == pytest.approx(2 * 1.959964 * 2.0, rel=1e-5)

    def test_can_produce_negative_lower_bound(self):
        # The known Wald pathology for positive parameters.
        lo, _ = wald_interval(1.0, 2.0, 0.95)
        assert lo < 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wald_interval(1.0, -1.0, 0.95)
        with pytest.raises(ValueError):
            wald_interval(1.0, 1.0, 1.5)
