"""Tests for the family-agnostic MLE and the extended model zoo."""

import numpy as np
import pytest

from repro.data.simulation import simulate_failure_times
from repro.exceptions import EstimationError, ModelSpecificationError
from repro.data.failure_data import FailureTimeData
from repro.mle.em import fit_mle_em
from repro.mle.generic import fit_mle_generic
from repro.models.gamma_srm import GammaSRM
from repro.models.goel_okumoto import GoelOkumoto
from repro.models.lognormal_srm import LogNormalSRM
from repro.models.pareto_srm import ParetoSRM
from repro.models.weibull_srm import WeibullSRM


class TestGenericMLE:
    def test_agrees_with_em_on_gamma_family(self, times_data):
        em = fit_mle_em(times_data, information=False)
        generic = fit_mle_generic(
            times_data, GammaSRM, alpha0=1.0, information=False,
            initial=(45.0, 1e-5),
        )
        assert generic.omega == pytest.approx(em.omega, rel=1e-3)
        assert generic.beta == pytest.approx(em.beta, rel=1e-3)

    def test_weibull_recovery(self, rng):
        true = WeibullSRM(omega=150.0, beta=0.1, shape=2.0)
        data = simulate_failure_times(true, 20.0, rng)
        result = fit_mle_generic(
            data, WeibullSRM, shape=2.0, information=False,
            initial=(120.0, 0.08),
        )
        assert result.omega == pytest.approx(150.0, rel=0.2)
        assert result.beta == pytest.approx(0.1, rel=0.2)

    def test_pareto_recovery(self, rng):
        true = ParetoSRM(omega=200.0, beta=0.3, kappa=3.0)
        data = simulate_failure_times(true, 30.0, rng)
        result = fit_mle_generic(
            data, ParetoSRM, kappa=3.0, information=False,
            initial=(150.0, 0.2),
        )
        assert result.omega == pytest.approx(200.0, rel=0.25)
        assert result.beta == pytest.approx(0.3, rel=0.3)

    def test_lognormal_recovery(self, rng):
        true = LogNormalSRM(omega=150.0, beta=0.2, sigma=0.8)
        data = simulate_failure_times(true, 40.0, rng)
        result = fit_mle_generic(
            data, LogNormalSRM, sigma=0.8, information=False,
            initial=(120.0, 0.15),
        )
        assert result.omega == pytest.approx(150.0, rel=0.25)
        assert result.beta == pytest.approx(0.2, rel=0.3)

    def test_information_matrix(self, times_data):
        result = fit_mle_generic(times_data, GoelOkumoto, initial=(45.0, 1e-5))
        assert result.covariance is not None
        assert result.covariance[0, 0] > 0.0

    def test_zero_failures_rejected(self):
        data = FailureTimeData([], horizon=10.0)
        with pytest.raises(EstimationError):
            fit_mle_generic(data, GoelOkumoto)


class TestNewFamilies:
    def test_lognormal_cdf_matches_scipy(self):
        from scipy import stats as st

        model = LogNormalSRM(omega=1.0, beta=0.5, sigma=0.7)
        t = np.array([0.3, 1.0, 5.0])
        ref = st.lognorm.cdf(t, s=0.7, scale=2.0)  # median = 1/beta = 2
        assert model.lifetime_cdf(t) == pytest.approx(ref, rel=1e-10)

    def test_lognormal_log_pdf_matches_scipy(self):
        from scipy import stats as st

        model = LogNormalSRM(omega=1.0, beta=0.5, sigma=0.7)
        t = np.array([0.3, 1.0, 5.0])
        ref = st.lognorm.logpdf(t, s=0.7, scale=2.0)
        assert model.lifetime_log_pdf(t) == pytest.approx(ref, rel=1e-10)

    def test_lognormal_sampling(self, rng):
        model = LogNormalSRM(omega=1.0, beta=0.5, sigma=0.5)
        draws = model.sample_lifetimes(200_000, rng)
        expected_mean = 2.0 * np.exp(0.125)
        assert draws.mean() == pytest.approx(expected_mean, rel=0.02)

    def test_pareto_cdf_matches_scipy(self):
        from scipy import stats as st

        model = ParetoSRM(omega=1.0, beta=0.5, kappa=3.0)
        t = np.array([0.5, 2.0, 10.0])
        # Lomax with c = kappa, scale = kappa / beta.
        ref = st.lomax.cdf(t, c=3.0, scale=6.0)
        assert model.lifetime_cdf(t) == pytest.approx(ref, rel=1e-10)

    def test_pareto_hazard_at_zero_is_beta(self):
        model = ParetoSRM(omega=1.0, beta=0.5, kappa=3.0)
        pdf0 = float(np.exp(model.lifetime_log_pdf(1e-12)))
        assert pdf0 == pytest.approx(0.5, rel=1e-6)

    def test_pareto_limits_to_exponential(self):
        # kappa -> infinity: Lomax -> exponential.
        heavy = ParetoSRM(omega=1.0, beta=0.5, kappa=1e7)
        go = GoelOkumoto(omega=1.0, beta=0.5)
        t = np.array([0.5, 2.0, 5.0])
        assert heavy.lifetime_cdf(t) == pytest.approx(go.lifetime_cdf(t), rel=1e-5)

    def test_pareto_sampling_median(self, rng):
        model = ParetoSRM(omega=1.0, beta=0.5, kappa=2.0)
        draws = model.sample_lifetimes(200_000, rng)
        expected_median = (2.0 / 0.5) * (2.0 ** (1.0 / 2.0) - 1.0)
        assert np.median(draws) == pytest.approx(expected_median, rel=0.02)

    def test_validation(self):
        with pytest.raises(ModelSpecificationError):
            LogNormalSRM(omega=1.0, beta=-1.0)
        with pytest.raises(ModelSpecificationError):
            LogNormalSRM(omega=1.0, beta=1.0, sigma=0.0)
        with pytest.raises(ModelSpecificationError):
            ParetoSRM(omega=1.0, beta=1.0, kappa=-2.0)

    def test_replace_keeps_fixed_params(self):
        lognormal = LogNormalSRM(omega=10.0, beta=1.0, sigma=0.6).replace(beta=2.0)
        assert lognormal.sigma == 0.6
        pareto = ParetoSRM(omega=10.0, beta=1.0, kappa=4.0).replace(omega=20.0)
        assert pareto.kappa == 4.0
