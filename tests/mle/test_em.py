"""Tests for the EM maximum-likelihood estimator."""

import numpy as np
import pytest

from repro.data.failure_data import FailureTimeData
from repro.exceptions import ConvergenceError
from repro.mle.em import fit_mle_em
from repro.mle.newton import fit_mle_newton


class TestEMOnTimes:
    def test_loglik_monotone_nondecreasing(self, times_data):
        result = fit_mle_em(times_data, information=False)
        history = np.asarray(result.history)
        assert np.all(np.diff(history) >= -1e-9)

    def test_agrees_with_newton(self, times_data):
        em = fit_mle_em(times_data, information=False)
        newton = fit_mle_newton(times_data, information=False)
        assert em.omega == pytest.approx(newton.omega, rel=1e-4)
        assert em.beta == pytest.approx(newton.beta, rel=1e-4)
        assert em.log_likelihood == pytest.approx(newton.log_likelihood, abs=1e-6)

    def test_score_zero_at_mle(self, times_data):
        result = fit_mle_em(times_data, information=False)
        model = result.model
        eps_omega = 1e-5 * result.omega
        eps_beta = 1e-5 * result.beta
        d_omega = (
            model.replace(omega=result.omega + eps_omega).log_likelihood(times_data)
            - model.replace(omega=result.omega - eps_omega).log_likelihood(times_data)
        ) / (2 * eps_omega)
        d_beta = (
            model.replace(beta=result.beta + eps_beta).log_likelihood(times_data)
            - model.replace(beta=result.beta - eps_beta).log_likelihood(times_data)
        ) / (2 * eps_beta)
        assert d_omega == pytest.approx(0.0, abs=1e-3)
        assert abs(d_beta * result.beta) < 1e-2  # scale-relative score

    def test_recovers_simulation_truth(self, rng):
        from repro.data.simulation import simulate_failure_times
        from repro.models.goel_okumoto import GoelOkumoto

        true = GoelOkumoto(omega=500.0, beta=0.15)
        data = simulate_failure_times(true, 25.0, rng)
        result = fit_mle_em(data, information=False)
        assert result.omega == pytest.approx(500.0, rel=0.15)
        assert result.beta == pytest.approx(0.15, rel=0.2)

    def test_delayed_s_shaped_member(self, times_data):
        result = fit_mle_em(times_data, alpha0=2.0, information=False)
        assert result.converged
        assert result.omega > times_data.count


class TestEMOnGrouped:
    def test_agrees_with_newton(self, grouped_data):
        em = fit_mle_em(grouped_data, information=False)
        newton = fit_mle_newton(grouped_data, information=False)
        assert em.omega == pytest.approx(newton.omega, rel=1e-3)
        assert em.beta == pytest.approx(newton.beta, rel=1e-3)

    def test_loglik_monotone(self, grouped_data):
        result = fit_mle_em(grouped_data, information=False)
        history = np.asarray(result.history)
        assert np.all(np.diff(history) >= -1e-9)


class TestEdgeCases:
    def test_zero_failures_rejected(self):
        data = FailureTimeData([], horizon=100.0)
        with pytest.raises(ConvergenceError):
            fit_mle_em(data)

    def test_budget_exhaustion_raises(self, times_data):
        with pytest.raises(ConvergenceError):
            fit_mle_em(times_data, max_iter=2, information=False)

    def test_unsupported_data_type(self):
        with pytest.raises(TypeError):
            fit_mle_em([1.0, 2.0])

    def test_covariance_computed(self, times_data):
        result = fit_mle_em(times_data, information=True)
        assert result.covariance is not None
        assert result.covariance[0, 0] > 0.0
        assert result.covariance[0, 1] < 0.0  # omega and beta anti-correlated

    def test_confidence_interval(self, times_data):
        result = fit_mle_em(times_data, information=True)
        lo, hi = result.confidence_interval("omega", 0.95)
        assert lo < result.omega < hi
        assert result.std_error("omega") > 0.0

    def test_no_covariance_raises_on_interval(self, times_data):
        result = fit_mle_em(times_data, information=False)
        with pytest.raises(ValueError):
            result.confidence_interval("omega")
