"""Unit tests for the direct quasi-Newton ML estimator."""

import numpy as np
import pytest

from repro.data.failure_data import FailureTimeData
from repro.exceptions import EstimationError
from repro.mle.newton import fit_mle_newton


class TestConvergence:
    def test_converges_on_times_data(self, times_data):
        result = fit_mle_newton(times_data, information=False)
        assert result.converged
        assert result.method == "newton"
        assert result.omega > times_data.count
        assert result.beta > 0.0

    def test_score_zero_at_optimum(self, times_data):
        # The log-likelihood surface is smooth and locally quadratic
        # around the MLE; a converged fit must sit at a stationary
        # point (central-difference score ~ 0 in both coordinates).
        result = fit_mle_newton(times_data, information=False)
        model = result.model
        eps_omega = 1e-5 * result.omega
        eps_beta = 1e-5 * result.beta
        d_omega = (
            model.replace(omega=result.omega + eps_omega)
            .log_likelihood(times_data)
            - model.replace(omega=result.omega - eps_omega)
            .log_likelihood(times_data)
        ) / (2 * eps_omega)
        d_beta = (
            model.replace(beta=result.beta + eps_beta)
            .log_likelihood(times_data)
            - model.replace(beta=result.beta - eps_beta)
            .log_likelihood(times_data)
        ) / (2 * eps_beta)
        assert d_omega == pytest.approx(0.0, abs=1e-3)
        assert abs(d_beta * result.beta) < 1e-2

    def test_grouped_data_supported(self, grouped_data):
        result = fit_mle_newton(grouped_data, information=False)
        assert result.converged
        assert result.omega >= grouped_data.total_count

    def test_custom_initial_reaches_same_optimum(self, times_data):
        default = fit_mle_newton(times_data, information=False)
        seeded = fit_mle_newton(
            times_data, information=False,
            initial=(2.0 * times_data.count, 0.5 / times_data.horizon),
        )
        assert seeded.omega == pytest.approx(default.omega, rel=1e-4)
        assert seeded.beta == pytest.approx(default.beta, rel=1e-4)

    def test_log_likelihood_matches_model(self, times_data):
        result = fit_mle_newton(times_data, information=False)
        assert result.log_likelihood == pytest.approx(
            result.model.log_likelihood(times_data), abs=1e-9
        )


class TestNonConvergingStart:
    def test_far_start_still_finds_the_optimum_or_reports_failure(
        self, times_data
    ):
        # A start many orders of magnitude off puts Nelder-Mead on a
        # flat likelihood plateau. The contract: never silently return
        # garbage — either the optimiser recovers (matching the
        # default-start optimum) or it flags non-convergence.
        default = fit_mle_newton(times_data, information=False)
        result = fit_mle_newton(
            times_data, information=False, initial=(1e12, 1e-12)
        )
        recovered = (
            abs(result.omega - default.omega) < 1e-3 * default.omega
            and abs(result.beta - default.beta) < 1e-3 * default.beta
        )
        assert recovered or not result.converged

    def test_far_start_never_beats_the_true_optimum(self, times_data):
        default = fit_mle_newton(times_data, information=False)
        result = fit_mle_newton(
            times_data, information=False, initial=(1e12, 1e-12)
        )
        assert result.log_likelihood <= default.log_likelihood + 1e-6


class TestEdgeCases:
    def test_zero_failures_rejected(self):
        with pytest.raises(EstimationError):
            fit_mle_newton(FailureTimeData([], horizon=100.0))

    def test_unsupported_data_type(self):
        with pytest.raises(TypeError):
            fit_mle_newton([1.0, 2.0])

    def test_information_matrix_optional(self, times_data):
        with_info = fit_mle_newton(times_data, information=True)
        without = fit_mle_newton(times_data, information=False)
        assert without.covariance is None
        assert with_info.covariance is not None
        assert with_info.covariance[0, 0] > 0.0
        lo, hi = with_info.confidence_interval("omega", 0.95)
        assert lo < with_info.omega < hi

    def test_delayed_s_shaped_member(self, times_data):
        result = fit_mle_newton(times_data, alpha0=2.0, information=False)
        assert result.converged
        assert result.omega > times_data.count

    def test_agrees_with_simulation_truth(self, rng):
        from repro.data.simulation import simulate_failure_times
        from repro.models.goel_okumoto import GoelOkumoto

        true = GoelOkumoto(omega=500.0, beta=0.15)
        data = simulate_failure_times(true, 25.0, rng)
        result = fit_mle_newton(data, information=False)
        assert result.omega == pytest.approx(500.0, rel=0.15)
        assert result.beta == pytest.approx(0.15, rel=0.2)
