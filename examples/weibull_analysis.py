"""Weibull-type analysis: VB beyond the paper's gamma family.

The paper derives VB2 for gamma-type lifetimes. This example uses the
exact power-transform reduction implemented in
``repro.core.weibull_vb`` to run the same structured VB on a
Weibull-type (here Rayleigh, shape 2) test campaign:

1. simulate a campaign whose detection hazard *increases* over time
   (Rayleigh lifetimes) — typical when test intensity ramps up;
2. fit both the (misspecified) Goel-Okumoto VB2 and the Weibull VB2;
3. compare evidence bounds, residual-fault estimates and reliability
   forecasts, showing why the lifetime family matters.

Run with:  python examples/weibull_analysis.py
"""

import numpy as np

from repro import GammaPrior, ModelPrior, fit_vb2, fit_vb2_weibull
from repro.core.reliability import estimate_reliability
from repro.data.simulation import simulate_failure_times
from repro.metrics.tables import render_table
from repro.models.weibull_srm import WeibullSRM

TRUE_OMEGA = 80.0
TRUE_BETA = 0.12
SHAPE = 2.0
HORIZON = 15.0


def main() -> None:
    true_model = WeibullSRM(omega=TRUE_OMEGA, beta=TRUE_BETA, shape=SHAPE)
    rng = np.random.default_rng(2026)
    data = simulate_failure_times(true_model, HORIZON, rng)
    print(f"Simulated campaign: {data.count} failures over {HORIZON:g} time "
          f"units from a Rayleigh-type process "
          f"(omega={TRUE_OMEGA:g}, beta={TRUE_BETA:g}).\n")

    omega_prior = GammaPrior.from_mean_std(75.0, 30.0)
    # Goel-Okumoto prior on the exponential rate; Weibull prior on
    # theta = beta^2 (the conjugate scale of the transformed clock).
    go_prior = ModelPrior(
        omega=omega_prior, beta=GammaPrior.from_mean_std(0.08, 0.06)
    )
    weibull_prior = ModelPrior(
        omega=omega_prior,
        beta=GammaPrior.from_mean_std(TRUE_BETA**SHAPE, 0.8 * TRUE_BETA**SHAPE),
    )

    go = fit_vb2(data, go_prior, alpha0=1.0)
    weibull = fit_vb2_weibull(data, weibull_prior, shape=SHAPE)

    rows = []
    for name, posterior, elbo in (
        ("Goel-Okumoto VB2", go, go.elbo),
        ("Weibull VB2", weibull, weibull.elbo),
    ):
        omega_lo, omega_hi = posterior.credible_interval("omega", 0.99)
        rel = estimate_reliability(posterior, HORIZON, 1.0, level=0.99)
        rows.append(
            [
                name,
                f"{posterior.mean('omega'):.1f}",
                f"[{omega_lo:.1f}, {omega_hi:.1f}]",
                f"{rel.point:.3f}",
                f"{elbo:.2f}",
            ]
        )
    print(
        render_table(
            ["model", "E[omega]", "99% CI", "R(next unit)", "ELBO"],
            rows,
            title="Family comparison on increasing-hazard data "
                  f"(truth: omega = {TRUE_OMEGA:g})",
        )
    )
    print(
        "\nThe Weibull evidence bound dominates when the hazard really "
        "increases, and its omega interval is centred on the truth — "
        "fitting the wrong lifetime family biases the residual-fault "
        "estimate even when both models match the observed counts."
    )


if __name__ == "__main__":
    main()
