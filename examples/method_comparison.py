"""Compare all five posterior-approximation methods on one dataset.

Reproduces the structure of the paper's Section 6 in miniature: fits
NINT, LAPL, MCMC, VB1 and VB2 to the grouped System 17 data with the
informative prior and prints a moment table (with deviations from
NINT), the 99% credible intervals, and each method's wall-clock cost.

Run with:  python examples/method_comparison.py
"""

from repro.experiments.config import QUICK_SCALE, paper_scenarios
from repro.experiments.runner import run_all_methods
from repro.metrics.comparison import deviation_table
from repro.metrics.tables import render_table


def main() -> None:
    scenario = paper_scenarios()["DG-Info"]
    print(f"Scenario: {scenario.name} "
          f"(grouped data, informative prior, Goel-Okumoto model)")
    results = run_all_methods(scenario, scale=QUICK_SCALE)

    moments = results.moments()
    quantities = list(next(iter(moments.values())).keys())
    deviations = deviation_table(moments, "NINT", quantities)

    rows = []
    for method, values in moments.items():
        rows.append([method, *(values[q] for q in quantities)])
        if method in deviations:
            rows.append(
                ["", *(f"{100 * deviations[method][q]:+.1f}%" for q in quantities)]
            )
    print()
    print(render_table(["method", *quantities], rows, title="Posterior moments"))

    print()
    interval_rows = []
    for method, posterior in results.posteriors.items():
        omega_lo, omega_hi = posterior.credible_interval("omega", 0.99)
        beta_lo, beta_hi = posterior.credible_interval("beta", 0.99)
        interval_rows.append([method, omega_lo, omega_hi, beta_lo, beta_hi])
    print(
        render_table(
            ["method", "omega lo", "omega hi", "beta lo", "beta hi"],
            interval_rows,
            title="Two-sided 99% credible intervals",
        )
    )

    print()
    timing_rows = [
        [method, f"{seconds * 1000:.1f} ms"]
        for method, seconds in results.seconds.items()
    ]
    print(render_table(["method", "fit time"], timing_rows, title="Cost"))
    print(
        "\nNote how VB1 reports Cov = 0 and visibly smaller variances, "
        "how LAPL sits to the left of NINT, and how VB2 matches NINT and "
        "MCMC at a fraction of MCMC's cost — the paper's Table 1 story."
    )


if __name__ == "__main__":
    main()
