"""Test-effort planning with the posterior-predictive failure count.

Given the posterior after the System 17 campaign, answer planning
questions the reliability probability alone cannot:

* How many failures should we budget triage capacity for in the next
  N days of testing? (predictive quantiles)
* How much longer must we test so that, with high credibility, at most
  one failure occurs in the following acceptance window? (search over
  additional test effort using posterior-predictive updating)

Run with:  python examples/test_planning.py
"""

import numpy as np

from repro import ModelPrior, fit_vb2, predict_failure_counts, system17_grouped
from repro.metrics.tables import render_table


def main() -> None:
    data = system17_grouped()
    prior = ModelPrior.informative(
        omega_mean=50.0, omega_std=15.8, beta_mean=3.3e-2, beta_std=1.1e-2
    )
    posterior = fit_vb2(data, prior, alpha0=1.0)

    print("Triage budget for the next testing periods "
          "(posterior-predictive failure counts):\n")
    rows = []
    for window in (1.0, 5.0, 10.0, 20.0):
        pred = predict_failure_counts(posterior, data.horizon, window)
        rows.append(
            [
                f"{window:g} days",
                f"{pred.mean():.2f}",
                pred.quantile(0.5),
                pred.quantile(0.9),
                pred.quantile(0.99),
                f"{pred.probability_of_no_failure():.3f}",
            ]
        )
    print(
        render_table(
            ["window", "E[failures]", "median", "q90", "q99", "P(none)"],
            rows,
            title="Predictive failure counts after day 64",
        )
    )

    # Acceptance criterion: at most one failure during a 5-day
    # acceptance window, with 90% predictive credibility. How much more
    # testing first? Extra testing removes faults, which we emulate by
    # shifting the window start later (the NHPP keeps maturing).
    target = 0.90
    print("\nSearching the earliest start day for a 5-day acceptance "
          f"window with P(K <= 1) >= {target:.0%}:")
    for extra in np.arange(0.0, 120.0, 5.0):
        start = data.horizon + extra
        pred = predict_failure_counts(posterior, start, 5.0)
        prob = pred.cdf(1)
        marker = "  <-- acceptable" if prob >= target else ""
        print(f"  start day {start:5.0f}: P(K<=1 in 5 days) = {prob:.3f}{marker}")
        if prob >= target:
            break
    else:
        print("  criterion not reachable within 120 extra days")


if __name__ == "__main__":
    main()
