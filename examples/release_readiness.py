"""Release-readiness tracking: sequential reliability assessment.

The scenario the paper's introduction motivates: a test manager watches
failures arrive during system test and must decide when the product is
reliable enough to ship. This example replays the System 17 test
campaign week by week, refitting the VB2 posterior after each week of
(grouped) test data, and reports:

* the expected number of residual faults,
* the 99% lower credible bound on next-day reliability,
* a ship / keep-testing verdict against a reliability target.

Run with:  python examples/release_readiness.py
"""

from repro import (
    ModelPrior,
    estimate_reliability,
    fit_vb2,
    system17_grouped,
)
from repro.metrics.tables import render_table

RELIABILITY_TARGET = 0.90  # required P(no failure tomorrow), lower bound
DAYS_PER_WEEK = 5


def main() -> None:
    full = system17_grouped()
    prior = ModelPrior.informative(
        omega_mean=50.0, omega_std=15.8, beta_mean=3.3e-2, beta_std=1.1e-2
    )

    rows = []
    verdict_week = None
    for week_end in range(DAYS_PER_WEEK, full.n_intervals + 1, DAYS_PER_WEEK):
        observed = full.truncate(week_end)
        posterior = fit_vb2(observed, prior, alpha0=1.0)
        residual = posterior.expected_total_faults() - observed.total_count
        estimate = estimate_reliability(
            posterior, observed.horizon, u=1.0, level=0.99
        )
        ship = estimate.lower >= RELIABILITY_TARGET
        if ship and verdict_week is None:
            verdict_week = week_end // DAYS_PER_WEEK
        rows.append(
            [
                f"week {week_end // DAYS_PER_WEEK:2d}",
                observed.total_count,
                f"{residual:.1f}",
                f"{estimate.point:.3f}",
                f"{estimate.lower:.3f}",
                "SHIP" if ship else "keep testing",
            ]
        )

    print(
        render_table(
            ["period", "failures", "E[residual]", "R(next day)",
             "99% lower", "verdict"],
            rows,
            title=f"Release readiness (target: lower bound >= "
                  f"{RELIABILITY_TARGET})",
        )
    )
    if verdict_week is not None:
        print(f"\nFirst week meeting the target: week {verdict_week}.")
    else:
        print("\nThe target was never met during the campaign.")
    print(
        "Interval estimates matter here: a point estimate of reliability "
        "would green-light the release weeks earlier than the risk-aware "
        "99% lower bound."
    )


if __name__ == "__main__":
    main()
