"""Coverage simulation study: are the 99% credible intervals honest?

Uses :func:`repro.metrics.coverage.interval_coverage_study` to simulate
many test campaigns from a known Goel-Okumoto model, fit the VB2 and
VB1 posteriors to each, and measure how often the nominal intervals
cover the true parameters. This quantifies the paper's central warning
about VB1: its intervals are too narrow, so its actual coverage falls
below the nominal level, while VB2's stays on target.

Run with:  python examples/simulation_study.py  [--replications N]
"""

import argparse

from repro import ModelPrior, fit_vb1, fit_vb2
from repro.metrics.coverage import interval_coverage_study
from repro.metrics.tables import render_table
from repro.models.goel_okumoto import GoelOkumoto

TRUE_OMEGA = 50.0
TRUE_BETA = 0.1
HORIZON = 25.0
LEVEL = 0.99


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--replications", type=int, default=200)
    args = parser.parse_args()

    results = interval_coverage_study(
        GoelOkumoto(omega=TRUE_OMEGA, beta=TRUE_BETA),
        ModelPrior.informative(45.0, 20.0, 0.12, 0.06),
        {"VB2": fit_vb2, "VB1": fit_vb1},
        horizon=HORIZON,
        level=LEVEL,
        replications=args.replications,
        seed=20070625,
    )

    rows = []
    for label, record in results.items():
        rows.append(
            [
                label,
                f"{record.coverage('omega'):.1%} "
                f"(±{record.coverage_standard_error('omega'):.1%})",
                f"{record.coverage('beta'):.1%}",
                f"{record.widths['omega']:.2f}",
                "UNDER-COVERS" if record.undercovers("beta") else "ok",
            ]
        )
    used = next(iter(results.values())).replications
    print(f"{used} campaigns simulated from omega={TRUE_OMEGA}, "
          f"beta={TRUE_BETA}, horizon={HORIZON}\n")
    print(
        render_table(
            ["method", "omega coverage", "beta coverage",
             "mean CI width (omega)", "verdict"],
            rows,
            title=f"Actual coverage of nominal {LEVEL:.0%} intervals",
        )
    )
    print(
        "\nVB1's fully factorised posterior understates uncertainty, so "
        "its intervals are systematically narrower; VB2's structured "
        "mixture keeps the nominal guarantee — the operational content "
        "of the paper."
    )


if __name__ == "__main__":
    main()
