"""Model selection across the gamma-type family via the variational
evidence bound.

The gamma-type NHPP family indexes models by the lifetime shape alpha0
(1 = Goel-Okumoto, 2 = delayed S-shaped). VB2's ELBO is a lower bound
on the log evidence log P(D), so comparing ELBOs across alpha0 gives a
cheap Bayesian model-selection criterion; we cross-check it against the
MLE log-likelihood (which always prefers richer fits) and against AIC.

Run with:  python examples/model_selection.py
"""

from repro import ModelPrior, fit_vb2, ntds_failure_times, system17_failure_times
from repro.mle.em import fit_mle_em
from repro.metrics.tables import render_table

CANDIDATE_SHAPES = (0.5, 1.0, 1.5, 2.0, 3.0)


def analyse(name, data, prior):
    rows = []
    best_shape = None
    best_elbo = -float("inf")
    for alpha0 in CANDIDATE_SHAPES:
        posterior = fit_vb2(data, prior, alpha0=alpha0)
        mle = fit_mle_em(data, alpha0=alpha0, information=False)
        aic = 2 * 2 - 2 * mle.log_likelihood
        rows.append(
            [
                f"alpha0={alpha0:g}",
                f"{posterior.elbo:.3f}",
                f"{mle.log_likelihood:.3f}",
                f"{aic:.2f}",
                f"{posterior.mean('omega'):.1f}",
            ]
        )
        if posterior.elbo > best_elbo:
            best_elbo = posterior.elbo
            best_shape = alpha0
    print(
        render_table(
            ["model", "ELBO (log evidence bound)", "MLE loglik", "AIC",
             "E[omega]"],
            rows,
            title=f"{name}: gamma-type family comparison",
        )
    )
    print(f"Evidence-preferred lifetime shape: alpha0 = {best_shape:g}\n")


def main() -> None:
    analyse(
        "System 17 (failure times)",
        system17_failure_times(),
        ModelPrior.informative(50.0, 15.8, 1.0e-5, 3.2e-6),
    )
    analyse(
        "NTDS (failure times, days)",
        ntds_failure_times(),
        ModelPrior.informative(30.0, 12.0, 1.0e-2, 0.5e-2),
    )
    print(
        "The ELBO includes the Occam penalty of full Bayesian evidence, "
        "so it can disagree with the raw MLE log-likelihood; AIC's fixed "
        "2k penalty does not adapt to the prior information."
    )


if __name__ == "__main__":
    main()
