"""Quickstart: Bayesian interval estimation for a software test campaign.

Fits the VB2 posterior (the paper's method) to the bundled System 17
failure-time data under the paper's informative prior, then prints
parameter estimates, 99% credible intervals, and the software
reliability forecast for the next 1000 and 10000 execution seconds.

Run with:  python examples/quickstart.py
"""

from repro import (
    ModelPrior,
    estimate_reliability,
    fit_vb2,
    system17_failure_times,
)


def main() -> None:
    data = system17_failure_times()
    print(f"Data: {data.count} failures over {data.horizon:g} {data.unit}")

    # Prior knowledge: engineering judgement says roughly 50 +/- 16
    # faults in the product and a detection rate near 1e-5 per second.
    prior = ModelPrior.informative(
        omega_mean=50.0, omega_std=15.8, beta_mean=1.0e-5, beta_std=3.2e-6
    )

    posterior = fit_vb2(data, prior, alpha0=1.0)  # Goel-Okumoto model
    print(f"\nVB2 posterior (nmax = {posterior.diagnostics['nmax']}, "
          f"tail mass = {posterior.tail_mass():.2e})")

    for param, label in (("omega", "total faults  omega"),
                         ("beta", "detection rate beta")):
        mean = posterior.mean(param)
        lo, hi = posterior.credible_interval(param, 0.99)
        print(f"  {label}: {mean:.4g}   99% CI [{lo:.4g}, {hi:.4g}]")

    residual = posterior.expected_total_faults() - data.count
    print(f"  expected residual faults: {residual:.2f}")

    print("\nSoftware reliability forecast R(te+u | te):")
    for u in (1000.0, 10_000.0):
        estimate = estimate_reliability(posterior, data.horizon, u, level=0.99)
        print(f"  u = {u:>6g} s: {estimate.point:.4f}  "
              f"99% CI [{estimate.lower:.4f}, {estimate.upper:.4f}]")


if __name__ == "__main__":
    main()
