"""JSONL trace sink and reader.

Serialisation is canonical — sorted keys, no whitespace — so two runs
that emit the same events produce byte-identical files. That is the
property the campaign runners rely on for the serial-vs-parallel trace
identity guarantee.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import TelemetryError
from repro.obs.events import validate_trace

__all__ = ["JsonlSink", "read_trace", "load_validated_trace"]


def encode_event(event: dict) -> str:
    """Canonical single-line JSON encoding of one event."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class JsonlSink:
    """Append-only JSON-Lines event writer.

    Events are written (and flushed) as they arrive, so a trace is
    readable up to the last completed event even after a crash.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")

    def write(self, event: dict) -> None:
        self._fh.write(encode_event(event))
        self._fh.write("\n")
        # Flush per event: the crash-readability guarantee above is
        # only true if completed events never sit in the stdio buffer.
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


def read_trace(path) -> list[dict]:
    """Read a JSONL trace back into a list of event dicts."""
    events = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
    return events


def load_validated_trace(path) -> list[dict]:
    """Read a trace and validate every event against the schema."""
    events = read_trace(path)
    validate_trace(events)
    return events
