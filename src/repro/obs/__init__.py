"""Observability layer: structured tracing, metrics, and run reports.

See :mod:`repro.obs.core` for the collector design, :mod:`repro.obs.
events` for the event schema, and ``docs/OBSERVABILITY.md`` for the
span/metric taxonomy and how to read a trace.
"""

from repro.obs.core import (
    TRACE_LEVELS,
    Collector,
    Histogram,
    active,
    capture,
    counter_add,
    enabled,
    event,
    observe,
    span,
    timing_sample,
    traced_task,
    tracing,
)
from repro.obs.events import (
    SCHEMA_VERSION,
    sanitise_value,
    validate_event,
    validate_trace,
)
from repro.obs.logcfg import configure_verbosity, package_logger
from repro.obs.report import render_report
from repro.obs.sink import JsonlSink, load_validated_trace, read_trace

__all__ = [
    "TRACE_LEVELS",
    "SCHEMA_VERSION",
    "Collector",
    "Histogram",
    "JsonlSink",
    "active",
    "capture",
    "configure_verbosity",
    "counter_add",
    "enabled",
    "event",
    "load_validated_trace",
    "observe",
    "package_logger",
    "read_trace",
    "render_report",
    "sanitise_value",
    "span",
    "timing_sample",
    "traced_task",
    "tracing",
    "validate_event",
    "validate_trace",
]
