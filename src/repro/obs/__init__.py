"""Observability layer: structured tracing, metrics, and run reports.

See :mod:`repro.obs.core` for the collector design, :mod:`repro.obs.
events` for the event schema, :mod:`repro.obs.metrics` for the labeled
campaign metrics registry, :mod:`repro.obs.profile` for span-tree
profiling, :mod:`repro.obs.ledger` for the unified BENCH perf ledger,
and ``docs/OBSERVABILITY.md`` for the span/metric taxonomy and how to
read a trace.
"""

from repro.obs.core import (
    TRACE_LEVELS,
    Collector,
    Histogram,
    active,
    capture,
    counter_add,
    enabled,
    event,
    fit_health,
    metric_counter,
    metric_gauge,
    metric_latency,
    metric_observe,
    observe,
    progress,
    span,
    timing_sample,
    traced_task,
    tracing,
)
from repro.obs.events import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    sanitise_value,
    validate_event,
    validate_trace,
)
from repro.obs.ledger import compare as compare_bench
from repro.obs.ledger import load_ledger, render_ledger
from repro.obs.ledger import self_check as self_check_bench
from repro.obs.logcfg import configure_verbosity, package_logger
from repro.obs.metrics import LogHistogram, MetricsRegistry
from repro.obs.profile import (
    ProfileNode,
    build_profile,
    fold_stacks,
    render_profile,
)
from repro.obs.heartbeat import Heartbeat
from repro.obs.report import render_report, summarise_report
from repro.obs.sink import JsonlSink, load_validated_trace, read_trace

__all__ = [
    "TRACE_LEVELS",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "Collector",
    "Heartbeat",
    "Histogram",
    "JsonlSink",
    "LogHistogram",
    "MetricsRegistry",
    "ProfileNode",
    "active",
    "build_profile",
    "capture",
    "compare_bench",
    "configure_verbosity",
    "counter_add",
    "enabled",
    "event",
    "fit_health",
    "fold_stacks",
    "load_ledger",
    "load_validated_trace",
    "metric_counter",
    "metric_gauge",
    "metric_latency",
    "metric_observe",
    "observe",
    "package_logger",
    "progress",
    "read_trace",
    "render_ledger",
    "render_profile",
    "render_report",
    "sanitise_value",
    "self_check_bench",
    "span",
    "summarise_report",
    "timing_sample",
    "traced_task",
    "tracing",
    "validate_event",
    "validate_trace",
]
