"""Stdlib-logging integration for the repro package.

The package follows library convention: ``repro`` has a
``NullHandler`` attached at import (see :mod:`repro`), so embedding
applications control their own handlers. The CLI's ``--verbose`` flag
calls :func:`configure_verbosity` to attach a stderr handler — once
for INFO, twice for DEBUG (which also mirrors every telemetry event,
since the obs collector logs emitted events at DEBUG).
"""

from __future__ import annotations

import logging
import sys

__all__ = ["package_logger", "configure_verbosity"]

_HANDLER_NAME = "repro-cli"


def package_logger() -> logging.Logger:
    """The root logger of the package."""
    return logging.getLogger("repro")


def configure_verbosity(verbosity: int, stream=None) -> None:
    """Attach a stream handler to the package logger.

    ``verbosity`` counts ``-v`` flags: 0 leaves logging untouched,
    1 enables INFO, 2 or more enables DEBUG (including the obs event
    mirror). Idempotent — repeated calls reconfigure the same handler
    rather than stacking duplicates.
    """
    if verbosity <= 0:
        return
    logger = package_logger()
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    handler = next(
        (h for h in logger.handlers if h.get_name() == _HANDLER_NAME), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.set_name(_HANDLER_NAME)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
    handler.setLevel(level)
    logger.setLevel(level)
