"""Solver telemetry: spans, counters, histograms, and trace capture.

The obs layer gives every solver in the package a machine-readable
account of its own work — fixed-point iteration counts, VB2 ``nmax``
growth, MCMC acceptance rates, quadrature node counts — without
changing a single numerical result. Design constraints, in order:

1. **Zero overhead when disabled.** No collector is installed by
   default; every instrumentation site is a module-level function (or
   a span constructor) whose first action is a ``None`` check on the
   global collector. Hot loops accumulate into local variables and
   report once per solve.
2. **Determinism.** At the default ``"summary"`` level events carry no
   wall-clock, pid, or host fields, so a trace is a pure function of
   the inputs — which is what lets the campaign runners merge worker
   traces byte-identically to a serial run. Wall-clock durations appear
   only at the ``"timing"`` and ``"debug"`` levels.
3. **Aggregation over event spam.** Counters and histograms aggregate
   in memory (count/total/min/max/sum-of-squares); only spans, point
   events, and the final summary are materialised as events.

Usage::

    from repro import obs

    with obs.span("vb2.fit", collect=True, data="FailureTimeData") as sp:
        ...
        obs.observe("vb2.nmax", nmax)
        telemetry = sp.telemetry()   # per-fit counter/histogram deltas

    with obs.tracing("trace.jsonl", level="timing"):
        fit_vb2(data, prior)         # events stream to the JSONL sink
"""

from __future__ import annotations

import logging
import math
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager

from repro.obs.events import SCHEMA_VERSION, sanitise_value
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TRACE_LEVELS",
    "Histogram",
    "Collector",
    "enabled",
    "active",
    "counter_add",
    "observe",
    "event",
    "span",
    "timing_sample",
    "metric_counter",
    "metric_gauge",
    "metric_observe",
    "metric_latency",
    "fit_health",
    "progress",
    "capture",
    "tracing",
    "traced_task",
]

#: Verbosity levels in increasing order. ``summary`` is deterministic
#: (no wall-clock); ``timing`` adds wall-clock durations; ``debug``
#: additionally records per-``N`` solve spans and growth-round events.
TRACE_LEVELS = ("summary", "timing", "debug")
_LEVEL_NUM = {name: i for i, name in enumerate(TRACE_LEVELS)}

_logger = logging.getLogger("repro.obs")

#: The ambient collector; ``None`` means telemetry is disabled.
_COLLECTOR: "Collector | None" = None


class Histogram:
    """Streaming scalar aggregate: count, total, min, max, variance.

    Keeps the sum of squares so that independently collected histograms
    merge exactly (worker traces folding into a campaign trace).
    """

    __slots__ = ("count", "total", "sumsq", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sumsq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation of the recorded values."""
        if self.count < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(max(self.sumsq / self.count - mean * mean, 0.0))

    def state(self) -> dict:
        """Exact mergeable state (for shipping across processes)."""
        return {
            "count": self.count,
            "total": self.total,
            "sumsq": self.sumsq,
            "min": self.min,
            "max": self.max,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one."""
        self.count += int(state["count"])
        self.total += float(state["total"])
        self.sumsq += float(state["sumsq"])
        self.min = min(self.min, float(state["min"]))
        self.max = max(self.max, float(state["max"]))

    def summary(self) -> dict:
        """JSON-ready summary for trace summary events."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
        }


class _NoopSpan:
    """Shared do-nothing span handle for the disabled path."""

    __slots__ = ()
    collecting = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def telemetry(self) -> dict:
        return {}


_NOOP_SPAN = _NoopSpan()


class _Span:
    """Live span handle: times a region, records its outcome.

    With ``collect=True`` the span additionally scopes counter and
    histogram updates made while it is open, so a fit function can
    attach exactly its own telemetry to its result.
    """

    __slots__ = ("_collector", "name", "attrs", "collect", "_start",
                 "_counters", "_histograms")

    def __init__(self, collector: "Collector", name: str, attrs: dict,
                 collect: bool) -> None:
        self._collector = collector
        self.name = name
        self.attrs = attrs
        self.collect = collect
        self._start = 0.0
        self._counters: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    @property
    def collecting(self) -> bool:
        return self.collect

    def __enter__(self) -> "_Span":
        col = self._collector
        col._stack.append(self.name)
        if self.collect:
            col._collecting.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._start
        col = self._collector
        col._stack.pop()
        if self.collect:
            col._collecting.pop()
        status = "ok" if exc_type is None else f"error:{exc_type.__name__}"
        fields = dict(self.attrs)
        fields["name"] = self.name
        fields["depth"] = len(col._stack)
        fields["status"] = status
        if col.timing:
            fields["wall_s"] = wall
        col._record_span(self.name, status, wall)
        col.emit("span", **fields)
        return False

    def telemetry(self) -> dict:
        """Counters and histogram summaries recorded inside this span."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "histograms": {
                k: self._histograms[k].summary()
                for k in sorted(self._histograms)
            },
        }


class Collector:
    """In-memory event collector with optional JSONL sink.

    Parameters
    ----------
    level:
        One of :data:`TRACE_LEVELS`.
    sink:
        Object with a ``write(event: dict)`` method (e.g.
        :class:`repro.obs.sink.JsonlSink`); events are streamed to it
        as they are emitted, in addition to being kept in memory.
    """

    def __init__(self, level: str = "summary", sink=None) -> None:
        if level not in _LEVEL_NUM:
            raise ValueError(
                f"level must be one of {TRACE_LEVELS}, got {level!r}"
            )
        self.level = level
        self._level_num = _LEVEL_NUM[level]
        self.sink = sink
        self.events: list[dict] = []
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.span_stats: dict[str, dict] = {}
        self.metrics = MetricsRegistry()
        self._stack: list[str] = []
        self._collecting: list[_Span] = []
        self._seq = 0

    # -- level helpers -------------------------------------------------
    @property
    def timing(self) -> bool:
        """True when wall-clock fields are recorded."""
        return self._level_num >= _LEVEL_NUM["timing"]

    @property
    def debug(self) -> bool:
        """True when per-iteration debug spans/events are recorded."""
        return self._level_num >= _LEVEL_NUM["debug"]

    def allows(self, level: str) -> bool:
        num = _LEVEL_NUM.get(level)
        if num is None:
            raise ValueError(
                f"unknown trace level {level!r}; expected one of "
                f"{TRACE_LEVELS}"
            )
        return num <= self._level_num

    # -- event plumbing ------------------------------------------------
    def emit(self, kind: str, **fields) -> dict:
        """Append one event (and stream it to the sink, if any)."""
        ev: dict = {"kind": kind, "seq": self._seq}
        self._seq += 1
        for key, value in fields.items():
            ev[key] = sanitise_value(value)
        self.events.append(ev)
        if self.sink is not None:
            self.sink.write(ev)
        if _logger.isEnabledFor(logging.DEBUG):
            _logger.debug("event %s", ev)
        return ev

    def _record_span(self, name: str, status: str, wall: float) -> None:
        stats = self.span_stats.get(name)
        if stats is None:
            stats = {"count": 0, "errors": 0}
            if self.timing:
                stats["wall_s"] = 0.0
            self.span_stats[name] = stats
        stats["count"] += 1
        if status != "ok":
            stats["errors"] += 1
        if self.timing:
            stats["wall_s"] = stats.get("wall_s", 0.0) + wall

    # -- metric primitives ---------------------------------------------
    def counter_add(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value
        for span_handle in self._collecting:
            span_handle._counters[name] = (
                span_handle._counters.get(name, 0) + value
            )

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.record(value)
        for span_handle in self._collecting:
            scoped = span_handle._histograms.get(name)
            if scoped is None:
                scoped = span_handle._histograms[name] = Histogram()
            scoped.record(value)

    # -- summaries and cross-process merge -----------------------------
    def summary(self) -> dict:
        """Deterministic aggregate view of everything collected."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "histograms": {
                k: self.histograms[k].summary()
                for k in sorted(self.histograms)
            },
            "spans": {
                k: dict(self.span_stats[k]) for k in sorted(self.span_stats)
            },
        }

    def emit_summary(self) -> dict:
        """Emit the aggregate view as a ``summary`` event."""
        return self.emit("summary", **self.summary())

    def emit_metrics(self) -> dict | None:
        """Emit the metrics registry as a ``metrics`` snapshot event.

        Skipped entirely when the registry is empty so traces from code
        that records no labeled metrics keep their pre-schema-2 shape.
        """
        if self.metrics.empty:
            return None
        return self.emit("metrics", **self.metrics.snapshot())

    def export(self) -> dict:
        """Serialisable payload for merging into a parent collector.

        Everything in the payload is plain JSON-compatible data, so it
        crosses a process boundary by pickling without losing exactness
        (histogram merge uses the raw sums, not the derived mean/std).
        """
        return {
            "events": list(self.events),
            "counters": dict(self.counters),
            "histograms": {
                name: hist.state() for name, hist in self.histograms.items()
            },
            "spans": {
                name: dict(stats) for name, stats in self.span_stats.items()
            },
            "metrics": self.metrics.export(),
        }

    def merge(self, payload: dict, *, rep: int | None = None) -> None:
        """Fold a child :meth:`export` payload into this collector.

        Events are re-emitted in their original order (re-sequenced by
        this collector), tagged with the replication key ``rep`` —
        the ``SeedSequence`` spawn key of the child's work item — so the
        merged trace is identical whether children ran serially or on a
        process pool, as long as they are merged in spawn-key order.
        """
        for ev in payload["events"]:
            fields = {k: v for k, v in ev.items() if k not in ("kind", "seq")}
            if rep is not None:
                fields["rep"] = rep
            self.emit(ev["kind"], **fields)
        for name, value in payload["counters"].items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, state in payload["histograms"].items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge_state(state)
        for name, stats in payload["spans"].items():
            mine = self.span_stats.get(name)
            if mine is None:
                mine = self.span_stats[name] = {"count": 0, "errors": 0}
            mine["count"] += stats["count"]
            mine["errors"] += stats["errors"]
            if "wall_s" in stats:
                mine["wall_s"] = mine.get("wall_s", 0.0) + stats["wall_s"]
        # Payloads from pre-metrics exports simply lack the key.
        metrics_state = payload.get("metrics")
        if metrics_state:
            self.metrics.merge(metrics_state)


# -- module-level API (all no-ops when no collector is installed) ------

def enabled() -> bool:
    """True when a collector is currently installed."""
    return _COLLECTOR is not None


def active() -> Collector | None:
    """The ambient collector, or ``None`` when telemetry is disabled."""
    return _COLLECTOR


def counter_add(name: str, value: float = 1) -> None:
    """Add to a named counter (no-op when telemetry is disabled)."""
    col = _COLLECTOR
    if col is not None:
        col.counter_add(name, value)


def observe(name: str, value: float) -> None:
    """Record one observation into a named histogram (no-op when off)."""
    col = _COLLECTOR
    if col is not None:
        col.observe(name, value)


def event(name: str, *, level: str = "summary", **attrs) -> None:
    """Emit a point event (no-op when disabled or below ``level``)."""
    col = _COLLECTOR
    if col is not None and col.allows(level):
        col.emit("point", name=name, **attrs)


def span(name: str, *, level: str = "summary", collect: bool = False,
         **attrs):
    """Open a nestable span; returns a context manager.

    When telemetry is disabled (or the collector's level is below
    ``level``) a shared no-op handle is returned, so the call costs one
    dictionary lookup and a comparison.
    """
    col = _COLLECTOR
    if col is None or not col.allows(level):
        return _NOOP_SPAN
    return _Span(col, name, attrs, collect)


def timing_sample(label: str, samples) -> None:
    """Emit a ``timing`` event for a wall-clock measurement.

    Only recorded at the ``timing`` level and above — wall-clock values
    are inherently non-deterministic and would break the byte-identity
    of campaign traces at the default level.
    """
    col = _COLLECTOR
    if col is None or not col.timing:
        return
    samples = [float(s) for s in samples]
    n = len(samples)
    mean = sum(samples) / n
    var = sum((s - mean) ** 2 for s in samples) / n
    col.emit(
        "timing",
        label=label,
        repeat=n,
        min_s=min(samples),
        mean_s=mean,
        std_s=math.sqrt(var),
    )


def metric_counter(name: str, value: float = 1, **labels) -> None:
    """Add to a labeled campaign metric counter (no-op when disabled)."""
    col = _COLLECTOR
    if col is not None:
        col.metrics.counter_add(name, value, labels or None)


def metric_gauge(name: str, value: float, **labels) -> None:
    """Set a labeled last-write-wins gauge (no-op when disabled)."""
    col = _COLLECTOR
    if col is not None:
        col.metrics.gauge_set(name, value, labels or None)


def metric_observe(name: str, value: float, **labels) -> None:
    """Record into a labeled log-bucket histogram (no-op when off).

    For deterministic solver quantities (iterations, residuals, ELBO).
    Wall-clock latencies must go through :func:`metric_latency` instead
    so the default summary-level trace stays byte-identical between
    serial and parallel campaign runs.
    """
    col = _COLLECTOR
    if col is not None:
        col.metrics.observe(name, value, labels or None)


def metric_latency(name: str, seconds: float, **labels) -> None:
    """Record a wall-clock latency histogram sample.

    Only recorded at the ``timing`` level and above — like
    :func:`timing_sample`, wall-clock values are non-deterministic and
    would break campaign byte-identity at the default level.
    """
    col = _COLLECTOR
    if col is not None and col.timing:
        col.metrics.observe(name, seconds, labels or None)


def fit_health(method: str, **values) -> None:
    """Record per-fit solver-health metrics for one posterior method.

    Each keyword becomes both a ``fit.<key>{method=...}`` gauge (the
    latest fit's value) and a histogram observation (the campaign-wide
    distribution). ``None`` values are skipped, so callers can pass
    optional quantities (e.g. an ELBO that is undefined under improper
    priors) unconditionally.
    """
    col = _COLLECTOR
    if col is None:
        return
    for key, value in values.items():
        if value is None:
            continue
        value = float(value)
        name = f"fit.{key}"
        labels = {"method": method}
        col.metrics.gauge_set(name, value, labels)
        col.metrics.observe(name, value, labels)


def progress(label: str, done: int, total: int, **extra) -> None:
    """Emit a campaign ``progress`` heartbeat event.

    Timing-level only: the *cadence* of heartbeats depends on the wall
    clock (they are rate-limited), so even rate-free progress events
    would make summary traces differ between serial and parallel runs.
    """
    col = _COLLECTOR
    if col is None or not col.timing:
        return
    col.emit("progress", label=label, done=int(done), total=int(total),
             **extra)


@contextmanager
def capture(level: str = "summary", sink=None) -> Iterator[Collector]:
    """Install a fresh collector for the duration of the block.

    The previous collector (possibly ``None``) is restored on exit, so
    captures nest: a campaign worker can capture its replication's
    telemetry while the parent process is itself tracing.
    """
    global _COLLECTOR
    previous = _COLLECTOR
    collector = Collector(level=level, sink=sink)
    _COLLECTOR = collector
    try:
        yield collector
    finally:
        _COLLECTOR = previous


@contextmanager
def tracing(path, level: str = "summary", **meta) -> Iterator[Collector]:
    """Capture telemetry and stream it to a JSONL trace file.

    Writes a ``meta`` header event first, then — after the block — a
    ``metrics`` snapshot (when any labeled metrics were recorded) and a
    ``summary`` event (the aggregated counters/histograms/span stats),
    then closes the file. ``meta`` keyword arguments land in the header
    event.
    """
    from repro.obs.sink import JsonlSink

    sink = JsonlSink(path)
    try:
        with capture(level=level, sink=sink) as collector:
            collector.emit("meta", schema=SCHEMA_VERSION, level=level, **meta)
            yield collector
            collector.emit_metrics()
            collector.emit_summary()
    finally:
        sink.close()


def traced_task(fn: Callable, level: str, item):
    """Run ``fn(item)`` under a fresh capture; return ``(result, export)``.

    Module-level and picklable (given a picklable ``fn``), so campaign
    runners can fan it out over a process pool and merge the exported
    payloads deterministically in spawn-key order.
    """
    with capture(level=level) as collector:
        result = fn(item)
    return result, collector.export()
