"""Render cost/convergence tables from a telemetry trace.

``repro report <trace.jsonl>`` turns the machine-readable trace into
the human-readable companion of the paper's computation-cost tables:
per-method fit counts, failure counts, and wall-clock (when the trace
was recorded at the ``timing`` level or above), plus the solver
convergence histograms (fixed-point iterations, VB2 ``nmax``, MCMC
acceptance, ...) and raw counters. ``--format json`` returns the same
summary machine-readable (:func:`summarise_report`); ``--metrics`` and
``--profile`` add the labeled metrics snapshot and the aggregated span
call tree.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = [
    "render_report",
    "render_metrics",
    "summarise_report",
    "method_of",
]

#: Span/metric name prefixes attributed to each posterior method, in
#: the paper's method order; everything else lands under its own
#: top-level prefix (e.g. ``fixed_point``, ``sbc``).
_METHOD_PREFIXES = {
    "nint": "NINT",
    "laplace": "LAPL",
    "mcmc": "MCMC",
    "vb1": "VB1",
    "vb2": "VB2",
    "mle": "MLE",
}


def method_of(name: str) -> str:
    """Method label for a dotted span/metric name."""
    prefix = name.split(".", 1)[0]
    return _METHOD_PREFIXES.get(prefix, prefix)


def _format_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i])
                      for i, cell in enumerate(row)).rstrip()
        )
    return lines


def _num(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value)}"


def _method_costs(span_stats: dict) -> dict[str, dict]:
    """Aggregate span stats per posterior method, in paper order."""
    by_method: dict[str, dict] = defaultdict(
        lambda: {"count": 0, "errors": 0, "wall_s": 0.0, "timed": False}
    )
    for name, stats in span_stats.items():
        agg = by_method[method_of(name)]
        agg["count"] += stats.get("count", 0)
        agg["errors"] += stats.get("errors", 0)
        if "wall_s" in stats:
            agg["wall_s"] += stats["wall_s"]
            agg["timed"] = True
    order = list(_METHOD_PREFIXES.values())
    return {
        method: by_method[method]
        for method in sorted(
            by_method,
            key=lambda m: (order.index(m) if m in order else len(order), m),
        )
    }


def render_report(events: list[dict]) -> str:
    """Build the full text report from a list of trace events."""
    meta = events[0] if events and events[0].get("kind") == "meta" else {}
    summaries = [e for e in events if e.get("kind") == "summary"]
    summary = summaries[-1] if summaries else {
        "counters": {}, "histograms": {}, "spans": {}
    }
    spans = [e for e in events if e.get("kind") == "span"]
    points = [e for e in events if e.get("kind") == "point"]
    timings = [e for e in events if e.get("kind") == "timing"]
    reps = {e["rep"] for e in events if "rep" in e}

    lines = []
    level = meta.get("level", "?")
    header = f"telemetry report — {len(events)} events, level {level}"
    if meta.get("command"):
        header += f", command {meta['command']}"
    lines.append(header)
    if reps:
        lines.append(
            f"replications merged: {len(reps)} "
            f"(spawn keys {min(reps)}..{max(reps)})"
        )
    lines.append("")

    # Per-method cost table from the aggregated span stats.
    span_stats = summary.get("spans", {})
    if span_stats:
        rows = []
        for method, agg in _method_costs(span_stats).items():
            wall = f"{agg['wall_s']:.4f}" if agg["timed"] else "-"
            mean = (
                f"{agg['wall_s'] / agg['count']:.4f}"
                if agg["timed"] and agg["count"]
                else "-"
            )
            rows.append(
                [method, str(agg["count"]), str(agg["errors"]), wall, mean]
            )
        lines.append("## cost per method (spans)")
        lines += _format_table(
            ["method", "spans", "errors", "total s", "mean s"], rows
        )
        lines.append("")

    # Convergence table from histograms.
    histograms = summary.get("histograms", {})
    if histograms:
        rows = [
            [
                name,
                str(hist["count"]),
                _num(hist["mean"]),
                _num(hist["std"]),
                _num(hist["min"]),
                _num(hist["max"]),
            ]
            for name, hist in sorted(histograms.items())
        ]
        lines.append("## convergence metrics (histograms)")
        lines += _format_table(
            ["metric", "count", "mean", "std", "min", "max"], rows
        )
        lines.append("")

    counters = summary.get("counters", {})
    if counters:
        rows = [[name, _num(value)] for name, value in sorted(counters.items())]
        lines.append("## counters")
        lines += _format_table(["counter", "value"], rows)
        lines.append("")

    if timings:
        rows = [
            [
                t.get("label") or "(unlabelled)",
                str(t["repeat"]),
                f"{t['min_s']:.4f}",
                f"{t['mean_s']:.4f}",
                f"{t['std_s']:.4f}",
            ]
            for t in timings
        ]
        lines.append("## wall-clock timings")
        lines += _format_table(
            ["label", "repeat", "min s", "mean s", "std s"], rows
        )
        lines.append("")

    failures = [
        p for p in points
        if p.get("name", "").endswith((".divergence", ".failure", ".failed"))
    ]
    if failures:
        lines.append("## failure events")
        for p in failures:
            attrs = {
                k: v for k, v in p.items()
                if k not in ("kind", "seq", "name")
            }
            lines.append(f"  {p['name']}  {attrs}")
        lines.append("")
    error_spans = [s for s in spans if s.get("status", "ok") != "ok"]
    if error_spans:
        lines.append("## failed spans")
        for s in error_spans:
            rep = f" rep={s['rep']}" if "rep" in s else ""
            lines.append(f"  {s['name']}  {s['status']}{rep}")
        lines.append("")

    if len(lines) <= 2:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines).rstrip() + "\n"


def _last_metrics(events: list[dict]) -> dict | None:
    snapshots = [e for e in events if e.get("kind") == "metrics"]
    return snapshots[-1] if snapshots else None


def render_metrics(events: list[dict]) -> str:
    """Text rendering of the trace's labeled metrics snapshot."""
    snapshot = _last_metrics(events)
    if snapshot is None:
        return "metrics: no snapshot recorded\n"
    lines = []
    counters = snapshot.get("counters", {})
    if counters:
        rows = [[key, _num(value)] for key, value in sorted(counters.items())]
        lines.append("## metric counters")
        lines += _format_table(["counter", "value"], rows)
        lines.append("")
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [
            [key, _num(gauge["value"]), str(gauge["updates"])]
            for key, gauge in sorted(gauges.items())
        ]
        lines.append("## metric gauges (last write)")
        lines += _format_table(["gauge", "value", "updates"], rows)
        lines.append("")
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for key, hist in sorted(histograms.items()):
            quantiles = [
                _num(hist[q]) if hist.get(q) is not None else "-"
                for q in ("p50", "p90", "p99")
            ]
            rows.append(
                [key, str(hist["count"]), _num(hist["mean"]),
                 _num(hist["min"]), _num(hist["max"]), *quantiles]
            )
        lines.append("## metric histograms (log buckets)")
        lines += _format_table(
            ["histogram", "count", "mean", "min", "max", "~p50", "~p90",
             "~p99"],
            rows,
        )
        lines.append("")
    if not lines:
        return "metrics: snapshot is empty\n"
    return "\n".join(lines).rstrip() + "\n"


def summarise_report(events: list[dict]) -> dict:
    """Machine-readable counterpart of :func:`render_report`.

    The returned dict is plain JSON-compatible data: trace header
    fields, the per-method cost table, the final summary (counters,
    histograms, span stats), the labeled metrics snapshot (when one
    was recorded), wall-clock timings, and failure events.
    """
    meta = events[0] if events and events[0].get("kind") == "meta" else {}
    summaries = [e for e in events if e.get("kind") == "summary"]
    summary = summaries[-1] if summaries else {
        "counters": {}, "histograms": {}, "spans": {}
    }
    spans = [e for e in events if e.get("kind") == "span"]
    points = [e for e in events if e.get("kind") == "point"]
    timings = [e for e in events if e.get("kind") == "timing"]
    reps = sorted({e["rep"] for e in events if "rep" in e})

    methods = {}
    for method, agg in _method_costs(summary.get("spans", {})).items():
        entry = {"spans": agg["count"], "errors": agg["errors"]}
        if agg["timed"]:
            entry["wall_s"] = agg["wall_s"]
            if agg["count"]:
                entry["mean_s"] = agg["wall_s"] / agg["count"]
        methods[method] = entry

    metrics = _last_metrics(events)
    if metrics is not None:
        metrics = {
            k: v for k, v in metrics.items() if k not in ("kind", "seq")
        }

    return {
        "events": len(events),
        "schema": meta.get("schema"),
        "level": meta.get("level"),
        "command": meta.get("command"),
        "replications": (
            {"count": len(reps), "min": reps[0], "max": reps[-1]}
            if reps else None
        ),
        "methods": methods,
        "counters": dict(sorted(summary.get("counters", {}).items())),
        "histograms": dict(sorted(summary.get("histograms", {}).items())),
        "spans": dict(sorted(summary.get("spans", {}).items())),
        "metrics": metrics,
        "timings": [
            {k: v for k, v in t.items() if k not in ("kind", "seq")}
            for t in timings
        ],
        "failures": {
            "points": [
                {k: v for k, v in p.items() if k not in ("kind", "seq")}
                for p in points
                if p.get("name", "").endswith(
                    (".divergence", ".failure", ".failed")
                )
            ],
            "spans": [
                {k: v for k, v in s.items() if k not in ("kind", "seq")}
                for s in spans if s.get("status", "ok") != "ok"
            ],
        },
    }
