"""Render cost/convergence tables from a telemetry trace.

``repro report <trace.jsonl>`` turns the machine-readable trace into
the human-readable companion of the paper's computation-cost tables:
per-method fit counts, failure counts, and wall-clock (when the trace
was recorded at the ``timing`` level or above), plus the solver
convergence histograms (fixed-point iterations, VB2 ``nmax``, MCMC
acceptance, ...) and raw counters.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["render_report", "method_of"]

#: Span/metric name prefixes attributed to each posterior method, in
#: the paper's method order; everything else lands under its own
#: top-level prefix (e.g. ``fixed_point``, ``sbc``).
_METHOD_PREFIXES = {
    "nint": "NINT",
    "laplace": "LAPL",
    "mcmc": "MCMC",
    "vb1": "VB1",
    "vb2": "VB2",
    "mle": "MLE",
}


def method_of(name: str) -> str:
    """Method label for a dotted span/metric name."""
    prefix = name.split(".", 1)[0]
    return _METHOD_PREFIXES.get(prefix, prefix)


def _format_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i])
                      for i, cell in enumerate(row)).rstrip()
        )
    return lines


def _num(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value)}"


def render_report(events: list[dict]) -> str:
    """Build the full text report from a list of trace events."""
    meta = events[0] if events and events[0].get("kind") == "meta" else {}
    summaries = [e for e in events if e.get("kind") == "summary"]
    summary = summaries[-1] if summaries else {
        "counters": {}, "histograms": {}, "spans": {}
    }
    spans = [e for e in events if e.get("kind") == "span"]
    points = [e for e in events if e.get("kind") == "point"]
    timings = [e for e in events if e.get("kind") == "timing"]
    reps = {e["rep"] for e in events if "rep" in e}

    lines = []
    level = meta.get("level", "?")
    header = f"telemetry report — {len(events)} events, level {level}"
    if meta.get("command"):
        header += f", command {meta['command']}"
    lines.append(header)
    if reps:
        lines.append(
            f"replications merged: {len(reps)} "
            f"(spawn keys {min(reps)}..{max(reps)})"
        )
    lines.append("")

    # Per-method cost table from the aggregated span stats.
    span_stats = summary.get("spans", {})
    if span_stats:
        by_method: dict[str, dict] = defaultdict(
            lambda: {"count": 0, "errors": 0, "wall_s": 0.0, "timed": False}
        )
        for name, stats in span_stats.items():
            agg = by_method[method_of(name)]
            agg["count"] += stats.get("count", 0)
            agg["errors"] += stats.get("errors", 0)
            if "wall_s" in stats:
                agg["wall_s"] += stats["wall_s"]
                agg["timed"] = True
        rows = []
        order = list(_METHOD_PREFIXES.values())
        for method in sorted(
            by_method,
            key=lambda m: (order.index(m) if m in order else len(order), m),
        ):
            agg = by_method[method]
            wall = f"{agg['wall_s']:.4f}" if agg["timed"] else "-"
            mean = (
                f"{agg['wall_s'] / agg['count']:.4f}"
                if agg["timed"] and agg["count"]
                else "-"
            )
            rows.append(
                [method, str(agg["count"]), str(agg["errors"]), wall, mean]
            )
        lines.append("## cost per method (spans)")
        lines += _format_table(
            ["method", "spans", "errors", "total s", "mean s"], rows
        )
        lines.append("")

    # Convergence table from histograms.
    histograms = summary.get("histograms", {})
    if histograms:
        rows = [
            [
                name,
                str(hist["count"]),
                _num(hist["mean"]),
                _num(hist["std"]),
                _num(hist["min"]),
                _num(hist["max"]),
            ]
            for name, hist in sorted(histograms.items())
        ]
        lines.append("## convergence metrics (histograms)")
        lines += _format_table(
            ["metric", "count", "mean", "std", "min", "max"], rows
        )
        lines.append("")

    counters = summary.get("counters", {})
    if counters:
        rows = [[name, _num(value)] for name, value in sorted(counters.items())]
        lines.append("## counters")
        lines += _format_table(["counter", "value"], rows)
        lines.append("")

    if timings:
        rows = [
            [
                t.get("label") or "(unlabelled)",
                str(t["repeat"]),
                f"{t['min_s']:.4f}",
                f"{t['mean_s']:.4f}",
                f"{t['std_s']:.4f}",
            ]
            for t in timings
        ]
        lines.append("## wall-clock timings")
        lines += _format_table(
            ["label", "repeat", "min s", "mean s", "std s"], rows
        )
        lines.append("")

    failures = [
        p for p in points
        if p.get("name", "").endswith((".divergence", ".failure", ".failed"))
    ]
    if failures:
        lines.append("## failure events")
        for p in failures:
            attrs = {
                k: v for k, v in p.items()
                if k not in ("kind", "seq", "name")
            }
            lines.append(f"  {p['name']}  {attrs}")
        lines.append("")
    error_spans = [s for s in spans if s.get("status", "ok") != "ok"]
    if error_spans:
        lines.append("## failed spans")
        for s in error_spans:
            rep = f" rep={s['rep']}" if "rep" in s else ""
            lines.append(f"  {s['name']}  {s['status']}{rep}")
        lines.append("")

    if len(lines) <= 2:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines).rstrip() + "\n"
