"""Trace event schema and validation.

A trace is a JSON-Lines file; each line is one event object. Every
event has a ``kind`` and a per-trace monotonically increasing ``seq``.
The kinds and their required fields:

``meta``
    Trace header, always first: ``schema`` (int), ``level`` (one of
    ``summary | timing | debug``). Free-form context such as the CLI
    command may ride along.
``span``
    A completed timed region: ``name`` (dotted identifier), ``depth``
    (nesting depth at entry), ``status`` (``ok`` or
    ``error:<ExceptionType>``). ``wall_s`` is present at the timing
    and debug levels only. Campaign traces tag spans with ``rep``, the
    replication's ``SeedSequence`` spawn key.
``point``
    An instantaneous observation: ``name`` plus scalar attributes
    (e.g. ``fixed_point.divergence`` with its residual trajectory).
``timing``
    A wall-clock measurement from :func:`repro.metrics.timing.
    time_callable`: ``label``, ``repeat``, ``min_s``, ``mean_s``,
    ``std_s``. Timing events exist only at the timing/debug levels.
``summary``
    Aggregate view, always last when written via ``obs.tracing``:
    ``counters`` (name → number), ``histograms`` (name → count/total/
    mean/std/min/max), ``spans`` (name → count/errors[/wall_s]).
``metrics`` *(schema 2)*
    Snapshot of the labeled metrics registry
    (:class:`repro.obs.metrics.MetricsRegistry`), emitted just before
    the summary: ``counters`` (key → number), ``gauges`` (key →
    value/updates), ``histograms`` (key → count/total/mean/min/max/
    p50/p90/p99). Keys are ``name`` or ``name{label=value,...}``.
``progress`` *(schema 2)*
    Campaign heartbeat: ``label``, ``done``, ``total``. Rate and ETA
    fields (``elapsed_s``, ``rate_per_s``, ``eta_s``) are wall-clock
    and therefore appear at the timing/debug levels only — progress
    events themselves are timing-level, so the default summary trace
    stays byte-identical between serial and parallel runs.

Schema history: version 2 added the ``metrics`` and ``progress`` kinds
(and the gauges/quantile layouts above); version 1 traces remain fully
readable — every v1 event validates unchanged under this validator.

The validator is deliberately dependency-free (no jsonschema): it
checks required fields, types, name syntax, and that every extra
attribute is a JSON scalar or a flat list of scalars.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.exceptions import TelemetryError
from repro.obs.metrics import METRIC_KEY_RE

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "EVENT_KINDS",
    "sanitise_value",
    "validate_event",
    "validate_trace",
]

#: Bumped whenever the event layout changes. Version 2 added the
#: ``metrics`` and ``progress`` kinds; older versions stay readable.
SCHEMA_VERSION = 2
#: Schema versions this validator accepts in ``meta`` headers.
SUPPORTED_SCHEMAS = (1, 2)

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")
_STATUS_RE = re.compile(r"^(ok|error:[A-Za-z_][A-Za-z0-9_]*)$")

_HIST_FIELDS = frozenset({"count", "total", "mean", "std", "min", "max"})
_METRIC_HIST_FIELDS = frozenset(
    {"count", "total", "mean", "min", "max", "p50", "p90", "p99"}
)

#: kind -> {field: type check}
EVENT_KINDS = ("meta", "span", "point", "timing", "summary", "metrics",
               "progress")


def sanitise_value(value):
    """Coerce a value to plain JSON-compatible Python.

    NumPy scalars become Python scalars, arrays become lists; nested
    dicts/lists are converted recursively. Anything else unhandled is
    stringified rather than allowed to break serialisation mid-trace.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    # int()/float() normalise NumPy scalar subclasses to plain Python.
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, dict):
        return {str(k): sanitise_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitise_value(v) for v in value]
    # NumPy scalars/arrays without importing numpy here.
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        return value.item()
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return sanitise_value(tolist())
    return str(value)


def _is_scalar(value) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


def _fail(message: str) -> None:
    raise TelemetryError(message)


def _require(event: dict, field: str, types, kind: str):
    if field not in event:
        _fail(f"{kind} event missing required field {field!r}: {event}")
    value = event[field]
    if not isinstance(value, types) or isinstance(value, bool) and types is not bool:
        _fail(
            f"{kind} event field {field!r} has wrong type "
            f"{type(value).__name__}: {event}"
        )
    return value


def validate_event(event: dict) -> None:
    """Validate one event against the schema; raises TelemetryError."""
    if not isinstance(event, dict):
        _fail(f"event must be an object, got {type(event).__name__}")
    kind = event.get("kind")
    if kind not in EVENT_KINDS:
        _fail(f"unknown event kind {kind!r}: {event}")
    seq = _require(event, "seq", int, kind)
    if seq < 0:
        _fail(f"seq must be non-negative: {event}")

    known = {"kind", "seq", "rep"}
    if "rep" in event and not isinstance(event["rep"], int):
        _fail(f"rep must be an integer spawn key: {event}")

    if kind == "meta":
        schema = _require(event, "schema", int, kind)
        if schema not in SUPPORTED_SCHEMAS:
            _fail(
                f"meta schema must be one of {SUPPORTED_SCHEMAS}: {event}"
            )
        level = _require(event, "level", str, kind)
        if level not in ("summary", "timing", "debug"):
            _fail(f"meta level must be a trace level: {event}")
        known |= {"schema", "level"}
    elif kind == "span":
        name = _require(event, "name", str, kind)
        if not _NAME_RE.match(name):
            _fail(f"span name {name!r} is not a dotted identifier")
        depth = _require(event, "depth", int, kind)
        if depth < 0:
            _fail(f"span depth must be non-negative: {event}")
        status = _require(event, "status", str, kind)
        if not _STATUS_RE.match(status):
            _fail(f"span status {status!r} invalid (ok | error:<Type>)")
        if "wall_s" in event and not isinstance(event["wall_s"], (int, float)):
            _fail(f"span wall_s must be a number: {event}")
        known |= {"name", "depth", "status", "wall_s"}
    elif kind == "point":
        name = _require(event, "name", str, kind)
        if not _NAME_RE.match(name):
            _fail(f"point name {name!r} is not a dotted identifier")
        known |= {"name"}
    elif kind == "timing":
        _require(event, "label", str, kind)
        repeat = _require(event, "repeat", int, kind)
        if repeat < 1:
            _fail(f"timing repeat must be positive: {event}")
        for field in ("min_s", "mean_s", "std_s"):
            _require(event, field, (int, float), kind)
        known |= {"label", "repeat", "min_s", "mean_s", "std_s"}
    elif kind == "summary":
        counters = _require(event, "counters", dict, kind)
        for name, value in counters.items():
            if not _NAME_RE.match(name) or not isinstance(value, (int, float)):
                _fail(f"bad counter entry {name!r}: {value!r}")
        histograms = _require(event, "histograms", dict, kind)
        for name, hist in histograms.items():
            if not _NAME_RE.match(name) or not isinstance(hist, dict):
                _fail(f"bad histogram entry {name!r}")
            if set(hist) != _HIST_FIELDS:
                _fail(
                    f"histogram {name!r} must have fields "
                    f"{sorted(_HIST_FIELDS)}, got {sorted(hist)}"
                )
        spans = _require(event, "spans", dict, kind)
        for name, stats in spans.items():
            if not _NAME_RE.match(name) or not isinstance(stats, dict):
                _fail(f"bad span stats entry {name!r}")
            if not {"count", "errors"} <= set(stats):
                _fail(f"span stats {name!r} must have count and errors")
        known |= {"counters", "histograms", "spans"}
    elif kind == "metrics":
        counters = _require(event, "counters", dict, kind)
        for key, value in counters.items():
            if not METRIC_KEY_RE.match(key) or not isinstance(
                value, (int, float)
            ):
                _fail(f"bad metric counter entry {key!r}: {value!r}")
        gauges = _require(event, "gauges", dict, kind)
        for key, gauge in gauges.items():
            if not METRIC_KEY_RE.match(key) or not isinstance(gauge, dict):
                _fail(f"bad metric gauge entry {key!r}")
            if set(gauge) != {"value", "updates"}:
                _fail(
                    f"gauge {key!r} must have fields ['updates', 'value'], "
                    f"got {sorted(gauge)}"
                )
        histograms = _require(event, "histograms", dict, kind)
        for key, hist in histograms.items():
            if not METRIC_KEY_RE.match(key) or not isinstance(hist, dict):
                _fail(f"bad metric histogram entry {key!r}")
            if set(hist) != _METRIC_HIST_FIELDS:
                _fail(
                    f"metric histogram {key!r} must have fields "
                    f"{sorted(_METRIC_HIST_FIELDS)}, got {sorted(hist)}"
                )
        known |= {"counters", "gauges", "histograms"}
    elif kind == "progress":
        label = _require(event, "label", str, kind)
        if not _NAME_RE.match(label):
            _fail(f"progress label {label!r} is not a dotted identifier")
        done = _require(event, "done", int, kind)
        total = _require(event, "total", int, kind)
        if done < 0 or total < 0 or done > total:
            _fail(f"progress needs 0 <= done <= total: {event}")
        for field in ("elapsed_s", "rate_per_s", "eta_s"):
            if field in event and not isinstance(
                event[field], (int, float)
            ):
                _fail(f"progress {field} must be a number: {event}")
        known |= {"label", "done", "total", "elapsed_s", "rate_per_s",
                  "eta_s"}

    for key, value in event.items():
        if key in known:
            continue
        if _is_scalar(value):
            continue
        if isinstance(value, list) and all(_is_scalar(v) for v in value):
            continue
        _fail(
            f"attribute {key!r} must be a JSON scalar or flat list of "
            f"scalars: {value!r}"
        )


def validate_trace(events: Iterable[dict]) -> int:
    """Validate a whole trace; returns the number of events.

    Beyond per-event checks: the trace must be non-empty, start with a
    ``meta`` event, and have strictly increasing ``seq`` values.
    """
    count = 0
    last_seq = -1
    for event in events:
        validate_event(event)
        if count == 0 and event["kind"] != "meta":
            _fail("trace must start with a meta event")
        if event["seq"] <= last_seq:
            _fail(
                f"seq must be strictly increasing: {event['seq']} after "
                f"{last_seq}"
            )
        last_seq = event["seq"]
        count += 1
    if count == 0:
        _fail("trace is empty")
    return count
