"""Unified perf ledger over the committed BENCH_*.json artifacts.

The benchmark scripts historically each invented their own JSON layout
(schema 1) and their own inline shell gate in CI. The ledger gives
them one versioned schema and one gate:

* :func:`normalise` lifts any known BENCH document — schema-1 layouts
  from ``bench_interval_path.py`` / ``bench_fit_path.py`` /
  ``bench_mcmc_path.py`` as well as native schema-2 documents (e.g.
  ``bench_robustness.py``) — into the unified form.
* :func:`self_check` verifies a document against its *own* declared
  exactness/tolerance checks (what the committed baselines must always
  satisfy).
* :func:`compare` diffs a fresh run against a committed baseline:
  every gated speedup must stay above ``REGRESSION_FRACTION`` of the
  baseline's (ratios are machine-independent), and the fresh run must
  pass its self-checks.

Unified document layout (``schema: 2, kind: "bench"``)::

    {
      "schema": 2,
      "kind": "bench",
      "suite": "fit",                      # short suite name
      "generated_by": "benchmarks/bench_fit_path.py",
      "speedups": {"quick/DG-Info/vb2_grouped": 28.26, ...},  # gated
      "checks": {
        "vb2_max_abs_diff": {"value": 0.0, "exact": 0.0},
        "nint_max_abs_diff_vs_legacy": {"value": 5.7e-14, "max": 1e-10}
      },
      "info": {...}                        # ungated context
    }

``checks`` entries carry their own pass criterion: ``exact`` (equal),
``max`` (value <= bound), ``min`` (value >= bound, for speedup floors),
or ``expect`` (equal, for booleans). Every failure message names the
check and gives both the observed value and the expected bound on one
line. The CLI surface is ``repro bench check`` / ``repro bench
report``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import TelemetryError

__all__ = [
    "LEDGER_SCHEMA",
    "REGRESSION_FRACTION",
    "normalise",
    "self_check",
    "compare",
    "load_ledger",
    "render_ledger",
]

#: Version of the unified bench-ledger layout.
LEDGER_SCHEMA = 2

#: A fresh speedup below this fraction of the baseline's is a
#: regression — the same >20% criterion the inline CI gates used.
REGRESSION_FRACTION = 0.8

#: Per-suite agreement checks applied when lifting a schema-1 document:
#: (check name, path into the document, criterion kind, bound). These
#: mirror the gates the benchmark scripts themselves enforce.
_V1_SUITES = {
    "bench_interval_path.py": {
        "suite": "interval",
        "checks": [
            ("max_abs_diff_scalar", ("agreement", "max_abs_diff_scalar"),
             "max", 1e-9),
        ],
        "info": [
            ("max_abs_diff_legacy", ("agreement", "max_abs_diff_legacy")),
            ("hpd_speedup_target",
             ("acceptance", "hpd_speedup_target")),
        ],
    },
    "bench_fit_path.py": {
        "suite": "fit",
        "checks": [
            ("vb2_max_abs_diff", ("agreement", "vb2_max_abs_diff"),
             "exact", 0.0),
            ("nint_max_abs_diff_vs_legacy",
             ("agreement", "nint_max_abs_diff_vs_legacy"), "max", 1e-10),
        ],
        "info": [
            ("grouped_vb2_speedup_target",
             ("acceptance", "grouped_vb2_speedup_target")),
            ("nint_speedup_target", ("acceptance", "nint_speedup_target")),
        ],
    },
    "bench_mcmc_path.py": {
        "suite": "mcmc",
        "checks": [
            ("lane_vs_scalar_max_abs_diff",
             ("agreement", "lane_vs_scalar_max_abs_diff"), "exact", 0.0),
            ("diagnostics_batched_vs_scalar_max_rel",
             ("agreement", "diagnostics_batched_vs_scalar_max_rel"),
             "max", 1e-9),
        ],
        "info": [
            ("mcmc_speedup_target", ("acceptance", "mcmc_speedup_target")),
        ],
    },
}


def _dig(doc: dict, path: tuple):
    value = doc
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def _lift_v1(doc: dict) -> dict:
    source = doc.get("generated_by", "")
    recipe = _V1_SUITES.get(Path(source).name)
    if recipe is None:
        raise TelemetryError(
            f"unknown schema-1 bench layout (generated_by={source!r}); "
            f"known: {sorted(_V1_SUITES)}"
        )
    speedups = {}
    for mode, payload in doc.get("modes", {}).items():
        for key, workload in payload.get("workloads", {}).items():
            speedup = workload.get("speedup")
            if speedup is not None:
                speedups[f"{mode}/{key}"] = float(speedup)
    checks = {}
    for name, path, criterion, bound in recipe["checks"]:
        value = _dig(doc, path)
        if value is None:
            raise TelemetryError(
                f"bench document from {source!r} is missing check "
                f"field {'/'.join(path)}"
            )
        checks[name] = {"value": value, criterion: bound}
    info = {}
    for name, path in recipe["info"]:
        value = _dig(doc, path)
        if value is not None:
            info[name] = value
    return {
        "schema": LEDGER_SCHEMA,
        "kind": "bench",
        "suite": recipe["suite"],
        "generated_by": source,
        "speedups": speedups,
        "checks": checks,
        "info": info,
    }


def normalise(doc: dict) -> dict:
    """Lift any known BENCH document into the unified schema-2 form."""
    if not isinstance(doc, dict) or "schema" not in doc:
        raise TelemetryError("bench document has no schema field")
    schema = doc["schema"]
    if schema == 1:
        return _lift_v1(doc)
    if schema == LEDGER_SCHEMA:
        if doc.get("kind") != "bench":
            raise TelemetryError(
                f"schema-2 document is not a bench ledger "
                f"(kind={doc.get('kind')!r})"
            )
        for field in ("suite", "speedups", "checks"):
            if field not in doc:
                raise TelemetryError(
                    f"bench ledger missing required field {field!r}"
                )
        return doc
    raise TelemetryError(f"unsupported bench schema {schema!r}")


def _check_failures(suite: str, checks: dict) -> list[str]:
    # One line per failing check, always "observed ..., expected ..." so
    # a CI log names every violated gate with both sides of the bound.
    failures = []
    for name, entry in checks.items():
        value = entry.get("value")
        if "exact" in entry:
            if value != entry["exact"]:
                failures.append(
                    f"{suite}: check {name}: observed {value!r}, "
                    f"expected exactly {entry['exact']!r}"
                )
        elif "max" in entry:
            if not (isinstance(value, (int, float))
                    and value <= entry["max"]):
                failures.append(
                    f"{suite}: check {name}: observed {value!r}, "
                    f"expected <= {entry['max']!r}"
                )
        elif "min" in entry:
            if not (isinstance(value, (int, float))
                    and value >= entry["min"]):
                failures.append(
                    f"{suite}: check {name}: observed {value!r}, "
                    f"expected >= {entry['min']!r}"
                )
        elif "expect" in entry:
            if value != entry["expect"]:
                failures.append(
                    f"{suite}: check {name}: observed {value!r}, "
                    f"expected {entry['expect']!r}"
                )
        else:
            failures.append(
                f"{suite}: check {name} declares no criterion "
                f"(exact/max/min/expect)"
            )
    return failures


def self_check(doc: dict) -> list[str]:
    """Failure messages for a document violating its own checks."""
    ledger = normalise(doc)
    return _check_failures(ledger["suite"], ledger["checks"])


def compare(fresh: dict, baseline: dict, *,
            fraction: float = REGRESSION_FRACTION) -> list[str]:
    """Diff a fresh bench run against a committed baseline.

    Returns failure messages; empty means the gate passes. The fresh
    run must satisfy its own checks, and every speedup present in both
    documents must stay above ``fraction`` of the baseline's (ratios
    are machine-independent, so a baseline from another host is a
    meaningful gate). Speedup keys only one side measured are ignored.
    """
    fresh = normalise(fresh)
    baseline = normalise(baseline)
    suite = fresh["suite"]
    failures = []
    if suite != baseline["suite"]:
        return [
            f"suite mismatch: fresh is {suite!r}, baseline is "
            f"{baseline['suite']!r}"
        ]
    failures.extend(_check_failures(suite, fresh["checks"]))
    for key in sorted(set(fresh["speedups"]) & set(baseline["speedups"])):
        measured = fresh["speedups"][key]
        floor = fraction * baseline["speedups"][key]
        if measured < floor:
            failures.append(
                f"{suite}/{key}: speedup {measured:.1f}x fell below "
                f"{floor:.1f}x (= {fraction:.0%} of baseline "
                f"{baseline['speedups'][key]:.1f}x)"
            )
    return failures


def load_ledger(path) -> dict:
    """Read and normalise one BENCH JSON file."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise TelemetryError(f"bench file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise TelemetryError(f"bench file {path} is not JSON: {exc}") from None
    return normalise(doc)


def render_ledger(ledgers: list[dict]) -> str:
    """Text report over normalised ledger documents."""
    lines = []
    for ledger in ledgers:
        lines.append(f"suite {ledger['suite']} ({ledger['generated_by']})")
        checks = ledger["checks"]
        for name in sorted(checks):
            entry = checks[name]
            for criterion in ("exact", "max", "min", "expect"):
                if criterion in entry:
                    bound = f"{criterion} {entry[criterion]!r}"
                    break
            else:
                bound = "no criterion"
            ok = not _check_failures(ledger["suite"], {name: entry})
            lines.append(
                f"  check {name:<40} {entry.get('value')!r:>14} "
                f"[{bound}] {'ok' if ok else 'FAIL'}"
            )
        speedups = ledger["speedups"]
        for key in sorted(speedups):
            lines.append(f"  speedup {key:<46} {speedups[key]:>8.1f}x")
        for key in sorted(ledger.get("info", {})):
            lines.append(
                f"  info {key:<41} {ledger['info'][key]!r:>14}"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
