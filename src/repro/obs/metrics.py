"""Campaign-scale metrics: labeled counters, gauges, and log histograms.

The span/counter layer (:mod:`repro.obs.core`) accounts for one fit.
Campaign workloads — SBC, coverage, and robustness sweeps of thousands
of lane-batched replications — need an *aggregated* view: how many
fits ran per method, how solver health (iterations, final residual,
ELBO, sandwich kappa) is distributed across cells, where the latency
mass sits. This module provides that as a registry of labeled metrics
whose merge is **exact, associative, and order-independent**:

* **Counters** and **histogram totals** accumulate as exact rationals
  (:class:`fractions.Fraction`; every float is a dyadic rational, so
  sums never round and never depend on addition order).
* **Histograms** use *fixed* log-spaced buckets — the bucket grid is a
  constant of the schema, never adapted to the data — so merging two
  histograms is integer bucket-count addition. Order-independent by
  construction.
* **Gauges** are last-write-wins; campaign runners merge child
  registries in spawn-key order, so the surviving value is the last
  replication's — deterministic for any worker count.

Together these preserve the serial-vs-parallel byte-identity guarantee
the traces already have: a ``metrics`` snapshot event is a pure
function of the merged registry state, which is a pure function of the
per-replication states and the (spawn-key) merge order.

Metric keys are ``name`` or ``name{label=value,...}`` with labels
sorted by key — ``fit.elbo{method=VB2}`` — so snapshots are canonical.
"""

from __future__ import annotations

import math
import re
from fractions import Fraction

__all__ = [
    "BUCKETS_PER_DECADE",
    "BUCKET_MIN_EXP",
    "BUCKET_MAX_EXP",
    "METRIC_KEY_RE",
    "LogHistogram",
    "CounterMetric",
    "GaugeMetric",
    "MetricsRegistry",
    "encode_metric_key",
    "decode_metric_key",
    "bucket_index",
    "bucket_bounds",
]

#: Fixed bucket grid: 4 log-spaced buckets per decade …
BUCKETS_PER_DECADE = 4
#: … spanning 1e-9 (nanoseconds, tiny residuals) …
BUCKET_MIN_EXP = -9
#: … to 1e9 (large counts); values outside clamp into the edge buckets.
BUCKET_MAX_EXP = 9

_MIN_INDEX = BUCKET_MIN_EXP * BUCKETS_PER_DECADE
_MAX_INDEX = BUCKET_MAX_EXP * BUCKETS_PER_DECADE - 1

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")
_LABEL_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.+-]*$")
#: Canonical metric-key syntax; also used by the event-schema validator.
METRIC_KEY_RE = re.compile(
    r"^[a-z0-9_]+(\.[a-z0-9_]+)*"
    r"(\{[A-Za-z0-9_][A-Za-z0-9_.+-]*=[A-Za-z0-9_.+-]+"
    r"(,[A-Za-z0-9_][A-Za-z0-9_.+-]*=[A-Za-z0-9_.+-]+)*\})?$"
)


def encode_metric_key(name: str, labels: dict | None = None) -> str:
    """Canonical ``name{k=v,...}`` key (labels sorted by key)."""
    if not _NAME_RE.match(name):
        raise ValueError(f"metric name {name!r} is not a dotted identifier")
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        if not _LABEL_RE.match(key) or not _LABEL_RE.match(value):
            raise ValueError(
                f"bad metric label {key!r}={labels[key]!r} "
                "(letters, digits, '_', '.', '+', '-' only)"
            )
        parts.append(f"{key}={value}")
    return f"{name}{{{','.join(parts)}}}"


def decode_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a canonical key back into ``(name, labels)``."""
    if not METRIC_KEY_RE.match(key):
        raise ValueError(f"malformed metric key {key!r}")
    name, brace, rest = key.partition("{")
    if not brace:
        return key, {}
    labels = dict(
        part.split("=", 1) for part in rest[:-1].split(",") if part
    )
    return name, labels


def bucket_index(value: float) -> int:
    """Fixed-grid bucket index of a positive value (clamped)."""
    idx = math.floor(math.log10(value) * BUCKETS_PER_DECADE)
    return min(max(idx, _MIN_INDEX), _MAX_INDEX)


def bucket_bounds(index: int) -> tuple[float, float]:
    """``[lo, hi)`` bounds of one bucket of the fixed grid."""
    lo = 10.0 ** (index / BUCKETS_PER_DECADE)
    hi = 10.0 ** ((index + 1) / BUCKETS_PER_DECADE)
    return lo, hi


def _fraction_str(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


def _fraction_of(state) -> Fraction:
    if isinstance(state, str):
        num, _, den = state.partition("/")
        return Fraction(int(num), int(den or 1))
    return Fraction(state)


class LogHistogram:
    """Streaming scalar distribution with fixed log-spaced buckets.

    Positive and negative values land in mirrored bucket grids keyed by
    the magnitude's bucket index; zeros count separately. The exact
    rational ``total`` plus integer bucket counts make ``merge_state``
    exact, associative, and order-independent — the property the
    campaign byte-identity tests pin.
    """

    __slots__ = ("count", "total", "min", "max", "pos", "neg", "zero")

    def __init__(self) -> None:
        self.count = 0
        self.total = Fraction(0)
        self.min = math.inf
        self.max = -math.inf
        self.pos: dict[int, int] = {}
        self.neg: dict[int, int] = {}
        self.zero = 0

    def record(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"histogram values must be finite, got {value}")
        self.count += 1
        self.total += Fraction(value)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            idx = bucket_index(value)
            self.pos[idx] = self.pos.get(idx, 0) + 1
        elif value < 0.0:
            idx = bucket_index(-value)
            self.neg[idx] = self.neg.get(idx, 0) + 1
        else:
            self.zero += 1

    @property
    def mean(self) -> float:
        return float(self.total / self.count) if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Bucket-resolution quantile estimate (positive-only data).

        Returns the geometric midpoint of the bucket holding the
        ``q``-quantile, or ``None`` when the histogram holds any
        non-positive values (log buckets only order positive mass) or
        is empty.
        """
        if self.count == 0 or self.zero or self.neg:
            return None
        target = q * self.count
        seen = 0
        for idx in sorted(self.pos):
            seen += self.pos[idx]
            if seen >= target:
                lo, hi = bucket_bounds(idx)
                return math.sqrt(lo * hi)
        lo, hi = bucket_bounds(max(self.pos))
        return math.sqrt(lo * hi)

    def state(self) -> dict:
        """Exact mergeable state (JSON- and pickle-safe)."""
        return {
            "count": self.count,
            "total": _fraction_str(self.total),
            "min": self.min,
            "max": self.max,
            "pos": {str(k): v for k, v in sorted(self.pos.items())},
            "neg": {str(k): v for k, v in sorted(self.neg.items())},
            "zero": self.zero,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one."""
        self.count += int(state["count"])
        self.total += _fraction_of(state["total"])
        self.min = min(self.min, float(state["min"]))
        self.max = max(self.max, float(state["max"]))
        for key, count in state["pos"].items():
            idx = int(key)
            self.pos[idx] = self.pos.get(idx, 0) + int(count)
        for key, count in state["neg"].items():
            idx = int(key)
            self.neg[idx] = self.neg.get(idx, 0) + int(count)
        self.zero += int(state["zero"])

    def summary(self) -> dict:
        """JSON-ready summary for ``metrics`` snapshot events."""
        out = {
            "count": self.count,
            "total": float(self.total),
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }
        for label, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
            out[label] = self.quantile(q)
        return out


class CounterMetric:
    """Monotone accumulator with exact (rational) arithmetic."""

    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = Fraction(0)

    def add(self, value: float = 1) -> None:
        self.total += Fraction(value)

    def state(self) -> str:
        return _fraction_str(self.total)

    def merge_state(self, state) -> None:
        self.total += _fraction_of(state)

    def value(self) -> float | int:
        if self.total.denominator == 1:
            return int(self.total)
        return float(self.total)


class GaugeMetric:
    """Last-write-wins scalar; merge order (spawn key) decides ties."""

    __slots__ = ("value", "updates")

    def __init__(self) -> None:
        self.value: float | None = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def state(self) -> dict:
        return {"value": self.value, "updates": self.updates}

    def merge_state(self, state: dict) -> None:
        if state["updates"]:
            self.value = state["value"]
        self.updates += int(state["updates"])


class MetricsRegistry:
    """Labeled counters, gauges, and log histograms with exact merge."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, CounterMetric] = {}
        self.gauges: dict[str, GaugeMetric] = {}
        self.histograms: dict[str, LogHistogram] = {}

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    # -- recording -----------------------------------------------------
    def counter_add(
        self, name: str, value: float = 1, labels: dict | None = None
    ) -> None:
        key = encode_metric_key(name, labels)
        counter = self.counters.get(key)
        if counter is None:
            counter = self.counters[key] = CounterMetric()
        counter.add(value)

    def gauge_set(
        self, name: str, value: float, labels: dict | None = None
    ) -> None:
        key = encode_metric_key(name, labels)
        gauge = self.gauges.get(key)
        if gauge is None:
            gauge = self.gauges[key] = GaugeMetric()
        gauge.set(value)

    def observe(
        self, name: str, value: float, labels: dict | None = None
    ) -> None:
        key = encode_metric_key(name, labels)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = LogHistogram()
        hist.record(value)

    # -- merge and snapshots -------------------------------------------
    def export(self) -> dict:
        """Exact serialisable state (for shipping across processes)."""
        return {
            "counters": {
                key: self.counters[key].state()
                for key in sorted(self.counters)
            },
            "gauges": {
                key: self.gauges[key].state() for key in sorted(self.gauges)
            },
            "histograms": {
                key: self.histograms[key].state()
                for key in sorted(self.histograms)
            },
        }

    def merge(self, state: dict) -> None:
        """Fold another registry's :meth:`export` into this one."""
        for key, value in state.get("counters", {}).items():
            counter = self.counters.get(key)
            if counter is None:
                counter = self.counters[key] = CounterMetric()
            counter.merge_state(value)
        for key, value in state.get("gauges", {}).items():
            gauge = self.gauges.get(key)
            if gauge is None:
                gauge = self.gauges[key] = GaugeMetric()
            gauge.merge_state(value)
        for key, value in state.get("histograms", {}).items():
            hist = self.histograms.get(key)
            if hist is None:
                hist = self.histograms[key] = LogHistogram()
            hist.merge_state(value)

    def snapshot(self) -> dict:
        """Canonical JSON-ready view (keys sorted, exact state reduced
        to floats) — what the ``metrics`` trace event carries."""
        return {
            "counters": {
                key: self.counters[key].value()
                for key in sorted(self.counters)
            },
            "gauges": {
                key: self.gauges[key].state() for key in sorted(self.gauges)
            },
            "histograms": {
                key: self.histograms[key].summary()
                for key in sorted(self.histograms)
            },
        }
