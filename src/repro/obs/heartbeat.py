"""Campaign progress heartbeats: replications done, rate, and ETA.

Long campaigns (SBC, coverage, robustness) can run for minutes with no
output. A :class:`Heartbeat` gives them a pulse: the runner ticks it
once per completed replication and the heartbeat — rate-limited to
roughly one report per ``interval_s`` of wall time, plus a final
report at completion — logs progress at INFO and emits a ``progress``
trace event.

Determinism: heartbeat *cadence* is wall-clock-driven, so progress
events are only emitted at the ``timing``/``debug`` trace levels
(enforced by :func:`repro.obs.core.progress`); the default summary
level records nothing and campaign traces stay byte-identical between
serial and parallel runs. The INFO log line is always produced —
logging never touches the trace.
"""

from __future__ import annotations

import logging
import time

from repro.obs import core as _core

__all__ = ["Heartbeat"]

_logger = logging.getLogger("repro.obs")


class Heartbeat:
    """Rate-limited progress reporter for a fixed-size campaign.

    Parameters
    ----------
    label:
        Dotted identifier for the campaign phase
        (e.g. ``"sbc.replications"``).
    total:
        Number of work items expected.
    interval_s:
        Minimum wall-clock spacing between reports; ticks inside the
        window are counted but not reported. The final tick always
        reports.
    clock:
        Injectable monotonic clock (tests substitute a fake).
    """

    def __init__(self, label: str, total: int, *, interval_s: float = 1.0,
                 clock=time.monotonic) -> None:
        self.label = label
        self.total = int(total)
        self.done = 0
        self._interval_s = float(interval_s)
        self._clock = clock
        self._start = clock()
        self._last_report = self._start

    def tick(self, done: int | None = None) -> None:
        """Record progress; report if due (or if this is the last item)."""
        self.done = self.done + 1 if done is None else int(done)
        now = self._clock()
        final = self.done >= self.total
        if not final and now - self._last_report < self._interval_s:
            return
        self._last_report = now
        self._report(now)

    def _report(self, now: float) -> None:
        elapsed = max(now - self._start, 0.0)
        rate = self.done / elapsed if elapsed > 0 else 0.0
        extra = {"elapsed_s": elapsed, "rate_per_s": rate}
        message = (
            f"{self.label}: {self.done}/{self.total} "
            f"({rate:.1f}/s, {elapsed:.1f}s elapsed"
        )
        if rate > 0 and self.done < self.total:
            eta = (self.total - self.done) / rate
            extra["eta_s"] = eta
            message += f", eta {eta:.1f}s"
        message += ")"
        _logger.info("%s", message)
        _core.progress(self.label, self.done, self.total, **extra)
