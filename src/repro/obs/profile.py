"""Aggregated call-tree profiling from recorded span events.

Span events are emitted at span *exit* (post-order) and carry the
nesting ``depth`` at exit, so a trace encodes its call forest without
any explicit parent pointers: scanning the events in order, a span at
depth ``d`` adopts every not-yet-adopted span at depth ``d+1`` seen
since the last depth-``d`` exit. Campaign traces concatenate many
replications' span streams (each restarting at depth 0), so their
fits aggregate naturally as siblings under the implicit root.

The aggregation folds every span instance into one node per *path*
(root→...→name), accumulating call counts, error counts, and — when
the trace was recorded at the ``timing``/``debug`` level — cumulative
and self wall time. Everything is keyed and rendered in deterministic
order: two traces with the same events produce byte-identical profile
renderings and folded-stack exports, preserving the obs layer's
serial-vs-parallel identity guarantee at the summary level.

The folded-stack export (``a;b;c <value>`` lines) is the input format
of Brendan Gregg's ``flamegraph.pl`` and of most flamegraph viewers;
values are self wall time in microseconds when available, call counts
otherwise.
"""

from __future__ import annotations

__all__ = [
    "ProfileNode",
    "build_profile",
    "fold_stacks",
    "render_profile",
]


class ProfileNode:
    """One aggregated call-tree node (all span instances on one path)."""

    __slots__ = ("name", "count", "errors", "wall_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.errors = 0
        self.wall_s: float | None = None
        self.children: dict[str, ProfileNode] = {}

    def child(self, name: str) -> "ProfileNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = ProfileNode(name)
        return node

    def add_instance(self, status: str, wall_s: float | None) -> None:
        self.count += 1
        if status != "ok":
            self.errors += 1
        if wall_s is not None:
            self.wall_s = (self.wall_s or 0.0) + float(wall_s)

    @property
    def child_wall_s(self) -> float:
        return sum(
            node.wall_s or 0.0 for node in self.children.values()
        )

    @property
    def self_wall_s(self) -> float | None:
        """Cumulative wall minus children's wall (timing traces only)."""
        if self.wall_s is None:
            return None
        return max(self.wall_s - self.child_wall_s, 0.0)

    def merge(self, other: "ProfileNode") -> None:
        """Fold another aggregated node (same path) into this one.

        Associative and order-independent: counts and walls add, and
        children merge recursively by name.
        """
        self.count += other.count
        self.errors += other.errors
        if other.wall_s is not None:
            self.wall_s = (self.wall_s or 0.0) + other.wall_s
        for name, child in other.children.items():
            self.child(name).merge(child)

    def to_dict(self) -> dict:
        """JSON-ready view with deterministically ordered children."""
        out = {"name": self.name, "count": self.count,
               "errors": self.errors}
        if self.wall_s is not None:
            out["wall_s"] = self.wall_s
            out["self_wall_s"] = self.self_wall_s
        if self.children:
            out["children"] = [
                self.children[name].to_dict()
                for name in sorted(self.children)
            ]
        return out


def build_profile(events) -> ProfileNode:
    """Aggregate a trace's span events into a call tree.

    Returns the implicit root node (``name="root"``, zero count) whose
    children are the depth-0 spans. Works on whole traces (non-span
    events are skipped) from any schema version.
    """
    root = ProfileNode("root")
    # pending[d] = depth-d span instances awaiting a depth-(d-1) parent,
    # each as (name, status, wall_s, children_nodes).
    pending: dict[int, list[tuple]] = {}
    for ev in events:
        if ev.get("kind") != "span":
            continue
        depth = ev["depth"]
        children = pending.pop(depth + 1, [])
        pending.setdefault(depth, []).append(
            (ev["name"], ev["status"], ev.get("wall_s"), children)
        )
    if any(depth != 0 for depth in pending):
        orphans = sorted(d for d in pending if d != 0)
        raise ValueError(
            f"span stream is unbalanced: orphaned spans at depths "
            f"{orphans} never saw a parent exit"
        )

    def fold(parent: ProfileNode, instances) -> None:
        for name, status, wall_s, children in instances:
            node = parent.child(name)
            node.add_instance(status, wall_s)
            fold(node, children)

    fold(root, pending.get(0, []))
    return root


def fold_stacks(root: ProfileNode) -> list[str]:
    """Folded-stack (flamegraph) lines, deterministically ordered.

    One ``path;to;span <value>`` line per call-tree node; values are
    self wall time in integer microseconds for timing traces, call
    counts for summary traces.
    """
    lines: list[str] = []

    def walk(node: ProfileNode, prefix: str) -> None:
        path = f"{prefix};{node.name}" if prefix else node.name
        self_wall = node.self_wall_s
        value = (
            node.count if self_wall is None else round(self_wall * 1e6)
        )
        lines.append(f"{path} {value}")
        for name in sorted(node.children):
            walk(node.children[name], path)

    for name in sorted(root.children):
        walk(root.children[name], "")
    return lines


def _render_node(node: ProfileNode, indent: int, lines: list[str],
                 timing: bool) -> None:
    label = "  " * indent + node.name
    cells = [f"{label:<44}", f"{node.count:>8}", f"{node.errors:>7}"]
    if timing:
        wall = node.wall_s or 0.0
        self_wall = node.self_wall_s or 0.0
        cells.append(f"{wall:>12.6f}")
        cells.append(f"{self_wall:>12.6f}")
    lines.append(" ".join(cells).rstrip())
    for name in sorted(node.children):
        _render_node(node.children[name], indent + 1, lines, timing)


def render_profile(root: ProfileNode) -> str:
    """Text rendering of the aggregated call tree."""
    if not root.children:
        return "profile: no spans recorded\n"

    def has_wall(node: ProfileNode) -> bool:
        return node.wall_s is not None or any(
            has_wall(child) for child in node.children.values()
        )

    timing = any(has_wall(node) for node in root.children.values())
    header = [f"{'span':<44}", f"{'calls':>8}", f"{'errors':>7}"]
    if timing:
        header.append(f"{'cum_s':>12}")
        header.append(f"{'self_s':>12}")
    lines = [" ".join(header).rstrip()]
    lines.append("-" * len(lines[0]))
    for name in sorted(root.children):
        _render_node(root.children[name], 0, lines, timing)
    return "\n".join(lines) + "\n"
