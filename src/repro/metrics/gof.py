"""Goodness-of-fit assessment for NHPP software reliability models.

The paper attributes the DG-NoInfo instability to the grouped data
being fitted worse by the Goel–Okumoto model than the failure-time
data. These tools make such statements quantitative:

* :func:`laplace_trend_test` — the classical Laplace test for
  reliability growth in a failure-time series (negative = growth);
* :func:`ks_uplot_statistic` — the u-plot / Kolmogorov–Smirnov distance
  between the fitted and empirical mean-value functions, using the
  conditional-uniform property of NHPP arrival times;
* :func:`chi_square_grouped` — Pearson chi-square for grouped counts
  against a fitted model, with expected-count pooling;
* :func:`log_likelihood_ratio` — fitted-model deviance comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as st

from repro.data.failure_data import FailureTimeData, GroupedData
from repro.models.base import NHPPModel

__all__ = [
    "TrendTestResult",
    "laplace_trend_test",
    "ks_uplot_statistic",
    "ChiSquareResult",
    "chi_square_grouped",
    "log_likelihood_ratio",
]


@dataclass(frozen=True)
class TrendTestResult:
    """Outcome of the Laplace trend test.

    Attributes
    ----------
    statistic:
        Standard-normal test statistic; large negative values indicate
        reliability growth (inter-failure times lengthening).
    p_value:
        Two-sided p-value against "no trend" (homogeneous Poisson).
    """

    statistic: float
    p_value: float

    @property
    def indicates_growth(self) -> bool:
        """True when the statistic points to reliability growth at 5%."""
        return self.statistic < -1.6449  # one-sided 5%


def laplace_trend_test(data: FailureTimeData) -> TrendTestResult:
    """Laplace test on a failure-time series.

    Under a homogeneous Poisson process the normalised mid-point
    statistic ``(mean(t_i)/te - 1/2) * sqrt(12 n)`` is asymptotically
    standard normal; deviations below zero mean failures concentrate
    early — reliability growth.
    """
    n = data.count
    if n < 2:
        raise ValueError("the trend test needs at least two failures")
    statistic = (data.times.mean() / data.horizon - 0.5) * math.sqrt(12.0 * n)
    p_value = 2.0 * float(st.norm.sf(abs(statistic)))
    return TrendTestResult(statistic=statistic, p_value=p_value)


def ks_uplot_statistic(data: FailureTimeData, model: NHPPModel) -> float:
    """Kolmogorov–Smirnov distance of the u-plot.

    Conditional on ``M(te) = n``, NHPP failure times are distributed as
    order statistics of ``n`` draws from ``Λ(t)/Λ(te)``; mapping each
    failure time through that CDF must give uniforms. Returns the KS
    distance of those transforms from uniformity (smaller = better fit).
    """
    n = data.count
    if n == 0:
        raise ValueError("cannot assess fit with zero failures")
    scaled = np.asarray(model.mean_value(data.times), dtype=float) / float(
        model.mean_value(data.horizon)
    )
    empirical = np.arange(1, n + 1) / n
    lower = np.abs(scaled - empirical)
    upper = np.abs(scaled - (empirical - 1.0 / n))
    return float(np.maximum(lower, upper).max())


@dataclass(frozen=True)
class ChiSquareResult:
    """Pearson chi-square test for grouped counts.

    Attributes
    ----------
    statistic:
        Pearson X^2 over the pooled cells.
    dof:
        Degrees of freedom (cells - 1 - n_estimated_params).
    p_value:
        Upper-tail chi-square p-value (NaN when dof <= 0).
    n_cells:
        Number of cells after pooling.
    """

    statistic: float
    dof: int
    p_value: float
    n_cells: int


def chi_square_grouped(
    data: GroupedData,
    model: NHPPModel,
    *,
    n_estimated_params: int = 2,
    min_expected: float = 5.0,
) -> ChiSquareResult:
    """Pearson chi-square of grouped counts against a fitted model.

    Adjacent intervals are pooled until every expected count reaches
    ``min_expected`` (the standard validity rule).
    """
    edges = data.interval_edges()
    expected_raw = np.diff(np.asarray(model.mean_value(edges), dtype=float))
    observed_raw = np.asarray(data.counts, dtype=float)

    pooled_obs: list[float] = []
    pooled_exp: list[float] = []
    acc_obs = acc_exp = 0.0
    for obs, exp in zip(observed_raw, expected_raw):
        acc_obs += obs
        acc_exp += exp
        if acc_exp >= min_expected:
            pooled_obs.append(acc_obs)
            pooled_exp.append(acc_exp)
            acc_obs = acc_exp = 0.0
    if acc_exp > 0.0:
        if pooled_exp:
            pooled_obs[-1] += acc_obs
            pooled_exp[-1] += acc_exp
        else:
            pooled_obs.append(acc_obs)
            pooled_exp.append(acc_exp)

    obs_arr = np.asarray(pooled_obs)
    exp_arr = np.asarray(pooled_exp)
    statistic = float(((obs_arr - exp_arr) ** 2 / exp_arr).sum())
    dof = obs_arr.size - 1 - n_estimated_params
    p_value = float(st.chi2.sf(statistic, dof)) if dof > 0 else math.nan
    return ChiSquareResult(
        statistic=statistic, dof=dof, p_value=p_value, n_cells=obs_arr.size
    )


def log_likelihood_ratio(
    data: FailureTimeData | GroupedData,
    model_a: NHPPModel,
    model_b: NHPPModel,
) -> float:
    """``log L(model_a) - log L(model_b)`` on the same data; positive
    values favour ``model_a``."""
    return model_a.log_likelihood(data) - model_b.log_likelihood(data)
