"""Plain-text table rendering for experiment reports.

Deliberately free of third-party dependencies so the benchmark harness
can print paper-style tables in any environment.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["format_value", "render_table"]


def format_value(value: object, *, precision: int = 4) -> str:
    """Render numbers the way the paper's tables do.

    Scientific notation for magnitudes outside ``[1e-3, 1e5)``, fixed
    point otherwise, percentages handled by the caller.
    """
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, (int,)) and not isinstance(value, bool):
        return str(value)
    x = float(value)
    if math.isnan(x):
        return "nan"
    if x == 0.0:
        return "0"
    magnitude = abs(x)
    if magnitude < 1e-3 or magnitude >= 1e5:
        return f"{x:.{max(precision - 2, 2)}E}"
    return f"{x:.{precision}g}" if magnitude < 1 else f"{x:.{precision + 1}g}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; formatted through :func:`format_value`.
    title:
        Optional heading printed above the table.
    """
    formatted = [
        [format_value(cell, precision=precision) for cell in row] for row in rows
    ]
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in formatted)) if formatted
        else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[j]) for j, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted:
        lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
    return "\n".join(lines)
