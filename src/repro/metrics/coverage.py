"""Frequentist coverage studies for Bayesian interval procedures.

The operational justification for preferring VB2 over VB1 is not the
KL divergence — it is that VB1's too-narrow intervals *under-cover*:
their actual frequentist coverage falls short of the nominal credible
level. This module runs that experiment for any fitting procedure:
simulate campaigns from a known model, fit, and count how often the
nominal intervals contain the truth.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.bayes.joint import JointPosterior
from repro.bayes.priors import ModelPrior
from repro.data.simulation import simulate_failure_times
from repro.models.base import NHPPModel

__all__ = ["CoverageResult", "interval_coverage_study"]


@dataclass
class CoverageResult:
    """Outcome of a coverage study for one fitting procedure.

    Attributes
    ----------
    label:
        Name of the procedure.
    level:
        Nominal two-sided credible level.
    replications:
        Number of simulated campaigns actually used.
    hits:
        Per-parameter counts of intervals containing the truth.
    widths:
        Per-parameter mean interval widths.
    """

    label: str
    level: float
    replications: int
    hits: dict[str, int] = field(default_factory=dict)
    widths: dict[str, float] = field(default_factory=dict)

    def coverage(self, param: str) -> float:
        """Empirical coverage rate for the parameter."""
        return self.hits[param] / self.replications

    def coverage_standard_error(self, param: str) -> float:
        """Binomial standard error of the empirical coverage."""
        p = self.coverage(param)
        return math.sqrt(p * (1.0 - p) / self.replications)

    def undercovers(self, param: str, z: float = 2.0) -> bool:
        """True when the empirical coverage is significantly below the
        nominal level (one-sided z-test at the given threshold)."""
        shortfall = self.level - self.coverage(param)
        se = math.sqrt(self.level * (1.0 - self.level) / self.replications)
        return shortfall > z * se


def interval_coverage_study(
    true_model: NHPPModel,
    prior: ModelPrior,
    fitters: dict[str, Callable[..., JointPosterior]],
    *,
    horizon: float,
    level: float = 0.99,
    replications: int = 200,
    min_failures: int = 3,
    seed: int = 0,
) -> dict[str, CoverageResult]:
    """Run a coverage study for several fitting procedures on common data.

    Parameters
    ----------
    true_model:
        Data-generating NHPP model; its ``omega`` and ``beta`` are the
        truths the intervals must cover.
    prior:
        Prior handed to every fitter.
    fitters:
        ``{label: fit}`` where ``fit(data, prior)`` returns a
        :class:`JointPosterior` (e.g. ``fit_vb2`` / ``fit_vb1``).
    horizon:
        Observation horizon of each simulated campaign.
    level:
        Nominal two-sided credible level to assess.
    replications:
        Number of simulated campaigns.
    min_failures:
        Campaigns with fewer observed failures are skipped (no
        meaningful fit); all procedures see the same campaigns.
    """
    if replications < 1:
        raise ValueError("replications must be positive")
    truths = {
        "omega": true_model.omega,
        "beta": float(true_model.params["beta"]),
    }
    rng = np.random.default_rng(seed)
    results = {
        label: CoverageResult(
            label=label,
            level=level,
            replications=0,
            hits={"omega": 0, "beta": 0},
            widths={"omega": 0.0, "beta": 0.0},
        )
        for label in fitters
    }
    used = 0
    for _ in range(replications):
        data = simulate_failure_times(true_model, horizon, rng)
        if data.count < min_failures:
            continue
        used += 1
        for label, fit in fitters.items():
            posterior = fit(data, prior)
            record = results[label]
            for param, truth in truths.items():
                lo, hi = posterior.credible_interval(param, level)
                if lo <= truth <= hi:
                    record.hits[param] += 1
                record.widths[param] += hi - lo
    if used == 0:
        raise ValueError(
            "no simulated campaign reached min_failures; increase the "
            "horizon or the model's omega"
        )
    for record in results.values():
        record.replications = used
        for param in record.widths:
            record.widths[param] /= used
    return results
