"""Frequentist coverage studies for Bayesian interval procedures.

The operational justification for preferring VB2 over VB1 is not the
KL divergence — it is that VB1's too-narrow intervals *under-cover*:
their actual frequentist coverage falls short of the nominal credible
level. This module runs that experiment for any fitting procedure:
simulate campaigns from a known model, fit, and count how often the
nominal intervals contain the truth.

Each replication owns a ``numpy.random.SeedSequence`` child derived
from ``(seed, index)`` (see :mod:`repro.validation.seeding`), so the
study parallelises over a process pool (``workers > 1``) with results
bit-identical to the serial run. Fitters must then be picklable —
module-level functions such as ``fit_vb2`` / ``fit_vb1`` are.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro import obs
from repro.bayes.joint import JointPosterior
from repro.bayes.priors import ModelPrior
from repro.data.simulation import simulate_failure_times
from repro.exceptions import ReproError
from repro.models.base import NHPPModel
from repro.validation.parallel import parallel_map
from repro.validation.seeding import replication_seed

__all__ = ["CoverageResult", "interval_coverage_study"]

_PARAMS = ("omega", "beta")


@dataclass
class CoverageResult:
    """Outcome of a coverage study for one fitting procedure.

    Attributes
    ----------
    label:
        Name of the procedure.
    level:
        Nominal two-sided credible level.
    replications:
        Number of simulated campaigns actually used.
    hits:
        Per-parameter counts of intervals containing the truth.
    widths:
        Per-parameter mean interval widths.
    """

    label: str
    level: float
    replications: int
    hits: dict[str, int] = field(default_factory=dict)
    widths: dict[str, float] = field(default_factory=dict)

    def coverage(self, param: str) -> float:
        """Empirical coverage rate for the parameter."""
        return self.hits[param] / self.replications

    def coverage_standard_error(self, param: str) -> float:
        """Binomial standard error of the empirical coverage."""
        p = self.coverage(param)
        return math.sqrt(p * (1.0 - p) / self.replications)

    def undercovers(self, param: str, z: float = 2.0) -> bool:
        """True when the empirical coverage is significantly below the
        nominal level (one-sided z-test at the given threshold)."""
        shortfall = self.level - self.coverage(param)
        se = math.sqrt(self.level * (1.0 - self.level) / self.replications)
        return shortfall > z * se

    def to_dict(self) -> dict:
        """JSON-ready summary (validation artifacts)."""
        return {
            "label": self.label,
            "level": self.level,
            "replications": self.replications,
            "coverage": {p: self.coverage(p) for p in sorted(self.hits)},
            "mean_width": {p: self.widths[p] for p in sorted(self.widths)},
            "undercovers": {p: self.undercovers(p) for p in sorted(self.hits)},
        }


def _interval_score(
    posterior: JointPosterior,
    truths: dict[str, float],
    levels: np.ndarray,
) -> tuple[dict[str, bool], dict[str, float]]:
    """Hit flags and widths of one posterior's central intervals, both
    endpoints through the batched quantile path (one simultaneous
    inversion per parameter)."""
    hits = {}
    widths = {}
    for param, truth in truths.items():
        lo, hi = posterior.quantile_batch(param, levels)
        hits[param] = bool(lo <= truth <= hi)
        widths[param] = float(hi - lo)
    return hits, widths


def _coverage_replication(
    true_model: NHPPModel,
    prior: ModelPrior,
    fitters: dict[str, Callable[..., JointPosterior]],
    horizon: float,
    level: float,
    min_failures: int,
    seed: int,
    index: int,
) -> dict[str, tuple[dict[str, bool], dict[str, float]]] | None:
    """Simulate one campaign and evaluate every fitter's intervals.

    Returns ``None`` for skipped campaigns — too few failures, or any
    fitter raising a library error (non-convergence now *raises*
    rather than silently returning an unconverged quantile; skipping
    keeps every procedure scored on the same campaigns) — else
    ``{label: (hit flags, interval widths)}`` per parameter.
    """
    rng = np.random.default_rng(replication_seed(seed, index))
    data = simulate_failure_times(true_model, horizon, rng)
    if data.count < min_failures:
        return None
    truths = {
        "omega": true_model.omega,
        "beta": float(true_model.params["beta"]),
    }
    tail = 0.5 * (1.0 - level)
    levels = np.array([tail, 1.0 - tail])
    out: dict[str, tuple[dict[str, bool], dict[str, float]]] = {}
    for label, fit in fitters.items():
        try:
            posterior = fit(data, prior)
            hits, widths = _interval_score(posterior, truths, levels)
        except ReproError as exc:
            obs.event(
                "coverage.replication_failed",
                index=index,
                label=label,
                error=type(exc).__name__,
            )
            return None
        out[label] = (hits, widths)
    return out


def _lane_phase(
    per_replication: list,
    lane_fitters: dict,
    true_model: NHPPModel,
    prior: ModelPrior,
    horizon: float,
    level: float,
    seed: int,
    indices: list[int],
) -> list:
    """Score every lane fitter on the campaigns the per-replication
    phase kept, all campaigns at once per fitter.

    Campaign ``i``'s data is rebuilt from ``replication_seed(seed, i)``
    — the same stream the per-replication phase consumed, so both
    phases see bit-identical datasets — and the fitter's lane ``i``
    draws from the separate ``replication_seed(seed, i, 1)`` stream.
    """
    eligible = [
        index
        for index, outcome in zip(indices, per_replication)
        if outcome is not None
    ]
    if not eligible:
        return per_replication
    datasets = []
    for index in eligible:
        rng = np.random.default_rng(replication_seed(seed, index))
        datasets.append(simulate_failure_times(true_model, horizon, rng))
    truths = {
        "omega": true_model.omega,
        "beta": float(true_model.params["beta"]),
    }
    tail = 0.5 * (1.0 - level)
    levels = np.array([tail, 1.0 - tail])
    merged = {
        index: dict(outcome)
        for index, outcome in zip(indices, per_replication)
        if outcome is not None
    }
    for label, fitter in lane_fitters.items():
        rngs = [
            np.random.default_rng(replication_seed(seed, index, 1))
            for index in eligible
        ]
        posteriors = fitter.fit_lanes(datasets, prior, rngs)
        obs.event(
            "coverage.lane_phase",
            label=label,
            lanes=len(eligible),
            confidence=level,
        )
        for index, posterior in zip(eligible, posteriors):
            merged[index][label] = _interval_score(posterior, truths, levels)
    return [merged.get(index) for index in indices]


def interval_coverage_study(
    true_model: NHPPModel,
    prior: ModelPrior,
    fitters: dict[str, Callable[..., JointPosterior]],
    *,
    horizon: float,
    level: float = 0.99,
    replications: int = 200,
    min_failures: int = 3,
    seed: int = 0,
    workers: int | None = 1,
) -> dict[str, CoverageResult]:
    """Run a coverage study for several fitting procedures on common data.

    Parameters
    ----------
    true_model:
        Data-generating NHPP model; its ``omega`` and ``beta`` are the
        truths the intervals must cover.
    prior:
        Prior handed to every fitter.
    fitters:
        ``{label: fit}`` where ``fit(data, prior)`` returns a
        :class:`JointPosterior` (e.g. ``fit_vb2`` / ``fit_vb1``). A
        fitter exposing ``fit_lanes(datasets, prior, rngs)`` (e.g.
        :class:`repro.validation.fitters.MCMCLaneFitter`) is instead
        run in a *lane phase*: every eligible campaign is fitted at
        once as lock-step lanes of one batched MCMC run, with lane
        ``i`` seeded from ``(seed, i, 1)``. Lane fitters score exactly
        the campaigns the per-replication phase kept, so all
        procedures stay comparable on a common campaign set; the
        per-replication path itself is unchanged when no lane fitter
        is present.
    horizon:
        Observation horizon of each simulated campaign.
    level:
        Nominal two-sided credible level to assess.
    replications:
        Number of simulated campaigns.
    min_failures:
        Campaigns with fewer observed failures are skipped (no
        meaningful fit); all procedures see the same campaigns.
    seed:
        Root seed; campaign ``i`` depends only on ``(seed, i)``.
    workers:
        Process count for the campaign runner (``1`` = serial,
        ``None`` = one per core); the results are identical for any
        value.
    """
    if replications < 1:
        raise ValueError("replications must be positive")
    lane_fitters = {
        label: fit for label, fit in fitters.items() if hasattr(fit, "fit_lanes")
    }
    loop_fitters = {
        label: fit for label, fit in fitters.items() if label not in lane_fitters
    }
    worker = partial(
        _coverage_replication,
        true_model,
        prior,
        loop_fitters,
        horizon,
        level,
        min_failures,
        seed,
    )
    indices = list(range(replications))
    heartbeat = obs.Heartbeat("coverage.replications", len(indices))
    on_result = lambda done, _result: heartbeat.tick(done)  # noqa: E731
    col = obs.active()
    if col is None:
        per_replication = parallel_map(
            worker, indices, workers=workers, on_result=on_result
        )
    else:
        # Same capture-and-merge path serially and on a process pool:
        # the merged trace is byte-identical for any worker count.
        pairs = parallel_map(
            partial(obs.traced_task, worker, col.level),
            indices,
            workers=workers,
            on_result=on_result,
        )
        per_replication = []
        for index, (outcome, payload) in zip(indices, pairs):
            col.merge(payload, rep=index)
            per_replication.append(outcome)
        obs.event(
            "coverage.campaign",
            replications=replications,
            used=sum(1 for o in per_replication if o is not None),
            confidence=level,
        )
    if lane_fitters:
        per_replication = _lane_phase(
            per_replication,
            lane_fitters,
            true_model,
            prior,
            horizon,
            level,
            seed,
            indices,
        )
    results = {
        label: CoverageResult(
            label=label,
            level=level,
            replications=0,
            hits={p: 0 for p in _PARAMS},
            widths={p: 0.0 for p in _PARAMS},
        )
        for label in fitters
    }
    used = 0
    for outcome in per_replication:
        if outcome is None:
            continue
        used += 1
        for label, (hits, widths) in outcome.items():
            record = results[label]
            for param in _PARAMS:
                record.hits[param] += int(hits[param])
                record.widths[param] += widths[param]
    if used == 0:
        raise ValueError(
            "no simulated campaign reached min_failures; increase the "
            "horizon or the model's omega"
        )
    for record in results.values():
        record.replications = used
        for param in record.widths:
            record.widths[param] /= used
    return results
