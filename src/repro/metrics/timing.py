"""Wall-clock timing helpers for the computation-cost tables."""

from __future__ import annotations

import math
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro import obs

__all__ = ["TimingRecord", "time_callable"]


@dataclass(frozen=True)
class TimingRecord:
    """One timed run: the result, summary statistics over the repeats,
    and every per-repeat sample.

    ``seconds`` is the *minimum* over the repeats (the standard
    noise-robust point estimate); ``mean`` and ``std`` expose the
    spread so cost tables can report run-to-run variability too.
    """

    result: object
    seconds: float
    label: str = ""
    samples: tuple[float, ...] = field(default=())

    @property
    def mean(self) -> float:
        """Mean elapsed seconds over the repeats."""
        if not self.samples:
            return self.seconds
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        """Population standard deviation of the per-repeat times."""
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((s - mu) ** 2 for s in self.samples) / len(self.samples)
        )


def time_callable(fn: Callable[[], object], *, label: str = "",
                  repeat: int = 1) -> TimingRecord:
    """Time ``fn`` with ``perf_counter``; with ``repeat > 1``, keeps the
    *minimum* elapsed time (the standard noise-robust choice) and the
    result of the first run. All per-repeat samples are recorded on the
    returned :class:`TimingRecord`, and a ``timing`` event is emitted
    through :mod:`repro.obs` when a collector at the ``timing`` level or
    above is active."""
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    result = None
    samples: list[float] = []
    for i in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if i == 0:
            result = value
        samples.append(elapsed)
    obs.timing_sample(label or "anonymous", samples)
    return TimingRecord(
        result=result, seconds=min(samples), label=label,
        samples=tuple(samples),
    )
