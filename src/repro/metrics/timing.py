"""Wall-clock timing helpers for the computation-cost tables."""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

__all__ = ["TimingRecord", "time_callable"]


@dataclass(frozen=True)
class TimingRecord:
    """One timed run: the result and the elapsed wall-clock seconds."""

    result: object
    seconds: float
    label: str = ""


def time_callable(fn: Callable[[], object], *, label: str = "",
                  repeat: int = 1) -> TimingRecord:
    """Time ``fn`` with ``perf_counter``; with ``repeat > 1``, keeps the
    *minimum* elapsed time (the standard noise-robust choice) and the
    result of the first run."""
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    best = float("inf")
    result = None
    for i in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if i == 0:
            result = value
        best = min(best, elapsed)
    return TimingRecord(result=result, seconds=best, label=label)
