"""Relative-deviation metrics, matching the paper's table conventions.

Every Table 1–3 entry for LAPL/MCMC/VB1/VB2 is reported as the relative
deviation from the NINT reference: ``(value - reference) / |reference|``
(the paper prints it as a percentage).
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

__all__ = ["relative_deviation", "deviation_table"]


def relative_deviation(value: float, reference: float) -> float:
    """``(value - reference) / |reference|``.

    Returns NaN when the reference is zero (deviation undefined) unless
    the value is also zero, in which case the deviation is zero. The
    paper's convention of printing "100.0%" for VB1's zero covariance
    against a negative reference falls out naturally.
    """
    if reference == 0.0:
        return 0.0 if value == 0.0 else math.nan
    return (value - reference) / abs(reference)


def deviation_table(
    results: Mapping[str, Mapping[str, float]],
    reference_method: str,
    quantities: Sequence[str] | None = None,
) -> dict[str, dict[str, float]]:
    """Per-method, per-quantity relative deviations from a reference.

    Parameters
    ----------
    results:
        ``{method: {quantity: value}}`` (the reference method included).
    reference_method:
        Key of the reference row (the paper uses "NINT").
    quantities:
        Subset/order of quantities; defaults to the reference row's keys.

    Returns
    -------
    ``{method: {quantity: deviation}}`` for the non-reference methods.
    """
    if reference_method not in results:
        raise KeyError(f"reference method {reference_method!r} not in results")
    reference = results[reference_method]
    if quantities is None:
        quantities = list(reference.keys())
    table: dict[str, dict[str, float]] = {}
    for method, row in results.items():
        if method == reference_method:
            continue
        table[method] = {
            q: relative_deviation(row[q], reference[q]) for q in quantities
        }
    return table
