"""Comparison metrics and table rendering for the experiment harness."""

from repro.metrics.comparison import relative_deviation, deviation_table
from repro.metrics.tables import render_table, format_value
from repro.metrics.timing import time_callable, TimingRecord
from repro.metrics.gof import (
    TrendTestResult,
    laplace_trend_test,
    ks_uplot_statistic,
    ChiSquareResult,
    chi_square_grouped,
    log_likelihood_ratio,
)
from repro.metrics.coverage import CoverageResult, interval_coverage_study

__all__ = [
    "relative_deviation",
    "deviation_table",
    "render_table",
    "format_value",
    "time_callable",
    "TimingRecord",
    "TrendTestResult",
    "laplace_trend_test",
    "ks_uplot_statistic",
    "ChiSquareResult",
    "chi_square_grouped",
    "log_likelihood_ratio",
    "CoverageResult",
    "interval_coverage_study",
]
