"""Command-line interface.

Two families of commands:

* experiment regeneration — one sub-command per paper table/figure::

      python -m repro table1 --scale quick
      python -m repro figure1 --out figure1_csv/
      python -m repro all --scale paper

* library usage on your own data::

      python -m repro fit --data failures.csv --kind times \
          --omega-mean 50 --omega-std 16 --beta-mean 1e-5 --beta-std 3e-6
      python -m repro simulate --model goel-okumoto --omega 40 \
          --beta 1e-5 --horizon 250000 --out sim.csv

  ``fit --cache-dir PATH`` routes VB fits through the content-addressed
  posterior cache (a repeat fit of identical inputs loads the stored
  posterior byte-identically instead of solving); ``repro cache stats``
  and ``repro cache clear`` inspect and empty such a directory.

* posterior-method validation campaigns (parallel across cores)::

      python -m repro validate sbc --model goel-okumoto --method VB2 \
          --replications 200 --workers 4
      python -m repro validate coverage --methods VB1,VB2 \
          --replications 200 --level 0.9 --workers 4
      python -m repro validate robustness --families contaminated \
          --replications 100 --workers 4

``fit``, ``simulate`` and the ``validate`` campaigns accept
``--trace PATH`` (with ``--trace-level summary|timing|debug``) to write
a JSONL telemetry trace of the run; ``repro report trace.jsonl``
renders it as per-method cost/convergence tables. ``-v`` / ``-vv``
turn on INFO / DEBUG logging.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.experiments import PAPER_SCALE, QUICK_SCALE
from repro.obs import TRACE_LEVELS

__all__ = ["main", "build_parser"]

_EXPERIMENTS = (
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "figure1",
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of Okamura et al., "
            "'Variational Bayesian Approach for Interval Estimation of "
            "NHPP-Based Software Reliability Models' (DSN 2007), or run "
            "the estimators on your own failure data."
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress to stderr (-v = INFO, -vv = DEBUG)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_trace_options(sub) -> None:
        sub.add_argument(
            "--trace", default=None, metavar="PATH",
            help="write a JSONL telemetry trace of this run to PATH",
        )
        sub.add_argument(
            "--trace-level", choices=list(TRACE_LEVELS), default="summary",
            help="trace verbosity: 'summary' is deterministic (no "
            "wall-clock), 'timing' adds durations, 'debug' adds "
            "per-iteration spans",
        )

    for name in (*_EXPERIMENTS, "all"):
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        sub.add_argument(
            "--scale", choices=["quick", "paper"], default="quick",
            help="computational scale: 'quick' (seconds) or 'paper' "
            "(the paper's full MCMC schedule)",
        )
        sub.add_argument(
            "--out", default=None,
            help="directory for figure1 CSV export (figure1/all only)",
        )
        sub.add_argument(
            "--workers", type=int, default=1,
            help="process count for running independent scenarios "
            "concurrently (0 = one per core)",
        )

    fit = subparsers.add_parser("fit", help="fit a posterior to a dataset")
    fit.add_argument("--data", default=None, help="CSV file with the data")
    fit.add_argument(
        "--fleet", default=None, metavar="MANIFEST",
        help="fit a whole portfolio in one vectorized sweep: JSON "
        "manifest listing the datasets (mutually exclusive with --data; "
        "methods vb2 and vb1 only)",
    )
    fit.add_argument(
        "--kind", choices=["times", "grouped"], default="times",
        help="data structure of the CSV (one time per row, or "
        "boundary,count rows)",
    )
    fit.add_argument(
        "--horizon", type=float, default=None,
        help="observation horizon for failure-time data "
        "(defaults to the last failure)",
    )
    fit.add_argument(
        "--method", choices=["vb2", "vb1", "laplace", "mcmc"], default="vb2",
        help="posterior approximation to use",
    )
    fit.add_argument(
        "--alpha0", type=float, default=1.0,
        help="gamma-type lifetime shape (1 = Goel-Okumoto, 2 = delayed "
        "S-shaped)",
    )
    fit.add_argument("--omega-mean", type=float, default=None,
                     help="prior mean for omega (omit for a flat prior)")
    fit.add_argument("--omega-std", type=float, default=None)
    fit.add_argument("--beta-mean", type=float, default=None)
    fit.add_argument("--beta-std", type=float, default=None)
    fit.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed posterior cache: refitting already-seen "
        "(data, prior, config) inputs loads the stored posterior "
        "byte-identically instead of running the solver "
        "(methods vb2/vb1 with --data only)",
    )
    fit.add_argument(
        "--backend", default=None, metavar="NAME",
        help="array backend for the solver kernels (numpy, portable, "
        "jax, cupy; default follows REPRO_BACKEND, else numpy; "
        "methods vb2 and vb1 with --data only)",
    )
    fit.add_argument("--level", type=float, default=0.99,
                     help="credible level for the reported intervals")
    fit.add_argument("--predict", type=float, default=None, metavar="U",
                     help="also report reliability and the predictive "
                     "failure-count distribution for the window (te, te+U]")
    add_trace_options(fit)

    simulate = subparsers.add_parser(
        "simulate", help="simulate failure data from a model"
    )
    simulate.add_argument("--model", default="goel-okumoto",
                          help="model family registry name")
    simulate.add_argument("--omega", type=float, required=True)
    simulate.add_argument("--beta", type=float, required=True)
    simulate.add_argument("--horizon", type=float, required=True)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--out", default=None,
                          help="write the failure times to this CSV")
    add_trace_options(simulate)

    validate = subparsers.add_parser(
        "validate",
        help="run a posterior-method validation campaign "
        "(simulation-based calibration or interval coverage)",
    )
    validate_kind = validate.add_subparsers(dest="validate_command",
                                            required=True)

    def add_campaign_options(sub) -> None:
        sub.add_argument("--replications", type=int, default=200,
                         help="number of simulated campaigns")
        sub.add_argument("--workers", type=int, default=1,
                         help="process count (0 = one per core); results "
                         "are identical for any value")
        sub.add_argument("--seed", type=int, default=0,
                         help="root seed of the deterministic stream tree")
        sub.add_argument("--horizon", type=float, default=25.0,
                         help="observation horizon of each campaign")
        sub.add_argument("--min-failures", type=int, default=3,
                         help="campaigns observing fewer failures are skipped")
        sub.add_argument("--scale", choices=["quick", "paper"],
                         default="quick",
                         help="MCMC schedule / NINT resolution for those "
                         "methods")
        sub.add_argument("--out", default=None,
                         help="JSON artifact path (defaults to "
                         "benchmarks/results/<campaign>.json)")
        sub.add_argument("--omega-mean", type=float, default=40.0,
                         help="prior mean for omega")
        sub.add_argument("--omega-std", type=float, default=12.0)
        sub.add_argument("--beta-mean", type=float, default=0.1)
        sub.add_argument("--beta-std", type=float, default=0.04)
        add_trace_options(sub)

    sbc = validate_kind.add_parser(
        "sbc", help="simulation-based calibration (rank uniformity)"
    )
    sbc.add_argument("--model", default="goel-okumoto",
                     help="data-generating model registry name "
                     "(underscores accepted)")
    sbc.add_argument("--method", default="VB2",
                     help="posterior method under test "
                     "(NINT, LAPL, MCMC, VB1, VB2)")
    sbc.add_argument("--ranks", type=int, default=63,
                     help="L: posterior draws per rank statistic")
    sbc.add_argument("--window", type=float, default=None,
                     help="reliability prediction window "
                     "(default horizon / 5)")
    add_campaign_options(sbc)

    coverage = validate_kind.add_parser(
        "coverage", help="frequentist coverage of the credible intervals"
    )
    coverage.add_argument("--methods", default="VB1,VB2",
                          help="comma-separated fitters to compare "
                          "(subset of LAPL, VB1, VB2)")
    coverage.add_argument("--level", type=float, default=0.99,
                          help="nominal credible level to assess")
    coverage.add_argument("--true-omega", type=float, default=40.0,
                          help="data-generating omega")
    coverage.add_argument("--true-beta", type=float, default=0.1,
                          help="data-generating beta")
    add_campaign_options(coverage)

    robustness = validate_kind.add_parser(
        "robustness",
        help="interval coverage under misspecified data generators "
        "(degradation curves + sandwich-correction pay-back)",
    )
    robustness.add_argument(
        "--families", default="all",
        help="comma-separated scenario families to sweep (weibull-hazard, "
        "change-point, contaminated, truncated-reporting) or 'all'",
    )
    robustness.add_argument(
        "--severities", action="append", default=None, metavar="FAMILY=S1,S2",
        help="override one family's severity grid, e.g. "
        "'contaminated=0,0.4,0.7' (repeatable; grids should start at the "
        "well-specified anchor 0)",
    )
    robustness.add_argument(
        "--methods", default="NINT,LAPL,MCMC,VB1,VB2",
        help="comma-separated posterior methods to score",
    )
    robustness.add_argument(
        "--no-sandwich", action="store_true",
        help="skip the sandwich-corrected VB2 column",
    )
    robustness.add_argument(
        "--level", type=float, default=0.9,
        help="nominal credible level to assess",
    )
    add_campaign_options(robustness)

    report = subparsers.add_parser(
        "report",
        help="render a JSONL telemetry trace as per-method "
        "cost/convergence tables",
    )
    report.add_argument("trace_file",
                        help="trace written by a --trace run")
    report.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format: human-readable tables or a JSON summary",
    )
    report.add_argument(
        "--metrics", action="store_true",
        help="also render the labeled metrics snapshot "
        "(counters/gauges/log-bucket histograms)",
    )
    report.add_argument(
        "--profile", action="store_true",
        help="also render the aggregated span call tree "
        "(call counts, self/cumulative wall time)",
    )
    report.add_argument(
        "--folded", default=None, metavar="PATH",
        help="write the profile as folded stacks (flamegraph.pl input) "
        "to PATH",
    )

    cache_cmd = subparsers.add_parser(
        "cache",
        help="inspect or clear a content-addressed posterior cache "
        "directory (as used by `fit --cache-dir`)",
    )
    cache_kind = cache_cmd.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_kind.add_parser(
        "stats", help="artifact count and disk footprint of a cache"
    )
    cache_stats.add_argument(
        "cache_dir", metavar="DIR",
        help="cache directory (the path passed to fit --cache-dir)",
    )
    cache_stats.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (json is what the nightly CI artifact "
        "collects)",
    )
    cache_clear = cache_kind.add_parser(
        "clear",
        help="delete every cached artifact; files the cache did not "
        "write are left alone",
    )
    cache_clear.add_argument(
        "cache_dir", metavar="DIR",
        help="cache directory (the path passed to fit --cache-dir)",
    )

    bench = subparsers.add_parser(
        "bench",
        help="perf ledger over the BENCH_*.json benchmark artifacts",
    )
    bench_kind = bench.add_subparsers(dest="bench_command", required=True)
    bench_check = bench_kind.add_parser(
        "check",
        help="gate fresh benchmark runs against the committed baselines "
        "(exit 1 on a >20%% speedup regression or a failed exactness "
        "check); with no files, self-check every committed baseline",
    )
    bench_check.add_argument(
        "fresh", nargs="*", metavar="BENCH.json",
        help="fresh benchmark result files; each is matched to the "
        "baseline of the same name in --baseline-dir",
    )
    bench_check.add_argument(
        "--baseline-dir", default="benchmarks/results", metavar="DIR",
        help="directory holding the committed BENCH_*.json baselines",
    )
    bench_report = bench_kind.add_parser(
        "report", help="render the unified perf ledger"
    )
    bench_report.add_argument(
        "--dir", default="benchmarks/results", metavar="DIR",
        help="directory holding BENCH_*.json files",
    )
    bench_report.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format",
    )
    bench_report.add_argument(
        "--backends", action="store_true",
        help="append a per-backend column (speedup vs numpy, median "
        "over the measured kernels) to the text report",
    )
    return parser


def _run_experiment(name: str, scale, out: str | None, workers: int = 1) -> str:
    from repro.experiments import figure1, table1, table23, table45, table67

    if name == "table1":
        return table1.render(table1.run(scale=scale, workers=workers))
    if name == "table2":
        return table23.render(
            table23.run("DT", scale=scale, workers=workers), table_number=2
        )
    if name == "table3":
        return table23.render(
            table23.run("DG", scale=scale, workers=workers), table_number=3
        )
    if name == "table4":
        _, rows = table45.run("DT", scale=scale)
        return table45.render(rows, table_number=4, unit="s")
    if name == "table5":
        _, rows = table45.run("DG", scale=scale)
        return table45.render(rows, table_number=5, unit="d")
    if name == "table6":
        return table67.render_table6(table67.run_table6(scale=scale))
    if name == "table7":
        return table67.render_table7(table67.run_table7())
    if name == "figure1":
        figure = figure1.run(scale=scale)
        text = figure1.render_ascii(figure)
        if out:
            paths = figure1.save_csv(figure, out)
            text += "\n\nCSV written to:\n" + "\n".join(str(p) for p in paths)
        return text
    raise ValueError(f"unknown experiment {name!r}")


def _build_prior(args) -> "ModelPrior":
    from repro.bayes.priors import FlatPrior, GammaPrior, ModelPrior

    informative = [args.omega_mean, args.omega_std, args.beta_mean, args.beta_std]
    if all(value is None for value in informative):
        return ModelPrior.noninformative()
    if any(value is None for value in informative):
        raise SystemExit(
            "either give all four of --omega-mean/--omega-std/"
            "--beta-mean/--beta-std or none (flat priors)"
        )
    return ModelPrior(
        omega=GammaPrior.from_mean_std(args.omega_mean, args.omega_std),
        beta=GammaPrior.from_mean_std(args.beta_mean, args.beta_std),
    )


def _run_fit(args) -> str:
    from repro.bayes.laplace import fit_laplace
    from repro.bayes.mcmc.gibbs_failure_time import gibbs_failure_time
    from repro.bayes.mcmc.gibbs_grouped import gibbs_grouped
    from repro.core.prediction import predict_failure_counts
    from repro.core.reliability import estimate_reliability
    from repro.core.vb1 import fit_vb1
    from repro.core.vb2 import fit_vb2
    from repro.data.failure_data import FailureTimeData
    from repro.data.io import load_failure_times_csv, load_grouped_csv
    from repro.exceptions import BackendUnavailableError

    if (args.data is None) == (args.fleet is None):
        raise SystemExit("fit needs exactly one of --data or --fleet")
    if args.backend is not None:
        if args.fleet is not None:
            raise SystemExit(
                "--backend applies to --data fits only (the fleet "
                "sweep is NumPy-only)"
            )
        if args.method not in ("vb2", "vb1"):
            raise SystemExit(
                f"--backend supports methods vb2 and vb1, "
                f"not {args.method}"
            )
    if args.cache_dir is not None:
        if args.fleet is not None:
            raise SystemExit("--cache-dir applies to --data fits only")
        if args.method not in ("vb2", "vb1"):
            raise SystemExit(
                f"--cache-dir supports methods vb2 and vb1, "
                f"not {args.method}"
            )
    if args.fleet is not None:
        return _run_fit_fleet(args)
    if args.kind == "times":
        data = load_failure_times_csv(args.data, horizon=args.horizon)
    else:
        data = load_grouped_csv(args.data)
    prior = _build_prior(args)

    cache = None
    if args.cache_dir is not None:
        from repro.cache.store import PosteriorCache

        cache = PosteriorCache(args.cache_dir)

    config = None
    if args.backend is not None:
        from repro.core.config import VBConfig

        try:
            config = VBConfig(backend=args.backend)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from exc

    try:
        if args.method == "vb2":
            if cache is not None:
                from repro.cache.fitting import fit_vb2_cached

                posterior = fit_vb2_cached(
                    data, prior, args.alpha0, config, cache=cache
                )
            else:
                posterior = fit_vb2(
                    data, prior, alpha0=args.alpha0, config=config
                )
        elif args.method == "vb1":
            if cache is not None:
                from repro.cache.fitting import fit_vb1_cached

                posterior = fit_vb1_cached(
                    data, prior, args.alpha0, config, cache=cache
                )
            else:
                posterior = fit_vb1(
                    data, prior, alpha0=args.alpha0, config=config
                )
        elif args.method == "laplace":
            posterior = fit_laplace(data, prior, alpha0=args.alpha0)
        else:
            sampler = (
                gibbs_failure_time if isinstance(data, FailureTimeData) else gibbs_grouped
            )
            posterior = sampler(data, prior, alpha0=args.alpha0).posterior()
    except (BackendUnavailableError, ValueError) as exc:
        # Missing adapter packages and backend/feature conflicts are
        # user errors, not tracebacks.
        if args.backend is None:
            raise
        raise SystemExit(f"error: {exc}") from exc

    lines = [f"method: {posterior.method_name}    data: {data!r}"]
    if cache is not None:
        stats = cache.stats
        outcome = (
            "hit (memory)" if stats.hits_memory
            else "hit (disk)" if stats.hits_disk
            else "miss (fitted and stored)"
        )
        lines.append(
            f"  cache: {outcome} — {len(cache.disk_entries())} artifacts, "
            f"{cache.disk_bytes()} bytes in {args.cache_dir}"
        )
    for param in ("omega", "beta"):
        lo, hi = posterior.credible_interval(param, args.level)
        lines.append(
            f"  {param}: mean {posterior.mean(param):.6g}   "
            f"{args.level:.0%} CI [{lo:.6g}, {hi:.6g}]"
        )
    lines.append(f"  Cov(omega, beta): {posterior.covariance():.6g}")
    if args.predict is not None:
        estimate = estimate_reliability(
            posterior, data.horizon, args.predict,
            alpha0=args.alpha0, level=args.level,
        )
        lines.append(f"  {estimate}")
        counts = predict_failure_counts(
            posterior, data.horizon, args.predict, alpha0=args.alpha0
        )
        head = ", ".join(
            f"P(K={k})={p:.4f}" for k, p in enumerate(counts.pmf[:5])
        )
        lines.append(
            f"  predictive failures in window: mean {counts.mean():.3f}   {head}"
        )
    return "\n".join(lines)


def _run_fit_fleet(args) -> str:
    from repro.core.fleet import fit_vb1_fleet, fit_vb2_fleet
    from repro.data.fleet import load_fleet_manifest

    if args.method not in ("vb2", "vb1"):
        raise SystemExit(
            f"--fleet supports methods vb2 and vb1, not {args.method}"
        )
    datasets = load_fleet_manifest(args.fleet)
    prior = _build_prior(args)
    fitter = fit_vb2_fleet if args.method == "vb2" else fit_vb1_fleet
    fleet = fitter(datasets, prior, alpha0=args.alpha0)

    lines = [
        f"method: {fleet.method_name}    fleet: {len(fleet)} datasets "
        f"({args.fleet})"
    ]
    omega_ci = fleet.credible_intervals("omega", args.level)
    beta_ci = fleet.credible_intervals("beta", args.level)
    omega_means = fleet.means("omega")
    beta_means = fleet.means("beta")
    for i in range(len(fleet)):
        diag = fleet.diagnostics[i]
        lines.append(
            f"  [{i}] {diag['data_kind']}: "
            f"omega {omega_means[i]:.6g} "
            f"[{omega_ci[i, 0]:.6g}, {omega_ci[i, 1]:.6g}]   "
            f"beta {beta_means[i]:.6g} "
            f"[{beta_ci[i, 0]:.6g}, {beta_ci[i, 1]:.6g}]"
        )
    expected = fleet.expected_total_faults()
    lines.append(
        f"  portfolio: E[total faults] {float(expected.sum()):.6g} "
        f"across {len(fleet)} projects at {args.level:.0%} intervals"
    )
    return "\n".join(lines)


def _campaign_prior(args) -> "ModelPrior":
    from repro.bayes.priors import ModelPrior

    return ModelPrior.informative(
        args.omega_mean, args.omega_std, args.beta_mean, args.beta_std
    )


def _campaign_workers(args) -> int | None:
    # --workers 0 means "one process per core".
    return None if args.workers == 0 else args.workers


def _run_validate_sbc(args) -> str:
    from repro.experiments import PAPER_SCALE, QUICK_SCALE
    from repro.metrics.timing import time_callable
    from repro.validation.artifacts import (
        ValidationArtifact,
        default_artifact_path,
        save_artifact,
    )
    from repro.validation.sbc import SBCSpec, run_sbc

    spec = SBCSpec(
        model=args.model.replace("_", "-"),
        method=args.method.upper(),
        prior=_campaign_prior(args),
        horizon=args.horizon,
        reliability_window=args.window,
        replications=args.replications,
        ranks=args.ranks,
        min_failures=args.min_failures,
        seed=args.seed,
        scale=PAPER_SCALE if args.scale == "paper" else QUICK_SCALE,
    )
    timing = time_callable(
        lambda: run_sbc(spec, workers=_campaign_workers(args))
    )
    result = timing.result
    summary = result.to_dict()
    artifact = ValidationArtifact(
        kind="sbc", config=summary["config"],
        results={k: v for k, v in summary.items() if k != "config"},
    )
    out = args.out or default_artifact_path("sbc", spec.model, spec.method)
    path = save_artifact(artifact, out)
    lines = [
        f"SBC: {spec.method} on {spec.model} — "
        f"{result.used} used / {result.skipped} skipped / "
        f"{result.failed} failed replications "
        f"({timing.seconds:.1f}s, workers={args.workers or 'auto'})",
    ]
    for quantity, report in result.reports().items():
        verdict = "ok" if report.calibrated else "MISCALIBRATED"
        lines.append(
            f"  {quantity:<12} chi2 p={report.chi_square.p_value:.4f}   "
            f"ecdf dev {report.ecdf.max_deviation:.4f} "
            f"(envelope {report.ecdf.envelope:.4f})   {verdict}"
        )
    lines.append(f"artifact: {path}")
    return "\n".join(lines)


def _run_validate_coverage(args) -> str:
    from repro.metrics.coverage import interval_coverage_study
    from repro.metrics.timing import time_callable
    from repro.models.registry import make_model
    from repro.validation.artifacts import (
        ValidationArtifact,
        default_artifact_path,
        save_artifact,
    )
    from repro.validation.fitters import coverage_fitters

    from repro.experiments import PAPER_SCALE, QUICK_SCALE

    labels = [label.strip().upper() for label in args.methods.split(",") if label.strip()]
    scale = PAPER_SCALE if args.scale == "paper" else QUICK_SCALE
    fitters = coverage_fitters(labels, scale=scale)
    true_model = make_model(
        "goel-okumoto", omega=args.true_omega, beta=args.true_beta
    )
    timing = time_callable(
        lambda: interval_coverage_study(
            true_model,
            _campaign_prior(args),
            fitters,
            horizon=args.horizon,
            level=args.level,
            replications=args.replications,
            min_failures=args.min_failures,
            seed=args.seed,
            workers=_campaign_workers(args),
        )
    )
    results = timing.result
    config = {
        "true_model": {"name": true_model.name, "omega": args.true_omega,
                       "beta": args.true_beta},
        "prior": {"omega": {"mean": args.omega_mean, "std": args.omega_std},
                  "beta": {"mean": args.beta_mean, "std": args.beta_std}},
        "methods": labels,
        "level": args.level,
        "horizon": args.horizon,
        "replications": args.replications,
        "min_failures": args.min_failures,
        "seed": args.seed,
        "scale": scale.label,
    }
    artifact = ValidationArtifact(
        kind="coverage",
        config=config,
        results={label: record.to_dict() for label, record in results.items()},
    )
    out = args.out or default_artifact_path("coverage", *labels)
    path = save_artifact(artifact, out)
    lines = [
        f"coverage at nominal {args.level:.0%} "
        f"({timing.seconds:.1f}s, workers={args.workers or 'auto'})"
    ]
    for label, record in results.items():
        flags = []
        for param in ("omega", "beta"):
            mark = "UNDER-COVERS" if record.undercovers(param) else "ok"
            flags.append(
                f"{param} {record.coverage(param):.3f} ({mark})"
            )
        lines.append(f"  {label:<6} {'   '.join(flags)}")
    lines.append(f"artifact: {path}")
    return "\n".join(lines)


def _parse_severity_overrides(entries) -> dict | None:
    """Parse repeated ``--severities FAMILY=S1,S2,...`` options."""
    if not entries:
        return None
    overrides: dict[str, tuple[float, ...]] = {}
    for entry in entries:
        family, _, grid = entry.partition("=")
        if not grid:
            raise SystemExit(
                f"error: --severities expects FAMILY=S1,S2,..., got {entry!r}"
            )
        try:
            overrides[family.strip()] = tuple(
                float(s) for s in grid.split(",") if s.strip()
            )
        except ValueError as exc:
            raise SystemExit(
                f"error: bad severity grid in {entry!r}: {exc}"
            ) from exc
    return overrides


def _run_validate_robustness(args) -> str:
    from repro.experiments import PAPER_SCALE, QUICK_SCALE
    from repro.metrics.timing import time_callable
    from repro.robustness import (
        SANDWICH_LABEL,
        SCENARIO_FAMILIES,
        RobustnessSpec,
        run_robustness,
    )
    from repro.validation.artifacts import (
        ValidationArtifact,
        default_artifact_path,
        save_artifact,
    )

    if args.families.strip().lower() == "all":
        families = tuple(SCENARIO_FAMILIES)
    else:
        families = tuple(
            f.strip() for f in args.families.split(",") if f.strip()
        )
    methods = tuple(
        label.strip().upper()
        for label in args.methods.split(",")
        if label.strip()
    )
    spec = RobustnessSpec(
        families=families,
        severities=_parse_severity_overrides(args.severities),
        methods=methods,
        sandwich=not args.no_sandwich,
        prior=_campaign_prior(args),
        horizon=args.horizon,
        level=args.level,
        replications=args.replications,
        min_failures=args.min_failures,
        seed=args.seed,
        scale=PAPER_SCALE if args.scale == "paper" else QUICK_SCALE,
    )
    timing = time_callable(
        lambda: run_robustness(spec, workers=_campaign_workers(args))
    )
    result = timing.result
    summary = result.to_dict()
    artifact = ValidationArtifact(
        kind="robustness", config=summary["config"],
        results={k: v for k, v in summary.items() if k != "config"},
    )
    out = args.out or default_artifact_path("robustness", *families)
    path = save_artifact(artifact, out)
    lines = [
        f"robustness at nominal {args.level:.0%} — "
        f"{len(spec.cells())} cells x {spec.replications} replications "
        f"({timing.seconds:.1f}s, workers={args.workers or 'auto'})"
    ]
    for cell in result.cells:
        cols = "   ".join(
            f"{label} {cell.coverage(label, 'residual'):.3f}"
            for label in spec.labels()
        )
        lines.append(
            f"  {cell.family:<20} sev={cell.severity:<5g} "
            f"residual coverage: {cols}"
        )
    if spec.sandwich and "VB2" in spec.methods:
        flag = result.sandwich_recovers_half_on_contamination()
        verdict = "yes" if flag else "no"
        lines.append(
            f"  {SANDWICH_LABEL} recovers >= half of lost coverage on a "
            f"contamination cell: {verdict}"
        )
    lines.append(f"artifact: {path}")
    return "\n".join(lines)


def _run_simulate(args) -> str:
    from repro.data.io import save_failure_times_csv
    from repro.data.simulation import simulate_failure_times
    from repro.models.registry import make_model

    model = make_model(args.model, omega=args.omega, beta=args.beta)
    rng = np.random.default_rng(args.seed)
    data = simulate_failure_times(model, args.horizon, rng)
    lines = [f"simulated {data.count} failures from {model!r} "
             f"over horizon {args.horizon:g}"]
    if args.out:
        save_failure_times_csv(data, args.out)
        lines.append(f"written to {args.out}")
    else:
        lines.append("times: " + ", ".join(f"{t:.6g}" for t in data.times))
    return "\n".join(lines)


def _run_report(args) -> str:
    import json as _json
    from pathlib import Path

    from repro.exceptions import TelemetryError
    from repro.obs import (
        build_profile,
        fold_stacks,
        load_validated_trace,
        render_profile,
        render_report,
        summarise_report,
    )
    from repro.obs.report import render_metrics

    try:
        events = load_validated_trace(args.trace_file)
    except FileNotFoundError as exc:
        raise SystemExit(f"error: {exc}") from exc
    except TelemetryError as exc:
        raise SystemExit(f"error: invalid trace: {exc}") from exc

    want_profile = args.profile or args.folded
    profile_root = None
    if want_profile:
        try:
            profile_root = build_profile(events)
        except ValueError as exc:
            raise SystemExit(f"error: invalid trace: {exc}") from exc
    if args.folded:
        Path(args.folded).write_text(
            "\n".join(fold_stacks(profile_root)) + "\n"
        )

    if args.format == "json":
        payload = summarise_report(events)
        if args.profile:
            payload["profile"] = profile_root.to_dict()
        return _json.dumps(payload, indent=2, sort_keys=True)

    parts = [render_report(events)]
    if args.metrics:
        parts.append("## metrics snapshot\n" + render_metrics(events))
    if args.profile:
        parts.append("## span profile\n" + render_profile(profile_root))
    if args.folded:
        parts.append(f"folded stacks written to {args.folded}\n")
    return "\n".join(parts).rstrip()


def _run_cache(args) -> int:
    import json as _json

    from repro.cache.store import PosteriorCache

    cache = PosteriorCache(args.cache_dir)
    if args.cache_command == "stats":
        payload = {
            "cache_dir": str(args.cache_dir),
            "entries": len(cache.disk_entries()),
            "disk_bytes": cache.disk_bytes(),
        }
        if args.format == "json":
            print(_json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(
                f"cache {payload['cache_dir']}: {payload['entries']} "
                f"artifacts, {payload['disk_bytes']} bytes on disk"
            )
        return 0
    removed = cache.clear()
    print(f"cache {args.cache_dir}: removed {removed} artifacts")
    return 0


def _render_backends_table(ledgers: list[dict]) -> str:
    """Per-backend column over the normalised ledgers.

    NumPy is the reference (all gated agreement checks hold against
    it); every other backend shows the median of that suite's
    ``…/<backend>_vs_numpy`` wall ratios, falling back to the
    availability recorded in ``info.backends`` when the suite measured
    nothing for it."""
    from statistics import median

    names = ("numpy", "portable", "jax", "cupy")
    width = max(5, *(len(ledger["suite"]) for ledger in ledgers))
    lines = [
        "per-backend speedup vs numpy (median over measured kernels)",
        "suite".ljust(width) + "".join(f"{name:>10}" for name in names),
    ]
    for ledger in ledgers:
        avail = ledger.get("info", {}).get("backends")
        cells = []
        for name in names:
            ratios = [
                value
                for key, value in ledger["speedups"].items()
                if key.endswith(f"/{name}_vs_numpy")
            ]
            if name == "numpy":
                cells.append("ref" if avail is not None else "-")
            elif ratios:
                cells.append(f"x{median(ratios):.2f}")
            elif avail is not None:
                cells.append("avail" if avail.get(name) else "n/a")
            else:
                cells.append("-")
        lines.append(
            ledger["suite"].ljust(width)
            + "".join(f"{cell:>10}" for cell in cells)
        )
    return "\n".join(lines) + "\n"


def _run_bench(args) -> int:
    import json as _json
    from pathlib import Path

    from repro.exceptions import TelemetryError
    from repro.obs import compare_bench, load_ledger, render_ledger
    from repro.obs import self_check_bench

    if args.bench_command == "report":
        bench_dir = Path(args.dir)
        paths = sorted(bench_dir.glob("BENCH_*.json"))
        if not paths:
            raise SystemExit(f"error: no BENCH_*.json files in {bench_dir}")
        try:
            ledgers = [load_ledger(path) for path in paths]
        except TelemetryError as exc:
            raise SystemExit(f"error: {exc}") from exc
        if args.format == "json":
            print(_json.dumps(ledgers, indent=2, sort_keys=True))
        else:
            print(render_ledger(ledgers), end="")
            if args.backends:
                print()
                print(_render_backends_table(ledgers), end="")
        return 0

    baseline_dir = Path(args.baseline_dir)
    failures: list[str] = []
    try:
        if args.fresh:
            for fresh_path in map(Path, args.fresh):
                baseline_path = baseline_dir / fresh_path.name
                if not baseline_path.exists():
                    raise SystemExit(
                        f"error: no committed baseline {baseline_path} "
                        f"for {fresh_path}"
                    )
                found = compare_bench(
                    load_ledger(fresh_path), load_ledger(baseline_path)
                )
                label = fresh_path.name
                if found:
                    failures += [f"{label}: {msg}" for msg in found]
                else:
                    print(f"ok: {label} within the gate vs baseline")
        else:
            paths = sorted(baseline_dir.glob("BENCH_*.json"))
            if not paths:
                raise SystemExit(
                    f"error: no BENCH_*.json baselines in {baseline_dir}"
                )
            for path in paths:
                found = self_check_bench(load_ledger(path))
                if found:
                    failures += [f"{path.name}: {msg}" for msg in found]
                else:
                    print(f"ok: {path.name} passes its own checks")
    except TelemetryError as exc:
        raise SystemExit(f"error: {exc}") from exc
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


def _dispatch(args) -> int:
    """Run the selected command (inside the trace context, if any)."""
    if args.command == "fit":
        print(_run_fit(args))
        return 0
    if args.command == "simulate":
        print(_run_simulate(args))
        return 0
    if args.command == "validate":
        try:
            if args.validate_command == "sbc":
                print(_run_validate_sbc(args))
            elif args.validate_command == "robustness":
                print(_run_validate_robustness(args))
            else:
                print(_run_validate_coverage(args))
        except ValueError as exc:
            # Campaign specs validate their own fields; surface those
            # messages as clean CLI errors rather than tracebacks.
            raise SystemExit(f"error: {exc}") from exc
        return 0
    scale = PAPER_SCALE if args.scale == "paper" else QUICK_SCALE
    workers = None if args.workers == 0 else args.workers
    names = list(_EXPERIMENTS) if args.command == "all" else [args.command]
    for name in names:
        print(_run_experiment(name, scale, args.out, workers=workers))
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro import obs

    args = build_parser().parse_args(argv)
    obs.configure_verbosity(args.verbose)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "cache":
        return _run_cache(args)
    if args.command == "report":
        try:
            print(_run_report(args))
        except BrokenPipeError:
            # Reader (e.g. `| head`) closed the pipe early — not an
            # error. Detach stdout so interpreter shutdown doesn't
            # complain about the unflushable buffer.
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        return 0
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return _dispatch(args)
    command = args.command
    if command == "validate":
        command = f"validate {args.validate_command}"
    with obs.tracing(trace_path, level=args.trace_level, command=command):
        code = _dispatch(args)
    print(f"trace written to {trace_path}", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
