"""Tables 4 and 5: software-reliability point and interval estimates.

Table 4: ``R(te+u | te)`` on the failure-time data with the Info prior,
``u ∈ {1000, 10000}`` seconds. Table 5: the grouped-data analogue with
``u ∈ {1, 5}`` days. Both report every method's point estimate and
two-sided 99% interval; LAPL's delta-method upper bound may exceed 1,
as in the paper (shown there in angle brackets).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reliability import estimate_reliability
from repro.experiments.config import ExperimentScale, QUICK_SCALE, paper_scenarios
from repro.experiments.runner import MethodResults, run_all_methods
from repro.metrics.tables import render_table

__all__ = ["run", "render", "ReliabilityRow"]

LEVEL = 0.99


@dataclass(frozen=True)
class ReliabilityRow:
    """One method's reliability estimate for one prediction window."""

    u: float
    method: str
    point: float
    lower: float
    upper: float


def run(
    data_view: str,
    scale: ExperimentScale = QUICK_SCALE,
) -> tuple[MethodResults, list[ReliabilityRow]]:
    """Run the reliability experiment for one data view's Info scenario.

    Parameters
    ----------
    data_view:
        "DT" (Table 4) or "DG" (Table 5).
    """
    if data_view not in ("DT", "DG"):
        raise ValueError(f"data_view must be 'DT' or 'DG', got {data_view!r}")
    scenario = paper_scenarios()[f"{data_view}-Info"]
    result = run_all_methods(scenario, scale=scale)
    data = scenario.load_data()
    rows = []
    for u in scenario.reliability_windows:
        for method, posterior in result.posteriors.items():
            estimate = estimate_reliability(
                posterior, data.horizon, u, alpha0=scenario.alpha0, level=LEVEL
            )
            rows.append(
                ReliabilityRow(
                    u=u,
                    method=method,
                    point=estimate.point,
                    lower=estimate.lower,
                    upper=estimate.upper,
                )
            )
    return result, rows


def render(rows: list[ReliabilityRow], table_number: int, unit: str) -> str:
    """Paper-style rendering; out-of-range bounds are angle-bracketed
    exactly as the paper prints them."""
    table_rows = []
    for row in rows:
        upper = f"<{row.upper:.4f}>" if row.upper > 1.0 else f"{row.upper:.4f}"
        lower = f"<{row.lower:.4f}>" if row.lower < 0.0 else f"{row.lower:.4f}"
        table_rows.append(
            [f"u={row.u:g}{unit}", row.method, f"{row.point:.4f}", lower, upper]
        )
    return render_table(
        ["window", "method", "reliability", "lower", "upper"],
        table_rows,
        title=f"Table {table_number} — software reliability, 99% intervals",
    )
