"""Tables 2 and 3: two-sided 99% credible intervals for ``ω`` and ``β``.

Table 2 covers the failure-time data (DT), Table 3 the grouped data
(DG); both cross the Info and NoInfo priors and report the relative
deviation of every method's interval endpoints from NINT's.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, QUICK_SCALE, paper_scenarios
from repro.experiments.runner import MethodResults, run_scenarios
from repro.metrics.comparison import deviation_table
from repro.metrics.tables import render_table

__all__ = ["run", "render", "interval_summary", "ENDPOINTS"]

ENDPOINTS = ("omega_lower", "omega_upper", "beta_lower", "beta_upper")
LEVEL = 0.99


def interval_summary(result: MethodResults) -> dict[str, dict[str, float]]:
    """99% interval endpoints per method for one scenario."""
    summary: dict[str, dict[str, float]] = {}
    for method, posterior in result.posteriors.items():
        omega_lo, omega_hi = posterior.credible_interval("omega", LEVEL)
        beta_lo, beta_hi = posterior.credible_interval("beta", LEVEL)
        summary[method] = {
            "omega_lower": omega_lo,
            "omega_upper": omega_hi,
            "beta_lower": beta_lo,
            "beta_upper": beta_hi,
        }
    return summary


def run(
    data_view: str,
    scale: ExperimentScale = QUICK_SCALE,
    *,
    workers: int | None = 1,
) -> dict[str, MethodResults]:
    """Run the interval experiment for one data view.

    Parameters
    ----------
    data_view:
        "DT" (Table 2) or "DG" (Table 3).
    workers:
        Process count for running the view's scenarios concurrently.
    """
    if data_view not in ("DT", "DG"):
        raise ValueError(f"data_view must be 'DT' or 'DG', got {data_view!r}")
    scenarios = paper_scenarios()
    selected = [
        scenario for name, scenario in scenarios.items()
        if name.startswith(data_view)
    ]
    return run_scenarios(selected, scale=scale, workers=workers)


def render(results: dict[str, MethodResults], table_number: int) -> str:
    """Paper-style rendering of Table 2 or 3."""
    blocks = []
    for name, result in results.items():
        summary = interval_summary(result)
        deviations = (
            deviation_table(summary, "NINT", ENDPOINTS)
            if "NINT" in summary
            else {}
        )
        rows = []
        for method, values in summary.items():
            rows.append([method, *(values[e] for e in ENDPOINTS)])
            if method in deviations:
                rows.append(
                    ["", *(f"{100.0 * deviations[method][e]:+.1f}%" for e in ENDPOINTS)]
                )
        blocks.append(
            render_table(
                ["method", *ENDPOINTS],
                rows,
                title=f"Table {table_number} — {name} (two-sided 99% intervals)",
            )
        )
    return "\n\n".join(blocks)
