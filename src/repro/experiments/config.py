"""Scenario and scale definitions for the paper's experiments.

The paper's evaluation matrix (Section 6) crosses two data views of the
System 17 dataset with two prior regimes:

* ``DT`` — failure-time data, 38 failures in execution seconds;
* ``DG`` — the same failures grouped over 64 working days;
* ``Info`` — moment-matched gamma priors: ``ω ~ (mean 50, sd 15.8)``
  in both views, ``β ~ (1.0e-5, 3.2e-6)`` per second for ``DT`` and
  ``β ~ (3.3e-2, 1.1e-2)`` per day for ``DG``;
* ``NoInfo`` — flat priors on both parameters.

All experiments use the Goel–Okumoto model (``α0 = 1``).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.bayes.mcmc.chains import ChainSettings
from repro.bayes.priors import ModelPrior
from repro.core.config import VBConfig
from repro.data.datasets import system17_failure_times, system17_grouped
from repro.data.failure_data import FailureTimeData, GroupedData

__all__ = [
    "Scenario",
    "ExperimentScale",
    "paper_scenarios",
    "QUICK_SCALE",
    "PAPER_SCALE",
    "INFO_OMEGA",
    "INFO_BETA_TIMES",
    "INFO_BETA_GROUPED",
]

# Prior moments from the paper, Section 6.
INFO_OMEGA = (50.0, 15.8)
INFO_BETA_TIMES = (1.0e-5, 3.2e-6)
INFO_BETA_GROUPED = (3.3e-2, 1.1e-2)


@dataclass(frozen=True)
class Scenario:
    """One cell of the paper's evaluation matrix.

    Attributes
    ----------
    name:
        "DT-Info", "DT-NoInfo", "DG-Info" or "DG-NoInfo".
    data_loader:
        Callable producing the dataset.
    prior_factory:
        Callable producing the prior pair.
    alpha0:
        Lifetime shape of the gamma-type model (1 throughout the paper).
    reliability_windows:
        The prediction horizons ``u`` of Tables 4/5 for this data view.
    vb_config:
        VB algorithm settings. The NoInfo scenarios clamp the latent-
        count truncation at 4096: under flat priors the latent-count
        posterior has a polynomial tail, so — as the paper observes for
        DG-NoInfo — *every* method's output there is truncation- or
        run-length-dependent.
    """

    name: str
    data_loader: Callable[[], FailureTimeData | GroupedData]
    prior_factory: Callable[[], ModelPrior]
    alpha0: float = 1.0
    reliability_windows: tuple[float, ...] = ()
    vb_config: VBConfig = field(default_factory=VBConfig)

    def load_data(self) -> FailureTimeData | GroupedData:
        """Instantiate the dataset."""
        return self.data_loader()

    def prior(self) -> ModelPrior:
        """Instantiate the prior pair."""
        return self.prior_factory()

    @property
    def is_grouped(self) -> bool:
        """True for the DG scenarios."""
        return self.name.startswith("DG")


# Flat priors make the latent-count posterior improper (its tail decays
# like 1/N), so *every* method's NoInfo output is truncation-dependent —
# the paper says as much for DG-NoInfo. We clamp VB2 at a documented,
# moderate bound; benchmarks/bench_ablation_noinfo_truncation.py
# quantifies the sensitivity.
_NOINFO_VB_CONFIG = VBConfig(truncation_policy="clamp", nmax_ceiling=1024)


def _info_prior_times() -> ModelPrior:
    return ModelPrior.informative(*INFO_OMEGA, *INFO_BETA_TIMES)


def _info_prior_grouped() -> ModelPrior:
    return ModelPrior.informative(*INFO_OMEGA, *INFO_BETA_GROUPED)


def paper_scenarios() -> dict[str, Scenario]:
    """The four scenarios of the paper's Section 6, keyed by name."""
    return {
        "DT-Info": Scenario(
            name="DT-Info",
            data_loader=system17_failure_times,
            prior_factory=_info_prior_times,
            reliability_windows=(1000.0, 10000.0),
        ),
        "DT-NoInfo": Scenario(
            name="DT-NoInfo",
            data_loader=system17_failure_times,
            prior_factory=ModelPrior.noninformative,
            reliability_windows=(1000.0, 10000.0),
            vb_config=_NOINFO_VB_CONFIG,
        ),
        "DG-Info": Scenario(
            name="DG-Info",
            data_loader=system17_grouped,
            prior_factory=_info_prior_grouped,
            reliability_windows=(1.0, 5.0),
        ),
        "DG-NoInfo": Scenario(
            name="DG-NoInfo",
            data_loader=system17_grouped,
            prior_factory=ModelPrior.noninformative,
            reliability_windows=(1.0, 5.0),
            vb_config=_NOINFO_VB_CONFIG,
        ),
    }


@dataclass(frozen=True)
class ExperimentScale:
    """Computational scale of an experiment run.

    ``PAPER_SCALE`` mirrors the paper exactly (20000 kept MCMC samples,
    burn-in 10000, thinning 10); ``QUICK_SCALE`` keeps every qualitative
    conclusion but runs in seconds, for tests and smoke checks.
    """

    mcmc: ChainSettings = field(default_factory=ChainSettings)
    nint_resolution: int = 321
    label: str = "paper"


PAPER_SCALE = ExperimentScale(
    mcmc=ChainSettings(n_samples=20_000, burn_in=10_000, thin=10, seed=20070628),
    nint_resolution=321,
    label="paper",
)

QUICK_SCALE = ExperimentScale(
    mcmc=ChainSettings(n_samples=4_000, burn_in=2_000, thin=2, seed=20070628),
    nint_resolution=161,
    label="quick",
)
