"""Experiment harness reproducing every table and figure of the paper.

Each ``table*.py`` / ``figure1.py`` module exposes a ``run(...)``
function returning structured results plus a ``render(...)`` helper
that prints the paper-style table. The CLI (``python -m repro``) and
the benchmark suite are thin wrappers over these.
"""

from repro.experiments.config import (
    Scenario,
    ExperimentScale,
    paper_scenarios,
    QUICK_SCALE,
    PAPER_SCALE,
)
from repro.experiments.runner import MethodResults, run_all_methods, run_scenarios

__all__ = [
    "Scenario",
    "ExperimentScale",
    "paper_scenarios",
    "QUICK_SCALE",
    "PAPER_SCALE",
    "MethodResults",
    "run_all_methods",
    "run_scenarios",
]
