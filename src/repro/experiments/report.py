"""Generate EXPERIMENTS.md: paper-versus-measured for every table/figure.

Absolute numbers cannot match the paper because the original System 17
dataset is not distributable (DESIGN.md, "Data substitution") — so the
comparison is made where it is meaningful:

* Tables 1–3: each method's *relative deviation from NINT*, the very
  quantity the paper tabulates, is compared paper-vs-ours;
* Tables 4–5: interval widths relative to NINT's and method orderings;
* Tables 6–7: cost ratios (grouped/failure-time MCMC, VB2/MCMC) and the
  decay of ``Pv(nmax)``;
* Figure 1: the qualitative density features (skew, correlation, VB1
  axis alignment).

Run with::

    python -m repro.experiments.report            # writes EXPERIMENTS.md
"""

from __future__ import annotations

import logging
import math
from pathlib import Path

from repro.experiments import table1, table23, table45, table67
from repro.experiments.config import ExperimentScale, PAPER_SCALE
from repro.experiments.runner import MethodResults
from repro.metrics.comparison import deviation_table

__all__ = ["build_report", "main", "PAPER_TABLE1_DEVIATIONS"]

_logger = logging.getLogger(__name__)

# ----------------------------------------------------------------------
# Reference values transcribed from the paper (relative deviations from
# NINT, in percent, order: E[omega], E[beta], Var(omega), Var(beta),
# Cov(omega, beta)).
# ----------------------------------------------------------------------
PAPER_TABLE1_DEVIATIONS = {
    "DT-Info": {
        "LAPL": (-2.6, -1.6, -4.3, -1.5, -11.6),
        "MCMC": (0.1, -0.2, -0.5, 0.3, 3.8),
        "VB1": (-1.0, 1.8, -8.5, -39.0, 100.0),
        "VB2": (-0.1, 0.2, -0.3, -2.5, -2.3),
    },
    "DG-Info": {
        "LAPL": (-3.2, -2.6, -7.9, 0.4, -2.5),
        "MCMC": (0.1, -0.4, 0.2, -1.6, -1.1),
        "VB1": (-3.1, 2.8, -39.9, -64.9, -100.0),
        "VB2": (-0.5, 0.8, -2.2, -5.9, -3.1),
    },
    "DT-NoInfo": {
        "LAPL": (-3.5, -1.3, -7.1, -4.0, -25.5),
        "MCMC": (-2.1, -4.1, -1.1, 0.2, 17.0),
        "VB1": (-3.6, -0.8, -12.1, -44.0, -100.0),
        "VB2": (-2.0, -3.7, 0.0, -3.1, 10.1),
    },
}

# Paper Table 2 (DT-Info) deviations in percent, order: omega_lower,
# omega_upper, beta_lower, beta_upper.
PAPER_TABLE2_INFO_DEVIATIONS = {
    "LAPL": (-9.1, -5.5, -9.1, -3.7),
    "MCMC": (0.2, -0.3, -1.1, -1.0),
    "VB1": (0.2, -2.4, 21.7, -5.6),
    "VB2": (-0.1, -0.1, 2.2, 0.0),
}

# Paper Table 4 (DT-Info) reliability rows: (point, lower, upper).
PAPER_TABLE4 = {
    1000.0: {
        "NINT": (0.9791, 0.9483, 0.9946),
        "LAPL": (0.9802, 0.9580, 1.0024),
        "MCMC": (0.9790, 0.9474, 0.9945),
        "VB1": (0.9806, 0.9607, 0.9933),
        "VB2": (0.9792, 0.9492, 0.9946),
    },
    10_000.0: {
        "NINT": (0.8200, 0.5974, 0.9513),
        "LAPL": (0.8268, 0.6448, 1.0087),
        "MCMC": (0.8192, 0.5919, 0.9502),
        "VB1": (0.8314, 0.6795, 0.9391),
        "VB2": (0.8210, 0.6029, 0.9513),
    },
}

# Paper Table 6: MCMC cost (variates, seconds, Mathematica).
PAPER_TABLE6 = {"DT-Info": (630_000, 541.97), "DG-Info": (8_610_000, 4036.38)}

# Paper Table 7 (DT-Info): nmax -> (Pv(nmax), seconds).
PAPER_TABLE7_DT = {
    100: (2.35e-11, 0.56),
    200: (4.48e-21, 1.44),
    500: (3.67e-46, 6.59),
    1000: (1.94e-86, 23.22),
}

_QUANTITIES = table1.QUANTITIES
_METHODS = ("LAPL", "MCMC", "VB1", "VB2")


def _fmt_pct(value: float) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "n/a"
    return f"{value:+.1f}%"


def _table1_section(results: dict[str, MethodResults]) -> list[str]:
    lines = ["## Table 1 — posterior moments", ""]
    lines.append(
        "Compared quantity: each method's relative deviation from NINT "
        "(the paper's own tabulated metric). `paper / ours` per cell."
    )
    for scenario, paper_rows in PAPER_TABLE1_DEVIATIONS.items():
        result = results[scenario]
        ours = deviation_table(result.moments(), "NINT", _QUANTITIES)
        lines.append("")
        lines.append(f"### {scenario}")
        lines.append("")
        header = "| method | " + " | ".join(_QUANTITIES) + " |"
        lines.append(header)
        lines.append("|" + "---|" * (len(_QUANTITIES) + 1))
        for method in _METHODS:
            cells = []
            for idx, quantity in enumerate(_QUANTITIES):
                paper_value = paper_rows[method][idx]
                our_value = 100.0 * ours[method][quantity]
                cells.append(f"{_fmt_pct(paper_value)} / {_fmt_pct(our_value)}")
            lines.append(f"| {method} | " + " | ".join(cells) + " |")
    lines.append("")
    lines.append(
        "**Shape checks:** in the Info scenarios VB2 and MCMC stay within "
        "a few percent of NINT on every moment; VB1 zeroes the covariance "
        "(±100% deviation) and underestimates both variances severely; "
        "LAPL's means sit below NINT's. All hold in our reproduction, as "
        "in the paper. In the NoInfo scenarios the flat-prior posterior "
        "is improper in the latent fault count (DESIGN.md), so second "
        "moments are truncation/run-length artefacts for *every* method — "
        "the paper sees this blow up in DG-NoInfo (MCMC Var(omega) "
        "+42654%); on our data the same excursion appears in DT-NoInfo's "
        "variance row. First moments still agree across NINT/MCMC/VB2."
    )
    return lines


def _table23_section(
    results_dt: dict[str, MethodResults], results_dg: dict[str, MethodResults]
) -> list[str]:
    lines = ["## Tables 2–3 — two-sided 99% credible intervals", ""]
    summary = table23.interval_summary(results_dt["DT-Info"])
    ours = deviation_table(summary, "NINT", table23.ENDPOINTS)
    lines.append("DT-Info endpoint deviations from NINT (`paper / ours`):")
    lines.append("")
    lines.append("| method | " + " | ".join(table23.ENDPOINTS) + " |")
    lines.append("|" + "---|" * (len(table23.ENDPOINTS) + 1))
    for method in _METHODS:
        cells = []
        for idx, endpoint in enumerate(table23.ENDPOINTS):
            paper_value = PAPER_TABLE2_INFO_DEVIATIONS[method][idx]
            our_value = 100.0 * ours[method][endpoint]
            cells.append(f"{_fmt_pct(paper_value)} / {_fmt_pct(our_value)}")
        lines.append(f"| {method} | " + " | ".join(cells) + " |")
    lines.append("")

    noinfo = table23.interval_summary(results_dg["DG-NoInfo"])
    uppers = {m: row["omega_upper"] for m, row in noinfo.items()}
    lines.append(
        "**Shape checks (both data views):** LAPL intervals are shifted "
        "left; VB1's beta interval is markedly too narrow; VB2 tracks "
        "NINT within a few percent. In the DG-NoInfo case the methods "
        f"disagree (our omega upper bounds: "
        + ", ".join(f"{m} {v:.1f}" for m, v in uppers.items())
        + ") — milder than the paper's because the synthetic grouped "
        "data is better fitted by Goel–Okumoto than the original "
        "System 17 grouped data (see DESIGN.md)."
    )
    return lines


def _table45_section(rows_dt, rows_dg) -> list[str]:
    lines = ["## Tables 4–5 — software reliability, point and 99% interval", ""]
    lines.append(
        "Absolute reliabilities differ from the paper's (different "
        "underlying data); the comparison is the method pattern. "
        "DT-Info (`paper point [lo, hi]` vs `ours`):"
    )
    lines.append("")
    lines.append("| window | method | paper | ours |")
    lines.append("|---|---|---|---|")
    ours_by_key = {(r.method, r.u): r for r in rows_dt}
    for u, methods in PAPER_TABLE4.items():
        for method, (point, lower, upper) in methods.items():
            our = ours_by_key[(method, u)]
            lines.append(
                f"| u={u:g}s | {method} | {point:.4f} [{lower:.4f}, "
                f"{upper:.4f}] | {our.point:.4f} [{our.lower:.4f}, "
                f"{our.upper:.4f}] |"
            )
    by_key_dg = {(r.method, r.u): r for r in rows_dg}
    width = lambda r: r.upper - r.lower
    lines.append("")
    lines.append(
        "**Shape checks:** NINT ≈ MCMC ≈ VB2 to ~3 decimals; VB1's "
        "intervals too narrow (DG-Info u=5: ours "
        f"{width(by_key_dg[('VB1', 5.0)]):.3f} wide vs NINT "
        f"{width(by_key_dg[('NINT', 5.0)]):.3f}); LAPL upper bounds can "
        "exceed 1 (paper prints them in angle brackets)."
    )
    return lines


def _table67_section(rows6, rows7) -> list[str]:
    lines = ["## Tables 6–7 — computational cost", ""]
    lines.append("| quantity | paper | ours |")
    lines.append("|---|---|---|")
    ours6 = {row.scenario: row for row in rows6}
    for scenario, (variates, seconds) in PAPER_TABLE6.items():
        ours_row = ours6[scenario]
        lines.append(
            f"| MCMC {scenario} variates | {variates:,} | "
            f"{ours_row.variate_count:,} |"
        )
        lines.append(
            f"| MCMC {scenario} time | {seconds:.0f} s (Mathematica) | "
            f"{ours_row.seconds:.1f} s (Python) |"
        )
    ratio_paper = PAPER_TABLE6["DG-Info"][1] / PAPER_TABLE6["DT-Info"][1]
    ratio_ours = ours6["DG-Info"].seconds / ours6["DT-Info"].seconds
    lines.append(
        f"| MCMC cost ratio DG/DT | {ratio_paper:.1f}x | {ratio_ours:.1f}x |"
    )
    dt_rows = [row for row in rows7 if row.scenario == "DT-Info"]
    for row in dt_rows:
        if row.nmax in PAPER_TABLE7_DT:
            paper_mass, paper_time = PAPER_TABLE7_DT[row.nmax]
            paper_mass_text = f"{paper_mass:.2e}"
            paper_time_text = f"{paper_time:.2f} s"
        else:  # reduced nmax grid (tests): no paper counterpart
            paper_mass_text = paper_time_text = "n/a"
        lines.append(
            f"| VB2 DT-Info nmax={row.nmax}: Pv(nmax) | {paper_mass_text} | "
            f"{row.tail_mass:.2e} |"
        )
        lines.append(
            f"| VB2 DT-Info nmax={row.nmax}: time | {paper_time_text} | "
            f"{row.seconds:.4f} s |"
        )
    mcmc_time = ours6["DT-Info"].seconds
    vb2_time = dt_rows[-1].seconds
    lines.append(
        f"| VB2(nmax=1000) / MCMC time | {23.22 / 541.97:.3f} | "
        f"{vb2_time / mcmc_time:.4f} |"
    )
    lines.append("")
    lines.append(
        "**Shape checks:** variate counts match the paper exactly (same "
        "sampler structure); Pv(nmax) decays at the same super-exponential "
        "rate; VB2 remains orders of magnitude cheaper than MCMC; VB2 "
        "cost grows with nmax. Absolute times differ by the "
        "Mathematica-2007 vs NumPy-2026 platform gap, and the DG/DT cost "
        "ratio is larger here because our grouped sweep loops over "
        "intervals in Python while the three-variate DT sweep is nearly "
        "free — the paper's Mathematica implementation paid more per "
        "variate uniformly."
    )
    return lines


def build_report(
    scale: ExperimentScale = PAPER_SCALE,
    *,
    table7_nmax=(100, 200, 500, 1000),
) -> str:
    """Run every experiment and render EXPERIMENTS.md's content."""
    results = table1.run(scale=scale)
    rows6 = table67.run_table6(scale=scale)
    rows7 = table67.run_table7(nmax_values=tuple(table7_nmax))
    _, rows4 = table45.run("DT", scale=scale)
    _, rows5 = table45.run("DG", scale=scale)

    dt_results = {k: v for k, v in results.items() if k.startswith("DT")}
    dg_results = {k: v for k, v in results.items() if k.startswith("DG")}

    lines = [
        "# EXPERIMENTS — paper versus this reproduction",
        "",
        "Generated by `python -m repro.experiments.report` "
        f"(scale: {scale.label}; MCMC schedule {scale.mcmc.n_samples} kept / "
        f"{scale.mcmc.burn_in} burn-in / thin {scale.mcmc.thin}).",
        "",
        "The original DACS System 17 dataset is not distributable, so the "
        "experiments run on the synthetic analogue described in DESIGN.md "
        "(same sample size, censoring fraction and parameter scale). "
        "Absolute posterior locations therefore differ from the paper; "
        "every *relative* quantity the paper uses to make its points — "
        "deviations from NINT, interval-width orderings, cost ratios, "
        "tail-mass decay — is compared side by side below.",
        "",
    ]
    lines += _table1_section(results)
    lines.append("")
    lines += _table23_section(dt_results, dg_results)
    lines.append("")
    lines += _table45_section(rows4, rows5)
    lines.append("")
    lines += _table67_section(rows6, rows7)
    lines.append("")
    lines += [
        "## Figure 1 — joint posterior density (DG-Info)",
        "",
        "Regenerate with `python -m repro figure1 --out figure1_csv/` or "
        "`pytest benchmarks/bench_figure1.py --benchmark-only`; the "
        "benchmark asserts the paper's visual claims numerically: NINT / "
        "MCMC / VB2 densities are right-skewed with negative (omega, "
        "beta) correlation, VB1's is axis-aligned (zero grid covariance), "
        "LAPL's is symmetric around the MAP.",
        "",
        "## DG-NoInfo",
        "",
        "As in the paper, no method produces reliable estimates without "
        "an informative prior on grouped data: the flat-prior posterior "
        "over the latent fault count has a ~1/N tail (it is improper), so "
        "every method's output is truncation- or run-length-dependent. "
        "`benchmarks/bench_ablation_noinfo_truncation.py` quantifies this.",
        "",
    ]
    return "\n".join(lines)


def main() -> None:
    """Write EXPERIMENTS.md at the repository root (source checkouts:
    three levels above this file's package directory)."""
    logging.basicConfig(level=logging.INFO, format="%(message)s")
    target = Path(__file__).resolve().parents[3] / "EXPERIMENTS.md"
    text = build_report()
    target.write_text(text)
    _logger.info("written %s (%d lines)", target, len(text.splitlines()))


if __name__ == "__main__":
    main()
