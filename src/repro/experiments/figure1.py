"""Figure 1: joint posterior density of ``(ω, β)`` for DG-Info.

The paper shows contour plots of the approximate joint posterior for
NINT, LAPL, VB1 and VB2 plus a scatter plot of 10000 MCMC samples.
This module computes the same objects as data: normalised density
matrices on a shared grid (one per analytic method) and the MCMC
scatter sample. Rendering is an ASCII heatmap (no plotting libraries in
this environment); ``save_csv`` exports the grids for external tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.experiments.config import ExperimentScale, QUICK_SCALE, paper_scenarios
from repro.experiments.runner import MethodResults, run_all_methods

__all__ = ["Figure1Data", "run", "render_ascii", "save_csv"]

_DENSITY_METHODS = ("NINT", "LAPL", "VB1", "VB2")
_SHADES = " .:-=+*#%@"


@dataclass
class Figure1Data:
    """Density grids and scatter sample behind Figure 1.

    Attributes
    ----------
    omega, beta:
        Grid axes (shared by all methods).
    densities:
        ``{method: matrix}`` of normalised joint densities with shape
        ``(len(omega), len(beta))``.
    mcmc_scatter:
        ``(n, 2)`` array of MCMC samples (ω, β).
    results:
        The underlying fitted posteriors.
    """

    omega: np.ndarray
    beta: np.ndarray
    densities: dict[str, np.ndarray]
    mcmc_scatter: np.ndarray
    results: MethodResults


def run(
    scale: ExperimentScale = QUICK_SCALE,
    *,
    grid_size: int = 80,
    scatter_points: int = 10_000,
) -> Figure1Data:
    """Compute Figure 1's data on the DG-Info scenario.

    The plotting window follows the reference posterior: the NINT
    0.1%–99.9% marginal quantiles per axis (the paper hand-picked
    ``ω ∈ [30, 70]``; deriving the window from the posterior keeps the
    figure meaningful on any dataset).
    """
    scenario = paper_scenarios()["DG-Info"]
    results = run_all_methods(scenario, scale=scale)
    reference = results.posteriors.get("NINT") or results.posteriors["VB2"]
    omega = np.linspace(
        reference.quantile("omega", 0.001),
        reference.quantile("omega", 0.999),
        grid_size,
    )
    beta = np.linspace(
        reference.quantile("beta", 0.001),
        reference.quantile("beta", 0.999),
        grid_size,
    )
    densities = {}
    for method in _DENSITY_METHODS:
        posterior = results.posteriors.get(method)
        if posterior is None:
            continue
        densities[method] = np.exp(posterior.log_pdf_grid(omega, beta))
    mcmc = results.posteriors.get("MCMC")
    scatter = (
        mcmc.scatter(scatter_points) if mcmc is not None else np.empty((0, 2))
    )
    return Figure1Data(
        omega=omega,
        beta=beta,
        densities=densities,
        mcmc_scatter=scatter,
        results=results,
    )


def render_ascii(figure: Figure1Data, *, width: int = 60, height: int = 22) -> str:
    """ASCII heatmaps of every density plus the MCMC scatter."""
    blocks = []
    for method, density in figure.densities.items():
        blocks.append(_ascii_heatmap(method, figure, density, width, height))
    if figure.mcmc_scatter.size:
        hist, _, _ = np.histogram2d(
            figure.mcmc_scatter[:, 0],
            figure.mcmc_scatter[:, 1],
            bins=[width, height],
            range=[
                [figure.omega[0], figure.omega[-1]],
                [figure.beta[0], figure.beta[-1]],
            ],
        )
        blocks.append(_ascii_matrix("MCMC (scatter density)", figure, hist.T[::-1]))
    return "\n\n".join(blocks)


def _ascii_heatmap(
    method: str, figure: Figure1Data, density: np.ndarray, width: int, height: int
) -> str:
    omega_idx = np.linspace(0, figure.omega.size - 1, width).astype(int)
    beta_idx = np.linspace(0, figure.beta.size - 1, height).astype(int)
    block = density[np.ix_(omega_idx, beta_idx)].T[::-1]  # beta on vertical axis
    return _ascii_matrix(method, figure, block)


def _ascii_matrix(title: str, figure: Figure1Data, block: np.ndarray) -> str:
    peak = block.max()
    lines = [
        f"{title}  (omega -> horizontal [{figure.omega[0]:.3g}, "
        f"{figure.omega[-1]:.3g}], beta ^ vertical [{figure.beta[0]:.3g}, "
        f"{figure.beta[-1]:.3g}])"
    ]
    if peak <= 0.0:
        lines.append("(zero density)")
        return "\n".join(lines)
    scaled = np.clip(block / peak, 0.0, 1.0)
    for row in scaled:
        lines.append(
            "".join(_SHADES[min(int(v * (len(_SHADES) - 1) + 0.5), len(_SHADES) - 1)]
                    for v in row)
        )
    return "\n".join(lines)


def save_csv(figure: Figure1Data, directory: str | Path) -> list[Path]:
    """Export the grids and the scatter to CSV files; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    axes_path = directory / "figure1_axes.csv"
    with open(axes_path, "w") as fh:
        fh.write("axis,index,value\n")
        for i, v in enumerate(figure.omega):
            fh.write(f"omega,{i},{v!r}\n")
        for i, v in enumerate(figure.beta):
            fh.write(f"beta,{i},{v!r}\n")
    written.append(axes_path)
    for method, density in figure.densities.items():
        path = directory / f"figure1_density_{method.lower()}.csv"
        np.savetxt(path, density, delimiter=",")
        written.append(path)
    scatter_path = directory / "figure1_mcmc_scatter.csv"
    np.savetxt(
        scatter_path, figure.mcmc_scatter, delimiter=",", header="omega,beta"
    )
    written.append(scatter_path)
    return written
