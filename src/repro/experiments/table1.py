"""Table 1: moments of the approximate posterior distributions.

For each scenario (DT/DG x Info/NoInfo) and each method, the posterior
means, variances and covariance of ``(ω, β)``, with relative deviations
from NINT for the non-reference methods — exactly the layout of the
paper's Table 1.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, QUICK_SCALE, paper_scenarios
from repro.experiments.runner import MethodResults, run_scenarios
from repro.metrics.comparison import deviation_table
from repro.metrics.tables import render_table

__all__ = ["run", "render", "QUANTITIES"]

QUANTITIES = ("E[omega]", "E[beta]", "Var(omega)", "Var(beta)", "Cov(omega,beta)")


def run(
    scenario_names: tuple[str, ...] | None = None,
    scale: ExperimentScale = QUICK_SCALE,
    *,
    workers: int | None = 1,
) -> dict[str, MethodResults]:
    """Fit all methods on the requested scenarios (all four by default);
    independent scenarios run concurrently when ``workers > 1``."""
    scenarios = paper_scenarios()
    if scenario_names is None:
        scenario_names = tuple(scenarios)
    return run_scenarios(
        [scenarios[name] for name in scenario_names],
        scale=scale,
        workers=workers,
    )


def render(results: dict[str, MethodResults]) -> str:
    """Paper-style text rendering with NINT-relative deviations."""
    blocks = []
    for name, result in results.items():
        moments = result.moments()
        deviations = (
            deviation_table(moments, "NINT", QUANTITIES)
            if "NINT" in moments
            else {}
        )
        rows = []
        for method, values in moments.items():
            rows.append([method, *(values[q] for q in QUANTITIES)])
            if method in deviations:
                rows.append(
                    [
                        "",
                        *(
                            f"{100.0 * deviations[method][q]:+.1f}%"
                            for q in QUANTITIES
                        ),
                    ]
                )
        blocks.append(
            render_table(
                ["method", *QUANTITIES],
                rows,
                title=f"Table 1 — {name}",
            )
        )
    return "\n\n".join(blocks)
