"""Tables 6 and 7: computational cost of MCMC versus VB2.

Table 6 times the paper-scale MCMC run (with its elementary-variate
count: 630000 for DT, 8.61M for DG at the default schedule). Table 7
times VB2 at fixed truncation points ``nmax ∈ {100, 200, 500, 1000}``
and reports the variational tail mass ``Pv(nmax)`` at each — showing
that small ``nmax`` already satisfies any reasonable tolerance and that
VB2 is orders of magnitude cheaper than MCMC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bayes.mcmc.gibbs_failure_time import gibbs_failure_time
from repro.bayes.mcmc.gibbs_grouped import gibbs_grouped
from repro.core.vb2 import fit_vb2
from repro.data.failure_data import FailureTimeData
from repro.experiments.config import ExperimentScale, PAPER_SCALE, paper_scenarios
from repro.metrics.tables import render_table
from repro.metrics.timing import time_callable

__all__ = ["run_table6", "run_table7", "render_table6", "render_table7",
           "Table6Row", "Table7Row", "DEFAULT_NMAX_VALUES"]

DEFAULT_NMAX_VALUES = (100, 200, 500, 1000)


@dataclass(frozen=True)
class Table6Row:
    """MCMC cost for one scenario."""

    scenario: str
    variate_count: int
    seconds: float


@dataclass(frozen=True)
class Table7Row:
    """VB2 cost at one fixed truncation point."""

    scenario: str
    nmax: int
    tail_mass: float
    seconds: float


def run_table6(scale: ExperimentScale = PAPER_SCALE) -> list[Table6Row]:
    """Time the Gibbs samplers on both Info scenarios."""
    scenarios = paper_scenarios()
    rows = []
    for name in ("DT-Info", "DG-Info"):
        scenario = scenarios[name]
        data = scenario.load_data()
        prior = scenario.prior()
        sampler = (
            gibbs_failure_time if isinstance(data, FailureTimeData) else gibbs_grouped
        )
        rng = np.random.default_rng(scale.mcmc.seed)
        timing = time_callable(
            lambda: sampler(data, prior, scenario.alpha0, settings=scale.mcmc, rng=rng),
            label=f"table6 MCMC {name}",
        )
        rows.append(
            Table6Row(
                scenario=name,
                variate_count=timing.result.variate_count,
                seconds=timing.seconds,
            )
        )
    return rows


def run_table7(
    nmax_values: tuple[int, ...] = DEFAULT_NMAX_VALUES,
) -> list[Table7Row]:
    """Time VB2 at fixed truncation points on both Info scenarios."""
    scenarios = paper_scenarios()
    rows = []
    for name in ("DT-Info", "DG-Info"):
        scenario = scenarios[name]
        data = scenario.load_data()
        prior = scenario.prior()
        for nmax in nmax_values:
            timing = time_callable(
                lambda: fit_vb2(data, prior, scenario.alpha0, nmax=nmax),
                label=f"table7 VB2 {name} nmax={nmax}",
            )
            rows.append(
                Table7Row(
                    scenario=name,
                    nmax=nmax,
                    tail_mass=timing.result.tail_mass(),
                    seconds=timing.seconds,
                )
            )
    return rows


def render_table6(rows: list[Table6Row]) -> str:
    """Paper-style Table 6."""
    return render_table(
        ["data", "random variates", "time (sec)"],
        [[r.scenario, r.variate_count, f"{r.seconds:.3f}"] for r in rows],
        title="Table 6 — computation time for MCMC",
    )


def render_table7(rows: list[Table7Row]) -> str:
    """Paper-style Table 7."""
    return render_table(
        ["data", "nmax", "Pv(nmax)", "time (sec)"],
        [
            [r.scenario, r.nmax, f"{r.tail_mass:.3e}", f"{r.seconds:.4f}"]
            for r in rows
        ],
        title="Table 7 — computation time for VB2",
    )
