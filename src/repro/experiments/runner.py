"""Fit every posterior-approximation method on one scenario.

The fitting order matters: VB2 runs first because the paper derives the
NINT integration rectangle from VB2 quantiles (Section 6).

Scenarios are independent of one another, so :func:`run_scenarios`
fans them out over the validation layer's process-pool campaign runner
when asked; each scenario's output depends only on the scenario and
the scale, never on its position in the batch or the worker count.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.bayes.joint import JointPosterior
from repro.bayes.laplace import fit_laplace
from repro.bayes.mcmc.gibbs_failure_time import gibbs_failure_time
from repro.bayes.mcmc.gibbs_grouped import gibbs_grouped
from repro.bayes.nint import fit_nint
from repro.core.vb1 import fit_vb1
from repro.core.vb2 import fit_vb2
from repro.data.failure_data import FailureTimeData
from repro.experiments.config import ExperimentScale, QUICK_SCALE, Scenario
from repro.metrics.timing import time_callable

__all__ = ["MethodResults", "run_all_methods", "run_scenarios", "METHOD_ORDER"]

METHOD_ORDER = ("NINT", "LAPL", "MCMC", "VB1", "VB2")


@dataclass
class MethodResults:
    """Posteriors and timings for one scenario.

    Attributes
    ----------
    scenario:
        The scenario that was run.
    posteriors:
        ``{method: posterior}`` in the paper's method order.
    seconds:
        Wall-clock fitting time per method.
    extra:
        Method-specific metadata (e.g. MCMC variate counts).
    """

    scenario: Scenario
    posteriors: dict[str, JointPosterior]
    seconds: dict[str, float]
    extra: dict[str, dict] = field(default_factory=dict)

    def moments(self) -> dict[str, dict[str, float]]:
        """Table 1 quantities per method."""
        return {
            name: posterior.moments_summary()
            for name, posterior in self.posteriors.items()
        }


def run_all_methods(
    scenario: Scenario,
    scale: ExperimentScale = QUICK_SCALE,
    methods: tuple[str, ...] = METHOD_ORDER,
) -> MethodResults:
    """Fit the requested methods on a scenario.

    Parameters
    ----------
    scenario:
        One of :func:`repro.experiments.config.paper_scenarios`.
    scale:
        MCMC schedule and NINT resolution.
    methods:
        Subset of ``("NINT", "LAPL", "MCMC", "VB1", "VB2")``; VB2 is
        always fitted (NINT needs it for its integration limits).
    """
    unknown = set(methods) - set(METHOD_ORDER)
    if unknown:
        raise ValueError(f"unknown methods: {sorted(unknown)}")
    data = scenario.load_data()
    prior = scenario.prior()
    alpha0 = scenario.alpha0
    posteriors: dict[str, JointPosterior] = {}
    seconds: dict[str, float] = {}
    extra: dict[str, dict] = {}

    vb_config = scenario.vb_config
    vb2_timing = time_callable(
        lambda: fit_vb2(data, prior, alpha0, vb_config),
        label=f"VB2 {scenario.name}",
    )
    vb2 = vb2_timing.result

    if "NINT" in methods:
        timing = time_callable(
            lambda: fit_nint(
                data,
                prior,
                alpha0,
                reference_posterior=vb2,
                n_omega=scale.nint_resolution,
                n_beta=scale.nint_resolution,
            ),
            label=f"NINT {scenario.name}",
        )
        posteriors["NINT"] = timing.result
        seconds["NINT"] = timing.seconds
    if "LAPL" in methods:
        timing = time_callable(
            lambda: fit_laplace(data, prior, alpha0),
            label=f"LAPL {scenario.name}",
        )
        posteriors["LAPL"] = timing.result
        seconds["LAPL"] = timing.seconds
    if "MCMC" in methods:
        if isinstance(data, FailureTimeData):
            sampler = gibbs_failure_time
        else:
            sampler = gibbs_grouped
        rng = np.random.default_rng(scale.mcmc.seed)
        timing = time_callable(
            lambda: sampler(data, prior, alpha0, settings=scale.mcmc, rng=rng),
            label=f"MCMC {scenario.name}",
        )
        result = timing.result
        posteriors["MCMC"] = result.posterior()
        seconds["MCMC"] = timing.seconds
        extra["MCMC"] = {
            "variate_count": result.variate_count,
            "sampler": result.extra.get("sampler"),
        }
    if "VB1" in methods:
        timing = time_callable(
            lambda: fit_vb1(data, prior, alpha0, vb_config),
            label=f"VB1 {scenario.name}",
        )
        posteriors["VB1"] = timing.result
        seconds["VB1"] = timing.seconds
    if "VB2" in methods:
        posteriors["VB2"] = vb2
        seconds["VB2"] = vb2_timing.seconds
        extra["VB2"] = {
            "nmax": vb2.diagnostics.get("nmax"),
            "tail_mass": vb2.diagnostics.get("tail_mass"),
        }

    ordered = {name: posteriors[name] for name in METHOD_ORDER if name in posteriors}
    return MethodResults(
        scenario=scenario, posteriors=ordered, seconds=seconds, extra=extra
    )


def run_scenarios(
    scenarios: Sequence[Scenario],
    scale: ExperimentScale = QUICK_SCALE,
    methods: tuple[str, ...] = METHOD_ORDER,
    *,
    workers: int | None = 1,
) -> dict[str, MethodResults]:
    """Fit the requested methods on several scenarios, keyed by name.

    With ``workers > 1`` the scenarios run concurrently on a process
    pool (:mod:`repro.validation.parallel`); because each scenario is
    fitted independently, per-scenario results are identical to the
    serial run and invariant to the order of ``scenarios``.
    """
    # Imported here: repro.validation.parallel is dependency-free, but
    # keeping the runner import-light preserves the layering for
    # consumers that only ever fit single scenarios.
    from repro.validation.parallel import parallel_map

    scenarios = list(scenarios)
    names = [scenario.name for scenario in scenarios]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate scenario names in batch: {names}")
    results = parallel_map(
        partial(_run_scenario_task, scale, methods), scenarios, workers=workers
    )
    return dict(zip(names, results))


def _run_scenario_task(
    scale: ExperimentScale, methods: tuple[str, ...], scenario: Scenario
) -> MethodResults:
    """Module-level task wrapper so scenario batches pickle cleanly."""
    return run_all_methods(scenario, scale=scale, methods=methods)
