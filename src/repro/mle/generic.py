"""Maximum likelihood for arbitrary NHPP model families.

The EM module is specific to the gamma-type family (its E-step uses
gamma truncated moments); this module fits *any* two-parameter model in
the zoo — Weibull, Rayleigh, log-normal, Pareto — by direct numerical
optimisation over ``(log ω, log β)``.
"""

from __future__ import annotations

import logging
import math
from collections.abc import Callable

import numpy as np
from scipy import optimize

from repro.data.failure_data import FailureTimeData, GroupedData
from repro.exceptions import EstimationError
from repro.mle.fisher import observed_information
from repro.mle.results import MLEResult
from repro.models.base import NHPPModel

__all__ = ["fit_mle_generic"]

_logger = logging.getLogger(__name__)


def fit_mle_generic(
    data: FailureTimeData | GroupedData,
    model_factory: Callable[..., NHPPModel],
    *,
    initial: tuple[float, float] | None = None,
    information: bool = True,
    **fixed_params: float,
) -> MLEResult:
    """Fit any two-parameter NHPP SRM by quasi-Newton optimisation.

    Parameters
    ----------
    data:
        Failure-time or grouped data.
    model_factory:
        Model constructor taking ``omega``, ``beta`` and optionally the
        ``fixed_params`` (e.g. ``shape=2.0`` for a Weibull member).
    initial:
        Starting ``(ω, β)``; a crude moment guess by default.
    information:
        Also compute the observed information matrix.
    fixed_params:
        Extra keyword arguments forwarded to the constructor (the fixed
        family parameters that are not estimated).
    """
    if isinstance(data, FailureTimeData):
        observed = data.count
    elif isinstance(data, GroupedData):
        observed = data.total_count
    else:
        raise TypeError(f"unsupported data type: {type(data).__name__}")
    if observed == 0:
        raise EstimationError("cannot fit an NHPP model to zero failures")
    if initial is None:
        initial = (1.2 * observed, 1.0 / data.horizon)

    def negative(z: np.ndarray) -> float:
        try:
            model = model_factory(
                omega=math.exp(z[0]), beta=math.exp(z[1]), **fixed_params
            )
        except (OverflowError, ValueError):
            return math.inf
        value = model.log_likelihood(data)
        return math.inf if math.isnan(value) else -value

    x0 = np.log(np.asarray(initial, dtype=float))
    rough = optimize.minimize(
        negative, x0, method="Nelder-Mead",
        options={"xatol": 1e-10, "fatol": 1e-12, "maxiter": 20_000},
    )
    polished = optimize.minimize(negative, rough.x, method="L-BFGS-B")
    best = polished if polished.fun <= rough.fun else rough
    if not math.isfinite(best.fun):
        raise EstimationError("likelihood is degenerate at every trial point")
    model = model_factory(
        omega=float(np.exp(best.x[0])), beta=float(np.exp(best.x[1])), **fixed_params
    )
    covariance = None
    if information:
        info = observed_information(data, model)
        try:
            covariance = np.linalg.inv(info)
        except np.linalg.LinAlgError:
            _logger.warning(
                "observed information matrix is singular at the generic "
                "MLE; covariance unavailable"
            )
            covariance = None
    return MLEResult(
        model=model,
        log_likelihood=-float(best.fun),
        iterations=int(rough.nit) + int(getattr(polished, "nit", 0)),
        converged=bool(best.success or polished.success),
        method="generic-newton",
        covariance=covariance,
    )
