"""EM algorithm for gamma-type NHPP SRMs (Okamura et al. 2003).

The finite-failure NHPP is a missing-data model: the complete data are
the lifetimes of *all* ``N`` faults, of which only those before the
horizon (failure-time data) or only interval counts (grouped data) are
observed. The E-step computes the expected complete-data sufficient
statistics under the current parameters; the M-step is the closed-form
complete-data MLE:

* ``E[N]    = m + ω S̄(horizon; α0, β)``        (observed + expected latent)
* ``E[Σ T]  = Σ observed/truncated means + latent tail means``
* ``ω'      = E[N]``
* ``β'      = α0 E[N] / E[Σ T]``

The observed-data log-likelihood is non-decreasing across iterations —
a property the test suite asserts.
"""

from __future__ import annotations

import logging
import math

import numpy as np

from repro import obs
from repro.data.failure_data import FailureTimeData, GroupedData
from repro.exceptions import ConvergenceError
from repro.mle.fisher import observed_information
from repro.mle.results import MLEResult
from repro.models.gamma_srm import GammaSRM
from repro.stats.special import log_gamma_sf
from repro.stats.truncated import censored_gamma_mean, truncated_gamma_mean

__all__ = ["fit_mle_em"]

_logger = logging.getLogger(__name__)


def _expected_statistics(
    data: FailureTimeData | GroupedData,
    omega: float,
    beta: float,
    alpha0: float,
) -> tuple[float, float]:
    """E-step: ``(E[N], E[Σ T])`` under the current parameters."""
    horizon = data.horizon
    latent = omega * math.exp(log_gamma_sf(horizon, alpha0, beta))
    tail_mean = censored_gamma_mean(horizon, alpha0, beta)
    if isinstance(data, FailureTimeData):
        expected_n = data.count + latent
        expected_sum = data.total_time + latent * tail_mean
    else:
        expected_n = data.total_count + latent
        expected_sum = latent * tail_mean
        edges = data.interval_edges()
        for i, count in enumerate(data.counts):
            if count == 0:
                continue
            expected_sum += count * truncated_gamma_mean(
                float(edges[i]), float(edges[i + 1]), alpha0, beta
            )
    return expected_n, expected_sum


def _em_step(
    data: FailureTimeData | GroupedData, omega: float, beta: float, alpha0: float
) -> tuple[float, float]:
    """One E+M sweep."""
    expected_n, expected_sum = _expected_statistics(data, omega, beta, alpha0)
    return expected_n, alpha0 * expected_n / expected_sum


def fit_mle_em(
    data: FailureTimeData | GroupedData,
    alpha0: float = 1.0,
    *,
    initial: tuple[float, float] | None = None,
    tol: float = 1e-10,
    max_iter: int = 100_000,
    information: bool = True,
    accelerate: bool = True,
) -> MLEResult:
    """Maximum-likelihood fit of a gamma-type NHPP SRM by EM.

    Parameters
    ----------
    data:
        Failure-time or grouped data.
    alpha0:
        Fixed lifetime shape (1 = Goel–Okumoto, 2 = delayed S-shaped).
    initial:
        Starting ``(ω, β)``; a crude moment guess by default.
    tol:
        Convergence threshold on the relative log-likelihood change.
    max_iter:
        Iteration budget (EM can be slow near flat ridges).
    information:
        Also compute the observed information / asymptotic covariance.
    accelerate:
        Apply SQUAREM extrapolation (Varadhan & Roland 2008). Each
        accelerated step is guarded: it is only accepted when it keeps
        the parameters positive and does not decrease the likelihood, so
        the monotone-ascent property of EM is preserved.

    Raises
    ------
    ConvergenceError
        If the budget is exhausted before the tolerance is met.
    """
    if isinstance(data, FailureTimeData):
        observed = data.count
    elif isinstance(data, GroupedData):
        observed = data.total_count
    else:
        raise TypeError(f"unsupported data type: {type(data).__name__}")
    if observed == 0:
        raise ConvergenceError("cannot fit an NHPP model to zero failures")

    with obs.span("mle.em.fit", data=type(data).__name__):
        return _fit_mle_em(
            data, alpha0, initial, tol, max_iter, information, accelerate,
            observed,
        )


def _fit_mle_em(
    data: FailureTimeData | GroupedData,
    alpha0: float,
    initial: tuple[float, float] | None,
    tol: float,
    max_iter: int,
    information: bool,
    accelerate: bool,
    observed: int,
) -> MLEResult:
    if initial is None:
        omega, beta = 1.2 * observed, alpha0 / data.horizon
    else:
        omega, beta = initial
    model = GammaSRM(omega=omega, beta=beta, alpha0=alpha0)
    loglik = model.log_likelihood(data)
    history = [loglik]
    converged = False
    iteration = 0
    squarem_accepted = 0
    for iteration in range(1, max_iter + 1):
        if accelerate:
            theta0 = np.array([omega, beta])
            theta1 = np.array(_em_step(data, theta0[0], theta0[1], alpha0))
            theta2 = np.array(_em_step(data, theta1[0], theta1[1], alpha0))
            r = theta1 - theta0
            v = theta2 - theta1 - r
            v_norm = float(np.linalg.norm(v))
            candidate = theta2
            if v_norm > 0.0:
                step = -float(np.linalg.norm(r)) / v_norm
                extrapolated = theta0 - 2.0 * step * r + step**2 * v
                if np.all(extrapolated > 0.0):
                    # Stabilise with one EM sweep from the extrapolation.
                    stabilised = np.array(
                        _em_step(data, extrapolated[0], extrapolated[1], alpha0)
                    )
                    trial = GammaSRM(
                        omega=stabilised[0], beta=stabilised[1], alpha0=alpha0
                    )
                    reference = GammaSRM(
                        omega=theta2[0], beta=theta2[1], alpha0=alpha0
                    )
                    if trial.log_likelihood(data) >= reference.log_likelihood(data):
                        candidate = stabilised
                        squarem_accepted += 1
            omega, beta = float(candidate[0]), float(candidate[1])
        else:
            omega, beta = _em_step(data, omega, beta, alpha0)
        model = GammaSRM(omega=omega, beta=beta, alpha0=alpha0)
        new_loglik = model.log_likelihood(data)
        history.append(new_loglik)
        if abs(new_loglik - loglik) <= tol * (abs(loglik) + 1.0):
            loglik = new_loglik
            converged = True
            break
        loglik = new_loglik
    if not converged:
        if obs.enabled():
            obs.counter_add("mle.em.failures")
            obs.event(
                "mle.em.divergence",
                iterations=max_iter,
                log_likelihood=float(loglik),
            )
        raise ConvergenceError(
            f"EM did not converge within {max_iter} iterations",
            iterations=max_iter,
        )
    if obs.enabled():
        obs.counter_add("mle.em.fits")
        obs.observe("mle.em.iterations", iteration)
        if squarem_accepted:
            obs.counter_add("mle.em.squarem_accepted", squarem_accepted)

    covariance = None
    if information:
        info = observed_information(data, model)
        try:
            covariance = np.linalg.inv(info)
        except np.linalg.LinAlgError:
            _logger.warning(
                "observed information matrix is singular at the EM MLE; "
                "covariance unavailable"
            )
            covariance = None
    return MLEResult(
        model=model,
        log_likelihood=loglik,
        iterations=iteration,
        converged=converged,
        method="em",
        covariance=covariance,
        history=history,
    )
