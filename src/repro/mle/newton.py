"""Direct quasi-Newton maximum likelihood (cross-check for the EM fit).

Section 3 of the paper notes that Newton or quasi-Newton methods are
the traditional way to maximise the NHPP log-likelihood. This module
wraps scipy's Nelder–Mead + L-BFGS-B combination over log-parameters;
the test suite asserts it agrees with the EM fixed point.
"""

from __future__ import annotations

import logging
import math

import numpy as np
from scipy import optimize

from repro import obs
from repro.data.failure_data import FailureTimeData, GroupedData
from repro.exceptions import EstimationError
from repro.mle.fisher import observed_information
from repro.mle.results import MLEResult
from repro.models.gamma_srm import GammaSRM

__all__ = ["fit_mle_newton"]

_logger = logging.getLogger(__name__)


def fit_mle_newton(
    data: FailureTimeData | GroupedData,
    alpha0: float = 1.0,
    *,
    initial: tuple[float, float] | None = None,
    information: bool = True,
) -> MLEResult:
    """Maximum-likelihood fit by direct numerical optimisation.

    The search runs in ``(log ω, log β)`` so the optimiser never leaves
    the positive quadrant; the reported optimum is the MLE of the
    original parametrisation (the objective is unchanged by the
    coordinate change).
    """
    if isinstance(data, FailureTimeData):
        observed = data.count
    elif isinstance(data, GroupedData):
        observed = data.total_count
    else:
        raise TypeError(f"unsupported data type: {type(data).__name__}")
    if observed == 0:
        raise EstimationError("cannot fit an NHPP model to zero failures")
    if initial is None:
        initial = (1.2 * observed, alpha0 / data.horizon)

    def negative(z: np.ndarray) -> float:
        model = GammaSRM(
            omega=math.exp(z[0]), beta=math.exp(z[1]), alpha0=alpha0
        )
        return -model.log_likelihood(data)

    x0 = np.log(np.asarray(initial, dtype=float))
    with obs.span("mle.newton.fit", data=type(data).__name__):
        rough = optimize.minimize(
            negative, x0, method="Nelder-Mead",
            options={"xatol": 1e-10, "fatol": 1e-12, "maxiter": 10_000},
        )
        polished = optimize.minimize(negative, rough.x, method="L-BFGS-B")
    best = polished if polished.fun <= rough.fun else rough
    if obs.enabled():
        obs.counter_add("mle.newton.fits")
        obs.observe(
            "mle.newton.iterations",
            int(rough.nit) + int(getattr(polished, "nit", 0)),
        )
        obs.observe(
            "mle.newton.evaluations",
            int(rough.nfev) + int(getattr(polished, "nfev", 0)),
        )
        if polished.fun > rough.fun:
            obs.counter_add("mle.newton.polish_rejected")
        if not (rough.success or polished.success):
            obs.counter_add("mle.newton.failures")
            obs.event("mle.newton.failed", evaluations=int(rough.nfev))
    omega_hat, beta_hat = float(np.exp(best.x[0])), float(np.exp(best.x[1]))
    model = GammaSRM(omega=omega_hat, beta=beta_hat, alpha0=alpha0)
    covariance = None
    if information:
        info = observed_information(data, model)
        try:
            covariance = np.linalg.inv(info)
        except np.linalg.LinAlgError:
            _logger.warning(
                "observed information matrix is singular at the Newton "
                "MLE; covariance unavailable"
            )
            covariance = None
    return MLEResult(
        model=model,
        log_likelihood=-float(best.fun),
        iterations=int(rough.nit) + int(getattr(polished, "nit", 0)),
        # Either stage succeeding means the optimum was located: the
        # polish can end "ABNORMAL" on a flat line search at the point
        # Nelder-Mead already converged to (ties pick `polished`).
        converged=bool(rough.success or polished.success),
        method="newton",
        covariance=covariance,
    )
