"""Result container for maximum-likelihood fits."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import stats as st

from repro.models.base import NHPPModel

__all__ = ["MLEResult"]

_PARAM_INDEX = {"omega": 0, "beta": 1}


@dataclass
class MLEResult:
    """Outcome of a maximum-likelihood fit of an NHPP SRM.

    Attributes
    ----------
    model:
        The fitted model instance (carries ``omega`` and ``beta``).
    log_likelihood:
        Observed-data log-likelihood at the estimate.
    iterations:
        Iterations used by the fitting algorithm.
    converged:
        Whether the tolerance was met.
    method:
        "em" or "newton".
    covariance:
        Optional 2x2 asymptotic covariance (inverse observed
        information) in the order (omega, beta).
    history:
        Log-likelihood trace per iteration (EM only; monotone
        non-decreasing by construction).
    """

    model: NHPPModel
    log_likelihood: float
    iterations: int
    converged: bool
    method: str
    covariance: np.ndarray | None = None
    history: list[float] = field(default_factory=list)

    @property
    def omega(self) -> float:
        """MLE of the expected total fault count."""
        return self.model.omega

    @property
    def beta(self) -> float:
        """MLE of the lifetime rate."""
        return float(self.model.params["beta"])

    def std_error(self, param: str) -> float:
        """Asymptotic standard error; requires :attr:`covariance`."""
        if self.covariance is None:
            raise ValueError("no covariance available; fit with information=True")
        idx = _PARAM_INDEX[param]
        return math.sqrt(float(self.covariance[idx, idx]))

    def confidence_interval(self, param: str, level: float = 0.95) -> tuple[float, float]:
        """Wald interval ``estimate ± z * se`` (Yamada & Osaki 1985).

        Like the Laplace approximation the paper discusses, this can
        produce a negative lower bound for a positive parameter.
        """
        if not 0.0 < level < 1.0:
            raise ValueError("level must be in (0, 1)")
        estimate = self.omega if param == "omega" else self.beta
        z = float(st.norm.ppf(0.5 * (1.0 + level)))
        se = self.std_error(param)
        return estimate - z * se, estimate + z * se

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MLEResult({self.method}): omega={self.omega:.4g}, "
            f"beta={self.beta:.4g}, loglik={self.log_likelihood:.4f}, "
            f"iters={self.iterations}, converged={self.converged}"
        )
