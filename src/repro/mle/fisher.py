"""Observed Fisher information and Wald intervals for NHPP MLEs."""

from __future__ import annotations

import math

import numpy as np
from scipy import stats as st

from repro.data.failure_data import FailureTimeData, GroupedData
from repro.models.base import NHPPModel

__all__ = ["observed_information", "wald_interval"]


def observed_information(
    data: FailureTimeData | GroupedData,
    model: NHPPModel,
    *,
    relative_step: float = 1e-4,
) -> np.ndarray:
    """Observed information ``-∇² log L`` at the given parameter point,
    by central differences with parameter-scaled steps.

    The parameter order is (omega, beta).
    """
    omega_hat = model.omega
    beta_hat = float(model.params["beta"])
    steps = np.array([relative_step * omega_hat, relative_step * beta_hat])
    point = np.array([omega_hat, beta_hat])

    def loglik(p: np.ndarray) -> float:
        return model.replace(omega=float(p[0]), beta=float(p[1])).log_likelihood(data)

    hess = np.empty((2, 2))
    f0 = loglik(point)
    for i in range(2):
        ei = np.zeros(2)
        ei[i] = steps[i]
        hess[i, i] = (loglik(point + ei) - 2.0 * f0 + loglik(point - ei)) / steps[i] ** 2
    e0 = np.array([steps[0], 0.0])
    e1 = np.array([0.0, steps[1]])
    hess[0, 1] = hess[1, 0] = (
        loglik(point + e0 + e1)
        - loglik(point + e0 - e1)
        - loglik(point - e0 + e1)
        + loglik(point - e0 - e1)
    ) / (4.0 * steps[0] * steps[1])
    return -hess


def wald_interval(
    estimate: float, std_error: float, level: float = 0.95
) -> tuple[float, float]:
    """Symmetric normal-approximation confidence interval."""
    if std_error < 0.0:
        raise ValueError("std_error must be non-negative")
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    z = float(st.norm.ppf(0.5 * (1.0 + level)))
    return estimate - z * std_error, estimate + z * std_error
