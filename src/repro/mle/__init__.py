"""Maximum-likelihood point estimation for NHPP SRMs.

Implements the EM iteration of Okamura, Watanabe & Dohi (2003) for the
gamma-type family (the scheme the paper's Section 3 references), a
quasi-Newton direct optimiser as a cross-check, and Wald confidence
intervals from the observed Fisher information (the MLE-based interval
construction the paper contrasts Bayesian intervals with).
"""

from repro.mle.em import fit_mle_em
from repro.mle.newton import fit_mle_newton
from repro.mle.generic import fit_mle_generic
from repro.mle.fisher import observed_information, wald_interval
from repro.mle.results import MLEResult

__all__ = [
    "fit_mle_em",
    "fit_mle_newton",
    "fit_mle_generic",
    "observed_information",
    "wald_interval",
    "MLEResult",
]
