"""NINT: direct numerical integration of the joint posterior.

The paper's reference method (Section 4.1): evaluate the unnormalised
posterior ``P(D | ω, β) P(ω) P(β)`` over a rectangle in ``(ω, β)``,
normalise, and compute every functional by quadrature. Working in log
space with log-sum-exp normalisation replaces the multiple-precision
arithmetic the paper needed in Mathematica.

The paper chooses the integration rectangle from VB2 quantiles: each
lower limit is the VB2 0.5%-quantile divided by two, each upper limit
the 99.5%-quantile times 1.5. :func:`fit_nint` reproduces exactly that
heuristic when handed a VB2 posterior, and also accepts explicit limits.
"""

from __future__ import annotations

import numpy as np
from repro.backend import special as sc

from repro import obs
from repro.bayes.grid_posterior import GridPosterior
from repro.bayes.joint import JointPosterior
from repro.bayes.priors import ModelPrior
from repro.data.failure_data import FailureTimeData, GroupedData
from repro.stats.quadrature import TensorGrid

__all__ = [
    "fit_nint",
    "integration_limits_from_posterior",
    "log_posterior_matrix",
    "times_log_posterior_terms",
]


def times_log_posterior_terms(
    me: np.ndarray,
    sum_log_times: np.ndarray,
    total_time: np.ndarray,
    horizon: np.ndarray,
    alpha0: float,
    beta_nodes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Failure-time β-axis data terms for many datasets at once.

    ``beta_nodes`` is ``(datasets, n_beta)`` (one grid row per
    dataset); the per-dataset scalars broadcast down rows. Row ``d``
    evaluates exactly the expressions :func:`log_posterior_matrix` uses
    for dataset ``d`` — same ufuncs, same order — so fleet NINT fits
    stay bit-identical to per-dataset scalar fits. Returns
    ``(beta_part, tail_g)``, each ``(datasets, n_beta)``.
    """
    beta_nodes = np.asarray(beta_nodes, dtype=float)
    if np.any(beta_nodes <= 0.0):
        raise ValueError("grid nodes must be strictly positive")
    me = np.asarray(me, dtype=float)[:, None]
    sum_log_times = np.asarray(sum_log_times, dtype=float)[:, None]
    total_time = np.asarray(total_time, dtype=float)[:, None]
    horizon = np.asarray(horizon, dtype=float)[:, None]
    beta_part = (
        me * alpha0 * np.log(beta_nodes)
        + (alpha0 - 1.0) * sum_log_times
        - beta_nodes * total_time
        - me * float(sc.gammaln(alpha0))
    )
    tail_g = sc.gammainc(alpha0, beta_nodes * horizon)
    return beta_part, tail_g


def log_posterior_matrix(
    data: FailureTimeData | GroupedData,
    prior: ModelPrior,
    alpha0: float,
    omega_nodes: np.ndarray,
    beta_nodes: np.ndarray,
) -> np.ndarray:
    """Unnormalised log posterior on a tensor grid.

    Exploits the separable structure of the gamma-type likelihood: for
    each β node the data terms are scalars, and the ω dependence is
    ``me log ω - ω G(horizon; β)`` — so the matrix is built from outer
    sums instead of a double loop.
    """
    omega_nodes = np.asarray(omega_nodes, dtype=float)
    beta_nodes = np.asarray(beta_nodes, dtype=float)
    if np.any(omega_nodes <= 0.0) or np.any(beta_nodes <= 0.0):
        raise ValueError("grid nodes must be strictly positive")

    if isinstance(data, FailureTimeData):
        me = data.count
        # sum_i log g(t_i; α0, β) = me α0 log β + (α0-1) Σ log t_i
        #                           - β Σ t_i - me ln Γ(α0)
        beta_part = (
            me * alpha0 * np.log(beta_nodes)
            + (alpha0 - 1.0) * data.sum_log_times
            - beta_nodes * data.total_time
            - me * float(sc.gammaln(alpha0))
        )
        tail_g = sc.gammainc(alpha0, beta_nodes * data.horizon)
        observed = me
    elif isinstance(data, GroupedData):
        edges = data.interval_edges()
        observed = data.total_count
        # One broadcast over the whole (beta, edge) mesh instead of a
        # Python loop per beta row: the incomplete-gamma evaluation at
        # every node lands in a single ufunc call.
        mask = data.counts > 0
        cdf_vals = sc.gammainc(alpha0, np.outer(beta_nodes, edges))
        increments = np.diff(cdf_vals, axis=1)[:, mask]
        bad = np.any(increments <= 0.0, axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            log_inc = np.log(increments)
        beta_part = log_inc @ np.asarray(data.counts, dtype=float)[mask]
        beta_part[bad] = -np.inf
        beta_part -= float(np.sum(sc.gammaln(np.asarray(data.counts) + 1.0)))
        tail_g = sc.gammainc(alpha0, beta_nodes * data.horizon)
    else:
        raise TypeError(f"unsupported data type: {type(data).__name__}")

    log_prior_omega = np.asarray(prior.omega.log_pdf(omega_nodes))
    log_prior_beta = np.asarray(prior.beta.log_pdf(beta_nodes))
    omega_part = observed * np.log(omega_nodes) + log_prior_omega
    matrix = (
        omega_part[:, None]
        + (beta_part + log_prior_beta)[None, :]
        - np.outer(omega_nodes, tail_g)
    )
    return matrix


def integration_limits_from_posterior(
    posterior: JointPosterior,
    *,
    lower_quantile: float = 0.005,
    upper_quantile: float = 0.995,
    lower_factor: float = 0.5,
    upper_factor: float = 1.5,
) -> dict[str, tuple[float, float]]:
    """The paper's limit heuristic: ``[q_0.005 / 2, q_0.995 * 1.5]``
    per parameter, read off a (typically VB2) posterior."""
    limits = {}
    for param in ("omega", "beta"):
        lo = posterior.quantile(param, lower_quantile) * lower_factor
        hi = posterior.quantile(param, upper_quantile) * upper_factor
        limits[param] = (lo, hi)
    return limits


def fit_nint(
    data: FailureTimeData | GroupedData,
    prior: ModelPrior,
    alpha0: float = 1.0,
    *,
    limits: dict[str, tuple[float, float]] | None = None,
    reference_posterior: JointPosterior | None = None,
    n_omega: int = 321,
    n_beta: int = 321,
) -> GridPosterior:
    """Fit the NINT posterior on a Simpson tensor grid.

    Parameters
    ----------
    data, prior, alpha0:
        Model specification as elsewhere.
    limits:
        Explicit integration rectangle ``{"omega": (lo, hi), "beta":
        (lo, hi)}``. If omitted, ``reference_posterior`` must be given
        and the paper's VB2-quantile heuristic is applied.
    reference_posterior:
        Posterior used for the limit heuristic (the paper uses VB2).
    n_omega, n_beta:
        Grid resolution per axis (rounded up to odd for Simpson).
    """
    if limits is None:
        if reference_posterior is None:
            raise ValueError(
                "either explicit limits or a reference_posterior is required"
            )
        limits = integration_limits_from_posterior(reference_posterior)
    omega_range = limits["omega"]
    beta_range = limits["beta"]
    if not (0.0 < omega_range[0] < omega_range[1]):
        raise ValueError(f"invalid omega limits {omega_range}")
    if not (0.0 < beta_range[0] < beta_range[1]):
        raise ValueError(f"invalid beta limits {beta_range}")

    with obs.span("nint.fit", collect=True, data=type(data).__name__) as sp:
        grid = TensorGrid.simpson(omega_range, beta_range, n_omega, n_beta)
        log_post = log_posterior_matrix(data, prior, alpha0, grid.x, grid.y)

        def log_pdf_fn(
            omega_nodes: np.ndarray, beta_nodes: np.ndarray
        ) -> np.ndarray:
            return log_posterior_matrix(
                data, prior, alpha0, omega_nodes, beta_nodes
            )

        posterior = GridPosterior(grid, log_post, log_pdf_fn=log_pdf_fn)
        if obs.enabled():
            obs.counter_add("nint.fits")
            obs.counter_add("nint.grid_evaluations", grid.x.size * grid.y.size)
            obs.observe("nint.nodes_omega", grid.x.size)
            obs.observe("nint.nodes_beta", grid.y.size)
            obs.observe("nint.log_normaliser", posterior.log_normaliser)
            obs.fit_health(
                "NINT",
                nodes=grid.x.size * grid.y.size,
                log_normaliser=posterior.log_normaliser,
            )
            if sp.collecting:
                posterior.diagnostics = {"telemetry": sp.telemetry()}
        return posterior
