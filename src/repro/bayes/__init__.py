"""Bayesian inference layer: priors, posterior abstractions, and the
three conventional approximation baselines (NINT, Laplace, MCMC)."""

from repro.bayes.priors import GammaPrior, FlatPrior, ScaleInvariantPrior, ModelPrior
from repro.bayes.joint import JointPosterior
from repro.bayes.nint import fit_nint
from repro.bayes.laplace import fit_laplace, find_map
from repro.bayes.grid_posterior import GridPosterior
from repro.bayes.normal_posterior import NormalPosterior
from repro.bayes.sample_posterior import EmpiricalPosterior
from repro.bayes.importance import ImportanceResult, importance_correct
from repro.bayes.sensitivity import (
    SensitivityRecord,
    SensitivityReport,
    prior_sensitivity,
)

__all__ = [
    "ImportanceResult",
    "importance_correct",
    "SensitivityRecord",
    "SensitivityReport",
    "prior_sensitivity",
    "GammaPrior",
    "FlatPrior",
    "ScaleInvariantPrior",
    "ModelPrior",
    "JointPosterior",
    "fit_nint",
    "fit_laplace",
    "find_map",
    "GridPosterior",
    "NormalPosterior",
    "EmpiricalPosterior",
]
