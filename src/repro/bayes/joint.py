"""Abstract interface for joint posteriors of ``(ω, β)``.

Every approximation method in this package — NINT, Laplace, MCMC, VB1
and VB2 — returns an object implementing this interface, so the
experiment harness can compare them uniformly: moments (Table 1 of the
paper), marginal credible intervals (Tables 2–3), density grids
(Figure 1) and software-reliability functionals (Tables 4–5).

Reliability support
-------------------
Software reliability for a gamma-type model is ``R = exp(-ω c(β))``
where ``c(β) = G(te+u; β) - G(te; β)`` depends only on ``β`` (paper
Eq. 3). Posteriors therefore expose reliability through the scalar
function ``c``; :mod:`repro.core.reliability` builds ``c`` from the
model family and packages results.
"""

from __future__ import annotations

import abc
import math
from collections.abc import Callable

import numpy as np

from repro.stats.rootfind import bisect_increasing

__all__ = ["JointPosterior", "PARAM_NAMES"]

PARAM_NAMES = ("omega", "beta")


class JointPosterior(abc.ABC):
    """Joint posterior distribution of the pair ``(ω, β)``."""

    #: Label used in comparison tables ("NINT", "LAPL", "MCMC", "VB1", "VB2").
    method_name: str = "?"

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def mean(self, param: str) -> float:
        """Posterior mean of ``param`` ("omega" or "beta")."""

    @abc.abstractmethod
    def variance(self, param: str) -> float:
        """Posterior variance of ``param``."""

    @abc.abstractmethod
    def cross_moment(self) -> float:
        """``E[ω β]`` under the joint posterior."""

    def covariance(self) -> float:
        """``Cov(ω, β)``."""
        return self.cross_moment() - self.mean("omega") * self.mean("beta")

    def covariance_matrix(self) -> np.ndarray:
        """2x2 matrix in the order (omega, beta)."""
        cov = self.covariance()
        return np.array(
            [
                [self.variance("omega"), cov],
                [cov, self.variance("beta")],
            ]
        )

    def std(self, param: str) -> float:
        """Posterior standard deviation."""
        return math.sqrt(max(self.variance(param), 0.0))

    def central_moment(self, param: str, k: int) -> float:
        """k-th central moment; subclasses with analytic structure
        override. The default integrates via :meth:`quantile`-free means
        and must be overridden where no generic path exists."""
        raise NotImplementedError(
            f"{type(self).__name__} does not provide central moments of order {k}"
        )

    def correlation(self) -> float:
        """Posterior correlation of ``(ω, β)``."""
        denom = self.std("omega") * self.std("beta")
        if denom == 0.0:
            return 0.0
        return self.covariance() / denom

    # ------------------------------------------------------------------
    # Marginal quantiles and intervals
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def quantile(self, param: str, q: float) -> float:
        """Marginal posterior quantile of ``param`` at level ``q``."""

    def quantile_batch(self, param: str, q: np.ndarray) -> np.ndarray:
        """Marginal posterior quantiles of ``param`` at many levels.

        The default loops over :meth:`quantile`; posteriors with a
        vectorized quantile path (VB mixtures, grid and sample
        posteriors) override it so the whole batch costs one
        simultaneous inversion. Interval consumers — central credible
        intervals, the HPD search in :mod:`repro.core.hpd`, coverage
        campaigns — should prefer this entry point.
        """
        levels = np.atleast_1d(np.asarray(q, dtype=float))
        return np.array([self.quantile(param, float(level)) for level in levels])

    def credible_interval(self, param: str, level: float) -> tuple[float, float]:
        """Central two-sided credible interval (paper uses level 0.99)."""
        if not 0.0 < level < 1.0:
            raise ValueError("level must be in (0, 1)")
        tail = 0.5 * (1.0 - level)
        lower, upper = self.quantile_batch(param, np.array([tail, 1.0 - tail]))
        return float(lower), float(upper)

    def cdf(self, param: str, x: float) -> float:
        """Marginal posterior CDF of ``param`` at ``x``.

        Default implementation inverts :meth:`quantile` by bisection
        (the quantile function is monotone); subclasses with an
        analytic or tabulated CDF override this. The validation layer
        uses it for probability-integral-transform (SBC rank)
        statistics.
        """
        self._check_param(param)
        lo, hi = 1e-12, 1.0 - 1e-12
        if x <= self.quantile(param, lo):
            return 0.0
        if x >= self.quantile(param, hi):
            return 1.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.quantile(param, mid) < x:
                lo = mid
            else:
                hi = mid
            if hi - lo < 1e-13:
                break
        return 0.5 * (lo + hi)

    # ------------------------------------------------------------------
    # Density (for Figure 1 style contour data); optional
    # ------------------------------------------------------------------
    def log_pdf_grid(self, omega: np.ndarray, beta: np.ndarray) -> np.ndarray:
        """Joint log density evaluated on a tensor grid
        (shape ``(len(omega), len(beta))``); optional capability."""
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a joint density"
        )

    # ------------------------------------------------------------------
    # Software reliability R = exp(-omega * c(beta))
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def reliability_point(self, c: Callable[[np.ndarray], np.ndarray]) -> float:
        """Posterior mean of ``R = exp(-ω c(β))`` (paper Eq. 31)."""

    @abc.abstractmethod
    def reliability_cdf(self, r: float, c: Callable[[np.ndarray], np.ndarray]) -> float:
        """``P(R <= r)`` under the posterior (the inversion target of
        paper Eq. 32)."""

    def reliability_quantile(
        self, q: float, c: Callable[[np.ndarray], np.ndarray]
    ) -> float:
        """Quantile of the reliability posterior by bisection on
        :meth:`reliability_cdf` over ``[0, 1]``."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile level must be in (0, 1)")
        return bisect_increasing(
            lambda r: self.reliability_cdf(r, c) - q, 0.0, 1.0, xtol=1e-10
        )

    def reliability_quantile_batch(
        self, q: np.ndarray, c: Callable[[np.ndarray], np.ndarray]
    ) -> np.ndarray:
        """Reliability quantiles at many levels.

        The default loops over :meth:`reliability_quantile`; sample
        posteriors override it so the shared work (transforming and
        sorting the reliability samples) happens once for the whole
        batch. Interval consumers should prefer this entry point, like
        :meth:`quantile_batch` for the marginals.
        """
        levels = np.atleast_1d(np.asarray(q, dtype=float))
        return np.array(
            [self.reliability_quantile(float(level), c) for level in levels]
        )

    def reliability_interval(
        self, level: float, c: Callable[[np.ndarray], np.ndarray]
    ) -> tuple[float, float]:
        """Central two-sided credible interval for the reliability."""
        if not 0.0 < level < 1.0:
            raise ValueError("level must be in (0, 1)")
        tail = 0.5 * (1.0 - level)
        lower, upper = self.reliability_quantile_batch(
            np.array([tail, 1.0 - tail]), c
        )
        return float(lower), float(upper)

    # ------------------------------------------------------------------
    # Residual fault count D = omega * c(beta), c = 1 - G(te)
    # ------------------------------------------------------------------
    def residual_quantile_batch(
        self, q: np.ndarray, survival: Callable[[np.ndarray], np.ndarray]
    ) -> np.ndarray:
        """Quantiles of the expected residual fault count
        ``D = ω c(β)`` with ``c`` a :class:`~repro.core.reliability.
        ResidualSurvival` (``c(β) = 1 - G(te; β)``).

        ``D = -log R`` for the reliability ``R = exp(-ω c(β))``, and
        ``-log`` is strictly decreasing, so quantiles transform exactly:
        the ``q``-quantile of ``D`` is ``-log`` of the ``(1-q)``-quantile
        of ``R``. Posteriors whose reliability quantiles are not genuine
        probabilities (the Laplace delta method) override this with a
        native approximation.
        """
        levels = np.atleast_1d(np.asarray(q, dtype=float))
        rel = np.asarray(
            self.reliability_quantile_batch(1.0 - levels, survival), dtype=float
        )
        with np.errstate(divide="ignore"):
            return -np.log(np.clip(rel, 0.0, 1.0))

    def residual_interval(
        self, level: float, survival: Callable[[np.ndarray], np.ndarray]
    ) -> tuple[float, float]:
        """Central two-sided credible interval for the residual fault
        count (the robustness campaign's second coverage target)."""
        if not 0.0 < level < 1.0:
            raise ValueError("level must be in (0, 1)")
        tail = 0.5 * (1.0 - level)
        lower, upper = self.residual_quantile_batch(
            np.array([tail, 1.0 - tail]), survival
        )
        return float(lower), float(upper)

    # ------------------------------------------------------------------
    def moments_summary(self) -> dict[str, float]:
        """The five quantities of the paper's Table 1."""
        return {
            "E[omega]": self.mean("omega"),
            "E[beta]": self.mean("beta"),
            "Var(omega)": self.variance("omega"),
            "Var(beta)": self.variance("beta"),
            "Cov(omega,beta)": self.covariance(),
        }

    @staticmethod
    def _check_param(param: str) -> str:
        if param not in PARAM_NAMES:
            raise ValueError(f"param must be one of {PARAM_NAMES}, got {param!r}")
        return param
