"""Accuracy of sample-based quantile estimates (Chen & Kelton 1999).

The paper justifies its 20000-sample schedule with the fact that the
empirical 2.5%-quantile then lies, with 95% confidence, between the
theoretical 2.4%- and 2.6%-quantiles. These helpers expose that
binomial-fluctuation calculation, both ways around.
"""

from __future__ import annotations

import math

from scipy import stats as st

__all__ = ["quantile_coverage_interval", "sample_size_for_quantile"]


def quantile_coverage_interval(
    n_samples: int, p: float, confidence: float = 0.95
) -> tuple[float, float]:
    """Probability band the empirical ``p``-quantile of ``n`` i.i.d.
    samples covers with the given confidence.

    The rank of the empirical ``p``-quantile is Binomial(n, p)-
    distributed around ``np``; a normal approximation gives the band
    ``p ± z sqrt(p (1-p) / n)``, clipped to (0, 1).
    """
    if n_samples < 1:
        raise ValueError("n_samples must be positive")
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = float(st.norm.ppf(0.5 * (1.0 + confidence)))
    half_width = z * math.sqrt(p * (1.0 - p) / n_samples)
    return max(p - half_width, 0.0), min(p + half_width, 1.0)


def sample_size_for_quantile(
    p: float, half_width: float, confidence: float = 0.95
) -> int:
    """Samples needed so the empirical ``p``-quantile covers
    ``p ± half_width`` with the given confidence.

    Inverts :func:`quantile_coverage_interval`; this is why interval
    estimation by MCMC is expensive — the cost grows as
    ``p (1-p) / half_width^2``.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    if half_width <= 0.0:
        raise ValueError("half_width must be positive")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = float(st.norm.ppf(0.5 * (1.0 + confidence)))
    return int(math.ceil(p * (1.0 - p) * (z / half_width) ** 2))
