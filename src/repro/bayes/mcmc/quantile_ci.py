"""Accuracy of sample-based quantile estimates (Chen & Kelton 1999).

The paper justifies its 20000-sample schedule with the fact that the
empirical 2.5%-quantile then lies, with 95% confidence, between the
theoretical 2.4%- and 2.6%-quantiles. These helpers expose that
binomial-fluctuation calculation, both ways around — elementwise over
arrays of levels, so a whole interval sweep (every tail level of a
coverage campaign) costs one vectorized evaluation.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as st

__all__ = ["quantile_coverage_interval", "sample_size_for_quantile"]


def quantile_coverage_interval(
    n_samples: int,
    p: float | np.ndarray,
    confidence: float = 0.95,
) -> tuple[float, float] | tuple[np.ndarray, np.ndarray]:
    """Probability band the empirical ``p``-quantile of ``n`` i.i.d.
    samples covers with the given confidence.

    The rank of the empirical ``p``-quantile is Binomial(n, p)-
    distributed around ``np``; a normal approximation gives the band
    ``p ± z sqrt(p (1-p) / n)``, clipped to (0, 1). ``p`` may be an
    array of levels; the band is then computed elementwise and the
    bounds returned as arrays.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be positive")
    p_arr = np.asarray(p, dtype=float)
    scalar = p_arr.ndim == 0
    if not np.all((p_arr > 0.0) & (p_arr < 1.0)):
        raise ValueError("p must be in (0, 1)")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = float(st.norm.ppf(0.5 * (1.0 + confidence)))
    half_width = z * np.sqrt(p_arr * (1.0 - p_arr) / n_samples)
    lower = np.maximum(p_arr - half_width, 0.0)
    upper = np.minimum(p_arr + half_width, 1.0)
    if scalar:
        return float(lower), float(upper)
    return lower, upper


def sample_size_for_quantile(
    p: float | np.ndarray,
    half_width: float | np.ndarray,
    confidence: float = 0.95,
) -> int | np.ndarray:
    """Samples needed so the empirical ``p``-quantile covers
    ``p ± half_width`` with the given confidence.

    Inverts :func:`quantile_coverage_interval`; this is why interval
    estimation by MCMC is expensive — the cost grows as
    ``p (1-p) / half_width^2``. Elementwise over arrays of ``p`` and/or
    ``half_width``.
    """
    p_arr = np.asarray(p, dtype=float)
    hw_arr = np.asarray(half_width, dtype=float)
    scalar = p_arr.ndim == 0 and hw_arr.ndim == 0
    if not np.all((p_arr > 0.0) & (p_arr < 1.0)):
        raise ValueError("p must be in (0, 1)")
    if not np.all(hw_arr > 0.0):
        raise ValueError("half_width must be positive")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = float(st.norm.ppf(0.5 * (1.0 + confidence)))
    n = np.ceil(p_arr * (1.0 - p_arr) * (z / hw_arr) ** 2).astype(np.int64)
    if scalar:
        return int(n)
    return n
