"""Multi-chain MCMC running with convergence assessment.

The paper runs one long chain; standard practice is to run several from
dispersed starting points and check the Gelman–Rubin potential scale
reduction factor before trusting the draws. This module wraps any of
the package's samplers in that workflow.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.bayes.mcmc.chains import ChainSettings, MCMCResult
from repro.bayes.mcmc.diagnostics import (
    effective_sample_size,
    gelman_rubin,
    geweke_z,
)
from repro.bayes.mcmc.gibbs_failure_time import gibbs_failure_time
from repro.bayes.mcmc.gibbs_grouped import gibbs_grouped
from repro.bayes.mcmc.lane_engine import (
    gibbs_failure_time_lanes,
    gibbs_grouped_lanes,
)
from repro.bayes.sample_posterior import EmpiricalPosterior

#: Samplers the lane engine can run as lock-step lanes of one batched
#: fit; anything else (e.g. the Metropolis fallback) keeps the
#: per-chain loop.
_LANE_SAMPLERS = {
    gibbs_failure_time: gibbs_failure_time_lanes,
    gibbs_grouped: gibbs_grouped_lanes,
}

__all__ = ["MultiChainResult", "run_chains"]


@dataclass
class MultiChainResult:
    """Pooled result of several independent chains.

    Attributes
    ----------
    chains:
        Per-chain results in seed order.
    rhat:
        Gelman–Rubin statistic per parameter ("omega", "beta").
    ess:
        Pooled effective sample size per parameter.
    geweke:
        Per-chain Geweke z-scores per parameter.
    """

    chains: list[MCMCResult]
    rhat: dict[str, float]
    ess: dict[str, float]
    geweke: dict[str, list[float]]

    @property
    def converged(self) -> bool:
        """Conventional acceptance: R-hat below 1.1 for every parameter."""
        return all(value < 1.1 for value in self.rhat.values())

    def posterior(self) -> EmpiricalPosterior:
        """Pooled samples of all chains as one posterior."""
        samples = np.concatenate([chain.samples for chain in self.chains])
        total_variates = sum(chain.variate_count for chain in self.chains)
        return EmpiricalPosterior(
            samples,
            diagnostics={
                "n_chains": len(self.chains),
                "rhat": dict(self.rhat),
                "ess": dict(self.ess),
                "variate_count": total_variates,
            },
        )


def run_chains(
    sampler: Callable[..., MCMCResult],
    data,
    prior,
    *,
    alpha0: float = 1.0,
    n_chains: int = 4,
    settings: ChainSettings | None = None,
    base_seed: int = 0,
) -> MultiChainResult:
    """Run ``n_chains`` independent chains and pool them with diagnostics.

    Parameters
    ----------
    sampler:
        One of :func:`gibbs_failure_time`, :func:`gibbs_grouped` or
        :func:`random_walk_metropolis`.
    data, prior, alpha0:
        Passed through to the sampler.
    n_chains:
        Number of independent chains (each gets seed ``base_seed + i``).
    settings:
        Per-chain schedule (the burn-in applies to every chain). With
        ``variate_layer="inverse"`` the Gibbs samplers run as lock-step
        lanes of one batched fit
        (:mod:`repro.bayes.mcmc.lane_engine`) — chain ``i``'s samples
        are bit-identical to the per-chain loop with the same seeds.
    """
    if n_chains < 2:
        raise ValueError("run at least two chains for convergence checks")
    settings = settings or ChainSettings()
    chain_settings = [
        settings.with_seed(base_seed + index) for index in range(n_chains)
    ]
    lanes_sampler = _LANE_SAMPLERS.get(sampler)
    if settings.variate_layer == "inverse" and lanes_sampler is not None:
        rngs = [np.random.default_rng(cs.seed) for cs in chain_settings]
        chains = lanes_sampler(
            data, prior, alpha0, settings=settings, rngs=rngs
        )
        # Re-attach each lane's own seeded schedule so per-chain
        # provenance matches the loop path.
        for chain, cs in zip(chains, chain_settings):
            chain.settings = cs
    else:
        chains = [
            sampler(
                data,
                prior,
                alpha0,
                settings=cs,
                rng=np.random.default_rng(cs.seed),
            )
            for cs in chain_settings
        ]

    # One stacked (n_chains, n) array per parameter feeds the batched
    # diagnostics: one FFT for all chains' ACFs, one Gelman-Rubin pass.
    stacked = np.stack([chain.samples for chain in chains])
    rhat = {}
    ess = {}
    geweke = {}
    for column, param in ((0, "omega"), (1, "beta")):
        traces = np.ascontiguousarray(stacked[:, :, column])
        rhat[param] = gelman_rubin(traces)
        ess[param] = float(sum(effective_sample_size(traces).tolist()))
        geweke[param] = [float(z) for z in geweke_z(traces)]
    return MultiChainResult(chains=chains, rhat=rhat, ess=ess, geweke=geweke)
