"""Multi-chain MCMC running with convergence assessment.

The paper runs one long chain; standard practice is to run several from
dispersed starting points and check the Gelman–Rubin potential scale
reduction factor before trusting the draws. This module wraps any of
the package's samplers in that workflow.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.bayes.mcmc.chains import ChainSettings, MCMCResult
from repro.bayes.mcmc.diagnostics import (
    effective_sample_size,
    gelman_rubin,
    geweke_z,
)
from repro.bayes.sample_posterior import EmpiricalPosterior

__all__ = ["MultiChainResult", "run_chains"]


@dataclass
class MultiChainResult:
    """Pooled result of several independent chains.

    Attributes
    ----------
    chains:
        Per-chain results in seed order.
    rhat:
        Gelman–Rubin statistic per parameter ("omega", "beta").
    ess:
        Pooled effective sample size per parameter.
    geweke:
        Per-chain Geweke z-scores per parameter.
    """

    chains: list[MCMCResult]
    rhat: dict[str, float]
    ess: dict[str, float]
    geweke: dict[str, list[float]]

    @property
    def converged(self) -> bool:
        """Conventional acceptance: R-hat below 1.1 for every parameter."""
        return all(value < 1.1 for value in self.rhat.values())

    def posterior(self) -> EmpiricalPosterior:
        """Pooled samples of all chains as one posterior."""
        samples = np.concatenate([chain.samples for chain in self.chains])
        total_variates = sum(chain.variate_count for chain in self.chains)
        return EmpiricalPosterior(
            samples,
            diagnostics={
                "n_chains": len(self.chains),
                "rhat": dict(self.rhat),
                "ess": dict(self.ess),
                "variate_count": total_variates,
            },
        )


def run_chains(
    sampler: Callable[..., MCMCResult],
    data,
    prior,
    *,
    alpha0: float = 1.0,
    n_chains: int = 4,
    settings: ChainSettings | None = None,
    base_seed: int = 0,
) -> MultiChainResult:
    """Run ``n_chains`` independent chains and pool them with diagnostics.

    Parameters
    ----------
    sampler:
        One of :func:`gibbs_failure_time`, :func:`gibbs_grouped` or
        :func:`random_walk_metropolis`.
    data, prior, alpha0:
        Passed through to the sampler.
    n_chains:
        Number of independent chains (each gets seed ``base_seed + i``).
    settings:
        Per-chain schedule (the burn-in applies to every chain).
    """
    if n_chains < 2:
        raise ValueError("run at least two chains for convergence checks")
    settings = settings or ChainSettings()
    chains = []
    for index in range(n_chains):
        chain_settings = ChainSettings(
            n_samples=settings.n_samples,
            burn_in=settings.burn_in,
            thin=settings.thin,
            seed=base_seed + index,
        )
        rng = np.random.default_rng(chain_settings.seed)
        chains.append(
            sampler(data, prior, alpha0, settings=chain_settings, rng=rng)
        )

    rhat = {}
    ess = {}
    geweke = {}
    for column, param in ((0, "omega"), (1, "beta")):
        traces = [chain.samples[:, column] for chain in chains]
        rhat[param] = gelman_rubin(traces)
        ess[param] = float(
            sum(effective_sample_size(trace) for trace in traces)
        )
        geweke[param] = [geweke_z(trace) for trace in traces]
    return MultiChainResult(chains=chains, rhat=rhat, ess=ess, geweke=geweke)
