"""Lane-parallel Gibbs engine: lock-step vectorized sweeps across lanes.

A *lane* is one independent Gibbs chain — a chain of a multichain fit,
or one replication of an SBC/coverage campaign. All lanes advance
through the sweep together, and every conditional draw of the sweep is
made for all lanes at once: one vectorized Poisson inversion for the
residual counts, one gamma inversion for the ``ω`` conditionals, one
for ``β``, one ragged truncated/censored-gamma map for the latent
blocks. This is the MCMC instance of the frozen-lane pattern
:func:`repro.stats.rootfind.solve_fixed_point_batch` established for
the fit path.

Randomness is organised per lane: lane ``i`` owns generator ``i`` and
consumes its raw uniform stream in a fixed order
(:class:`repro.stats.uniforms.UniformLaneStream`), and the
uniform→variate layer (:func:`~repro.stats.poisson.poisson_from_uniform`,
:func:`~repro.stats.gamma_dist.gamma_from_uniform`,
:func:`~repro.stats.truncated.truncated_gamma_from_uniform`,
:func:`~repro.stats.truncated.censored_gamma_from_uniform`) maps it to
variates with pure elementwise transforms. Consequence: each lane's
samples are **bit-identical** to running the scalar sampler with
``ChainSettings(variate_layer="inverse")`` and the same generator —
the contract the tier-1 identity tests and the ``BENCH_mcmc``
agreement gate pin down.

Lanes may carry *different datasets* (campaign replications) or the
same dataset with different seeds (multichain fits); per-lane data
enters the sweep only through per-lane scalar vectors and the ragged
latent-draw geometry, so heterogeneous lanes cost the same as
homogeneous ones.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from repro.backend import special as sc

from repro import obs
from repro.bayes.mcmc.chains import (
    ChainSettings,
    MCMCResult,
    record_sampler_telemetry,
)
from repro.bayes.priors import ModelPrior
from repro.data.failure_data import FailureTimeData, GroupedData
from repro.stats.gamma_dist import gamma_from_uniform
from repro.stats.poisson import poisson_from_uniform
from repro.stats.truncated import (
    censored_gamma_from_uniform,
    truncated_gamma_from_uniform,
)
from repro.stats.uniforms import UniformLaneStream, segment_sums

__all__ = ["gibbs_failure_time_lanes", "gibbs_grouped_lanes"]


def _as_lane_list(datasets, lanes: int, kind) -> list:
    """Broadcast a shared dataset or validate a per-lane sequence."""
    if isinstance(datasets, kind):
        return [datasets] * lanes
    datasets = list(datasets)
    if len(datasets) != lanes:
        raise ValueError(
            f"got {len(datasets)} datasets for {lanes} lanes (one generator "
            "per lane defines the lane count)"
        )
    return datasets


def _check_engine_inputs(
    settings: ChainSettings, rngs: Sequence[np.random.Generator]
) -> None:
    if settings.variate_layer != "inverse":
        raise ValueError(
            "the lane engine batches the inverse-CDF variate layer; use "
            'ChainSettings(variate_layer="inverse") (the "direct" layer '
            "is the legacy per-chain stream and cannot be batched)"
        )
    if len(rngs) < 1:
        raise ValueError("need at least one lane generator")


def _keep_index(sweep: int, settings: ChainSettings) -> int:
    """Keep-slot of this sweep, or -1 when the schedule discards it."""
    index = sweep - settings.burn_in
    if index >= 0 and (index + 1) % settings.thin == 0:
        return index // settings.thin
    return -1


def _ragged_segment_sums(
    values: np.ndarray, counts: np.ndarray, lanes: int
) -> np.ndarray:
    """Per-lane sums of a lane-major ragged block (0 for empty lanes)."""
    out = np.zeros(lanes)
    occupied = np.flatnonzero(counts)
    if occupied.size:
        offsets = np.concatenate(
            ([0], np.cumsum(counts[occupied])[:-1])
        )
        out[occupied] = segment_sums(values, offsets)
    return out


def _package(
    sampler_name: str,
    lanes: int,
    samples: np.ndarray,
    residual_trace: np.ndarray,
    variate_counts: np.ndarray,
    settings: ChainSettings,
    alpha0: float,
    collapsed: bool,
    telemetry,
) -> list[MCMCResult]:
    """Per-lane :class:`MCMCResult` objects, same contract as the
    scalar samplers (plus an ``engine`` provenance marker)."""
    results = []
    for lane in range(lanes):
        extra = {
            "sampler": sampler_name,
            "alpha0": alpha0,
            "collapsed_tail": collapsed,
            "residual_trace": residual_trace[lane],
            "engine": "lanes",
        }
        if telemetry is not None:
            extra["telemetry"] = telemetry
        results.append(
            MCMCResult(
                samples=samples[lane],
                settings=settings,
                variate_count=int(variate_counts[lane]),
                extra=extra,
            )
        )
    return results


def gibbs_failure_time_lanes(
    datasets: FailureTimeData | Sequence[FailureTimeData],
    prior: ModelPrior,
    alpha0: float = 1.0,
    *,
    settings: ChainSettings,
    rngs: Sequence[np.random.Generator],
) -> list[MCMCResult]:
    """Kuo–Yang Gibbs sweeps for all lanes in lock-step.

    Parameters
    ----------
    datasets:
        One shared dataset (multichain fit) or one per lane (campaign
        replications).
    prior:
        Independent gamma priors, shared by every lane.
    alpha0:
        Lifetime shape; ``1`` uses the collapsed three-variate sweep.
    settings:
        Schedule; must select the ``"inverse"`` variate layer.
    rngs:
        One generator per lane — the lane count. Lane ``i``'s samples
        are bit-identical to ``gibbs_failure_time(datasets[i], ...,
        rng=<same generator state>)`` under the inverse layer.
    """
    _check_engine_inputs(settings, rngs)
    lanes = len(rngs)
    data_list = _as_lane_list(datasets, lanes, FailureTimeData)

    me = np.array([float(d.count) for d in data_list])
    horizon = np.array([d.horizon for d in data_list])
    sum_times = np.array([d.total_time for d in data_list])
    m_omega, phi_omega = prior.omega.shape, prior.omega.rate
    m_beta, phi_beta = prior.beta.shape, prior.beta.rate
    collapsed = alpha0 == 1.0

    floor_me = np.maximum(me, 1.0)
    omega = floor_me * 1.2 + 1.0
    beta = alpha0 * floor_me / (sum_times + floor_me * horizon)

    shape_omega_base = m_omega + me
    shape_beta = np.full(lanes, m_beta + me * alpha0) if collapsed else None
    log_gamma_shape_beta = sc.gammaln(shape_beta) if collapsed else None

    stream = UniformLaneStream(rngs)
    samples = np.empty((lanes, settings.n_samples, 2))
    residual_trace = np.empty((lanes, settings.n_samples), dtype=np.int64)
    variate_counts = np.zeros(lanes, dtype=np.int64)
    lane_index = np.arange(lanes)

    with obs.span(
        "mcmc.batch",
        collect=True,
        sampler="gibbs-kuo-yang",
        lanes=lanes,
        sweeps=settings.total_iterations,
    ) as sp:
        for sweep in range(settings.total_iterations):
            if collapsed:
                u = stream.take_block(3)
                tail_prob = np.exp(-beta * horizon)
            else:
                u = stream.take_block(2)
                tail_prob = sc.gammaincc(alpha0, beta * horizon)
            residual = poisson_from_uniform(u[:, 0], omega * tail_prob)
            variate_counts += 3

            shape_omega = shape_omega_base + residual
            omega = gamma_from_uniform(shape_omega, u[:, 1]) / (phi_omega + 1.0)

            if collapsed:
                rate_beta = phi_beta + sum_times + residual * horizon
                beta = (
                    gamma_from_uniform(
                        shape_beta, u[:, 2],
                        log_gamma_shape=log_gamma_shape_beta,
                    )
                    / rate_beta
                )
            else:
                tail_u = stream.take_ragged(residual)
                slots = np.repeat(lane_index, residual)
                tail_draws = censored_gamma_from_uniform(
                    horizon[slots], alpha0, beta[slots], tail_u
                )
                tail_sum = _ragged_segment_sums(tail_draws, residual, lanes)
                variate_counts += residual
                u_beta = stream.take_block(1)
                rate_beta = phi_beta + sum_times + tail_sum
                shape_b = m_beta + (me + residual) * alpha0
                beta = gamma_from_uniform(shape_b, u_beta[:, 0]) / rate_beta

            slot = _keep_index(sweep, settings)
            if slot >= 0:
                samples[:, slot, 0] = omega
                samples[:, slot, 1] = beta
                residual_trace[:, slot] = residual
        for lane in range(lanes):
            record_sampler_telemetry(
                "gibbs-kuo-yang", samples[lane], int(variate_counts[lane])
            )
        if getattr(sp, "attrs", None) is not None:
            sp.attrs["variates"] = int(variate_counts.sum())
        telemetry = sp.telemetry() if sp.collecting else None

    return _package(
        "gibbs-kuo-yang", lanes, samples, residual_trace, variate_counts,
        settings, alpha0, collapsed, telemetry,
    )


def gibbs_grouped_lanes(
    datasets: GroupedData | Sequence[GroupedData],
    prior: ModelPrior,
    alpha0: float = 1.0,
    *,
    settings: ChainSettings,
    rngs: Sequence[np.random.Generator],
) -> list[MCMCResult]:
    """Data-augmentation Gibbs sweeps for all lanes in lock-step.

    Every lane's latent failure times — ``m_i`` truncated-gamma draws
    per lane per sweep — come from one ragged uniform take mapped
    through one vectorized inverse-CDF call; per-lane latent sums use
    the canonical :func:`~repro.stats.uniforms.segment_sums` reduction
    so they match the scalar reference bit for bit.
    """
    _check_engine_inputs(settings, rngs)
    lanes = len(rngs)
    data_list = _as_lane_list(datasets, lanes, GroupedData)

    total = np.array([float(d.total_count) for d in data_list])
    horizon = np.array([d.horizon for d in data_list])
    m_omega, phi_omega = prior.omega.shape, prior.omega.rate
    m_beta, phi_beta = prior.beta.shape, prior.beta.rate
    collapsed = alpha0 == 1.0

    # Ragged latent geometry, lane-major: each lane's occupied
    # intervals expanded to one slot per latent draw.
    latent_counts = np.zeros(lanes, dtype=np.intp)
    lo_parts, hi_parts = [], []
    for lane, data in enumerate(data_list):
        occupied = [item for item in data.intervals() if item[2] > 0]
        counts = np.array([c for _, _, c in occupied], dtype=np.intp)
        latent_counts[lane] = int(counts.sum())
        if occupied:
            lo_parts.append(
                np.repeat(np.array([lo for lo, _, _ in occupied]), counts)
            )
            hi_parts.append(
                np.repeat(np.array([hi for _, hi, _ in occupied]), counts)
            )
    draw_lo = np.concatenate(lo_parts) if lo_parts else np.empty(0)
    draw_hi = np.concatenate(hi_parts) if hi_parts else np.empty(0)
    lane_index = np.arange(lanes)
    draw_lane = np.repeat(lane_index, latent_counts)

    floor_total = np.maximum(total, 1.0)
    omega = floor_total * 1.2 + 1.0
    beta = np.full(lanes, 2.0 * alpha0) / horizon

    shape_omega_base = m_omega + total
    shape_beta = np.full(lanes, m_beta + total * alpha0) if collapsed else None
    log_gamma_shape_beta = sc.gammaln(shape_beta) if collapsed else None

    stream = UniformLaneStream(rngs)
    samples = np.empty((lanes, settings.n_samples, 2))
    residual_trace = np.empty((lanes, settings.n_samples), dtype=np.int64)
    variate_counts = np.zeros(lanes, dtype=np.int64)

    with obs.span(
        "mcmc.batch",
        collect=True,
        sampler="gibbs-data-augmentation",
        lanes=lanes,
        sweeps=settings.total_iterations,
    ) as sp:
        for sweep in range(settings.total_iterations):
            latent_u = stream.take_ragged(latent_counts)
            if latent_u.size:
                latent_draws = truncated_gamma_from_uniform(
                    draw_lo, draw_hi, alpha0, beta[draw_lane], latent_u
                )
                latent_sum = _ragged_segment_sums(
                    latent_draws, latent_counts, lanes
                )
                variate_counts += latent_counts
            else:
                latent_sum = np.zeros(lanes)

            u = stream.take_block(2)
            if collapsed:
                tail_prob = np.exp(-beta * horizon)
            else:
                tail_prob = sc.gammaincc(alpha0, beta * horizon)
            residual = poisson_from_uniform(u[:, 0], omega * tail_prob)
            variate_counts += 3

            shape_omega = shape_omega_base + residual
            omega = gamma_from_uniform(shape_omega, u[:, 1]) / (phi_omega + 1.0)

            if collapsed:
                u_beta = stream.take_block(1)
                rate_beta = phi_beta + latent_sum + residual * horizon
                beta = (
                    gamma_from_uniform(
                        shape_beta, u_beta[:, 0],
                        log_gamma_shape=log_gamma_shape_beta,
                    )
                    / rate_beta
                )
            else:
                tail_u = stream.take_ragged(residual)
                slots = np.repeat(lane_index, residual)
                tail_draws = censored_gamma_from_uniform(
                    horizon[slots], alpha0, beta[slots], tail_u
                )
                tail_sum = _ragged_segment_sums(tail_draws, residual, lanes)
                variate_counts += residual
                u_beta = stream.take_block(1)
                rate_beta = phi_beta + latent_sum + tail_sum
                shape_b = m_beta + (total + residual) * alpha0
                beta = gamma_from_uniform(shape_b, u_beta[:, 0]) / rate_beta

            slot = _keep_index(sweep, settings)
            if slot >= 0:
                samples[:, slot, 0] = omega
                samples[:, slot, 1] = beta
                residual_trace[:, slot] = residual
        for lane in range(lanes):
            record_sampler_telemetry(
                "gibbs-data-augmentation",
                samples[lane],
                int(variate_counts[lane]),
            )
        if getattr(sp, "attrs", None) is not None:
            sp.attrs["variates"] = int(variate_counts.sum())
        telemetry = sp.telemetry() if sp.collecting else None

    return _package(
        "gibbs-data-augmentation", lanes, samples, residual_trace,
        variate_counts, settings, alpha0, collapsed, telemetry,
    )
