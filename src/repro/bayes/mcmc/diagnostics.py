"""Convergence diagnostics for MCMC chains.

Standard tools: autocorrelation (FFT-based), effective sample size via
Geyer's initial-positive-sequence truncation, the Geweke mean-
comparison z-score, and the Gelman–Rubin potential scale reduction
factor for multiple chains.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "autocorrelation",
    "effective_sample_size",
    "geweke_z",
    "gelman_rubin",
]


def autocorrelation(chain: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Normalised autocorrelation function of a 1-D chain.

    Computed with the FFT (O(n log n)); lag 0 is always 1.
    """
    chain = np.asarray(chain, dtype=float)
    if chain.ndim != 1 or chain.size < 2:
        raise ValueError("chain must be 1-D with at least two elements")
    n = chain.size
    if max_lag is None:
        max_lag = min(n - 1, 1000)
    centred = chain - chain.mean()
    size = 1 << int(np.ceil(np.log2(2 * n)))
    spectrum = np.fft.rfft(centred, size)
    acov = np.fft.irfft(spectrum * np.conj(spectrum), size)[: max_lag + 1]
    if acov[0] <= 0.0:
        # Constant chain: autocorrelation undefined; conventionally 1 at
        # lag 0 and 0 elsewhere.
        out = np.zeros(max_lag + 1)
        out[0] = 1.0
        return out
    return acov / acov[0]


def effective_sample_size(chain: np.ndarray) -> float:
    """ESS with Geyer's initial positive sequence estimator.

    Sums adjacent autocorrelation pairs until a pair sum goes
    non-positive, then truncates; robust to noisy ACF tails.
    """
    chain = np.asarray(chain, dtype=float)
    n = chain.size
    if n < 4:
        return float(n)
    rho = autocorrelation(chain, max_lag=n - 1)
    pair_sums = []
    lag = 1
    while lag + 1 < rho.size:
        pair = rho[lag] + rho[lag + 1]
        if pair <= 0.0:
            break
        pair_sums.append(pair)
        lag += 2
    tau = 1.0 + 2.0 * float(np.sum(pair_sums))
    return float(n / max(tau, 1.0))


def geweke_z(
    chain: np.ndarray, first: float = 0.1, last: float = 0.5
) -> float:
    """Geweke (1992) convergence z-score comparing the means of the
    first ``first`` and last ``last`` fractions of the chain, with
    variances scaled by each segment's ESS."""
    chain = np.asarray(chain, dtype=float)
    if not 0.0 < first < 1.0 or not 0.0 < last < 1.0 or first + last > 1.0:
        raise ValueError("segment fractions must be in (0,1) and sum to <= 1")
    n = chain.size
    head = chain[: max(int(first * n), 2)]
    tail = chain[-max(int(last * n), 2):]
    var_head = head.var(ddof=1) / effective_sample_size(head)
    var_tail = tail.var(ddof=1) / effective_sample_size(tail)
    denom = math.sqrt(var_head + var_tail)
    if denom == 0.0:
        return 0.0
    return float((head.mean() - tail.mean()) / denom)


def gelman_rubin(chains: list[np.ndarray]) -> float:
    """Potential scale reduction factor ``R̂`` for two or more chains of
    equal length; values near 1 indicate convergence."""
    if len(chains) < 2:
        raise ValueError("Gelman-Rubin needs at least two chains")
    arr = np.asarray([np.asarray(c, dtype=float) for c in chains])
    m, n = arr.shape
    if n < 2:
        raise ValueError("chains must have at least two samples")
    chain_means = arr.mean(axis=1)
    within = arr.var(axis=1, ddof=1).mean()
    between = n * chain_means.var(ddof=1)
    if within == 0.0:
        return 1.0
    var_hat = (n - 1) / n * within + between / n
    return float(math.sqrt(var_hat / within))
