"""Convergence diagnostics for MCMC chains.

Standard tools: autocorrelation (FFT-based), effective sample size via
Geyer's initial-positive-sequence truncation, the Geweke mean-
comparison z-score, and the Gelman–Rubin potential scale reduction
factor for multiple chains.

Every per-chain diagnostic accepts either a 1-D chain (scalar result,
the legacy code path, unchanged bit for bit) or a stacked
``(n_chains, n)`` array (one result per row from a single batched
computation). The batched FFT evaluates all rows in one transform;
NumPy's multi-row FFT is not guaranteed bitwise equal to ``n_chains``
separate 1-D transforms, so batched results agree with per-row scalar
calls to ~1 ulp — the Geyer truncation lags themselves are integers and
match exactly (asserted by the regression tests).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "autocorrelation",
    "effective_sample_size",
    "geweke_z",
    "gelman_rubin",
]


def _fft_size(n: int) -> int:
    return 1 << int(np.ceil(np.log2(2 * n)))


def _autocorrelation_batch(chains: np.ndarray, max_lag: int | None) -> np.ndarray:
    """Row-wise ACF of a stacked ``(n_chains, n)`` array, one FFT."""
    _, n = chains.shape
    if n < 2:
        raise ValueError("chain must be 1-D with at least two elements")
    if max_lag is None:
        max_lag = min(n - 1, 1000)
    centred = chains - chains.mean(axis=1, keepdims=True)
    size = _fft_size(n)
    spectrum = np.fft.rfft(centred, size, axis=1)
    acov = np.fft.irfft(spectrum * np.conj(spectrum), size, axis=1)[:, : max_lag + 1]
    lag0 = acov[:, 0]
    out = np.zeros_like(acov)
    ok = lag0 > 0.0
    out[ok] = acov[ok] / lag0[ok, None]
    # Constant rows: autocorrelation undefined; conventionally 1 at
    # lag 0 and 0 elsewhere.
    out[~ok, 0] = 1.0
    return out


def autocorrelation(chain: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Normalised autocorrelation function, FFT-based (O(n log n)).

    A 1-D chain gives the ACF vector with lag 0 always 1; a stacked
    ``(n_chains, n)`` array gives one ACF row per chain, all rows from
    a single batched transform.
    """
    chain = np.asarray(chain, dtype=float)
    if chain.ndim == 2:
        return _autocorrelation_batch(chain, max_lag)
    if chain.ndim != 1 or chain.size < 2:
        raise ValueError("chain must be 1-D with at least two elements")
    n = chain.size
    if max_lag is None:
        max_lag = min(n - 1, 1000)
    centred = chain - chain.mean()
    size = _fft_size(n)
    spectrum = np.fft.rfft(centred, size)
    acov = np.fft.irfft(spectrum * np.conj(spectrum), size)[: max_lag + 1]
    if acov[0] <= 0.0:
        # Constant chain: autocorrelation undefined; conventionally 1 at
        # lag 0 and 0 elsewhere.
        out = np.zeros(max_lag + 1)
        out[0] = 1.0
        return out
    return acov / acov[0]


def _effective_sample_size_batch(chains: np.ndarray) -> np.ndarray:
    """Per-row Geyer ESS of a stacked ``(n_chains, n)`` array."""
    m, n = chains.shape
    if n < 4:
        return np.full(m, float(n))
    rho = _autocorrelation_batch(chains, max_lag=n - 1)
    n_pairs = (n - 1) // 2
    pairs = rho[:, 1::2][:, :n_pairs] + rho[:, 2::2][:, :n_pairs]
    # Geyer truncation: keep the leading run of positive pair sums.
    leading = np.cumprod(pairs > 0.0, axis=1).astype(bool)
    ess = np.empty(m)
    for row in range(m):
        k = int(leading[row].sum())
        # np.sum over the kept prefix, matching the scalar path's
        # np.sum(pair_sums) reduction order.
        tau = 1.0 + 2.0 * float(np.sum(pairs[row, :k]))
        ess[row] = n / max(tau, 1.0)
    return ess


def effective_sample_size(chain: np.ndarray) -> float | np.ndarray:
    """ESS with Geyer's initial positive sequence estimator.

    Sums adjacent autocorrelation pairs until a pair sum goes
    non-positive, then truncates; robust to noisy ACF tails. A 1-D
    chain gives a float; a stacked ``(n_chains, n)`` array gives the
    per-chain ESS vector from one batched ACF.
    """
    chain = np.asarray(chain, dtype=float)
    if chain.ndim == 2:
        return _effective_sample_size_batch(chain)
    n = chain.size
    if n < 4:
        return float(n)
    rho = autocorrelation(chain, max_lag=n - 1)
    pair_sums = []
    lag = 1
    while lag + 1 < rho.size:
        pair = rho[lag] + rho[lag + 1]
        if pair <= 0.0:
            break
        pair_sums.append(pair)
        lag += 2
    tau = 1.0 + 2.0 * float(np.sum(pair_sums))
    return float(n / max(tau, 1.0))


def geweke_z(
    chain: np.ndarray, first: float = 0.1, last: float = 0.5
) -> float | np.ndarray:
    """Geweke (1992) convergence z-score comparing the means of the
    first ``first`` and last ``last`` fractions of the chain, with
    variances scaled by each segment's ESS.

    A stacked ``(n_chains, n)`` array gives one z-score per row, with
    both segment ESS vectors computed in batched form.
    """
    if not 0.0 < first < 1.0 or not 0.0 < last < 1.0 or first + last > 1.0:
        raise ValueError("segment fractions must be in (0,1) and sum to <= 1")
    chain = np.asarray(chain, dtype=float)
    if chain.ndim == 2:
        n = chain.shape[1]
        head = chain[:, : max(int(first * n), 2)]
        tail = chain[:, -max(int(last * n), 2):]
        var_head = head.var(axis=1, ddof=1) / _effective_sample_size_batch(head)
        var_tail = tail.var(axis=1, ddof=1) / _effective_sample_size_batch(tail)
        denom = np.sqrt(var_head + var_tail)
        diff = head.mean(axis=1) - tail.mean(axis=1)
        safe = np.where(denom == 0.0, 1.0, denom)
        return np.where(denom == 0.0, 0.0, diff / safe)
    n = chain.size
    head = chain[: max(int(first * n), 2)]
    tail = chain[-max(int(last * n), 2):]
    var_head = head.var(ddof=1) / effective_sample_size(head)
    var_tail = tail.var(ddof=1) / effective_sample_size(tail)
    denom = math.sqrt(var_head + var_tail)
    if denom == 0.0:
        return 0.0
    return float((head.mean() - tail.mean()) / denom)


def gelman_rubin(chains: list[np.ndarray] | np.ndarray) -> float:
    """Potential scale reduction factor ``R̂`` for two or more chains of
    equal length; values near 1 indicate convergence.

    Accepts a list of 1-D chains or an already-stacked
    ``(n_chains, n)`` array (same arithmetic either way — the stacked
    form just skips the per-chain conversion loop).
    """
    if isinstance(chains, np.ndarray):
        arr = np.asarray(chains, dtype=float)
        if arr.ndim != 2:
            raise ValueError("stacked chains must be 2-D (n_chains, n)")
    else:
        if len(chains) < 2:
            raise ValueError("Gelman-Rubin needs at least two chains")
        arr = np.asarray([np.asarray(c, dtype=float) for c in chains])
    m, n = arr.shape
    if m < 2:
        raise ValueError("Gelman-Rubin needs at least two chains")
    if n < 2:
        raise ValueError("chains must have at least two samples")
    chain_means = arr.mean(axis=1)
    within = arr.var(axis=1, ddof=1).mean()
    between = n * chain_means.var(ddof=1)
    if within == 0.0:
        return 1.0
    var_hat = (n - 1) / n * within + between / n
    return float(math.sqrt(var_hat / within))
