"""Univariate slice sampling within Gibbs (Neal 2003).

A third general-purpose MCMC baseline alongside the conjugate Gibbs
samplers and random-walk Metropolis: slice sampling needs no proposal
tuning, only a step-out width, and updates each coordinate of
``(log ω, log β)`` in turn from its exact conditional slice — a useful
cross-check for models where the conjugate sweeps do not apply.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bayes.laplace import log_posterior_fn
from repro.bayes.mcmc.chains import ChainSettings, MCMCResult
from repro.bayes.priors import ModelPrior
from repro.data.failure_data import FailureTimeData, GroupedData

__all__ = ["slice_sample"]

_MAX_STEPOUT = 50
_MAX_SHRINK = 100


def _slice_update_coordinate(
    log_density,
    position: np.ndarray,
    coordinate: int,
    width: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int]:
    """One slice-sampling update of a single coordinate; returns the new
    state and the number of density evaluations spent."""
    evaluations = 0

    def conditional(x: float) -> float:
        trial = position.copy()
        trial[coordinate] = x
        return log_density(trial)

    x0 = position[coordinate]
    log_y = conditional(x0) + math.log(rng.uniform())
    evaluations += 1
    # Step out.
    left = x0 - width * rng.uniform()
    right = left + width
    for _ in range(_MAX_STEPOUT):
        if conditional(left) <= log_y:
            break
        left -= width
        evaluations += 1
    for _ in range(_MAX_STEPOUT):
        if conditional(right) <= log_y:
            break
        right += width
        evaluations += 1
    # Shrink.
    for _ in range(_MAX_SHRINK):
        candidate = rng.uniform(left, right)
        evaluations += 1
        if conditional(candidate) > log_y:
            new_position = position.copy()
            new_position[coordinate] = candidate
            return new_position, evaluations
        if candidate < x0:
            left = candidate
        else:
            right = candidate
    # Degenerate shrink: stay put (extremely rare; keeps the chain valid).
    return position.copy(), evaluations


def slice_sample(
    data: FailureTimeData | GroupedData,
    prior: ModelPrior,
    alpha0: float = 1.0,
    settings: ChainSettings | None = None,
    rng: np.random.Generator | None = None,
    *,
    initial: tuple[float, float] | None = None,
    width: float = 1.0,
) -> MCMCResult:
    """Slice-within-Gibbs sampling over ``(log ω, log β)``.

    Parameters
    ----------
    width:
        Initial slice step-out width in log space.
    """
    settings = settings or ChainSettings()
    if rng is None:
        rng = np.random.default_rng(settings.seed)
    log_post = log_posterior_fn(data, prior, alpha0)
    if initial is None:
        if isinstance(data, FailureTimeData):
            count, horizon = max(data.count, 1), data.horizon
        else:
            count, horizon = max(data.total_count, 1), data.horizon
        initial = (1.2 * count, alpha0 / horizon)

    def log_density(z: np.ndarray) -> float:
        return log_post(math.exp(z[0]), math.exp(z[1])) + z[0] + z[1]

    state = np.log(np.asarray(initial, dtype=float))
    samples = np.empty((settings.n_samples, 2))
    kept = 0
    variates = 0
    for sweep in range(settings.total_iterations):
        for coordinate in (0, 1):
            state, used = _slice_update_coordinate(
                log_density, state, coordinate, width, rng
            )
            variates += used
        index = sweep - settings.burn_in
        if index >= 0 and (index + 1) % settings.thin == 0 and kept < settings.n_samples:
            samples[kept] = np.exp(state)
            kept += 1
    return MCMCResult(
        samples=samples[:kept],
        settings=settings,
        variate_count=variates,
        extra={
            "sampler": "slice-within-gibbs",
            "alpha0": alpha0,
            "width": width,
            "method_name": "SLICE",
        },
    )
