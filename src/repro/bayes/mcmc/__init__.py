"""Markov chain Monte Carlo samplers for gamma-type NHPP SRMs.

Implements the paper's MCMC baseline (Section 4.3): Kuo–Yang Gibbs
sampling for failure-time data, a data-augmentation Gibbs sampler for
grouped data (Tanner & Wong), plus a general random-walk Metropolis
fallback and convergence diagnostics.
"""

from repro.bayes.mcmc.chains import (
    VARIATE_LAYERS,
    ChainSettings,
    MCMCResult,
    kept_draws,
)
from repro.bayes.mcmc.gibbs_failure_time import gibbs_failure_time
from repro.bayes.mcmc.gibbs_grouped import gibbs_grouped
from repro.bayes.mcmc.lane_engine import (
    gibbs_failure_time_lanes,
    gibbs_grouped_lanes,
)
from repro.bayes.mcmc.metropolis import random_walk_metropolis
from repro.bayes.mcmc.multichain import MultiChainResult, run_chains
from repro.bayes.mcmc.slice_sampler import slice_sample
from repro.bayes.mcmc.diagnostics import (
    effective_sample_size,
    geweke_z,
    gelman_rubin,
    autocorrelation,
)
from repro.bayes.mcmc.quantile_ci import quantile_coverage_interval, sample_size_for_quantile

__all__ = [
    "ChainSettings",
    "MCMCResult",
    "MultiChainResult",
    "VARIATE_LAYERS",
    "kept_draws",
    "run_chains",
    "slice_sample",
    "gibbs_failure_time",
    "gibbs_grouped",
    "gibbs_failure_time_lanes",
    "gibbs_grouped_lanes",
    "random_walk_metropolis",
    "effective_sample_size",
    "geweke_z",
    "gelman_rubin",
    "autocorrelation",
    "quantile_coverage_interval",
    "sample_size_for_quantile",
]
