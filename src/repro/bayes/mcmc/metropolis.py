"""Random-walk Metropolis–Hastings fallback sampler.

The paper notes (Section 4.3) that grouped data pushes MCMC towards
general-purpose samplers such as Metropolis–Hastings. This
implementation walks in ``(log ω, log β)`` (with the Jacobian
correction), adapts its step size towards a target acceptance rate
during burn-in, and works with any data type the model layer can score.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.bayes.laplace import log_posterior_fn
from repro.bayes.mcmc.chains import (
    ChainSettings,
    MCMCResult,
    record_sampler_telemetry,
)
from repro.bayes.priors import ModelPrior
from repro.data.failure_data import FailureTimeData, GroupedData

__all__ = ["random_walk_metropolis"]


def random_walk_metropolis(
    data: FailureTimeData | GroupedData,
    prior: ModelPrior,
    alpha0: float = 1.0,
    settings: ChainSettings | None = None,
    rng: np.random.Generator | None = None,
    *,
    initial: tuple[float, float] | None = None,
    step: float = 0.25,
    target_acceptance: float = 0.3,
) -> MCMCResult:
    """Random-walk MH over ``(log ω, log β)``.

    Parameters
    ----------
    step:
        Initial proposal standard deviation in log space; adapted
        during burn-in with a Robbins–Monro style rule.
    target_acceptance:
        Acceptance rate the adaptation aims for (0.3 is a good 2-D
        default).
    """
    settings = settings or ChainSettings()
    if rng is None:
        rng = np.random.default_rng(settings.seed)
    with obs.span("mcmc.metropolis", collect=True) as sp:
        return _random_walk_metropolis(
            data, prior, alpha0, settings, rng, initial, step,
            target_acceptance, sp,
        )


def _random_walk_metropolis(
    data: FailureTimeData | GroupedData,
    prior: ModelPrior,
    alpha0: float,
    settings: ChainSettings,
    rng: np.random.Generator,
    initial: tuple[float, float] | None,
    step: float,
    target_acceptance: float,
    sp,
) -> MCMCResult:
    log_post = log_posterior_fn(data, prior, alpha0)

    if initial is None:
        if isinstance(data, FailureTimeData):
            count, horizon = max(data.count, 1), data.horizon
        else:
            count, horizon = max(data.total_count, 1), data.horizon
        initial = (1.2 * count, alpha0 / horizon)
    state = np.log(np.asarray(initial, dtype=float))

    def log_target(z: np.ndarray) -> float:
        omega, beta = math.exp(z[0]), math.exp(z[1])
        # Jacobian of the log transform: + log omega + log beta.
        return log_post(omega, beta) + z[0] + z[1]

    current = log_target(state)
    samples = np.empty((settings.n_samples, 2))
    accepted = 0
    proposed = 0
    kept = 0
    scale = step
    variates = 0
    for sweep in range(settings.total_iterations):
        proposal = state + scale * rng.standard_normal(2)
        variates += 2
        candidate = log_target(proposal)
        proposed += 1
        if math.log(rng.uniform()) < candidate - current:
            state = proposal
            current = candidate
            accepted += 1
        variates += 1
        if sweep < settings.burn_in and (sweep + 1) % 100 == 0:
            rate = accepted / proposed
            scale *= math.exp(0.5 * (rate - target_acceptance))
            accepted = 0
            proposed = 0
        index = sweep - settings.burn_in
        if index >= 0 and (index + 1) % settings.thin == 0 and kept < settings.n_samples:
            samples[kept] = np.exp(state)
            kept += 1
    acceptance = accepted / proposed if proposed else float("nan")
    extra = {
        "sampler": "random-walk-metropolis",
        "alpha0": alpha0,
        "acceptance_rate": acceptance,
        "final_scale": scale,
        "method_name": "MH",
    }
    record_sampler_telemetry(
        "random-walk-metropolis", samples[:kept], variates,
        acceptance_rate=acceptance, proposal_scale=scale,
    )
    if sp.collecting:
        extra["telemetry"] = sp.telemetry()
    return MCMCResult(
        samples=samples[:kept],
        settings=settings,
        variate_count=variates,
        extra=extra,
    )
