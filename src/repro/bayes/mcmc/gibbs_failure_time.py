"""Kuo–Yang Gibbs sampler for failure-time data (paper Eqs. 9–11).

For the Goel–Okumoto member (``α0 = 1``) the sweep uses exactly three
elementary variates, matching the cost accounting of the paper's
Table 6 (3 x (10000 + 10 x 20000) = 630000 variates for the default
schedule):

1. residual fault count  ``N̄ | ω, β ~ Poisson(ω S̄(t_e; α0, β))``
2. ``ω | N̄ ~ Gamma(m_ω + m_e + N̄, φ_ω + 1)``
3. ``β | N̄ ~ Gamma(m_β + m_e, φ_β + Σ t_i + N̄ t_e)``
   (the residual faults enter through their survival factor — valid
   only for exponential lifetimes).

For general ``α0`` step 3 is replaced by data augmentation of the
``N̄`` censored lifetimes followed by the conjugate gamma draw.
"""

from __future__ import annotations

import numpy as np
from repro.backend import special as sc

from repro import obs
from repro.bayes.mcmc.chains import (
    ChainSettings,
    MCMCResult,
    record_sampler_telemetry,
)
from repro.bayes.priors import ModelPrior
from repro.data.failure_data import FailureTimeData
from repro.stats.gamma_dist import gamma_from_uniform
from repro.stats.poisson import poisson_from_uniform
from repro.stats.truncated import (
    censored_gamma_from_uniform,
    sample_censored_gamma,
)
from repro.stats.uniforms import UniformLaneStream, segment_sums

__all__ = ["gibbs_failure_time"]


def gibbs_failure_time(
    data: FailureTimeData,
    prior: ModelPrior,
    alpha0: float = 1.0,
    settings: ChainSettings | None = None,
    rng: np.random.Generator | None = None,
) -> MCMCResult:
    """Run the Kuo–Yang Gibbs sampler on failure-time data.

    Parameters
    ----------
    data:
        Observed failure times with horizon ``t_e``.
    prior:
        Independent gamma priors (possibly improper).
    alpha0:
        Lifetime shape of the gamma-type family.
    settings:
        Burn-in / thinning schedule; defaults to the paper's. With
        ``variate_layer="inverse"`` the chain consumes the generator's
        raw uniform stream through the explicit inverse-CDF layer —
        the scalar reference for the lane-parallel engine
        (:func:`repro.bayes.mcmc.lane_engine.gibbs_failure_time_lanes`),
        bit-identical to a lane of a batched run.
    rng:
        Random generator; seeded from ``settings.seed`` when omitted.
    """
    settings = settings or ChainSettings()
    if rng is None:
        rng = np.random.default_rng(settings.seed)
    with obs.span("mcmc.gibbs_failure_time", collect=True) as sp:
        if settings.variate_layer == "inverse":
            return _gibbs_failure_time_inverse(
                data, prior, alpha0, settings, rng, sp
            )
        return _gibbs_failure_time(data, prior, alpha0, settings, rng, sp)


def _gibbs_failure_time(
    data: FailureTimeData,
    prior: ModelPrior,
    alpha0: float,
    settings: ChainSettings,
    rng: np.random.Generator,
    sp,
) -> MCMCResult:
    me = data.count
    horizon = data.horizon
    sum_times = data.total_time
    m_omega, phi_omega = prior.omega.shape, prior.omega.rate
    m_beta, phi_beta = prior.beta.shape, prior.beta.rate
    collapsed = alpha0 == 1.0

    # Initial state: crude moment-style guesses; burn-in washes them out.
    omega = float(max(me, 1) * 1.2 + 1.0)
    beta = alpha0 * max(me, 1) / (sum_times + max(me, 1) * horizon)

    samples = np.empty((settings.n_samples, 2))
    residual_trace = np.empty(settings.n_samples, dtype=np.int64)
    variates = 0
    kept = 0
    for sweep in range(settings.total_iterations):
        tail_prob = float(sc.gammaincc(alpha0, beta * horizon))
        residual = int(rng.poisson(omega * tail_prob))
        variates += 1

        omega = float(
            rng.gamma(shape=m_omega + me + residual, scale=1.0 / (phi_omega + 1.0))
        )
        variates += 1

        if collapsed:
            rate = phi_beta + sum_times + residual * horizon
            beta = float(rng.gamma(shape=m_beta + me * alpha0, scale=1.0 / rate))
            variates += 1
        else:
            tail_sum = 0.0
            if residual > 0:
                tail_times = sample_censored_gamma(
                    horizon, alpha0, beta, residual, rng
                )
                tail_sum = float(tail_times.sum())
                variates += residual
            rate = phi_beta + sum_times + tail_sum
            shape = m_beta + (me + residual) * alpha0
            beta = float(rng.gamma(shape=shape, scale=1.0 / rate))
            variates += 1

        index = sweep - settings.burn_in
        if index >= 0 and (index + 1) % settings.thin == 0 and kept < settings.n_samples:
            samples[kept, 0] = omega
            samples[kept, 1] = beta
            residual_trace[kept] = residual
            kept += 1
    _check_kept(kept, settings)
    extra = {
        "sampler": "gibbs-kuo-yang",
        "alpha0": alpha0,
        "collapsed_tail": collapsed,
        "residual_trace": residual_trace,
    }
    record_sampler_telemetry("gibbs-kuo-yang", samples, variates)
    if sp.collecting:
        extra["telemetry"] = sp.telemetry()
    return MCMCResult(
        samples=samples,
        settings=settings,
        variate_count=variates,
        extra=extra,
    )


def _check_kept(kept: int, settings: ChainSettings) -> None:
    """The schedule is validated to keep exactly ``n_samples`` draws
    (:class:`ChainSettings`); a mismatch here means the keep rule and
    the validation diverged, so fail loudly instead of returning a
    silently truncated sample array."""
    if kept != settings.n_samples:
        raise RuntimeError(
            f"sweep loop kept {kept} draws but the schedule promises "
            f"{settings.n_samples}; keep rule and ChainSettings "
            "validation are out of sync"
        )


def _gibbs_failure_time_inverse(
    data: FailureTimeData,
    prior: ModelPrior,
    alpha0: float,
    settings: ChainSettings,
    rng: np.random.Generator,
    sp,
) -> MCMCResult:
    """Scalar reference sampler on the inverse-CDF variate layer.

    The same Kuo–Yang sweep as :func:`_gibbs_failure_time`, but every
    variate is produced by mapping the generator's raw uniform stream
    (via :class:`~repro.stats.uniforms.UniformLaneStream`, one lane)
    through the explicit inverse-CDF layer in :mod:`repro.stats` — the
    exact representation the lane engine batches. This loop is the
    engine's single-lane ground truth: the identity tests assert
    bit-equality between it and the corresponding lane of a batched
    run, which makes the batched/scalar agreement check non-vacuous.
    """
    me = float(data.count)
    horizon = data.horizon
    sum_times = data.total_time
    m_omega, phi_omega = prior.omega.shape, prior.omega.rate
    m_beta, phi_beta = prior.beta.shape, prior.beta.rate
    collapsed = alpha0 == 1.0

    floor_me = max(me, 1.0)
    omega = np.array([floor_me * 1.2 + 1.0])
    beta = np.array([alpha0 * floor_me / (sum_times + floor_me * horizon)])

    shape_omega_base = m_omega + me
    shape_beta = np.full(1, m_beta + me * alpha0) if collapsed else None
    log_gamma_shape_beta = sc.gammaln(shape_beta) if collapsed else None

    stream = UniformLaneStream([rng])
    samples = np.empty((settings.n_samples, 2))
    residual_trace = np.empty(settings.n_samples, dtype=np.int64)
    variates = 0
    kept = 0
    for sweep in range(settings.total_iterations):
        if collapsed:
            u = stream.take_block(3)
            tail_prob = np.exp(-beta * horizon)
        else:
            u = stream.take_block(2)
            tail_prob = sc.gammaincc(alpha0, beta * horizon)
        residual = poisson_from_uniform(u[:, 0], omega * tail_prob)
        variates += 3

        shape_omega = shape_omega_base + residual
        omega = gamma_from_uniform(shape_omega, u[:, 1]) / (phi_omega + 1.0)

        if collapsed:
            rate_beta = phi_beta + sum_times + residual * horizon
            beta = (
                gamma_from_uniform(
                    shape_beta, u[:, 2], log_gamma_shape=log_gamma_shape_beta
                )
                / rate_beta
            )
        else:
            count = int(residual[0])
            tail_u = stream.take_ragged(residual)
            tail_sum = np.zeros(1)
            if count:
                tail_draws = censored_gamma_from_uniform(
                    np.full(count, horizon),
                    alpha0,
                    np.full(count, beta[0]),
                    tail_u,
                )
                tail_sum[0] = segment_sums(tail_draws, np.array([0]))[0]
                variates += count
            u_beta = stream.take_block(1)
            rate_beta = phi_beta + sum_times + tail_sum
            shape_b = m_beta + (me + residual) * alpha0
            beta = gamma_from_uniform(shape_b, u_beta[:, 0]) / rate_beta

        index = sweep - settings.burn_in
        if index >= 0 and (index + 1) % settings.thin == 0:
            samples[kept, 0] = omega[0]
            samples[kept, 1] = beta[0]
            residual_trace[kept] = residual[0]
            kept += 1
    _check_kept(kept, settings)
    extra = {
        "sampler": "gibbs-kuo-yang",
        "alpha0": alpha0,
        "collapsed_tail": collapsed,
        "residual_trace": residual_trace,
    }
    record_sampler_telemetry("gibbs-kuo-yang", samples, variates)
    if sp.collecting:
        extra["telemetry"] = sp.telemetry()
    return MCMCResult(
        samples=samples,
        settings=settings,
        variate_count=variates,
        extra=extra,
    )
