"""Chain bookkeeping shared by all MCMC samplers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.bayes.mcmc.diagnostics import effective_sample_size
from repro.bayes.sample_posterior import EmpiricalPosterior

__all__ = [
    "ChainSettings",
    "MCMCResult",
    "VARIATE_LAYERS",
    "kept_draws",
    "record_sampler_telemetry",
]

#: How a sampler turns randomness into variates. ``"direct"`` draws
#: from ``numpy.random.Generator`` distribution methods (the legacy
#: stream, frozen for the golden Table 6/7 regressions); ``"inverse"``
#: maps the generator's raw uniform stream through the explicit
#: inverse-CDF layer in :mod:`repro.stats`, the representation the
#: lane-parallel engine batches across chains and replications.
VARIATE_LAYERS = ("direct", "inverse")


def kept_draws(burn_in: int, thin: int, total_iterations: int) -> int:
    """Number of draws the keep rule retains from a sweep schedule.

    The rule keeps post-burn-in sweep ``index`` (0-based) when
    ``(index + 1) % thin == 0`` — i.e. ``floor((total - burn_in)/thin)``
    draws. Exposed so the schedule validation (and its tests) share the
    samplers' arithmetic instead of re-deriving it.
    """
    return max((total_iterations - burn_in) // thin, 0)


def record_sampler_telemetry(
    sampler: str, samples: np.ndarray, variate_count: int, **extra_metrics: float
) -> None:
    """Report the common per-chain cost and mixing metrics to the
    telemetry layer (:mod:`repro.obs`).

    Records the variate count (the paper's Table 6 cost metric), the
    number of kept draws, and the per-parameter effective sample size
    (FFT-based, cheap relative to the sampling itself). ``extra_metrics``
    lets a sampler add its own scalars under ``mcmc.<key>``.
    """
    if not obs.enabled():
        return
    obs.counter_add("mcmc.chains")
    obs.counter_add("mcmc.variates", variate_count)
    obs.observe("mcmc.samples_kept", samples.shape[0])
    if samples.shape[0] >= 4:
        ess_omega = effective_sample_size(samples[:, 0])
        ess_beta = effective_sample_size(samples[:, 1])
        obs.observe("mcmc.ess_omega", ess_omega)
        obs.observe("mcmc.ess_beta", ess_beta)
        obs.fit_health("MCMC", ess_omega=ess_omega, ess_beta=ess_beta)
    for key, value in extra_metrics.items():
        obs.observe(f"mcmc.{key}", float(value))


@dataclass(frozen=True)
class ChainSettings:
    """Burn-in / thinning schedule.

    The paper's defaults (Section 6): discard 10000 burn-in samples,
    then keep every 10th draw until 20000 samples are collected — i.e.
    210000 post-burn-in iterations.
    """

    n_samples: int = 20_000
    burn_in: int = 10_000
    thin: int = 10
    seed: int | None = None
    variate_layer: str = "direct"

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise ValueError("n_samples must be positive")
        if self.burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        if self.thin < 1:
            raise ValueError("thin must be at least 1")
        if self.variate_layer not in VARIATE_LAYERS:
            raise ValueError(
                f"variate_layer must be one of {VARIATE_LAYERS}, "
                f"got {self.variate_layer!r}"
            )
        # The schedule must retain exactly n_samples draws — a mismatch
        # here would make the samplers silently return a short sample
        # array, so it is rejected up front rather than truncated later.
        retained = kept_draws(self.burn_in, self.thin, self.total_iterations)
        if retained != self.n_samples:
            raise ValueError(
                f"schedule keeps {retained} draws, expected n_samples="
                f"{self.n_samples} (burn_in={self.burn_in}, thin={self.thin}, "
                f"total={self.total_iterations})"
            )

    @property
    def total_iterations(self) -> int:
        """Total Gibbs sweeps the schedule requires."""
        return self.burn_in + self.thin * self.n_samples

    def with_seed(self, seed: int | None) -> "ChainSettings":
        """Copy of the schedule with a different seed (chain spawning)."""
        return ChainSettings(
            n_samples=self.n_samples,
            burn_in=self.burn_in,
            thin=self.thin,
            seed=seed,
            variate_layer=self.variate_layer,
        )

    def with_variate_layer(self, variate_layer: str) -> "ChainSettings":
        """Copy of the schedule on a different variate layer (e.g. the
        batchable ``"inverse"`` layer for lane-parallel campaigns)."""
        return ChainSettings(
            n_samples=self.n_samples,
            burn_in=self.burn_in,
            thin=self.thin,
            seed=self.seed,
            variate_layer=variate_layer,
        )


@dataclass
class MCMCResult:
    """Collected samples plus provenance metadata.

    Attributes
    ----------
    samples:
        Kept draws, shape ``(n_samples, 2)`` in the order (omega, beta).
    settings:
        The schedule that produced them.
    variate_count:
        Number of elementary random variates generated, the cost metric
        of the paper's Table 6.
    extra:
        Sampler-specific metadata (latent-count traces, acceptance
        rates, ...).
    """

    samples: np.ndarray
    settings: ChainSettings
    variate_count: int
    extra: dict = field(default_factory=dict)

    def posterior(self) -> EmpiricalPosterior:
        """Wrap the samples as a joint posterior."""
        return EmpiricalPosterior(
            self.samples,
            method_name=self.extra.get("method_name", "MCMC"),
            diagnostics={
                "variate_count": self.variate_count,
                "n_samples": self.settings.n_samples,
                "burn_in": self.settings.burn_in,
                "thin": self.settings.thin,
                **{k: v for k, v in self.extra.items() if k != "method_name"},
            },
        )
