"""Chain bookkeeping shared by all MCMC samplers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.bayes.mcmc.diagnostics import effective_sample_size
from repro.bayes.sample_posterior import EmpiricalPosterior

__all__ = ["ChainSettings", "MCMCResult", "record_sampler_telemetry"]


def record_sampler_telemetry(
    sampler: str, samples: np.ndarray, variate_count: int, **extra_metrics: float
) -> None:
    """Report the common per-chain cost and mixing metrics to the
    telemetry layer (:mod:`repro.obs`).

    Records the variate count (the paper's Table 6 cost metric), the
    number of kept draws, and the per-parameter effective sample size
    (FFT-based, cheap relative to the sampling itself). ``extra_metrics``
    lets a sampler add its own scalars under ``mcmc.<key>``.
    """
    if not obs.enabled():
        return
    obs.counter_add("mcmc.chains")
    obs.counter_add("mcmc.variates", variate_count)
    obs.observe("mcmc.samples_kept", samples.shape[0])
    if samples.shape[0] >= 4:
        obs.observe("mcmc.ess_omega", effective_sample_size(samples[:, 0]))
        obs.observe("mcmc.ess_beta", effective_sample_size(samples[:, 1]))
    for key, value in extra_metrics.items():
        obs.observe(f"mcmc.{key}", float(value))


@dataclass(frozen=True)
class ChainSettings:
    """Burn-in / thinning schedule.

    The paper's defaults (Section 6): discard 10000 burn-in samples,
    then keep every 10th draw until 20000 samples are collected — i.e.
    210000 post-burn-in iterations.
    """

    n_samples: int = 20_000
    burn_in: int = 10_000
    thin: int = 10
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise ValueError("n_samples must be positive")
        if self.burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        if self.thin < 1:
            raise ValueError("thin must be at least 1")

    @property
    def total_iterations(self) -> int:
        """Total Gibbs sweeps the schedule requires."""
        return self.burn_in + self.thin * self.n_samples


@dataclass
class MCMCResult:
    """Collected samples plus provenance metadata.

    Attributes
    ----------
    samples:
        Kept draws, shape ``(n_samples, 2)`` in the order (omega, beta).
    settings:
        The schedule that produced them.
    variate_count:
        Number of elementary random variates generated, the cost metric
        of the paper's Table 6.
    extra:
        Sampler-specific metadata (latent-count traces, acceptance
        rates, ...).
    """

    samples: np.ndarray
    settings: ChainSettings
    variate_count: int
    extra: dict = field(default_factory=dict)

    def posterior(self) -> EmpiricalPosterior:
        """Wrap the samples as a joint posterior."""
        return EmpiricalPosterior(
            self.samples,
            method_name=self.extra.get("method_name", "MCMC"),
            diagnostics={
                "variate_count": self.variate_count,
                "n_samples": self.settings.n_samples,
                "burn_in": self.settings.burn_in,
                "thin": self.settings.thin,
                **{k: v for k, v in self.extra.items() if k != "method_name"},
            },
        )
