"""Data-augmentation Gibbs sampler for grouped data.

The paper (Section 6) handles grouped data by augmenting the latent
failure times inside each counting interval at every sweep (Tanner &
Wong 1987) — with ``m = Σ x_i`` observed failures and the three
parameter/count draws this costs ``m + 3`` variates per sweep,
matching Table 6's (3 + 38) x (10000 + 10 x 20000) = 8.61M variates.

Sweep structure:

1. latent times: for each interval ``(s_{i-1}, s_i]`` draw the ``x_i``
   failure times from the gamma lifetime law truncated to the interval;
2. residual count ``N̄ ~ Poisson(ω S̄(s_k; α0, β))``;
3. ``ω | N̄ ~ Gamma(m_ω + m + N̄, φ_ω + 1)``;
4. ``β`` from the conjugate gamma conditional, with the censored tail
   collapsed analytically for ``α0 = 1`` and augmented otherwise.
"""

from __future__ import annotations

import numpy as np
from repro.backend import special as sc

from repro import obs
from repro.bayes.mcmc.chains import (
    ChainSettings,
    MCMCResult,
    record_sampler_telemetry,
)
from repro.bayes.mcmc.gibbs_failure_time import _check_kept
from repro.bayes.priors import ModelPrior
from repro.data.failure_data import GroupedData
from repro.stats.gamma_dist import gamma_from_uniform
from repro.stats.poisson import poisson_from_uniform
from repro.stats.truncated import (
    censored_gamma_from_uniform,
    sample_censored_gamma,
    truncated_gamma_from_uniform,
)
from repro.stats.uniforms import UniformLaneStream, segment_sums

__all__ = ["gibbs_grouped"]


def gibbs_grouped(
    data: GroupedData,
    prior: ModelPrior,
    alpha0: float = 1.0,
    settings: ChainSettings | None = None,
    rng: np.random.Generator | None = None,
) -> MCMCResult:
    """Run the data-augmentation Gibbs sampler on grouped data.

    With ``settings.variate_layer == "inverse"`` the chain consumes the
    generator's raw uniform stream through the explicit inverse-CDF
    layer — the scalar reference for
    :func:`repro.bayes.mcmc.lane_engine.gibbs_grouped_lanes`,
    bit-identical to a lane of a batched run.
    """
    settings = settings or ChainSettings()
    if rng is None:
        rng = np.random.default_rng(settings.seed)
    with obs.span("mcmc.gibbs_grouped", collect=True) as sp:
        if settings.variate_layer == "inverse":
            return _gibbs_grouped_inverse(data, prior, alpha0, settings, rng, sp)
        return _gibbs_grouped(data, prior, alpha0, settings, rng, sp)


def _gibbs_grouped(
    data: GroupedData,
    prior: ModelPrior,
    alpha0: float,
    settings: ChainSettings,
    rng: np.random.Generator,
    sp,
) -> MCMCResult:
    intervals = [item for item in data.intervals() if item[2] > 0]
    total = data.total_count
    horizon = data.horizon
    m_omega, phi_omega = prior.omega.shape, prior.omega.rate
    m_beta, phi_beta = prior.beta.shape, prior.beta.rate
    collapsed = alpha0 == 1.0

    # Interval geometry hoisted out of the sweep loop: per-interval
    # endpoints, one row per occupied interval, plus the expansion of
    # each interval to its per-draw slots. All x_i latent times of a
    # sweep come from ONE rng.uniform call on the expanded bounds —
    # numpy's array-parameter uniform consumes the stream in the same
    # order as the per-interval scalar calls did, so the variate stream
    # (and golden Table 7) is unchanged bit for bit.
    int_lo = np.array([lo for lo, _, _ in intervals])
    int_hi = np.array([hi for _, hi, _ in intervals])
    int_count = np.array([count for _, _, count in intervals], dtype=np.int64)
    n_latent = int(int_count.sum())
    draw_slots = np.repeat(np.arange(int_count.size), int_count)
    segment_offsets = np.cumsum(int_count)[:-1]

    omega = float(max(total, 1) * 1.2 + 1.0)
    beta = 2.0 * alpha0 / horizon

    samples = np.empty((settings.n_samples, 2))
    residual_trace = np.empty(settings.n_samples, dtype=np.int64)
    variates = 0
    kept = 0
    for sweep in range(settings.total_iterations):
        latent_sum = 0.0
        if n_latent:
            p_lo = sc.gammainc(alpha0, beta * int_lo)
            p_hi = sc.gammainc(alpha0, beta * int_hi)
            # Far-tail intervals where the CDF difference underflows fall
            # back to uniform jitter, matching sample_truncated_gamma.
            degenerate = p_hi <= p_lo
            low = np.where(degenerate, int_lo, p_lo)
            high = np.where(degenerate, int_hi, p_hi)
            u = rng.uniform(low[draw_slots], high[draw_slots])
            draws = u.copy()
            invert = ~degenerate[draw_slots]
            draws[invert] = sc.gammaincinv(alpha0, u[invert]) / beta
            # Per-interval partial sums in interval order: bit-identical
            # to accumulating each interval's draws.sum() in the loop.
            for segment in np.split(draws, segment_offsets):
                latent_sum += float(segment.sum())
            variates += n_latent

        tail_prob = float(sc.gammaincc(alpha0, beta * horizon))
        residual = int(rng.poisson(omega * tail_prob))
        variates += 1

        omega = float(
            rng.gamma(shape=m_omega + total + residual, scale=1.0 / (phi_omega + 1.0))
        )
        variates += 1

        if collapsed:
            rate = phi_beta + latent_sum + residual * horizon
            beta = float(rng.gamma(shape=m_beta + total * alpha0, scale=1.0 / rate))
            variates += 1
        else:
            tail_sum = 0.0
            if residual > 0:
                tail_times = sample_censored_gamma(
                    horizon, alpha0, beta, residual, rng
                )
                tail_sum = float(tail_times.sum())
                variates += residual
            rate = phi_beta + latent_sum + tail_sum
            shape = m_beta + (total + residual) * alpha0
            beta = float(rng.gamma(shape=shape, scale=1.0 / rate))
            variates += 1

        index = sweep - settings.burn_in
        if index >= 0 and (index + 1) % settings.thin == 0 and kept < settings.n_samples:
            samples[kept, 0] = omega
            samples[kept, 1] = beta
            residual_trace[kept] = residual
            kept += 1
    _check_kept(kept, settings)
    extra = {
        "sampler": "gibbs-data-augmentation",
        "alpha0": alpha0,
        "collapsed_tail": collapsed,
        "residual_trace": residual_trace,
    }
    record_sampler_telemetry("gibbs-data-augmentation", samples, variates)
    if sp.collecting:
        extra["telemetry"] = sp.telemetry()
    return MCMCResult(
        samples=samples,
        settings=settings,
        variate_count=variates,
        extra=extra,
    )


def _gibbs_grouped_inverse(
    data: GroupedData,
    prior: ModelPrior,
    alpha0: float,
    settings: ChainSettings,
    rng: np.random.Generator,
    sp,
) -> MCMCResult:
    """Scalar reference sampler on the inverse-CDF variate layer.

    Same data-augmentation sweep as :func:`_gibbs_grouped`, with every
    variate mapped from the generator's raw uniform stream through the
    inverse-CDF layer — the single-lane ground truth for
    :func:`repro.bayes.mcmc.lane_engine.gibbs_grouped_lanes`. Latent
    sums use the canonical :func:`~repro.stats.uniforms.segment_sums`
    reduction over the lane's whole latent block, matching the engine's
    per-lane reduction bit for bit.
    """
    intervals = [item for item in data.intervals() if item[2] > 0]
    total = float(data.total_count)
    horizon = data.horizon
    m_omega, phi_omega = prior.omega.shape, prior.omega.rate
    m_beta, phi_beta = prior.beta.shape, prior.beta.rate
    collapsed = alpha0 == 1.0

    int_count = np.array([count for _, _, count in intervals], dtype=np.intp)
    n_latent = int(int_count.sum())
    if intervals:
        draw_lo = np.repeat(np.array([lo for lo, _, _ in intervals]), int_count)
        draw_hi = np.repeat(np.array([hi for _, hi, _ in intervals]), int_count)
    else:
        draw_lo = np.empty(0)
        draw_hi = np.empty(0)
    latent_counts = np.array([n_latent], dtype=np.intp)

    floor_total = max(total, 1.0)
    omega = np.array([floor_total * 1.2 + 1.0])
    beta = np.full(1, 2.0 * alpha0) / horizon

    shape_omega_base = m_omega + total
    shape_beta = np.full(1, m_beta + total * alpha0) if collapsed else None
    log_gamma_shape_beta = sc.gammaln(shape_beta) if collapsed else None

    stream = UniformLaneStream([rng])
    samples = np.empty((settings.n_samples, 2))
    residual_trace = np.empty(settings.n_samples, dtype=np.int64)
    variates = 0
    kept = 0
    for sweep in range(settings.total_iterations):
        latent_u = stream.take_ragged(latent_counts)
        latent_sum = np.zeros(1)
        if n_latent:
            latent_draws = truncated_gamma_from_uniform(
                draw_lo, draw_hi, alpha0, np.full(n_latent, beta[0]), latent_u
            )
            latent_sum[0] = segment_sums(latent_draws, np.array([0]))[0]
            variates += n_latent

        u = stream.take_block(2)
        if collapsed:
            tail_prob = np.exp(-beta * horizon)
        else:
            tail_prob = sc.gammaincc(alpha0, beta * horizon)
        residual = poisson_from_uniform(u[:, 0], omega * tail_prob)
        variates += 3

        shape_omega = shape_omega_base + residual
        omega = gamma_from_uniform(shape_omega, u[:, 1]) / (phi_omega + 1.0)

        if collapsed:
            u_beta = stream.take_block(1)
            rate_beta = phi_beta + latent_sum + residual * horizon
            beta = (
                gamma_from_uniform(
                    shape_beta, u_beta[:, 0], log_gamma_shape=log_gamma_shape_beta
                )
                / rate_beta
            )
        else:
            count = int(residual[0])
            tail_u = stream.take_ragged(residual)
            tail_sum = np.zeros(1)
            if count:
                tail_draws = censored_gamma_from_uniform(
                    np.full(count, horizon),
                    alpha0,
                    np.full(count, beta[0]),
                    tail_u,
                )
                tail_sum[0] = segment_sums(tail_draws, np.array([0]))[0]
                variates += count
            u_beta = stream.take_block(1)
            rate_beta = phi_beta + latent_sum + tail_sum
            shape_b = m_beta + (total + residual) * alpha0
            beta = gamma_from_uniform(shape_b, u_beta[:, 0]) / rate_beta

        index = sweep - settings.burn_in
        if index >= 0 and (index + 1) % settings.thin == 0:
            samples[kept, 0] = omega[0]
            samples[kept, 1] = beta[0]
            residual_trace[kept] = residual[0]
            kept += 1
    _check_kept(kept, settings)
    extra = {
        "sampler": "gibbs-data-augmentation",
        "alpha0": alpha0,
        "collapsed_tail": collapsed,
        "residual_trace": residual_trace,
    }
    record_sampler_telemetry("gibbs-data-augmentation", samples, variates)
    if sp.collecting:
        extra["telemetry"] = sp.telemetry()
    return MCMCResult(
        samples=samples,
        settings=settings,
        variate_count=variates,
        extra=extra,
    )
