"""LAPL: Laplace approximation of the joint posterior (paper Section 4.2).

The joint posterior is approximated by a bivariate normal centred at
the MAP estimate with covariance equal to the inverse negative Hessian
of the log posterior at the MAP. With flat priors this reduces to the
classical MLE confidence-interval construction of Yamada & Osaki.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import optimize

from repro import obs
from repro.bayes.normal_posterior import NormalPosterior
from repro.bayes.priors import ModelPrior
from repro.data.failure_data import FailureTimeData, GroupedData
from repro.exceptions import EstimationError
from repro.models.gamma_srm import GammaSRM

__all__ = ["find_map", "fit_laplace", "log_posterior_fn"]


def log_posterior_fn(
    data: FailureTimeData | GroupedData,
    prior: ModelPrior,
    alpha0: float,
):
    """Return the scalar unnormalised log posterior ``(ω, β) -> float``."""

    def log_post(omega: float, beta: float) -> float:
        if omega <= 0.0 or beta <= 0.0:
            return -math.inf
        model = GammaSRM(omega=omega, beta=beta, alpha0=alpha0)
        value = model.log_likelihood(data)
        value += float(prior.omega.log_pdf(omega))
        value += float(prior.beta.log_pdf(beta))
        return value

    return log_post


def find_map(
    data: FailureTimeData | GroupedData,
    prior: ModelPrior,
    alpha0: float = 1.0,
    *,
    initial: tuple[float, float] | None = None,
) -> tuple[float, float]:
    """Maximum a-posteriori estimate of ``(ω, β)`` (paper Eq. 7).

    The search runs in log-parameter coordinates (pure reparametrisation
    of the domain — the objective value is the original log posterior,
    so the optimum is the genuine MAP of the original parametrisation).
    """
    log_post = log_posterior_fn(data, prior, alpha0)
    if initial is None:
        if isinstance(data, FailureTimeData):
            count, horizon = data.count, data.horizon
        else:
            count, horizon = data.total_count, data.horizon
        count = max(count, 1)
        initial = (1.25 * count, alpha0 / horizon)

    def negative(params: np.ndarray) -> float:
        return -log_post(math.exp(params[0]), math.exp(params[1]))

    x0 = np.log(np.asarray(initial, dtype=float))
    result = optimize.minimize(negative, x0, method="Nelder-Mead",
                               options={"xatol": 1e-12, "fatol": 1e-12,
                                        "maxiter": 20_000})
    polished = optimize.minimize(negative, result.x, method="Nelder-Mead",
                                 options={"xatol": 1e-13, "fatol": 1e-13,
                                          "maxiter": 20_000})
    best = polished if polished.fun <= result.fun else result
    if obs.enabled():
        obs.observe("laplace.map_iterations", int(result.nit) + int(polished.nit))
        obs.observe("laplace.map_evaluations", int(result.nfev) + int(polished.nfev))
        obs.fit_health(
            "LAPL",
            iterations=int(result.nit) + int(polished.nit),
            objective=float(best.fun),
        )
        if polished.fun > result.fun:
            obs.counter_add("laplace.polish_rejected")
    if not np.all(np.isfinite(best.x)):
        if obs.enabled():
            obs.counter_add("laplace.failures")
            obs.event("laplace.map_failure", evaluations=int(best.nfev))
        raise EstimationError("MAP search diverged")
    omega_hat, beta_hat = float(np.exp(best.x[0])), float(np.exp(best.x[1]))
    return omega_hat, beta_hat


def _hessian(
    log_post, omega_hat: float, beta_hat: float
) -> np.ndarray:
    """Central-difference Hessian of the log posterior at the MAP,
    with parameter-scaled steps."""
    steps = np.array([1e-4 * omega_hat, 1e-4 * beta_hat])
    point = np.array([omega_hat, beta_hat])

    def f(p: np.ndarray) -> float:
        return log_post(p[0], p[1])

    hess = np.empty((2, 2))
    f0 = f(point)
    for i in range(2):
        ei = np.zeros(2)
        ei[i] = steps[i]
        hess[i, i] = (f(point + ei) - 2.0 * f0 + f(point - ei)) / steps[i] ** 2
    e0 = np.array([steps[0], 0.0])
    e1 = np.array([0.0, steps[1]])
    hess[0, 1] = hess[1, 0] = (
        f(point + e0 + e1) - f(point + e0 - e1) - f(point - e0 + e1) + f(point - e0 - e1)
    ) / (4.0 * steps[0] * steps[1])
    return hess


def fit_laplace(
    data: FailureTimeData | GroupedData,
    prior: ModelPrior,
    alpha0: float = 1.0,
    *,
    initial: tuple[float, float] | None = None,
) -> NormalPosterior:
    """Fit the Laplace (multivariate normal) posterior approximation.

    Raises
    ------
    EstimationError
        If the negative Hessian at the MAP is not positive definite
        (the posterior is too flat or the MAP search failed).
    """
    with obs.span("laplace.fit", collect=True, data=type(data).__name__) as sp:
        log_post = log_posterior_fn(data, prior, alpha0)
        omega_hat, beta_hat = find_map(data, prior, alpha0, initial=initial)
        hess = _hessian(log_post, omega_hat, beta_hat)
        neg_hess = -hess
        try:
            cov = np.linalg.inv(neg_hess)
        except np.linalg.LinAlgError as exc:
            if obs.enabled():
                obs.counter_add("laplace.failures")
                obs.event("laplace.hessian_failure", kind="singular")
            raise EstimationError(f"singular Hessian at the MAP: {exc}") from exc
        if cov[0, 0] <= 0.0 or cov[1, 1] <= 0.0:
            if obs.enabled():
                obs.counter_add("laplace.failures")
                obs.event("laplace.hessian_failure", kind="not_positive_definite")
            raise EstimationError(
                "negative Hessian at the MAP is not positive definite; the "
                "Laplace approximation is undefined for this posterior"
            )

        posterior = NormalPosterior(
            mean=np.array([omega_hat, beta_hat]),
            cov=cov,
        )
        posterior.diagnostics = {
            "map": (omega_hat, beta_hat),
            "log_posterior_at_map": log_post(omega_hat, beta_hat),
            "alpha0": alpha0,
            "data_kind": type(data).__name__,
            "horizon": data.horizon,
        }
        if obs.enabled():
            obs.counter_add("laplace.fits")
            if sp.collecting:
                posterior.diagnostics["telemetry"] = sp.telemetry()
        return posterior
