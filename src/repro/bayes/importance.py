"""Importance-sampling correction of the variational posterior.

The VB2 posterior is an excellent approximation of the true posterior
(paper Table 1) *and* is easy to sample and to evaluate — which makes
it a near-ideal importance-sampling proposal. Self-normalised IS with
VB2 as the proposal therefore turns the variational approximation into
an asymptotically exact method at a cost far below MCMC:

1. draw ``(ω, β)`` samples from the VB2 mixture;
2. weight each by ``P(D | ω, β) P(ω, β) / Pv(ω, β)``;
3. use the weighted sample for moments/quantiles, with the standard
   effective-sample-size diagnostic ``ESS = (Σw)² / Σw²``.

The log evidence estimate ``log mean(w)`` also upper-bounds the ELBO,
which the test suite exploits as a three-way consistency check
(ELBO ≤ IS evidence ≈ NINT evidence).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from repro.backend import special as sc

from repro.bayes.laplace import log_posterior_fn
from repro.bayes.priors import ModelPrior
from repro.bayes.sample_posterior import EmpiricalPosterior
from repro.data.failure_data import FailureTimeData, GroupedData

# NOTE: repro.core.posterior is imported lazily to avoid a circular
# import (repro.core modules import repro.bayes.priors, which
# initialises this package). The type name in annotations below is the
# string form for the same reason.

__all__ = ["ImportanceResult", "importance_correct"]


@dataclass
class ImportanceResult:
    """Weighted sample from the true posterior.

    Attributes
    ----------
    samples:
        Proposal draws, shape ``(n, 2)``.
    log_weights:
        Unnormalised log importance weights.
    log_evidence:
        Self-normalised estimate of ``log P(D)``.
    effective_sample_size:
        ``(Σw)² / Σw²`` — how many unweighted samples the weighted set
        is worth.
    """

    samples: np.ndarray
    log_weights: np.ndarray
    log_evidence: float
    effective_sample_size: float

    @property
    def weights(self) -> np.ndarray:
        """Normalised importance weights."""
        shifted = self.log_weights - self.log_weights.max()
        w = np.exp(shifted)
        return w / w.sum()

    def mean(self, param: str) -> float:
        """Weighted posterior mean of "omega" or "beta"."""
        column = 0 if param == "omega" else 1
        return float(self.weights @ self.samples[:, column])

    def variance(self, param: str) -> float:
        """Weighted posterior variance."""
        column = 0 if param == "omega" else 1
        w = self.weights
        mu = float(w @ self.samples[:, column])
        return float(w @ (self.samples[:, column] - mu) ** 2)

    def covariance(self) -> float:
        """Weighted posterior covariance of ``(ω, β)``."""
        w = self.weights
        mu0 = float(w @ self.samples[:, 0])
        mu1 = float(w @ self.samples[:, 1])
        return float(w @ ((self.samples[:, 0] - mu0) * (self.samples[:, 1] - mu1)))

    def resample(self, size: int, rng: np.random.Generator) -> EmpiricalPosterior:
        """Sampling-importance-resampling: an unweighted posterior."""
        idx = rng.choice(self.samples.shape[0], size=size, p=self.weights)
        return EmpiricalPosterior(
            self.samples[idx],
            method_name="VB2+IS",
            diagnostics={
                "effective_sample_size": self.effective_sample_size,
                "log_evidence": self.log_evidence,
            },
        )


def importance_correct(
    posterior: "VBPosterior",
    data: FailureTimeData | GroupedData,
    prior: ModelPrior,
    *,
    alpha0: float = 1.0,
    n_samples: int = 10_000,
    rng: np.random.Generator | None = None,
) -> ImportanceResult:
    """Self-normalised importance sampling with the VB posterior as
    proposal.

    Parameters
    ----------
    posterior:
        A fitted :class:`VBPosterior` (VB2 recommended; VB1 works but
        its too-narrow proposal costs effective sample size).
    data, prior, alpha0:
        The model specification the posterior was fitted to (the target
        density is rebuilt from them).
    n_samples:
        Number of proposal draws.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    samples = posterior.sample(n_samples, rng)
    log_target = log_posterior_fn(data, prior, alpha0)
    log_weights = np.empty(n_samples)
    # Proposal log density: mixture evaluated per point.
    log_q = _mixture_log_pdf(posterior, samples)
    for i in range(n_samples):
        log_weights[i] = log_target(samples[i, 0], samples[i, 1])
    log_weights -= log_q
    finite = np.isfinite(log_weights)
    if not np.all(finite):
        # Proposal occasionally lands where the target is -inf (possible
        # only through numerical underflow); drop those points.
        samples = samples[finite]
        log_weights = log_weights[finite]
    shifted = log_weights - log_weights.max()
    w = np.exp(shifted)
    log_evidence = (
        float(log_weights.max() + math.log(w.mean()))
    )
    ess = float(w.sum() ** 2 / np.square(w).sum())
    return ImportanceResult(
        samples=samples,
        log_weights=log_weights,
        log_evidence=log_evidence,
        effective_sample_size=ess,
    )


def _mixture_log_pdf(posterior: "VBPosterior", points: np.ndarray) -> np.ndarray:
    """``log Pv(ω, β)`` of the VB mixture at arbitrary points."""
    n_points = points.shape[0]
    parts = np.empty((posterior.n_components, n_points))
    with np.errstate(divide="ignore"):
        log_w = np.log(posterior.weights)
    for idx in range(posterior.n_components):
        log_po = np.asarray(
            posterior._omega_components[idx].log_pdf(points[:, 0])
        )
        log_pb = np.asarray(
            posterior._beta_components[idx].log_pdf(points[:, 1])
        )
        parts[idx] = log_w[idx] + log_po + log_pb
    return np.asarray(sc.logsumexp(parts, axis=0))
