"""Joint posterior represented by Monte Carlo samples.

This is the interface the MCMC samplers return. Quantiles follow the
paper's convention (Section 6): the ``p``-quantile from ``n`` samples
is the order statistic of rank ``round(p * n)`` — e.g. the 2.5%-
quantile of 20000 samples is the 500th smallest value.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.bayes.joint import JointPosterior

__all__ = ["EmpiricalPosterior"]

_PARAM_INDEX = {"omega": 0, "beta": 1}


class EmpiricalPosterior(JointPosterior):
    """Posterior over ``(ω, β)`` given by an ``(n, 2)`` sample array."""

    method_name = "MCMC"

    def __init__(
        self,
        samples: np.ndarray,
        *,
        method_name: str = "MCMC",
        diagnostics: dict | None = None,
    ) -> None:
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2 or samples.shape[1] != 2:
            raise ValueError(f"samples must have shape (n, 2), got {samples.shape}")
        if samples.shape[0] < 2:
            raise ValueError("need at least two samples")
        if not np.all(np.isfinite(samples)):
            raise ValueError("samples contain non-finite values")
        self._samples = samples
        self._sorted = {
            "omega": np.sort(samples[:, 0]),
            "beta": np.sort(samples[:, 1]),
        }
        self.method_name = method_name
        self.diagnostics = dict(diagnostics or {})

    # ------------------------------------------------------------------
    @property
    def samples(self) -> np.ndarray:
        """The underlying samples (copy)."""
        return self._samples.copy()

    @property
    def n_samples(self) -> int:
        """Sample count."""
        return int(self._samples.shape[0])

    # ------------------------------------------------------------------
    def mean(self, param: str) -> float:
        return float(self._samples[:, _PARAM_INDEX[self._check_param(param)]].mean())

    def variance(self, param: str) -> float:
        return float(
            self._samples[:, _PARAM_INDEX[self._check_param(param)]].var(ddof=1)
        )

    def central_moment(self, param: str, k: int) -> float:
        col = self._samples[:, _PARAM_INDEX[self._check_param(param)]]
        return float(np.mean((col - col.mean()) ** k))

    def cross_moment(self) -> float:
        return float(np.mean(self._samples[:, 0] * self._samples[:, 1]))

    def covariance(self) -> float:
        """Sample covariance (ddof=1, consistent with :meth:`variance`)."""
        return float(np.cov(self._samples[:, 0], self._samples[:, 1], ddof=1)[0, 1])

    def quantile(self, param: str, q: float) -> float:
        """Order-statistic quantile of rank ``round(q * n)`` (clamped to
        the valid range), matching the paper's convention. Routed
        through :meth:`quantile_batch` so both entry points share one
        rank-lookup implementation."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile level must be in (0, 1)")
        return float(self.quantile_batch(param, q)[0])

    def quantile_batch(self, param: str, q: np.ndarray) -> np.ndarray:
        """All levels by one vectorized rank lookup into the sorted
        samples (same banker's rounding as :meth:`quantile`)."""
        levels = np.atleast_1d(np.asarray(q, dtype=float))
        if levels.size and not np.all((levels > 0.0) & (levels < 1.0)):
            raise ValueError("quantile levels must be in (0, 1)")
        ordered = self._sorted[self._check_param(param)]
        ranks = np.clip(np.rint(levels * ordered.size).astype(int), 1, ordered.size)
        return ordered[ranks - 1].astype(float)

    def cdf(self, param: str, x: float) -> float:
        """Empirical CDF: fraction of samples at or below ``x``."""
        ordered = self._sorted[self._check_param(param)]
        return float(np.searchsorted(ordered, x, side="right")) / ordered.size

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Bootstrap re-draw from the stored samples."""
        idx = rng.integers(0, self.n_samples, size=size)
        return self._samples[idx]

    # ------------------------------------------------------------------
    # Reliability: transform every sample (paper Section 6)
    # ------------------------------------------------------------------
    def _reliability_samples(self, c: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        c_values = np.asarray(c(self._samples[:, 1]), dtype=float)
        return np.exp(-self._samples[:, 0] * c_values)

    def reliability_point(self, c: Callable[[np.ndarray], np.ndarray]) -> float:
        return float(self._reliability_samples(c).mean())

    def reliability_cdf(self, r: float, c: Callable[[np.ndarray], np.ndarray]) -> float:
        if r <= 0.0:
            return 0.0
        if r >= 1.0:
            return 1.0
        return float(np.mean(self._reliability_samples(c) <= r))

    def reliability_quantile(
        self, q: float, c: Callable[[np.ndarray], np.ndarray]
    ) -> float:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile level must be in (0, 1)")
        return float(self.reliability_quantile_batch(q, c)[0])

    def reliability_quantile_batch(
        self, q: np.ndarray, c: Callable[[np.ndarray], np.ndarray]
    ) -> np.ndarray:
        """All levels from one transform-and-sort of the reliability
        samples (the sort dominates; per-level cost is a rank lookup)."""
        levels = np.atleast_1d(np.asarray(q, dtype=float))
        if levels.size and not np.all((levels > 0.0) & (levels < 1.0)):
            raise ValueError("quantile levels must be in (0, 1)")
        values = np.sort(self._reliability_samples(c))
        ranks = np.clip(np.rint(levels * values.size).astype(int), 1, values.size)
        return values[ranks - 1].astype(float)

    # ------------------------------------------------------------------
    def scatter(self, max_points: int | None = None,
                rng: np.random.Generator | None = None) -> np.ndarray:
        """Subsample for scatter plots (Figure 1 uses 10000 points)."""
        if max_points is None or max_points >= self.n_samples:
            return self.samples
        rng = rng or np.random.default_rng(0)
        idx = rng.choice(self.n_samples, size=max_points, replace=False)
        return self._samples[idx]
