"""Prior-sensitivity analysis.

The paper's NoInfo results demonstrate how much the posterior can
depend on prior information when the data are weak. This module makes
that dependence measurable for a concrete analysis: it sweeps the prior
location and strength around a base prior, refits the (fast) VB2
posterior for each variant, and reports how the quantities of interest
move — so an analyst can state "the release decision is (in)sensitive
to the prior" quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bayes.priors import GammaPrior, ModelPrior
from repro.data.failure_data import FailureTimeData, GroupedData

# NOTE: repro.core is imported lazily inside prior_sensitivity to avoid
# a circular import (repro.core.vb2 itself imports repro.bayes.priors,
# which initialises this package).

__all__ = ["SensitivityRecord", "SensitivityReport", "prior_sensitivity"]


@dataclass(frozen=True)
class SensitivityRecord:
    """One prior variant and the posterior summaries it produced.

    Attributes
    ----------
    label:
        Human-readable description of the variant.
    omega_prior_mean, beta_prior_mean:
        The variant's prior means.
    strength_factor:
        Multiplier applied to the prior precision (1 = base strength).
    posterior_mean_omega, posterior_mean_beta:
        Posterior means under the variant.
    interval_omega:
        Two-sided 99% credible interval for ``ω``.
    """

    label: str
    omega_prior_mean: float
    beta_prior_mean: float
    strength_factor: float
    posterior_mean_omega: float
    posterior_mean_beta: float
    interval_omega: tuple[float, float]


@dataclass
class SensitivityReport:
    """All sweep records plus summary ranges."""

    base: SensitivityRecord
    records: list[SensitivityRecord]

    def omega_mean_range(self) -> tuple[float, float]:
        """Min/max posterior mean of ``ω`` across the sweep."""
        values = [r.posterior_mean_omega for r in self.records]
        return min(values), max(values)

    def max_relative_shift(self) -> float:
        """Largest relative move of the posterior ω mean from the base."""
        base = self.base.posterior_mean_omega
        return max(
            abs(r.posterior_mean_omega - base) / base for r in self.records
        )

    @property
    def is_robust(self) -> bool:
        """Conventional robustness call: posterior mean moves < 10%
        across the whole sweep."""
        return self.max_relative_shift() < 0.10


def _scale_strength(prior: GammaPrior, factor: float) -> GammaPrior:
    """Same prior mean, precision scaled by ``factor`` (variance / factor)."""
    return GammaPrior(shape=prior.shape * factor, rate=prior.rate * factor)


def prior_sensitivity(
    data: FailureTimeData | GroupedData,
    base_prior: ModelPrior,
    *,
    alpha0: float = 1.0,
    location_factors: tuple[float, ...] = (0.5, 0.75, 1.25, 2.0),
    strength_factors: tuple[float, ...] = (0.25, 4.0),
    config=None,
) -> SensitivityReport:
    """Sweep the prior and report posterior movement.

    Parameters
    ----------
    data, base_prior, alpha0:
        The analysis being stress-tested (proper priors required).
    location_factors:
        Multipliers applied to each prior mean (one at a time, both
        parameters jointly).
    strength_factors:
        Multipliers applied to the prior precision at the base location.
    """
    from repro.core.config import VBConfig
    from repro.core.vb2 import fit_vb2

    if not base_prior.is_proper:
        raise ValueError("prior sensitivity analysis needs proper base priors")
    config = config or VBConfig()

    def fit_record(label: str, prior: ModelPrior, strength: float) -> SensitivityRecord:
        posterior = fit_vb2(data, prior, alpha0, config)
        return SensitivityRecord(
            label=label,
            omega_prior_mean=prior.omega.mean,
            beta_prior_mean=prior.beta.mean,
            strength_factor=strength,
            posterior_mean_omega=posterior.mean("omega"),
            posterior_mean_beta=posterior.mean("beta"),
            interval_omega=posterior.credible_interval("omega", 0.99),
        )

    base_record = fit_record("base", base_prior, 1.0)
    records = []
    for factor in location_factors:
        shifted = ModelPrior.informative(
            base_prior.omega.mean * factor,
            base_prior.omega.std * factor,
            base_prior.beta.mean * factor,
            base_prior.beta.std * factor,
        )
        records.append(fit_record(f"location x{factor:g}", shifted, 1.0))
    for factor in strength_factors:
        strengthened = ModelPrior(
            omega=_scale_strength(base_prior.omega, factor),
            beta=_scale_strength(base_prior.beta, factor),
        )
        records.append(
            fit_record(f"strength x{factor:g}", strengthened, factor)
        )
    return SensitivityReport(base=base_record, records=records)
