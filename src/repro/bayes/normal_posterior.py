"""Multivariate-normal joint posterior (the Laplace approximation).

Mirrors the paper's LAPL method faithfully, including its known
pathologies: marginal quantiles are normal quantiles (which can be
negative for a positive parameter), the reliability point estimate is
the plug-in value at the MAP, and the reliability interval comes from
the delta method — so its upper bound can exceed one, exactly as the
bracketed values in the paper's Tables 2–4 show.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np
from scipy import stats as st

from repro.bayes.joint import JointPosterior

__all__ = ["NormalPosterior"]

_PARAM_INDEX = {"omega": 0, "beta": 1}


class NormalPosterior(JointPosterior):
    """Bivariate normal posterior ``N(mean, cov)`` over ``(ω, β)``.

    Parameters
    ----------
    mean:
        Length-2 location (the MAP estimate).
    cov:
        2x2 covariance (inverse negative Hessian at the MAP).
    c_derivative:
        Optional callable ``beta -> dc/dβ`` used by the delta-method
        reliability interval; when absent a central difference on ``c``
        is used.
    """

    method_name = "LAPL"

    def __init__(
        self,
        mean: np.ndarray,
        cov: np.ndarray,
        *,
        c_derivative: Callable[[float], float] | None = None,
    ) -> None:
        mean = np.asarray(mean, dtype=float)
        cov = np.asarray(cov, dtype=float)
        if mean.shape != (2,):
            raise ValueError("mean must have shape (2,)")
        if cov.shape != (2, 2):
            raise ValueError("cov must have shape (2, 2)")
        if not np.all(np.isfinite(mean)) or not np.all(np.isfinite(cov)):
            raise ValueError("mean and cov must be finite")
        if cov[0, 0] <= 0.0 or cov[1, 1] <= 0.0:
            raise ValueError("covariance diagonal must be positive")
        self._mean = mean
        self._cov = 0.5 * (cov + cov.T)  # symmetrise
        self._c_derivative = c_derivative

    # ------------------------------------------------------------------
    @property
    def map_estimate(self) -> np.ndarray:
        """The MAP location (copy)."""
        return self._mean.copy()

    def with_covariance(self, cov: np.ndarray) -> "NormalPosterior":
        """Copy of this posterior with a replaced covariance.

        Keeps the MAP location and the reliability-derivative hook; the
        sandwich correction (:func:`repro.bayes.sandwich.apply_sandwich`)
        uses this because an affine spread change of a normal is again a
        normal in closed form.
        """
        return NormalPosterior(
            self._mean, np.asarray(cov, dtype=float),
            c_derivative=self._c_derivative,
        )

    def mean(self, param: str) -> float:
        return float(self._mean[_PARAM_INDEX[self._check_param(param)]])

    def variance(self, param: str) -> float:
        idx = _PARAM_INDEX[self._check_param(param)]
        return float(self._cov[idx, idx])

    def central_moment(self, param: str, k: int) -> float:
        """Normal central moments: 0 for odd k, ``σ^k (k-1)!!`` for even."""
        sigma = self.std(param)
        if k % 2 == 1:
            return 0.0
        double_factorial = 1
        for factor in range(k - 1, 0, -2):
            double_factorial *= factor
        return float(double_factorial) * sigma**k

    def cross_moment(self) -> float:
        return float(self._cov[0, 1] + self._mean[0] * self._mean[1])

    def quantile(self, param: str, q: float) -> float:
        idx = _PARAM_INDEX[self._check_param(param)]
        return float(
            st.norm.ppf(q, loc=self._mean[idx], scale=math.sqrt(self._cov[idx, idx]))
        )

    def quantile_batch(self, param: str, q: np.ndarray) -> np.ndarray:
        """All levels through one vectorized normal ppf call."""
        idx = _PARAM_INDEX[self._check_param(param)]
        levels = np.atleast_1d(np.asarray(q, dtype=float))
        return np.asarray(
            st.norm.ppf(
                levels, loc=self._mean[idx], scale=math.sqrt(self._cov[idx, idx])
            ),
            dtype=float,
        )

    def log_pdf_grid(self, omega: np.ndarray, beta: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        beta = np.asarray(beta, dtype=float)
        mesh = np.stack(
            np.meshgrid(omega, beta, indexing="ij"), axis=-1
        )  # (n_omega, n_beta, 2)
        return st.multivariate_normal(self._mean, self._cov, allow_singular=True).logpdf(
            mesh
        )

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Joint normal samples; may contain negative coordinates, as is
        inherent to this approximation."""
        return rng.multivariate_normal(self._mean, self._cov, size=size)

    # ------------------------------------------------------------------
    # Reliability: plug-in point, delta-method interval (paper Section 6)
    # ------------------------------------------------------------------
    def _reliability_mean_std(
        self, c: Callable[[np.ndarray], np.ndarray]
    ) -> tuple[float, float]:
        omega_hat, beta_hat = self._mean
        c_hat = float(c(beta_hat))
        r_hat = math.exp(-omega_hat * c_hat)
        if self._c_derivative is not None:
            dc = float(self._c_derivative(beta_hat))
        else:
            step = 1e-6 * beta_hat
            dc = float(c(beta_hat + step) - c(beta_hat - step)) / (2.0 * step)
        grad = np.array([-c_hat * r_hat, -omega_hat * dc * r_hat])
        var = float(grad @ self._cov @ grad)
        return r_hat, math.sqrt(max(var, 0.0))

    def reliability_point(self, c: Callable[[np.ndarray], np.ndarray]) -> float:
        r_hat, _ = self._reliability_mean_std(c)
        return r_hat

    def reliability_cdf(self, r: float, c: Callable[[np.ndarray], np.ndarray]) -> float:
        r_hat, sd = self._reliability_mean_std(c)
        if sd == 0.0:
            return 0.0 if r < r_hat else 1.0
        return float(st.norm.cdf(r, loc=r_hat, scale=sd))

    def reliability_quantile(
        self, q: float, c: Callable[[np.ndarray], np.ndarray]
    ) -> float:
        """Normal quantile; deliberately *not* clipped to [0, 1] so the
        method's over-coverage is visible, as in the paper's tables."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile level must be in (0, 1)")
        r_hat, sd = self._reliability_mean_std(c)
        return float(st.norm.ppf(q, loc=r_hat, scale=sd))

    # ------------------------------------------------------------------
    # Residual fault count: delta method on D = omega * c(beta) directly
    # ------------------------------------------------------------------
    def residual_quantile_batch(
        self, q: np.ndarray, survival: Callable[[np.ndarray], np.ndarray]
    ) -> np.ndarray:
        """Delta-method normal quantiles of ``D = ω c(β)``.

        The generic ``-log``-of-reliability transform is ill-defined
        here (the delta-method reliability quantile can leave ``(0, 1]``),
        so LAPL linearises ``D`` itself — with the same known pathology
        that the lower bound can be negative.
        """
        levels = np.atleast_1d(np.asarray(q, dtype=float))
        omega_hat, beta_hat = self._mean
        c_hat = float(survival(beta_hat))
        step = 1e-6 * beta_hat
        dc = float(survival(beta_hat + step) - survival(beta_hat - step)) / (
            2.0 * step
        )
        grad = np.array([c_hat, omega_hat * dc])
        var = float(grad @ self._cov @ grad)
        return np.asarray(
            st.norm.ppf(
                levels, loc=omega_hat * c_hat, scale=math.sqrt(max(var, 0.0))
            ),
            dtype=float,
        )
