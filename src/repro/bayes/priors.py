"""Prior distributions for the NHPP model parameters.

The paper uses independent gamma priors for ``ω`` and ``β`` (conjugate
to the complete-data likelihood) in the "Info" scenario, elicited from
a mean and standard deviation, and improper flat priors in the "NoInfo"
scenario. Improper priors are represented as gamma priors with
degenerate hyper-parameters so the conjugate update algebra applies
uniformly:

* flat ``p(x) ∝ 1``      → ``shape = 1, rate = 0``
* scale-invariant ``∝ 1/x`` → ``shape = 0, rate = 0``
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from repro.backend import special as sc

from repro.exceptions import PriorSpecificationError

__all__ = ["GammaPrior", "FlatPrior", "ScaleInvariantPrior", "ModelPrior"]


@dataclass(frozen=True)
class GammaPrior:
    """(Possibly improper) gamma prior ``p(x) ∝ x^(shape-1) e^(-rate x)``.

    Parameters
    ----------
    shape:
        Hyper-parameter ``m >= 0`` (the paper's ``m_ω`` / ``m_β``).
    rate:
        Hyper-parameter ``φ >= 0`` (the paper's ``φ_ω`` / ``φ_β``).
        ``rate == 0`` makes the prior improper.
    """

    shape: float
    rate: float

    def __post_init__(self) -> None:
        if self.shape < 0.0 or not math.isfinite(self.shape):
            raise PriorSpecificationError(f"shape must be >= 0, got {self.shape}")
        if self.rate < 0.0 or not math.isfinite(self.rate):
            raise PriorSpecificationError(f"rate must be >= 0, got {self.rate}")

    # ------------------------------------------------------------------
    def canonical(self) -> dict:
        """Stable content view for cache-key serialization."""
        return {"shape": float(self.shape), "rate": float(self.rate)}

    @property
    def is_proper(self) -> bool:
        """True when the prior integrates to one."""
        return self.shape > 0.0 and self.rate > 0.0

    @property
    def mean(self) -> float:
        """Prior mean (proper priors only)."""
        if not self.is_proper:
            raise PriorSpecificationError("improper prior has no mean")
        return self.shape / self.rate

    @property
    def std(self) -> float:
        """Prior standard deviation (proper priors only)."""
        if not self.is_proper:
            raise PriorSpecificationError("improper prior has no std")
        return math.sqrt(self.shape) / self.rate

    @classmethod
    def from_mean_std(cls, mean: float, std: float) -> "GammaPrior":
        """Elicit hyper-parameters by moment matching, as the paper's
        "Info" scenario does (Section 6)."""
        if mean <= 0 or std <= 0:
            raise PriorSpecificationError("mean and std must be positive")
        return cls(shape=(mean / std) ** 2, rate=mean / std**2)

    # ------------------------------------------------------------------
    def log_pdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """Unnormalised for improper priors, normalised otherwise."""
        x = np.asarray(x, dtype=float)
        out = np.full(x.shape, -np.inf)
        pos = x > 0
        xp = x[pos]
        val = (self.shape - 1.0) * np.log(xp) - self.rate * xp
        if self.is_proper:
            val = val + self.shape * math.log(self.rate) - float(sc.gammaln(self.shape))
        out[pos] = val
        if out.ndim == 0:
            return float(out)
        return out

    def log_normaliser(self) -> float:
        """``log ∫ x^(shape-1) e^(-rate x) dx`` for proper priors; raises
        otherwise (improper priors contribute no evidence constant)."""
        if not self.is_proper:
            raise PriorSpecificationError("improper prior has no normaliser")
        return float(sc.gammaln(self.shape)) - self.shape * math.log(self.rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_proper:
            return (
                f"GammaPrior(shape={self.shape:g}, rate={self.rate:g}, "
                f"mean={self.mean:g}, std={self.std:g})"
            )
        return f"GammaPrior(shape={self.shape:g}, rate={self.rate:g}, improper)"


def FlatPrior() -> GammaPrior:
    """Improper flat prior ``p(x) ∝ 1`` on the positive half line."""
    return GammaPrior(shape=1.0, rate=0.0)


def ScaleInvariantPrior() -> GammaPrior:
    """Improper scale-invariant prior ``p(x) ∝ 1/x``."""
    return GammaPrior(shape=0.0, rate=0.0)


@dataclass(frozen=True)
class ModelPrior:
    """Independent priors for the two model parameters ``(ω, β)``."""

    omega: GammaPrior
    beta: GammaPrior

    @classmethod
    def informative(
        cls,
        omega_mean: float,
        omega_std: float,
        beta_mean: float,
        beta_std: float,
    ) -> "ModelPrior":
        """Moment-matched gamma priors (paper's "Info" scenario)."""
        return cls(
            omega=GammaPrior.from_mean_std(omega_mean, omega_std),
            beta=GammaPrior.from_mean_std(beta_mean, beta_std),
        )

    @classmethod
    def noninformative(cls) -> "ModelPrior":
        """Flat priors on both parameters (paper's "NoInfo" scenario)."""
        return cls(omega=FlatPrior(), beta=FlatPrior())

    def canonical(self) -> dict:
        """Stable content view for cache-key serialization."""
        return {"omega": self.omega.canonical(), "beta": self.beta.canonical()}

    @property
    def is_proper(self) -> bool:
        """True when both marginal priors are proper."""
        return self.omega.is_proper and self.beta.is_proper

    def log_pdf(self, omega: float | np.ndarray, beta: float | np.ndarray):
        """Joint (independent) log prior density."""
        return self.omega.log_pdf(omega) + self.beta.log_pdf(beta)
