"""Joint posterior represented on a two-dimensional quadrature grid.

This is the representation behind the NINT baseline (paper Section
4.1): the unnormalised log posterior is evaluated on a tensor grid and
normalised by log-sum-exp; all functionals (moments, marginal
quantiles, reliability transforms) are quadrature sums over the grid.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.bayes.joint import JointPosterior

__all__ = ["GridPosterior"]


class GridPosterior(JointPosterior):
    """Posterior of ``(ω, β)`` on a tensor quadrature grid.

    Parameters
    ----------
    grid:
        A :class:`repro.stats.quadrature.TensorGrid`; axis 0 is ``ω``,
        axis 1 is ``β``.
    log_post:
        Unnormalised log posterior evaluated on the grid,
        shape ``(len(grid.x), len(grid.y))``.
    log_pdf_fn:
        Optional callable ``(omega_nodes, beta_nodes) -> matrix`` that
        re-evaluates the unnormalised log posterior on arbitrary nodes;
        enables :meth:`log_pdf_grid` beyond the stored grid.
    """

    method_name = "NINT"

    def __init__(
        self,
        grid,
        log_post: np.ndarray,
        log_pdf_fn: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    ) -> None:
        log_post = np.asarray(log_post, dtype=float)
        if log_post.shape != (grid.x.size, grid.y.size):
            raise ValueError(
                f"log_post shape {log_post.shape} does not match grid "
                f"({grid.x.size}, {grid.y.size})"
            )
        self._grid = grid
        self._log_norm = grid.log_integrate(log_post)
        if not math.isfinite(self._log_norm):
            raise ValueError("posterior mass on the grid is zero or infinite")
        self._density = np.exp(log_post - self._log_norm)
        self._log_pdf_fn = log_pdf_fn
        # Cell masses for marginal work: density times weights.
        self._mass = self._density * grid.wx[:, None] * grid.wy[None, :]
        self._mass_total = float(self._mass.sum())
        self._marginal_omega = self._mass.sum(axis=1)  # already weight-included
        self._marginal_beta = self._mass.sum(axis=0)

    # ------------------------------------------------------------------
    @property
    def grid(self):
        """The underlying quadrature grid."""
        return self._grid

    @property
    def log_normaliser(self) -> float:
        """``log ∫∫ exp(log_post)`` over the grid: the evidence estimate
        (exact up to truncation and quadrature error)."""
        return self._log_norm

    @property
    def density(self) -> np.ndarray:
        """Normalised joint density on the grid (copy)."""
        return self._density.copy()

    def _axis(self, param: str) -> tuple[np.ndarray, np.ndarray]:
        """(nodes, marginal masses) for the requested parameter."""
        self._check_param(param)
        if param == "omega":
            return self._grid.x, self._marginal_omega
        return self._grid.y, self._marginal_beta

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------
    def mean(self, param: str) -> float:
        nodes, masses = self._axis(param)
        return float(np.dot(masses, nodes) / self._mass_total)

    def variance(self, param: str) -> float:
        nodes, masses = self._axis(param)
        mu = self.mean(param)
        return float(np.dot(masses, (nodes - mu) ** 2) / self._mass_total)

    def central_moment(self, param: str, k: int) -> float:
        nodes, masses = self._axis(param)
        mu = float(np.dot(masses, nodes) / self._mass_total)
        return float(np.dot(masses, (nodes - mu) ** k) / self._mass_total)

    def cross_moment(self) -> float:
        outer = self._grid.x[:, None] * self._grid.y[None, :]
        return float((self._mass * outer).sum() / self._mass_total)

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------
    def _cdf_table(self, param: str) -> tuple[np.ndarray, np.ndarray]:
        """``(nodes, cdf)`` of the trapezoid CDF, monotone by
        construction: quadrature masses converted back to density
        values and cumulated over the node spacing."""
        nodes, masses = self._axis(param)
        grid_w = self._grid.wx if param == "omega" else self._grid.wy
        density = np.where(grid_w > 0.0, masses / grid_w, 0.0)
        cdf = np.concatenate(
            ([0.0], np.cumsum(0.5 * (density[1:] + density[:-1]) * np.diff(nodes)))
        )
        cdf /= cdf[-1]
        return nodes, cdf

    def quantile(self, param: str, q: float) -> float:
        """Marginal quantile by inverting the piecewise-linear CDF built
        with trapezoid masses (monotone by construction)."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile level must be in (0, 1)")
        nodes, cdf = self._cdf_table(param)
        return float(np.interp(q, cdf, nodes))

    def quantile_batch(self, param: str, q: np.ndarray) -> np.ndarray:
        """All levels from one CDF-table build and one interpolation."""
        levels = np.atleast_1d(np.asarray(q, dtype=float))
        if levels.size and not np.all((levels > 0.0) & (levels < 1.0)):
            raise ValueError("quantile levels must be in (0, 1)")
        nodes, cdf = self._cdf_table(param)
        return np.interp(levels, cdf, nodes)

    def cdf(self, param: str, x: float) -> float:
        """Marginal CDF from the same trapezoid construction as
        :meth:`quantile`."""
        nodes, cdf = self._cdf_table(param)
        return float(np.interp(x, nodes, cdf, left=0.0, right=1.0))

    # ------------------------------------------------------------------
    # Pickling (parallel campaign runner)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Drop the (often closure-based) re-evaluation callable so grid
        posteriors cross process boundaries; every tabulated functional
        survives, only :meth:`log_pdf_grid` beyond the stored grid is
        lost."""
        state = self.__dict__.copy()
        state["_log_pdf_fn"] = None
        return state

    # ------------------------------------------------------------------
    # Density re-evaluation (Figure 1)
    # ------------------------------------------------------------------
    def log_pdf_grid(self, omega: np.ndarray, beta: np.ndarray) -> np.ndarray:
        if self._log_pdf_fn is None:
            raise NotImplementedError(
                "this GridPosterior was built without a re-evaluation callable"
            )
        return (
            np.asarray(self._log_pdf_fn(np.asarray(omega), np.asarray(beta)))
            - self._log_norm
        )

    # ------------------------------------------------------------------
    # Reliability
    # ------------------------------------------------------------------
    def reliability_point(self, c: Callable[[np.ndarray], np.ndarray]) -> float:
        c_values = np.asarray(c(self._grid.y), dtype=float)  # per beta node
        r_matrix = np.exp(-np.outer(self._grid.x, c_values))
        point = (self._mass * r_matrix).sum() / self._mass_total
        return float(min(max(point, 0.0), 1.0))

    def reliability_cdf(self, r: float, c: Callable[[np.ndarray], np.ndarray]) -> float:
        """``P(R <= r)``: for each β column, the ω mass above the
        threshold ``-log r / c(β)``, interpolated inside grid cells."""
        if r <= 0.0:
            return 0.0
        if r >= 1.0:
            return 1.0
        c_values = np.asarray(c(self._grid.y), dtype=float)
        threshold = -math.log(r)
        omega_nodes = self._grid.x
        d_omega = np.diff(omega_nodes)
        # Column densities (ω density within each β slice, including the
        # β quadrature weight), turned into cumulative trapezoid CDFs.
        columns = self._density * self._grid.wy[None, :]
        cell_mass = 0.5 * (columns[1:, :] + columns[:-1, :]) * d_omega[:, None]
        cum = np.vstack([np.zeros(columns.shape[1]), np.cumsum(cell_mass, axis=0)])
        col_totals = cum[-1, :]
        norm = float(col_totals.sum())
        total = 0.0
        for j in range(self._grid.y.size):
            if col_totals[j] == 0.0:
                continue
            if c_values[j] <= 0.0:
                continue  # reliability is exactly 1 in this slice: R <= r < 1 impossible
            cut = threshold / c_values[j]
            below = float(np.interp(cut, omega_nodes, cum[:, j]))
            total += col_totals[j] - below
        return float(total / norm)
