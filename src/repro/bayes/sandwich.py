"""Sandwich-style posterior-variance correction for misspecified fits.

Under model misspecification a Bayesian (and *a fortiori* a variational)
posterior concentrates at the KL-minimising pseudo-true parameter with a
spread governed by the *model* curvature ``A`` — not by the sampling
variability ``B`` of the score under the true data-generating process.
The classic frequentist repair is the sandwich covariance
``A⁻¹ B A⁻¹`` (Huber 1967; White 1982); Wang & Blei (arXiv:1905.10859)
show the same correction is the right target for variational posteriors.

For NHPP failure-time data there is only one realisation of the
process, so ``B`` cannot be estimated from i.i.d. replicates. We use
the independent-increments structure instead: the observation window is
split into ``K`` blocks, the per-block score contributions ``s_k`` are
independent with mean ≈ 0 at the fitted parameter, and

``B = K/(K-1) · Σ_k (s_k - s̄)(s_k - s̄)ᵀ``.

Under the true model each block's score variance adds up to the Fisher
information, so ``B ≈ A`` and the correction is asymptotically a no-op;
under misspecification the systematic misfit of the mean-value function
across blocks inflates ``B`` above ``A``, widening the intervals.

The correction is applied through the posterior *quantile contract*
(:class:`ScaledPosterior`): each marginal is stretched about its mean by

``κ_i = sqrt( (A⁻¹ B A⁻¹)_{ii} / (A⁻¹)_{ii} )``,

i.e. the posterior keeps its location and shape but its spread is
rescaled to the sandwich target. For a :class:`~repro.bayes.
normal_posterior.NormalPosterior` the same affine map is exact in
closed form, so :func:`apply_sandwich` rebuilds it via
``with_covariance`` instead of wrapping.

This is deliberately a *spread* correction, not a re-derivation of the
posterior: with an informative prior the posterior variance is smaller
than ``A⁻¹`` and the multiplicative ``κ`` carries the likelihood-level
inflation onto whatever spread the posterior actually has.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np
from repro.backend import special as sc

from repro import obs
from repro.bayes.joint import JointPosterior
from repro.bayes.normal_posterior import NormalPosterior
from repro.data.failure_data import FailureTimeData, GroupedData

__all__ = [
    "observed_information",
    "score_covariance",
    "sandwich_covariance",
    "variance_inflation",
    "ScaledPosterior",
    "apply_sandwich",
]

#: Inflation factors are clipped to this range: a numerically degenerate
#: block estimate must not collapse or explode the intervals.
KAPPA_FLOOR = 1e-2
KAPPA_CEILING = 1e2


# ----------------------------------------------------------------------
# Gamma-family mean-value derivatives: G(t; α0, β) = P(α0, βt)
# ----------------------------------------------------------------------
def _g_value(t: np.ndarray, alpha0: float, beta: float) -> np.ndarray:
    return sc.gammainc(alpha0, beta * np.clip(t, 0.0, None))


def _g_dbeta(t: np.ndarray, alpha0: float, beta: float) -> np.ndarray:
    """``∂G/∂β = t (βt)^{α0-1} e^{-βt} / Γ(α0)`` (= ``(t/β) g(t)``)."""
    t = np.asarray(t, dtype=float)
    out = np.zeros(t.shape)
    pos = t > 0.0
    bt = beta * t[pos]
    out[pos] = t[pos] * np.exp(
        (alpha0 - 1.0) * np.log(bt) - bt - sc.gammaln(alpha0)
    )
    return out


def _g_dbeta2(t: np.ndarray, alpha0: float, beta: float) -> np.ndarray:
    """``∂²G/∂β² = t² (βt)^{α0-2} e^{-βt} (α0 - 1 - βt) / Γ(α0)``."""
    t = np.asarray(t, dtype=float)
    out = np.zeros(t.shape)
    pos = t > 0.0
    bt = beta * t[pos]
    out[pos] = (
        t[pos] ** 2
        * np.exp((alpha0 - 2.0) * np.log(bt) - bt - sc.gammaln(alpha0))
        * (alpha0 - 1.0 - bt)
    )
    return out


def _check_point(omega: float, beta: float) -> None:
    if not (omega > 0.0 and math.isfinite(omega)):
        raise ValueError(f"omega must be positive and finite, got {omega}")
    if not (beta > 0.0 and math.isfinite(beta)):
        raise ValueError(f"beta must be positive and finite, got {beta}")


# ----------------------------------------------------------------------
# The two slices of bread: A (curvature) and B (score variance)
# ----------------------------------------------------------------------
def observed_information(
    data: FailureTimeData | GroupedData,
    omega: float,
    beta: float,
    alpha0: float = 1.0,
) -> np.ndarray:
    """Observed information ``A = -∇² log L`` at ``(ω, β)``.

    For failure-time data the log-likelihood is
    ``m log ω + Σ log g(t_i; β) - ω G(te; β)``, giving

    ``A = [[m/ω²,            ∂βG(te)],
           [∂βG(te), m α0/β² + ω ∂²βG(te)]]``.

    The grouped-data version sums the corresponding per-interval terms
    of the Poisson-count likelihood.
    """
    _check_point(omega, beta)
    if isinstance(data, FailureTimeData):
        m = data.count
        te = data.horizon
        dg = float(_g_dbeta(np.array([te]), alpha0, beta)[0])
        ddg = float(_g_dbeta2(np.array([te]), alpha0, beta)[0])
        return np.array(
            [
                [m / omega**2, dg],
                [dg, m * alpha0 / beta**2 + omega * ddg],
            ]
        )
    if isinstance(data, GroupedData):
        edges = data.interval_edges()
        counts = data.counts.astype(float)
        d_g = np.diff(_g_value(edges, alpha0, beta))
        d_dg = np.diff(_g_dbeta(edges, alpha0, beta))
        d_ddg = np.diff(_g_dbeta2(edges, alpha0, beta))
        occupied = counts > 0
        curv = np.zeros(counts.shape)
        curv[occupied] = counts[occupied] * (
            d_dg[occupied] ** 2 - d_ddg[occupied] * d_g[occupied]
        ) / d_g[occupied] ** 2
        a11 = float(curv.sum() + omega * d_ddg.sum())
        return np.array(
            [
                [counts.sum() / omega**2, float(d_dg.sum())],
                [float(d_dg.sum()), a11],
            ]
        )
    raise TypeError(f"unsupported data type: {type(data).__name__}")


def score_covariance(
    data: FailureTimeData | GroupedData,
    omega: float,
    beta: float,
    alpha0: float = 1.0,
    *,
    n_blocks: int | None = None,
) -> np.ndarray:
    """Block estimate ``B`` of the score variance at ``(ω, β)``.

    Failure-time data is split into ``n_blocks`` equal-width time blocks
    (default ``max(4, min(m, 100))``); grouped data uses its recorded
    intervals as the blocks. Block score contributions are independent
    by the independent-increments property, so their empirical
    (centred, ``K/(K-1)``-corrected) scatter estimates the sampling
    variance of the total score.
    """
    _check_point(omega, beta)
    if isinstance(data, FailureTimeData):
        m = data.count
        te = data.horizon
        k = n_blocks if n_blocks is not None else max(4, min(m, 100))
        if k < 2:
            raise ValueError(f"need at least 2 blocks, got {k}")
        edges = np.linspace(0.0, te, k + 1)
        m_k, _ = np.histogram(data.times, bins=edges)
        sum_t_k, _ = np.histogram(data.times, bins=edges, weights=data.times)
        d_g = np.diff(_g_value(edges, alpha0, beta))
        d_dg = np.diff(_g_dbeta(edges, alpha0, beta))
        scores = np.stack(
            [
                m_k / omega - d_g,
                m_k * alpha0 / beta - sum_t_k - omega * d_dg,
            ],
            axis=1,
        )
    elif isinstance(data, GroupedData):
        k = data.n_intervals
        if k < 2:
            raise ValueError("grouped data needs at least 2 intervals for B")
        edges = data.interval_edges()
        counts = data.counts.astype(float)
        d_g = np.diff(_g_value(edges, alpha0, beta))
        d_dg = np.diff(_g_dbeta(edges, alpha0, beta))
        ratio = np.zeros(counts.shape)
        occupied = counts > 0
        ratio[occupied] = counts[occupied] * d_dg[occupied] / d_g[occupied]
        scores = np.stack(
            [
                counts / omega - d_g,
                ratio - omega * d_dg,
            ],
            axis=1,
        )
    else:
        raise TypeError(f"unsupported data type: {type(data).__name__}")
    centred = scores - scores.mean(axis=0)
    return (centred.T @ centred) * (k / (k - 1.0))


def sandwich_covariance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``A⁻¹ B A⁻¹`` (symmetrised)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    a_inv = np.linalg.inv(a)
    out = a_inv @ b @ a_inv
    return 0.5 * (out + out.T)


def variance_inflation(
    a: np.ndarray, b: np.ndarray, *, conservative: bool = True
) -> np.ndarray:
    """Marginal inflation factors ``κ = sqrt(diag(A⁻¹BA⁻¹)/diag(A⁻¹))``.

    With ``conservative=True`` (the default used by the correction) the
    factors are floored at 1: the block estimate of ``B`` is noisy on a
    single realisation, and letting a downward fluctuation *narrow* the
    posterior would trade the Bayesian interval's calibration for noise.
    The correction is one-sided by design — it only ever widens — which
    is the standard conservative reading of robust variances. Pass
    ``conservative=False`` for the raw two-sided estimate.

    Clipped to ``[KAPPA_FLOOR, KAPPA_CEILING]``; a non-positive-definite
    ``A`` (degenerate fit) yields the identity correction ``κ = (1, 1)``
    rather than an error, so campaign cells cannot crash on pathological
    replications.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if np.linalg.det(a) <= 0.0 or a[0, 0] <= 0.0 or a[1, 1] <= 0.0:
        return np.ones(2)
    a_inv = np.linalg.inv(a)
    model_var = np.diag(a_inv)
    robust_var = np.diag(sandwich_covariance(a, b))
    if np.any(model_var <= 0.0) or np.any(robust_var < 0.0):
        return np.ones(2)
    kappa = np.sqrt(robust_var / model_var)
    kappa = np.clip(kappa, KAPPA_FLOOR, KAPPA_CEILING)
    if conservative:
        kappa = np.maximum(kappa, 1.0)
    return kappa


# ----------------------------------------------------------------------
# Applying the correction through the quantile contract
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ScaledIncrement:
    """``c(β)`` pre-composed with the inverse spread map of β.

    Frozen (hence hashable whenever ``base`` is) so the wrapped
    posterior's quadrature-table cache keys on it, exactly like the raw
    increment functions in :mod:`repro.core.reliability`.
    """

    base: Callable[[np.ndarray], np.ndarray]
    center: float
    scale: float

    def __call__(self, beta: float | np.ndarray) -> float | np.ndarray:
        beta = np.asarray(beta, dtype=float)
        mapped = np.clip(
            self.center + self.scale * (beta - self.center), 0.0, None
        )
        return self.base(mapped)


class ScaledPosterior(JointPosterior):
    """A posterior with its marginal spreads rescaled about the mean.

    Represents the law of ``θ' = μ + K (θ - μ)`` where ``θ`` follows the
    base posterior, ``μ`` is its mean vector and ``K = diag(κ)``. Means
    are unchanged, variances scale by ``κ²``, the covariance by
    ``κ_ω κ_β``, and every marginal quantile moves affinely:
    ``q'(p) = μ + κ (q(p) - μ)``.

    Reliability functionals are computed *exactly* under the transformed
    law when the base posterior exposes gamma-mixture quadrature tables
    (:meth:`~repro.core.posterior.VBPosterior.reliability_tables`): the
    β nodes are pushed through the spread map inside ``c``, and the
    affine ω transform turns the per-component gamma MGF/tail into a
    shifted MGF/tail in closed form.
    """

    def __init__(
        self,
        base: JointPosterior,
        kappa,
        *,
        diagnostics: dict | None = None,
    ) -> None:
        kappa = np.asarray(kappa, dtype=float)
        if kappa.shape != (2,):
            raise ValueError("kappa must have shape (2,) for (omega, beta)")
        if not np.all(np.isfinite(kappa)) or np.any(kappa <= 0.0):
            raise ValueError(f"kappa must be positive and finite, got {kappa}")
        self._base = base
        self._kappa = kappa
        self._mu = np.array([base.mean("omega"), base.mean("beta")])
        self.method_name = f"{base.method_name}+SW"
        self.diagnostics = dict(diagnostics or {})

    # ------------------------------------------------------------------
    @property
    def base(self) -> JointPosterior:
        """The uncorrected posterior."""
        return self._base

    @property
    def kappa(self) -> np.ndarray:
        """Inflation factors ``(κ_ω, κ_β)`` (copy)."""
        return self._kappa.copy()

    def _k(self, param: str) -> float:
        return float(self._kappa[0 if self._check_param(param) == "omega" else 1])

    def _m(self, param: str) -> float:
        return float(self._mu[0 if self._check_param(param) == "omega" else 1])

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------
    def mean(self, param: str) -> float:
        return self._base.mean(param)

    def variance(self, param: str) -> float:
        return self._k(param) ** 2 * self._base.variance(param)

    def central_moment(self, param: str, k: int) -> float:
        return self._k(param) ** k * self._base.central_moment(param, k)

    def cross_moment(self) -> float:
        cov = float(self._kappa[0] * self._kappa[1]) * self._base.covariance()
        return cov + float(self._mu[0] * self._mu[1])

    # ------------------------------------------------------------------
    # Quantiles and densities
    # ------------------------------------------------------------------
    def quantile(self, param: str, q: float) -> float:
        mu, k = self._m(param), self._k(param)
        return mu + k * (self._base.quantile(param, q) - mu)

    def quantile_batch(self, param: str, q: np.ndarray) -> np.ndarray:
        mu, k = self._m(param), self._k(param)
        return mu + k * (np.asarray(self._base.quantile_batch(param, q)) - mu)

    def cdf(self, param: str, x: float) -> float:
        mu, k = self._m(param), self._k(param)
        return self._base.cdf(param, mu + (x - mu) / k)

    def log_pdf_grid(self, omega: np.ndarray, beta: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        beta = np.asarray(beta, dtype=float)
        base_omega = self._mu[0] + (omega - self._mu[0]) / self._kappa[0]
        base_beta = self._mu[1] + (beta - self._mu[1]) / self._kappa[1]
        jacobian = float(np.log(self._kappa[0]) + np.log(self._kappa[1]))
        return self._base.log_pdf_grid(base_omega, base_beta) - jacobian

    # ------------------------------------------------------------------
    # Reliability under the transformed law
    # ------------------------------------------------------------------
    def _tables(self, c: Callable[[np.ndarray], np.ndarray]):
        tabler = getattr(self._base, "reliability_tables", None)
        if tabler is None:
            raise NotImplementedError(
                f"{type(self._base).__name__} does not expose reliability "
                "quadrature tables; apply the sandwich correction to its "
                "native representation instead"
            )
        scaled_c = _ScaledIncrement(
            base=c, center=float(self._mu[1]), scale=float(self._kappa[1])
        )
        return tabler(scaled_c)

    def reliability_point(self, c: Callable[[np.ndarray], np.ndarray]) -> float:
        quad_w, c_values, a_omega, b_omega = self._tables(c)
        k_omega = float(self._kappa[0])
        shift = c_values * self._mu[0] * (1.0 - k_omega)
        factors = np.exp(
            a_omega * (np.log(b_omega) - np.log(b_omega + c_values * k_omega))
            - shift
        )
        return float(min(max(np.sum(quad_w * factors), 0.0), 1.0))

    def reliability_cdf(self, r: float, c: Callable[[np.ndarray], np.ndarray]) -> float:
        if r <= 0.0:
            return 0.0
        if r >= 1.0:
            return 1.0
        quad_w, c_values, a_omega, b_omega = self._tables(c)
        threshold = -math.log(r)
        k_omega = float(self._kappa[0])
        mu_omega = float(self._mu[0])
        with np.errstate(divide="ignore"):
            cut = np.where(c_values > 0.0, threshold / c_values, np.inf)
        # ω' >= cut  ⇔  ω >= μ + (cut - μ)/κ; a non-positive base cut
        # means the whole component mass is in the tail.
        cut_base = np.clip(mu_omega + (cut - mu_omega) / k_omega, 0.0, None)
        tail = sc.gammaincc(a_omega, b_omega * cut_base)
        return float(np.sum(quad_w * tail))


def apply_sandwich(
    posterior: JointPosterior,
    data: FailureTimeData | GroupedData,
    alpha0: float = 1.0,
    *,
    n_blocks: int | None = None,
) -> JointPosterior:
    """Return ``posterior`` with its spread rescaled to the sandwich
    covariance estimated from ``data`` at the posterior mean.

    A :class:`NormalPosterior` is rebuilt with the exactly transformed
    covariance (the affine map of a normal is normal); every other
    posterior is wrapped in a :class:`ScaledPosterior`. Diagnostics
    (``kappa``, ``A``, ``B``, block count) travel on the result.
    """
    omega = posterior.mean("omega")
    beta = posterior.mean("beta")
    a = observed_information(data, omega, beta, alpha0)
    b = score_covariance(data, omega, beta, alpha0, n_blocks=n_blocks)
    raw = variance_inflation(a, b, conservative=False)
    kappa = np.maximum(raw, 1.0)
    if obs.enabled():
        method = getattr(posterior, "method_name", None) or "posterior"
        obs.fit_health(
            f"{method}+SW",
            kappa_omega=float(kappa[0]),
            kappa_beta=float(kappa[1]),
        )
    diagnostics = {
        "variance_correction": "sandwich",
        "kappa_omega": float(kappa[0]),
        "kappa_beta": float(kappa[1]),
        "kappa_omega_raw": float(raw[0]),
        "kappa_beta_raw": float(raw[1]),
        "information": a.tolist(),
        "score_covariance": b.tolist(),
    }
    if isinstance(posterior, NormalPosterior):
        scale = np.diag(kappa)
        corrected = posterior.with_covariance(
            scale @ posterior.covariance_matrix() @ scale
        )
        corrected.diagnostics = diagnostics
        return corrected
    return ScaledPosterior(posterior, kappa, diagnostics=diagnostics)
