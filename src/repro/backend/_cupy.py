"""CuPy adapter: the generic kernels on a CUDA device.

Import-guarded — only imported by
``repro.backend.core.get_backend("cupy")``; a missing cupy package (or
no CUDA runtime) surfaces as
:class:`repro.exceptions.BackendUnavailableError`.

CuPy ships ``gammainc``/``gammaincc``/``gammaln``/``ndtri`` in
:mod:`cupyx.scipy.special` but no inverse incomplete gamma; the adapter
reuses the shared emulation from
:func:`repro.backend.core.make_generic_gammaincinv` (measured on NumPy
by the ``portable`` backend).  Segmented reductions scatter with
``cupyx.scatter_add`` / ``cupyx.scatter_max``, mirroring the portable
implementation's shape.
"""

from __future__ import annotations

from typing import Any

from repro.backend.core import ArrayBackend, make_generic_gammaincinv
from repro.exceptions import BackendUnavailableError


def make_backend() -> ArrayBackend:
    try:
        import cupy
        import cupyx
        from cupyx.scipy import special as csp

        cupy.zeros(1)  # fail here, not on first kernel, if no device
    except Exception as exc:  # pragma: no cover - depends on environment
        raise BackendUnavailableError(
            "backend 'cupy' requested but cupy is not importable or no "
            f"CUDA device is available ({type(exc).__name__}: {exc}); "
            "install a cupy wheel matching your CUDA toolkit or select "
            "backend='numpy'",
            backend="cupy",
        ) from exc

    gammaincinv = make_generic_gammaincinv(
        cupy, csp.gammainc, csp.gammaln, csp.ndtri,
        gammaincc=csp.gammaincc,
    )

    def gammainccinv(a: Any, q: Any) -> Any:
        return gammaincinv(a, 1.0 - cupy.asarray(q))

    def pdtr(k: Any, m: Any) -> Any:
        return csp.gammaincc(cupy.asarray(k, dtype=cupy.float64) + 1.0, m)

    def logsumexp(values: Any, axis: Any = None, b: Any = None) -> Any:
        values = cupy.asarray(values, dtype=cupy.float64)
        maxima = cupy.max(values, axis=axis, keepdims=True)
        maxima = cupy.where(cupy.isfinite(maxima), maxima, 0.0)
        shifted = cupy.exp(values - maxima)
        if b is not None:
            shifted = shifted * b
        out = cupy.log(cupy.sum(shifted, axis=axis, keepdims=True)) + maxima
        if axis is None:
            return out.reshape(())
        return cupy.squeeze(out, axis=axis)

    def _segment_ids(starts: Any, total: int) -> Any:
        return (
            cupy.searchsorted(starts, cupy.arange(total), side="right") - 1
        )

    def log_sum_exp_stream(values: Any, starts: Any) -> Any:
        values = cupy.asarray(values, dtype=cupy.float64)
        starts = cupy.asarray(starts, dtype=cupy.intp)
        n_seg = int(starts.shape[0])
        if n_seg == 0:
            return cupy.zeros((0,), dtype=cupy.float64)
        ids = _segment_ids(starts, int(values.shape[0]))
        maxima = cupy.full(n_seg, -cupy.inf)
        cupyx.scatter_max(maxima, ids, values)
        shifted = cupy.exp(values - maxima[ids])
        sums = cupy.zeros(n_seg)
        cupyx.scatter_add(sums, ids, shifted)
        out = maxima + cupy.log(sums)
        return cupy.where(cupy.isfinite(maxima), out, maxima)

    def segment_sums(values: Any, offsets: Any) -> Any:
        values = cupy.asarray(values, dtype=cupy.float64)
        offsets = cupy.asarray(offsets, dtype=cupy.intp)
        n_seg = int(offsets.shape[0])
        if n_seg == 0:
            return cupy.zeros((0,), dtype=cupy.float64)
        ids = _segment_ids(offsets, int(values.shape[0]))
        out = cupy.zeros(n_seg, dtype=values.dtype)
        cupyx.scatter_add(out, ids, values)
        return out

    special = {
        "digamma": csp.digamma,
        "erf": csp.erf,
        "erfc": csp.erfc,
        "gammainc": csp.gammainc,
        "gammaincc": csp.gammaincc,
        "gammainccinv": gammainccinv,
        "gammaincinv": gammaincinv,
        "gammaln": csp.gammaln,
        "logsumexp": logsumexp,
        "ndtri": csp.ndtri,
        "pdtr": pdtr,
    }

    return ArrayBackend(
        name="cupy",
        xp=cupy,
        is_numpy=False,
        special=special,
        log_sum_exp_stream=log_sum_exp_stream,
        segment_sums=segment_sums,
        owns=lambda array: isinstance(array, cupy.ndarray),
        to_numpy=lambda array: cupy.asnumpy(array),
    )
