"""The package's single :mod:`scipy.special` import site.

Every other module that needs a special function imports it from here
(``from repro.backend import special as sc``) instead of from scipy
directly.  The re-exported names *are* the scipy ufunc objects — not
wrappers — so the NumPy reference path pays zero indirection and stays
bit-exact with code that imported scipy itself.  Centralising the
import buys two things:

* one place to see exactly which special functions the reproduction
  depends on (the accelerator adapters must cover this list), and
* a lint-style guarantee (``tests/backend/test_special_lint.py``) that
  no module quietly grows a scipy.special dependency the backends
  cannot serve.

Accelerator backends do **not** import this module's functions; each
:class:`repro.backend.ArrayBackend` carries its own implementations
(see ``repro/backend/core.py``).  This module is the NumPy reference
set.
"""

from __future__ import annotations

from scipy import special as _scipy_special

__all__ = [
    "digamma",
    "erf",
    "erfc",
    "gammainc",
    "gammaincc",
    "gammainccinv",
    "gammaincinv",
    "gammaln",
    "logsumexp",
    "ndtri",
    "pdtr",
]

# Same objects as scipy.special's — attribute access through this module
# is bit-for-bit equivalent to `from scipy import special as sc`.
digamma = _scipy_special.digamma
erf = _scipy_special.erf
erfc = _scipy_special.erfc
gammainc = _scipy_special.gammainc
gammaincc = _scipy_special.gammaincc
gammainccinv = _scipy_special.gammainccinv
gammaincinv = _scipy_special.gammaincinv
gammaln = _scipy_special.gammaln
logsumexp = _scipy_special.logsumexp
ndtri = _scipy_special.ndtri
pdtr = _scipy_special.pdtr
