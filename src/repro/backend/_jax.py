"""JAX adapter: the generic kernels under CPU/GPU ``jit``.

Import-guarded — this module is only imported by
``repro.backend.core.get_backend("jax")``, and a missing jax package
surfaces as :class:`repro.exceptions.BackendUnavailableError` with an
install hint, never as a raw ImportError traceback.

Notes on fidelity:

* x64 mode is enabled at construction (``jax_enable_x64``) so the
  agreement tolerances recorded in ``BENCH_backend.json`` are measured
  in float64, like every other backend.
* ``jax.scipy.special`` has no ``gammaincinv``; the adapter uses the
  shared Wilson–Hilferty + safeguarded-Halley emulation from
  :func:`repro.backend.core.make_generic_gammaincinv` (the same code
  the ``portable`` backend runs on NumPy, so its accuracy is measured
  even on machines without jax).
* ``pdtr(k, m)`` is the Poisson CDF identity ``gammaincc(k + 1, m)``.
* Segmented reductions use ``jax.ops.segment_max`` / ``segment_sum``
  with static segment counts, mirroring the scatter-based portable
  implementation (empty segments reduce to ``-inf`` / ``0``).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backend.core import ArrayBackend, make_generic_gammaincinv
from repro.exceptions import BackendUnavailableError


def make_backend() -> ArrayBackend:
    try:
        import jax
        import jax.numpy as jnp
        from jax.scipy import special as jsp
    except Exception as exc:  # pragma: no cover - depends on environment
        raise BackendUnavailableError(
            "backend 'jax' requested but the jax package is not importable "
            f"({type(exc).__name__}: {exc}); install CPU jax with "
            "`pip install jax` or select backend='numpy'",
            backend="jax",
        ) from exc

    # Float64 throughout: the agreement contract vs the NumPy reference
    # is stated in double precision.
    jax.config.update("jax_enable_x64", True)

    gammaincinv = make_generic_gammaincinv(
        jnp, jsp.gammainc, jsp.gammaln, jsp.ndtri,
        gammaincc=jsp.gammaincc,
    )

    def gammainccinv(a: Any, q: Any) -> Any:
        return gammaincinv(a, 1.0 - jnp.asarray(q))

    def pdtr(k: Any, m: Any) -> Any:
        return jsp.gammaincc(jnp.asarray(k, dtype=jnp.float64) + 1.0, m)

    def log_sum_exp_stream(values: Any, starts: Any) -> Any:
        values = jnp.asarray(values, dtype=jnp.float64)
        starts = jnp.asarray(starts, dtype=jnp.int32)
        n_seg = int(starts.shape[0])
        if n_seg == 0:
            return jnp.zeros((0,), dtype=jnp.float64)
        ids = (
            jnp.searchsorted(starts, jnp.arange(values.shape[0]), side="right")
            - 1
        )
        maxima = jax.ops.segment_max(values, ids, num_segments=n_seg)
        shifted = jnp.exp(values - maxima[ids])
        sums = jax.ops.segment_sum(shifted, ids, num_segments=n_seg)
        out = maxima + jnp.log(sums)
        return jnp.where(jnp.isfinite(maxima), out, maxima)

    def segment_sums(values: Any, offsets: Any) -> Any:
        values = jnp.asarray(values, dtype=jnp.float64)
        offsets = jnp.asarray(offsets, dtype=jnp.int32)
        n_seg = int(offsets.shape[0])
        if n_seg == 0:
            return jnp.zeros((0,), dtype=jnp.float64)
        ids = (
            jnp.searchsorted(offsets, jnp.arange(values.shape[0]), side="right")
            - 1
        )
        return jax.ops.segment_sum(values, ids, num_segments=n_seg)

    special = {
        "digamma": jsp.digamma,
        "erf": jsp.erf,
        "erfc": jsp.erfc,
        "gammainc": jsp.gammainc,
        "gammaincc": jsp.gammaincc,
        "gammainccinv": gammainccinv,
        "gammaincinv": gammaincinv,
        "gammaln": jsp.gammaln,
        "logsumexp": jsp.logsumexp,
        "ndtri": jsp.ndtri,
        "pdtr": pdtr,
    }

    return ArrayBackend(
        name="jax",
        xp=jnp,
        is_numpy=False,
        special=special,
        log_sum_exp_stream=log_sum_exp_stream,
        segment_sums=segment_sums,
        owns=lambda array: isinstance(array, jax.Array),
        to_numpy=lambda array: np.asarray(array),
        jit=jax.jit,
    )
